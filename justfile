# Task runner for the simdsim workspace. `just verify` is the tier-1 gate
# and mirrors .github/workflows/ci.yml exactly, so local runs and CI cannot
# drift.

# List available recipes.
default:
    @just --list

# Tier-1: the gate every PR must keep green.
verify:
    cargo build --release --locked
    cargo test -q --locked

# Everything CI runs: tier-1 plus lint gates and bench compilation.
ci: verify lint
    cargo bench --no-run --locked

# Formatting and clippy, warnings as errors (CI `lint` job).
lint:
    cargo fmt --check
    cargo clippy --all-targets --locked -- -D warnings

# Regenerate every table and figure of the paper into target/simdsim-results.
reproduce:
    cargo run --release -p simdsim-bench --bin reproduce

# Run a sweep scenario (e.g. `just sweep fig4`, `just sweep -- --list`).
sweep *ARGS:
    cargo run --release -p simdsim-bench --bin sweep -- {{ARGS}}

# The CI smoke: run the fig4 sweep twice; the second run must be all-cached.
sweep-smoke:
    rm -rf target/simdsim-cache
    cargo run --release -p simdsim-bench --bin sweep -- --filter fig4 --jobs 2
    # No pipe here: a pipeline would report tee's exit code, hiding a
    # failing cell in the second run.
    cargo run --release -p simdsim-bench --bin sweep -- --filter fig4 --jobs 2 > /tmp/simdsim-sweep-second.txt
    grep -q 'cached$' /tmp/simdsim-sweep-second.txt
    ! grep -q 'ran$' /tmp/simdsim-sweep-second.txt

# The CI conformance smoke: the full differential corpus, a 200-case
# fuzz run and the linter over every built-in program, via one binary.
conform *ARGS:
    cargo run --release --locked -p simdsim-conform --bin conform -- smoke {{ARGS}}

# Run the criterion microbenchmarks (shimmed harness; prints timings).
bench:
    cargo bench

# Measure simulation throughput (wall time + simulated MIPS per cell) and
# refresh the BENCH_simdsim.json trajectory artifact.
perf *ARGS:
    cargo run --release -p simdsim-bench --bin perf -- {{ARGS}}

# The CI perf smoke: quick-mode throughput bench; artifact must parse and
# report non-zero aggregate MIPS.
perf-smoke:
    cargo run --release --locked -p simdsim-bench --bin perf -- --quick --out target/BENCH_simdsim.json
    python3 -c "import json,sys; d=json.load(open('target/BENCH_simdsim.json')); sys.exit(0 if d['total']['mips'] > 0 else 1)"

# The CI throughput gate: a fresh quick-mode perf run compared against the
# committed BENCH_simdsim.json baseline over their shared cells; fails when
# instruction-weighted MIPS drops below 0.8x the baseline.  A second run
# with cycle accounting on then gates the profiler's overhead: profiled
# core MIPS must stay above 0.9x the unprofiled run just measured.
perf-check:
    cargo run --release --locked -p simdsim-bench --bin perf -- --quick --out target/BENCH_simdsim.json
    python3 scripts/check-perf-regression.py target/BENCH_simdsim.json --min-ratio 0.8
    cargo run --release --locked -p simdsim-bench --bin perf -- --quick --profile --out target/BENCH_simdsim_profiled.json
    python3 scripts/check-perf-regression.py target/BENCH_simdsim_profiled.json target/BENCH_simdsim.json --min-ratio 0.9

# Run the sweep service (e.g. `just serve`, `just serve -- --addr 0.0.0.0:9000`).
serve *ARGS:
    cargo run --release -p simdsim-serve --bin serve -- {{ARGS}}

# Load-test the service. Self-contained by default (spawns an in-process
# server); pass `-- --addr H:P` to hammer an external daemon instead.
loadgen *ARGS:
    cargo run --release -p simdsim-bench --bin loadgen -- --spawn {{ARGS}}

# The CI serving smoke: boot the daemon and drive it end-to-end through
# the sweepctl client binary (submit, cursor-stream cells, cancel a second
# job, list, /metrics), then check the deprecated unversioned aliases.
serve-smoke:
    ./scripts/serve-smoke.sh

# The CI fleet smoke: a coordinator plus two sweepctl workers shard fig4;
# results must be bit-identical to the golden fixture, including after one
# worker is killed mid-job (its leased cells re-queue and finish elsewhere).
fleet-smoke:
    ./scripts/fleet-smoke.sh

# The CI serving-latency gate: fresh self-contained loadgen runs (local
# pool, then a 2-worker fleet) compared against the committed
# BENCH_simdsim.json baseline; fails on a >2x p99 regression in either
# profile (submit or complete).
loadgen-check:
    # Cold result cache: the gate must time the submit→engine→store path,
    # not pure store reads (the committed baseline is measured cold too).
    rm -rf target/simdsim-cache
    cargo run --release --locked -p simdsim-bench --bin loadgen -- --spawn --clients 16 --requests 2 --out target/BENCH_loadgen.json
    python3 scripts/check-loadgen-regression.py target/BENCH_loadgen.json
    rm -rf target/simdsim-cache
    cargo run --release --locked -p simdsim-bench --bin loadgen -- --spawn --fleet 2 --clients 16 --requests 2 --out target/BENCH_loadgen.json
    python3 scripts/check-loadgen-regression.py target/BENCH_loadgen.json --section loadgen_fleet
