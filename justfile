# Task runner for the simdsim workspace. `just verify` is the tier-1 gate
# and mirrors .github/workflows/ci.yml exactly, so local runs and CI cannot
# drift.

# List available recipes.
default:
    @just --list

# Tier-1: the gate every PR must keep green.
verify:
    cargo build --release --locked
    cargo test -q --locked

# Everything CI runs: tier-1 plus lint gates and bench compilation.
ci: verify lint
    cargo bench --no-run --locked

# Formatting and clippy, warnings as errors (CI `lint` job).
lint:
    cargo fmt --check
    cargo clippy --all-targets --locked -- -D warnings

# Regenerate every table and figure of the paper into target/simdsim-results.
reproduce:
    cargo run --release -p simdsim-bench --bin reproduce

# Run the criterion microbenchmarks (shimmed harness; prints timings).
bench:
    cargo bench
