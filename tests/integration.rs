//! Cross-crate integration tests: every kernel and every application, in
//! every ISA variant, must match its golden Rust implementation, and the
//! timing model must simulate all of them without error.

use simdsim::kernels::{registry, Variant};
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::Ext;

#[test]
fn every_kernel_variant_matches_golden() {
    for kernel in registry() {
        for v in Variant::ALL {
            let built = kernel.build(v);
            built
                .run_checked()
                .unwrap_or_else(|e| panic!("{} {v}: {e}", kernel.spec().name));
        }
    }
}

#[test]
fn every_app_variant_matches_golden() {
    for app in simdsim_apps::registry() {
        for v in Variant::ALL {
            let built = app.build(v);
            built
                .run_checked()
                .unwrap_or_else(|e| panic!("{} {v}: {e}", app.spec().name));
        }
    }
}

#[test]
fn every_kernel_simulates_on_every_width() {
    for kernel in registry() {
        for ext in Ext::ALL {
            let built = kernel.build(Variant::for_ext(ext));
            for way in simdsim::WAYS {
                let cfg = PipeConfig::paper(way, ext);
                let (arch, timing) = simulate(&built.program, &built.machine, &cfg, u64::MAX)
                    .unwrap_or_else(|e| panic!("{} {ext} {way}: {e}", kernel.spec().name));
                assert_eq!(arch.dyn_instrs, timing.instrs);
                assert!(timing.cycles > 0);
                assert!(
                    timing.ipc() <= way as f64 + 1e-9,
                    "{} {ext} {way}-way IPC {} exceeds width",
                    kernel.spec().name,
                    ext,
                );
            }
        }
    }
}

#[test]
fn region_cycles_partition_total() {
    // Scalar + vector region cycles must account for the whole run.
    let kernel = simdsim::kernels::by_name("ycc").expect("ycc exists");
    let built = kernel.build(Variant::Vmmx128);
    let cfg = PipeConfig::paper(2, Ext::Vmmx128);
    let (_, t) = simulate(&built.program, &built.machine, &cfg, u64::MAX).unwrap();
    assert_eq!(t.scalar_region_cycles + t.vector_region_cycles, t.cycles);
    assert!(
        t.vector_region_cycles > t.scalar_region_cycles,
        "ycc is kernel-dominated"
    );
}

#[test]
fn dynamic_mix_matches_between_emulator_and_pipeline() {
    let app = simdsim_apps::by_name("gsmdec").expect("gsmdec exists");
    let built = app.build(Variant::Mmx128);
    let cfg = PipeConfig::paper(4, Ext::Mmx128);
    let (arch, timing) = simulate(&built.program, &built.machine, &cfg, u64::MAX).unwrap();
    assert_eq!(arch.counts, timing.counts);
    assert_eq!(arch.dyn_instrs, timing.instrs);
}
