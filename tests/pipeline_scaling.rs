//! Sanity properties of the timing model across configurations.

use simdsim::kernels::{by_name, Variant};
use simdsim::pipe::{simulate, PipeConfig, PipeStats};
use simdsim_isa::Ext;

fn run(name: &str, ext: Ext, way: usize) -> PipeStats {
    let k = by_name(name).unwrap_or_else(|| panic!("kernel {name}"));
    let built = k.build(Variant::for_ext(ext));
    let cfg = PipeConfig::paper(way, ext);
    simulate(&built.program, &built.machine, &cfg, u64::MAX)
        .expect("simulates")
        .1
}

#[test]
fn wider_cores_never_slow_down() {
    for name in ["rgb", "addblock", "ltpfilt"] {
        for ext in [Ext::Mmx64, Ext::Vmmx128] {
            let c2 = run(name, ext, 2).cycles;
            let c4 = run(name, ext, 4).cycles;
            let c8 = run(name, ext, 8).cycles;
            assert!(c4 <= c2 + c2 / 20, "{name} {ext}: 4-way {c4} vs 2-way {c2}");
            assert!(c8 <= c4 + c4 / 20, "{name} {ext}: 8-way {c8} vs 4-way {c4}");
        }
    }
}

#[test]
fn instruction_counts_are_width_invariant() {
    // Dynamic instruction counts depend on the ISA only, not the core.
    for ext in Ext::ALL {
        let i2 = run("motion2", ext, 2).instrs;
        let i8 = run("motion2", ext, 8).instrs;
        assert_eq!(i2, i8, "{ext}");
    }
}

#[test]
fn branch_stats_are_sane() {
    let s = run("h2v2", Ext::Mmx64, 2);
    assert!(s.branches > 0);
    assert!(s.mispredicts <= s.branches);
    // The loop branches in kernels are highly regular.
    assert!(s.mispredict_ratio() < 0.2, "ratio {}", s.mispredict_ratio());
}

#[test]
fn caches_see_traffic_and_mostly_hit() {
    let s = run("ycc", Ext::Mmx64, 2);
    assert!(s.l1.hits + s.l1.misses > 1000);
    assert!(
        s.l1.miss_ratio() < 0.5,
        "L1 miss ratio {}",
        s.l1.miss_ratio()
    );

    // VMMX accesses bypass the L1: vector traffic shows up at the L2 port.
    let v = run("ycc", Ext::Vmmx128, 2);
    assert!(v.memsys.vector_accesses > 50);
    assert!(v.memsys.l2_port_busy > 0);
}

#[test]
fn unit_stride_kernels_use_the_fast_path() {
    // ycc streams planar data: nearly all vector accesses are stride-one.
    let v = run("ycc", Ext::Vmmx128, 2);
    let unit_frac = v.memsys.unit_stride_accesses as f64 / v.memsys.vector_accesses as f64;
    assert!(unit_frac > 0.9, "unit-stride fraction {unit_frac}");

    // motion1 loads 16×16 blocks out of a wide frame: strided.
    let m = run("motion1", Ext::Vmmx128, 2);
    let unit_frac = m.memsys.unit_stride_accesses as f64 / m.memsys.vector_accesses as f64;
    assert!(unit_frac < 0.2, "motion unit-stride fraction {unit_frac}");
}

#[test]
fn rename_pressure_hits_small_matrix_files() {
    // The 2-way VMMX file has only 4 spare physical registers; the DCT
    // kernel should still complete (stalls, not deadlock).
    let s = run("idct", Ext::Vmmx64, 2);
    assert!(s.cycles > 0);
}
