//! Structural fidelity to the paper's Figure 3: the five versions of the
//! motion-estimation SAD differ exactly the way the paper's side-by-side
//! code listing shows — the MMX versions eliminate the inner loop, the
//! VMMX versions eliminate *both* loops, and VMMX128 needs only a handful
//! of instructions (the paper shows seven).

use simdsim::asm::Asm;
use simdsim::kernels::motion::{emit_motion1, SadArgs};
use simdsim::kernels::Variant;
use simdsim_isa::{Class, Instr, Program};

fn build_body(v: Variant) -> Program {
    let mut a = Asm::new();
    let args = SadArgs {
        p1: a.arg(0),
        p2: a.arg(1),
        lx: a.arg(2),
        h: a.arg(3),
        out: a.arg(4),
    };
    emit_motion1(&mut a, v, &args);
    a.halt();
    a.finish()
}

fn count(p: &Program, f: impl Fn(&Instr) -> bool) -> usize {
    p.code().iter().filter(|i| f(i)).count()
}

#[test]
fn scalar_version_has_two_nested_loops() {
    let p = build_body(Variant::Scalar);
    // Two backward branches (inner i-loop and outer j-loop).
    let back_branches = count(&p, |i| matches!(i, Instr::Branch { .. }));
    assert!(
        back_branches >= 2,
        "expected nested loops, got {back_branches} branches"
    );
    // No SIMD at all.
    assert_eq!(p.static_class_counts().vector_total(), 0);
}

#[test]
fn mmx_versions_eliminate_the_inner_loop() {
    for v in [Variant::Mmx64, Variant::Mmx128] {
        let p = build_body(v);
        let branches = count(&p, |i| matches!(i, Instr::Branch { .. }));
        assert_eq!(branches, 1, "{v}: exactly the row loop remains");
        assert!(p.static_class_counts().vector_total() > 0);
    }
    // Fig. 3(b) vs (d): the 64-bit version needs two loads per operand
    // row, the 128-bit version one.
    let loads64 = count(&build_body(Variant::Mmx64), |i| {
        matches!(i, Instr::VLoad { .. })
    });
    let loads128 = count(&build_body(Variant::Mmx128), |i| {
        matches!(i, Instr::VLoad { .. })
    });
    assert_eq!(loads64, 2 * loads128);
}

#[test]
fn vmmx_versions_are_loop_free() {
    for v in [Variant::Vmmx64, Variant::Vmmx128] {
        let p = build_body(v);
        assert_eq!(
            count(&p, |i| matches!(
                i,
                Instr::Branch { .. } | Instr::Jump { .. }
            )),
            0,
            "{v}: both loops must be gone"
        );
    }
}

#[test]
fn vmmx128_matches_fig3e_shape() {
    // Fig. 3(e): setvl, two strided loads, one SAD-accumulate, one
    // reduction — seven instructions in the paper's notation.
    let p = build_body(Variant::Vmmx128);
    assert_eq!(count(&p, |i| matches!(i, Instr::SetVl { .. })), 1);
    assert_eq!(count(&p, |i| matches!(i, Instr::MLoad { .. })), 2);
    assert_eq!(count(&p, |i| matches!(i, Instr::MAcc { .. })), 1);
    assert_eq!(count(&p, |i| matches!(i, Instr::AccSum { .. })), 1);
    assert!(
        p.len() <= 8,
        "VMMX128 SAD body is {} instrs, Fig. 3(e) shows 7",
        p.len()
    );
}

#[test]
fn vmmx64_matches_fig3c_shape() {
    // Fig. 3(c): the array splits into two 8-byte column halves with two
    // accumulators and a final scalar combine.
    let p = build_body(Variant::Vmmx64);
    assert_eq!(count(&p, |i| matches!(i, Instr::MLoad { .. })), 4);
    assert_eq!(count(&p, |i| matches!(i, Instr::MAcc { .. })), 2);
    assert_eq!(count(&p, |i| matches!(i, Instr::AccSum { .. })), 2);
}

#[test]
fn static_instruction_counts_shrink_across_simd_versions() {
    // Down Figure 3's SIMD rows each listing gets shorter.  (The *scalar*
    // listing is statically compact too — its cost is dynamic, via the
    // two loops; that ordering is covered by the kernel cycle tests.)
    let sizes: Vec<usize> = [
        Variant::Mmx64,
        Variant::Mmx128,
        Variant::Vmmx64,
        Variant::Vmmx128,
    ]
    .iter()
    .map(|v| build_body(*v).len())
    .collect();
    assert!(
        sizes.windows(2).all(|w| w[1] <= w[0]),
        "SIMD listing sizes should be non-increasing: {sizes:?}"
    );
    // And the reduction is drastic end to end ("reducing drastically the
    // number of instructions used").
    assert!(
        sizes[0] >= 3 * sizes[3],
        "mmx64 {} vs vmmx128 {}",
        sizes[0],
        sizes[3]
    );
}

#[test]
fn vector_region_tagging_covers_simd_bodies() {
    let p = build_body(Variant::Vmmx128);
    for (i, instr) in p.code().iter().enumerate() {
        if instr.class().is_vector() {
            assert_eq!(
                p.regions()[i],
                simdsim_isa::Region::Vector,
                "vector instruction at {i} not tagged as kernel code"
            );
        }
    }
    let _ = Class::ALL; // classification order is part of the public API
}
