//! Workspace smoke test: the quickstart documented in the README and in
//! `simdsim`'s crate docs must actually work end-to-end — `fig4()` yields
//! rows for every kernel × extension and `render_fig4` renders them, and
//! the JSON export round-trips through `serde_json`.

use simdsim::experiments::{fig4, KernelResult};
use simdsim::report::{render_fig4, to_json};

#[test]
fn quickstart_fig4_produces_renderable_rows() {
    let rows = fig4();
    assert!(!rows.is_empty(), "fig4() returned no rows");
    // Every row belongs to one of the four evaluated extensions and carries
    // a positive speed-up over the MMX64 baseline of the same width.
    for r in &rows {
        assert!(
            ["mmx64", "mmx128", "vmmx64", "vmmx128"].contains(&r.ext.as_str()),
            "unexpected extension {}",
            r.ext
        );
        assert!(
            r.speedup > 0.0,
            "{}-{}: speedup {}",
            r.kernel,
            r.ext,
            r.speedup
        );
    }

    let rendered = render_fig4(&rows);
    assert!(rendered.contains("kernel"), "header missing:\n{rendered}");
    // One line per kernel plus the header.
    let kernels: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.kernel.as_str()).collect();
    assert_eq!(rendered.lines().count(), kernels.len() + 1);
}

#[test]
fn fig4_rows_roundtrip_through_json() {
    let rows: Vec<KernelResult> = fig4().into_iter().take(4).collect();
    let text = to_json(&rows);
    let back: Vec<KernelResult> = serde_json::from_str(&text).expect("parse back");
    assert_eq!(back.len(), rows.len());
    for (a, b) in rows.iter().zip(&back) {
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.ext, b.ext);
        assert_eq!(a.cycles, b.cycles);
        assert!((a.speedup - b.speedup).abs() < 1e-12);
    }
}
