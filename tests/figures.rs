//! Shape tests for the paper's figures: the qualitative results the
//! reproduction must preserve (who wins, and roughly where), run on a
//! subset of workloads to stay fast in CI.

use simdsim::kernels::{by_name, Variant};
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::Ext;

fn kernel_cycles(name: &str, ext: Ext, way: usize) -> u64 {
    let k = by_name(name).unwrap_or_else(|| panic!("kernel {name}"));
    let built = k.build(Variant::for_ext(ext));
    let cfg = PipeConfig::paper(way, ext);
    let (_, t) = simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates");
    t.cycles
}

/// Figure 4's core ordering: on the 2-way core the matrix extensions beat
/// the 1-D ones, and the wide variants beat the narrow ones.
#[test]
fn fig4_extension_ordering_holds() {
    for name in ["idct", "motion1", "ycc"] {
        let mmx64 = kernel_cycles(name, Ext::Mmx64, 2);
        let mmx128 = kernel_cycles(name, Ext::Mmx128, 2);
        let vmmx64 = kernel_cycles(name, Ext::Vmmx64, 2);
        let vmmx128 = kernel_cycles(name, Ext::Vmmx128, 2);
        assert!(mmx128 <= mmx64, "{name}: mmx128 not faster than mmx64");
        assert!(vmmx64 <= mmx64, "{name}: vmmx64 not faster than mmx64");
        assert!(vmmx128 <= vmmx64, "{name}: vmmx128 not faster than vmmx64");
    }
}

/// The paper: scaling MMX64→MMX128 gives at most modest kernel gains
/// (the best case in Fig. 4 is ~1.5×).
#[test]
fn fig4_mmx_scaling_is_modest() {
    for name in ["idct", "comp", "addblock", "ltpfilt"] {
        let mmx64 = kernel_cycles(name, Ext::Mmx64, 2) as f64;
        let mmx128 = kernel_cycles(name, Ext::Mmx128, 2) as f64;
        let speedup = mmx64 / mmx128;
        assert!(
            (0.95..1.75).contains(&speedup),
            "{name}: mmx64→mmx128 speed-up {speedup:.2} outside the paper's band"
        );
    }
}

/// The paper: `comp` gains almost nothing from any scaling (8×4 blocks
/// use a fraction of the wider registers).
#[test]
fn fig4_comp_is_insensitive() {
    let mmx64 = kernel_cycles("comp", Ext::Mmx64, 2) as f64;
    for ext in [Ext::Mmx128, Ext::Vmmx64, Ext::Vmmx128] {
        let c = kernel_cycles("comp", ext, 2) as f64;
        assert!(
            mmx64 / c < 1.45,
            "comp speed-up on {ext} is {:.2}, should be small",
            mmx64 / c
        );
    }
}

/// The paper: short GSM segments mean VMMX128 adds almost nothing over
/// VMMX64 for `ltppar`.
#[test]
fn fig4_ltppar_saturates_at_vmmx64() {
    let v64 = kernel_cycles("ltppar", Ext::Vmmx64, 2) as f64;
    let v128 = kernel_cycles("ltppar", Ext::Vmmx128, 2) as f64;
    let ratio = v64 / v128;
    assert!(
        (0.9..1.15).contains(&ratio),
        "ltppar vmmx64/vmmx128 ratio {ratio:.2} should be ~1"
    );
}

/// Figure 5's headline for the decoder: a 2-way VMMX128 core is in the
/// same performance class as the 8-way MMX128 core (within 20%).
#[test]
fn fig5_simple_vmmx_matches_aggressive_mmx() {
    let app = simdsim_apps::by_name("jpegdec").expect("jpegdec");
    let run = |way, ext| {
        let built = app.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(way, ext);
        simulate(&built.program, &built.machine, &cfg, u64::MAX)
            .expect("simulates")
            .1
            .cycles as f64
    };
    let vmmx_2way = run(2, Ext::Vmmx128);
    let mmx_8way = run(8, Ext::Mmx128);
    let ratio = vmmx_2way / mmx_8way;
    assert!(
        (0.75..1.35).contains(&ratio),
        "2-way vmmx128 vs 8-way mmx128 cycle ratio {ratio:.2}"
    );
}

/// Figure 5: the GSM applications barely react to SIMD scaling.
#[test]
fn fig5_gsm_is_flat_across_extensions() {
    let app = simdsim_apps::by_name("gsmdec").expect("gsmdec");
    let mut cycles = Vec::new();
    for ext in Ext::ALL {
        let built = app.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(2, ext);
        let (_, t) = simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates");
        cycles.push(t.cycles as f64);
    }
    let max = cycles.iter().cloned().fold(0.0f64, f64::max);
    let min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.25,
        "gsmdec spread {:.2} should be small",
        max / min
    );
}

/// Figure 6: scaling the extension shrinks the vector-cycle share, until
/// the scalar code dominates (Amdahl).
#[test]
fn fig6_vector_share_shrinks() {
    let app = simdsim_apps::by_name("jpegdec").expect("jpegdec");
    let share = |way, ext| {
        let built = app.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(way, ext);
        let (_, t) = simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates");
        t.vector_region_cycles as f64 / t.cycles as f64
    };
    let base = share(2, Ext::Mmx64);
    let best = share(8, Ext::Vmmx128);
    assert!(
        best < base,
        "vector share should shrink: {base:.2} -> {best:.2}"
    );
}

/// Figure 7: the matrix ISAs execute clearly fewer instructions, and the
/// reduction comes from the scalar overhead categories.
#[test]
fn fig7_instruction_reduction() {
    let app = simdsim_apps::by_name("mpeg2dec").expect("mpeg2dec");
    let counts = |ext| {
        let built = app.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(2, ext);
        simulate(&built.program, &built.machine, &cfg, u64::MAX)
            .expect("simulates")
            .1
            .counts
    };
    let mmx64 = counts(Ext::Mmx64);
    let mmx128 = counts(Ext::Mmx128);
    let vmmx128 = counts(Ext::Vmmx128);
    assert!(mmx128.total() < mmx64.total());
    assert!(vmmx128.total() < mmx128.total());
    // The win is mostly overhead elimination: scalar arithmetic + control.
    let overhead = |c: simdsim_isa::ClassCounts| c.sarith + c.sctrl + c.smem;
    assert!(overhead(vmmx128) < overhead(mmx64));
}
