//! Golden parity fixtures for the timing model.
//!
//! Every fig4 + fig5 catalog cell is simulated end-to-end and its full
//! [`PipeStats`] (cycles, per-class counts, branch counters, L1/L2 cache
//! counters, memory-system counters) is compared bit-for-bit against the
//! committed fixture `tests/golden/pipestats.json`.  The fixture was
//! generated from the model *before* the predecoded-hot-path rework, so
//! this suite proves that a pure performance refactor moved no paper
//! number.
//!
//! To re-baseline after an **intentional** timing-model change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_parity
//! ```
//!
//! and commit the updated fixture together with the model change.

use simdsim::pipe::simulate;
use simdsim::sweep::{catalog, scheduler, Cell};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json")
}

/// Simulates one cell and renders its `PipeStats` as canonical JSON.
fn cell_stats_json(cell: &Cell) -> (String, String) {
    let cfg = cell
        .config()
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let built = cell
        .workload
        .build(cell.ext)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let (_, stats) = simulate(&built.program, &built.machine, &cfg, cell.instr_limit)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let json = serde_json::to_string(&stats).expect("PipeStats serializes");
    (cell.label(), json)
}

fn all_cells() -> Vec<Cell> {
    let mut cells = catalog::fig4().expand();
    cells.extend(catalog::fig5().expand());
    cells
}

#[test]
fn fig4_fig5_pipestats_match_golden_fixture() {
    let cells = all_cells();
    let results = scheduler::run_jobs(&cells, scheduler::default_workers(), cell_stats_json);
    let rows: Vec<(String, String)> = results
        .into_iter()
        .map(|r| r.expect("cell simulation must not panic"))
        .collect();

    let path = fixture_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let mut out = String::from("{\n");
        for (i, (label, json)) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!("  \"{label}\": {json}{sep}\n"));
        }
        out.push_str("}\n");
        std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
            .expect("create fixture dir");
        std::fs::write(&path, out).expect("write fixture");
        eprintln!("regenerated {} ({} cells)", path.display(), rows.len());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    let fixture: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");

    let mut mismatches = Vec::new();
    for (label, json) in &rows {
        let expected = fixture
            .get(label)
            .unwrap_or_else(|| panic!("fixture has no cell `{label}`; regenerate"));
        let expected_json = serde_json::to_string(expected).expect("fixture value serializes");
        if *json != expected_json {
            mismatches.push(format!(
                "{label}:\n  expected {expected_json}\n  got      {json}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} cells diverged from the golden fixture:\n{}",
        mismatches.len(),
        rows.len(),
        mismatches.join("\n")
    );

    // The fixture must not contain cells the catalog no longer produces.
    if let serde_json::Value::Object(pairs) = &fixture {
        assert_eq!(
            pairs.len(),
            rows.len(),
            "fixture has {} cells but the catalog produced {}; regenerate",
            pairs.len(),
            rows.len()
        );
    }
}
