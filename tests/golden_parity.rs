//! Golden parity fixtures for the timing model.
//!
//! Every fig4 + fig5 catalog cell is simulated end-to-end and its full
//! [`PipeStats`] (cycles, per-class counts, branch counters, L1/L2 cache
//! counters, memory-system counters) is compared bit-for-bit against the
//! committed fixture `tests/golden/pipestats.json`.  The fixture was
//! generated from the model *before* the predecoded-hot-path rework, so
//! this suite proves that a pure performance refactor moved no paper
//! number.
//!
//! To re-baseline after an **intentional** timing-model change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_parity
//! ```
//!
//! and commit the updated fixture together with the model change.

use simdsim::conform::{diff_effects, ArchState, EffectsRecorder, RefMachine};
use simdsim::emu::NullSink;
use simdsim::pipe::simulate;
use simdsim::sweep::{catalog, scheduler, Cell};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json")
}

/// Simulates one cell and renders its `PipeStats` as canonical JSON.
fn cell_stats_json(cell: &Cell) -> (String, String) {
    let cfg = cell
        .config()
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let built = cell
        .workload
        .build(cell.ext)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let (_, stats) = simulate(&built.program, &built.machine, &cfg, cell.instr_limit)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
    let json = serde_json::to_string(&stats).expect("PipeStats serializes");
    (cell.label(), json)
}

fn all_cells() -> Vec<Cell> {
    let mut cells = catalog::fig4().expand();
    cells.extend(catalog::fig5().expand());
    cells
}

#[test]
fn fig4_fig5_pipestats_match_golden_fixture() {
    let cells = all_cells();
    let results = scheduler::run_jobs(&cells, scheduler::default_workers(), cell_stats_json);
    let rows: Vec<(String, String)> = results
        .into_iter()
        .map(|r| r.expect("cell simulation must not panic"))
        .collect();

    let path = fixture_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let mut out = String::from("{\n");
        for (i, (label, json)) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!("  \"{label}\": {json}{sep}\n"));
        }
        out.push_str("}\n");
        std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
            .expect("create fixture dir");
        std::fs::write(&path, out).expect("write fixture");
        eprintln!("regenerated {} ({} cells)", path.display(), rows.len());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    let fixture: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");

    let mut mismatches = Vec::new();
    for (label, json) in &rows {
        let expected = fixture
            .get(label)
            .unwrap_or_else(|| panic!("fixture has no cell `{label}`; regenerate"));
        let expected_json = serde_json::to_string(expected).expect("fixture value serializes");
        if *json != expected_json {
            mismatches.push(format!(
                "{label}:\n  expected {expected_json}\n  got      {json}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} cells diverged from the golden fixture:\n{}",
        mismatches.len(),
        rows.len(),
        mismatches.join("\n")
    );

    // The fixture must not contain cells the catalog no longer produces.
    if let serde_json::Value::Object(pairs) = &fixture {
        assert_eq!(
            pairs.len(),
            rows.len(),
            "fixture has {} cells but the catalog produced {}; regenerate",
            pairs.len(),
            rows.len()
        );
    }
}

/// The conformance crate's deliberately-simple reference interpreter
/// agrees with both emulator dispatch paths on *real paper workloads*,
/// not just the hand-written corpus: per-instruction architectural
/// effects, final machine state and dynamic instruction statistics all
/// match over a fig4 kernel subset on every extension.
#[test]
fn fig4_subset_matches_reference_interpreter() {
    const SUBSET: [&str; 3] = ["idct", "motion1", "rgb"];
    let cells: Vec<Cell> = catalog::fig4()
        .expand()
        .into_iter()
        .filter(|c| SUBSET.contains(&c.workload.name()))
        .collect();
    // One cell per (kernel, ext): fig4 sweeps only the paper's 2-way.
    assert_eq!(cells.len(), SUBSET.len() * simdsim::isa::Ext::ALL.len());

    for cell in &cells {
        let built = cell
            .workload
            .build(cell.ext)
            .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
        let mut rm = RefMachine::from_machine(&built.machine);
        let ref_run = rm.run(&built.program, cell.instr_limit);
        assert_eq!(
            ref_run.error,
            None,
            "{}: reference run faulted",
            cell.label()
        );
        let ref_state = ArchState::of_ref(&rm);

        let dec = built.program.decode();
        for (label, table) in [("blocks", dec.clone()), ("stepped", dec.without_blocks())] {
            let mut m = cell
                .workload
                .build(cell.ext)
                .expect("workload rebuilds")
                .machine;
            let mut rec = EffectsRecorder::default();
            let res = m.run_decoded_observed(&table, &mut NullSink, cell.instr_limit, &mut rec);
            assert_eq!(
                res.as_ref().err(),
                None,
                "{}: emulator/{label} faulted",
                cell.label()
            );
            if let Some(d) = diff_effects(
                "reference",
                &ref_run.effects,
                label,
                &rec.effects,
                built.program.code(),
            ) {
                panic!("{}: {d}", cell.label());
            }
            let emu_state = ArchState::of_machine(&m);
            if let Some(d) = ref_state.diff("reference", &emu_state, label) {
                panic!("{}: final state divergence: {d}", cell.label());
            }
            let stats = res.expect("checked above");
            assert_eq!(
                (stats.dyn_instrs, stats.element_ops),
                (ref_run.dyn_instrs, ref_run.element_ops),
                "{}: stats divergence vs {label}",
                cell.label()
            );
        }
    }
}
