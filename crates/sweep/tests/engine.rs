//! Engine acceptance tests: cache round-trips across runs, deterministic
//! outcomes regardless of worker count, and per-cell failure isolation.

use simdsim_isa::Ext;
use simdsim_sweep::{run, EngineOptions, Scenario};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simdsim-engine-{}-{tag}", std::process::id()))
}

fn small_scenario() -> Scenario {
    Scenario::new("engine-test", "one cheap kernel, two machines")
        .kernels(["motion1"])
        .exts([Ext::Mmx64, Ext::Vmmx128])
        .ways([2])
}

#[test]
fn second_run_is_served_from_the_cache() {
    let dir = scratch_dir("cache-hit");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = EngineOptions::default().cache(&dir).jobs(2);

    let first = run(&small_scenario(), &opts);
    assert_eq!(first.outcomes.len(), 2);
    assert_eq!(first.cached(), 0, "cold cache cannot hit");
    assert_eq!(first.executed(), 2);

    let second = run(&small_scenario(), &opts);
    assert_eq!(second.cached(), 2, "warm cache must serve every cell");
    assert_eq!(second.executed(), 0);
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.cell.label(), b.cell.label());
        assert_eq!(
            a.stats.as_ref().expect("first run simulates"),
            b.stats.as_ref().expect("second run loads"),
            "cached stats must equal simulated stats"
        );
    }

    // A config change misses the cache: same scenario, one overridden knob.
    let changed = small_scenario().override_axis("rob", [64]);
    let third = run(&changed, &opts);
    assert_eq!(third.cached(), 0, "changed config must not reuse entries");
    assert_eq!(third.executed(), 2);

    // --no-cache semantics: no cache dir means no hits even when the
    // store is warm on disk.
    let uncached = run(&small_scenario(), &EngineOptions::default().jobs(2));
    assert_eq!(uncached.cached(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn outcomes_are_identical_across_worker_counts() {
    let scenario = Scenario::new("det", "determinism probe")
        .kernels(["motion1", "addblock"])
        .exts([Ext::Mmx64, Ext::Vmmx128])
        .ways([2]);
    let reference = run(&scenario, &EngineOptions::default().jobs(1));
    for jobs in [2, 4, 8] {
        let report = run(&scenario, &EngineOptions::default().jobs(jobs));
        assert_eq!(report.outcomes.len(), reference.outcomes.len());
        for (a, b) in reference.outcomes.iter().zip(&report.outcomes) {
            assert_eq!(
                a.cell.label(),
                b.cell.label(),
                "order diverged at {jobs} jobs"
            );
            assert_eq!(
                a.stats.as_ref().expect("simulates"),
                b.stats.as_ref().expect("simulates"),
                "stats diverged at {jobs} jobs"
            );
        }
    }
}

#[test]
fn one_bad_cell_does_not_poison_the_sweep() {
    let scenario = Scenario::new("mixed", "good and bad cells")
        .kernels(["motion1", "no-such-kernel", "addblock"])
        .exts([Ext::Mmx64])
        .ways([2]);
    let report = run(&scenario, &EngineOptions::default().jobs(2));
    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(report.failed(), 1);
    assert!(report.outcomes[0].stats.is_ok());
    let err = report.outcomes[1].stats.as_ref().unwrap_err();
    assert!(err.cell.contains("no-such-kernel"), "{err}");
    assert!(report.outcomes[2].stats.is_ok());
    // And the aggregate view names the failing cell.
    let aggregate = report.cells().unwrap_err();
    assert!(aggregate.cell.contains("no-such-kernel"));
}

#[test]
fn filter_selects_cells_by_label_substring() {
    let report = run(
        &small_scenario(),
        &EngineOptions::default().filter("vmmx128"),
    );
    assert_eq!(report.outcomes.len(), 1);
    assert!(report.outcomes[0].cell.label().contains("vmmx128"));
}
