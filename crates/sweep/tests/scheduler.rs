//! Scheduler contract tests: deterministic output ordering regardless of
//! worker count, and per-job panic isolation.

use simdsim_sweep::{run_jobs, JobPanic};

#[test]
fn output_order_is_independent_of_worker_count() {
    let items: Vec<u64> = (0..100).collect();
    // Uneven job costs provoke stealing at higher worker counts.
    let work = |x: &u64| -> u64 {
        let spins = if x.is_multiple_of(7) { 50_000 } else { 50 };
        let mut acc = *x;
        for _ in 0..spins {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        // The expensive part above must not leak into the result, so the
        // outputs are comparable across runs.
        std::hint::black_box(acc);
        x * 3 + 1
    };
    let reference: Vec<u64> = items.iter().map(work).collect();
    for workers in [1, 2, 3, 4, 8, 16] {
        let got: Vec<u64> = run_jobs(&items, workers, work)
            .into_iter()
            .map(|r| r.expect("no panics in this workload"))
            .collect();
        assert_eq!(got, reference, "order diverged at {workers} workers");
    }
}

#[test]
fn a_panicking_job_fails_alone() {
    // Silence the default panic hook for the intentional panics below so
    // the test log stays readable; restore it afterwards.  Both panic
    // cases live in this one test so the global hook is swapped exactly
    // once, with no races against parallel test threads.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let items: Vec<u32> = (0..20).collect();
    let out = run_jobs(&items, 4, |x| {
        assert!(*x != 7, "job seven exploded");
        *x * 2
    });
    let fmt = run_jobs(&[1u8], 1, |_| -> u8 { panic!("formatted {}", 42) });
    std::panic::set_hook(hook);

    assert_eq!(out.len(), 20);
    for (i, r) in out.iter().enumerate() {
        if i == 7 {
            let err: &JobPanic = r.as_ref().expect_err("job 7 must fail");
            assert!(
                err.message.contains("job seven exploded"),
                "panic message lost: {}",
                err.message
            );
        } else {
            assert_eq!(*r.as_ref().expect("other jobs unaffected"), i as u32 * 2);
        }
    }
    // String-formatted payloads keep their rendered message too.
    assert_eq!(fmt[0].as_ref().unwrap_err().message, "formatted 42");
}
