//! Property tests of the content-addressed result store: round-trips are
//! lossless, and any change to a cell's resolved configuration changes
//! the cache key (so stale entries are never looked up again).

use proptest::prelude::*;
use simdsim_isa::{ClassCounts, Ext};
use simdsim_sweep::{
    cell_key, Cell, CellStats, OverrideSet, Param, ResultStore, StoredCell, WorkloadRef,
};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simdsim-store-prop-{}-{tag}", std::process::id()))
}

fn cell(workload: WorkloadRef, ext: Ext, way: usize, instr_limit: u64) -> Cell {
    Cell {
        scenario: "prop".to_owned(),
        workload,
        ext,
        way,
        overrides: OverrideSet::default(),
        instr_limit,
    }
}

fn stats(seed: u64, ipc: f64) -> CellStats {
    CellStats {
        cycles: seed.wrapping_mul(3).max(1),
        instrs: seed.wrapping_add(17),
        ipc,
        vector_cycles: seed / 2,
        scalar_cycles: seed / 3,
        branches: seed % 1000,
        mispredicts: seed % 97,
        counts: ClassCounts {
            smem: seed % 11,
            sarith: seed % 13,
            sctrl: seed % 7,
            vmem: seed % 5,
            varith: seed % 3,
        },
        l1: simdsim_mem::CacheStats {
            hits: seed % 101,
            misses: seed % 31,
            writebacks: seed % 19,
            invalidations: seed % 23,
        },
        l2: simdsim_mem::CacheStats::default(),
        memsys: simdsim_mem::MemTimingStats {
            scalar_accesses: seed % 301,
            vector_accesses: seed % 201,
            l2_port_busy: seed % 401,
            unit_stride_accesses: seed % 151,
            coherency_writebacks: seed % 29,
        },
        blocks_cached: seed % 43,
        block_hits: seed % 211,
        side_exits: seed % 3,
        // Bounded so `cycles * way` cannot overflow for any generated seed.
        profile: Some(simdsim_pipe::CpiStack {
            cycles: (seed % (1 << 40)).max(1),
            way: 4,
            slots: (seed % (1 << 40)).max(1) * 4,
            issue_slots: [seed % 59, seed % 61],
            class_slots: [seed % 11, seed % 13, seed % 7, seed % 5, seed % 3],
            stall_slots: std::array::from_fn(|i| seed % (i as u64 + 2)),
        }),
    }
}

/// JSON written before the superblock counters existed (cache schema v2)
/// still parses: the `#[serde(default)]` fields fall back to zero instead
/// of failing the read.
#[test]
fn reader_tolerates_missing_block_counters() {
    use serde::{Deserialize, Serialize, Value};
    let full = stats(9, 1.25);
    let Value::Object(pairs) = full.to_value() else {
        panic!("CellStats serializes as an object")
    };
    let stripped = Value::Object(
        pairs
            .into_iter()
            .filter(|(k, _)| !matches!(k.as_str(), "blocks_cached" | "block_hits" | "side_exits"))
            .collect(),
    );
    let parsed = CellStats::from_value(&stripped).expect("pre-superblock payload parses");
    assert_eq!(
        (parsed.blocks_cached, parsed.block_hits, parsed.side_exits),
        (0, 0, 0)
    );
    assert_eq!(parsed.instrs, full.instrs);
    assert_eq!(parsed.l1, full.l1);
}

proptest! {
    /// Save → load returns exactly what was saved, for arbitrary stats.
    #[test]
    fn roundtrip_is_lossless(seed in 1u64..u64::MAX / 4, ipc_millis in 0u64..8000) {
        let dir = scratch_dir("rt");
        let store = ResultStore::new(&dir);
        let c = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Vmmx128, 2, seed);
        let key = cell_key(&c, &c.config().expect("paper config"));
        let saved = StoredCell { label: c.label(), stats: stats(seed, ipc_millis as f64 / 1000.0) };
        store.save(&key, &saved);
        let loaded = store.load(&key).expect("entry just saved");
        prop_assert_eq!(loaded, saved);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single-parameter change to the resolved configuration yields a
    /// different key, so the old cached entry can never be served.
    #[test]
    fn config_change_invalidates_the_key(
        param_idx in 0usize..29,
        delta in 1u64..64,
        way_idx in 0usize..3,
    ) {
        use simdsim_pipe::PipeConfig;
        let way = [2usize, 4, 8][way_idx];
        let base = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Vmmx128, way, 1000);
        let base_cfg = base.config().expect("paper config");
        let base_key = cell_key(&base, &base_cfg);

        let key_name = PipeConfig::PARAMS[param_idx % PipeConfig::PARAMS.len()];
        let mut changed = base.clone();
        changed.overrides = OverrideSet {
            params: vec![Param { key: key_name.to_owned(), value: 256 + delta }],
        };
        let changed_cfg = changed.config().expect("override applies");
        prop_assert_ne!(cell_key(&changed, &changed_cfg), base_key.clone(),
            "key unchanged after overriding {}", key_name);

        // The key hashes resolved *content*: the same override applied to
        // the same cell twice produces the same key.
        prop_assert_eq!(cell_key(&changed, &changed_cfg),
            cell_key(&changed, &changed.config().expect("config resolves again")));
    }

    /// Workload identity, kind, extension, width and instruction budget
    /// all contribute to the key.
    #[test]
    fn every_cell_axis_contributes_to_the_key(limit in 1u64..1_000_000) {
        let base = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Vmmx128, 2, limit);
        let base_key = cell_key(&base, &base.config().expect("config"));

        let other_kernel = cell(WorkloadRef::Kernel("rgb".to_owned()), Ext::Vmmx128, 2, limit);
        prop_assert_ne!(cell_key(&other_kernel, &other_kernel.config().expect("config")), base_key.clone());

        // Same name, different registry: a kernel is not an app.
        let as_app = cell(WorkloadRef::App("idct".to_owned()), Ext::Vmmx128, 2, limit);
        prop_assert_ne!(cell_key(&as_app, &as_app.config().expect("config")), base_key.clone());

        let other_ext = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Mmx64, 2, limit);
        prop_assert_ne!(cell_key(&other_ext, &other_ext.config().expect("config")), base_key.clone());

        let other_way = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Vmmx128, 4, limit);
        prop_assert_ne!(cell_key(&other_way, &other_way.config().expect("config")), base_key.clone());

        let other_limit = cell(WorkloadRef::Kernel("idct".to_owned()), Ext::Vmmx128, 2, limit + 1);
        prop_assert_ne!(cell_key(&other_limit, &other_limit.config().expect("config")), base_key);
    }
}
