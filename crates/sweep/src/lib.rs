//! `simdsim-sweep` — the experiment engine of the workspace.
//!
//! Experiments are **declarative**: a [`Scenario`] names axes (workloads,
//! extensions, widths, configuration overrides) and the engine does the
//! rest — expansion into cells, cache lookup in a content-addressed
//! [`ResultStore`], execution on a bounded work-stealing scheduler with
//! per-job panic isolation, and a per-cell [`Result`] report in
//! deterministic order.  The paper's figures and the ablation studies are
//! entries in [`catalog`]; new machines and sweeps are new `Scenario`
//! values (or JSON files fed to the `sweep` binary), not new driver code.
//!
//! # Example
//!
//! Define and run a two-cell scenario — `idct` on the paper's 2-way MMX64
//! and VMMX128 machines — without touching any driver:
//!
//! ```
//! use simdsim_isa::Ext;
//! use simdsim_sweep::{run, EngineOptions, Scenario};
//!
//! let scenario = Scenario::new("demo", "idct on the 2-way cores")
//!     .kernels(["idct"])
//!     .exts([Ext::Mmx64, Ext::Vmmx128])
//!     .ways([2]);
//!
//! let report = run(&scenario, &EngineOptions::default());
//! assert_eq!(report.outcomes.len(), 2);
//! let mmx = report.outcomes[0].stats.as_ref().expect("cell simulates");
//! let vmmx = report.outcomes[1].stats.as_ref().expect("cell simulates");
//! // The matrix extension beats 1-D SIMD on the 2-way core (Figure 4).
//! assert!(vmmx.cycles < mmx.cycles);
//! ```
//!
//! Caching is opt-in per run: pass
//! [`EngineOptions::cache`] with a directory and identical cells are
//! served from disk on the next run — across binaries, and invalidated
//! automatically whenever the resolved configuration, the workload
//! revision or the cache schema changes (the key hashes all of them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod exec;
pub mod scenario;
pub mod scheduler;
pub mod store;

pub use engine::{
    execute_cell, run, run_with_executor, run_with_progress, CellExecution, CellOutcome,
    CellPhases, CellStats, EngineOptions, ProgressEvent, SweepError, SweepReport,
    CANCELLED_CELL_MESSAGE,
};
pub use exec::{CellExecutor, CellTask, LocalExecutor, TaskOutcome};
pub use scenario::{Cell, OverrideSet, Param, Scenario, WorkloadRef, DEFAULT_INSTR_LIMIT};
pub use scheduler::{default_workers, run_jobs, JobPanic};
pub use simdsim_pipe::{CpiStack, StallCause, NUM_REGIONS, NUM_STALL_CAUSES, REGION_LABELS};
pub use store::{cell_key, fnv1a128, CacheKey, ResultStore, StoredCell, CACHE_SCHEMA_VERSION};
