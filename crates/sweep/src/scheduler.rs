//! A bounded work-stealing scheduler for CPU-bound simulation jobs.
//!
//! Replaces the seed's thread-per-job fan-out: a fixed pool of workers
//! (sized to the available parallelism by default) drains per-worker
//! deques, stealing from the back of a neighbour's deque when its own runs
//! dry.  Each job runs under panic isolation, so one diverging simulation
//! surfaces as an [`Err`] for that job only instead of aborting the sweep,
//! and results always come back in submission order regardless of the
//! worker count or steal pattern.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

/// A job that panicked, with the panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The default worker count: the machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every item on a fixed pool of `workers` threads and
/// returns one result per item, **in item order**.  A panicking job yields
/// `Err(JobPanic)` in its slot; the other jobs are unaffected.
///
/// `workers` is clamped to `1..=items.len()`, so the pool is always
/// bounded and never larger than the work.
pub fn run_jobs<T, R>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    // Per-worker deques of item indices, filled round-robin.  A worker
    // pops from the front of its own deque and steals from the back of a
    // neighbour's, the classic split that keeps contention low.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        queues[i % workers].lock().expect("queue lock").push_back(i);
    }

    let (tx, rx) = mpsc::channel::<(usize, Result<R, JobPanic>)>();
    std::thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            s.spawn(move || {
                while let Some(i) = next_job(queues, w) {
                    let result =
                        catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|payload| {
                            JobPanic {
                                message: panic_message(payload.as_ref()),
                            }
                        });
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    // All workers have exited, so the channel holds exactly one result per
    // item; place them back into submission order.
    let mut slots: Vec<Option<Result<R, JobPanic>>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produced exactly one result"))
        .collect()
}

/// Next index for worker `w`: own queue first, then steal.  Queues only
/// drain (jobs never enqueue new jobs), so an empty full scan means the
/// worker is done.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = &queues[(w + offset) % n];
        if let Some(i) = victim.lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = run_jobs(&items, 4, |x| x * 2);
        let values: Vec<u64> = out.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(values, (0..37).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_and_oversized_pool_are_fine() {
        let none: Vec<u32> = Vec::new();
        assert!(run_jobs(&none, 8, |x| *x).is_empty());
        // More workers than items clamps to the item count.
        let out = run_jobs(&[1u32, 2], 64, |x| *x);
        assert_eq!(out.len(), 2);
    }
}
