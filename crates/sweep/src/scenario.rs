//! The declarative experiment model: a [`Scenario`] names axes over
//! workloads, extensions, widths and configuration overrides; expanding it
//! yields the [`Cell`]s the engine simulates.
//!
//! Scenarios are plain serializable data, so user-defined machines and
//! sweeps live in JSON files next to the built-in catalog rather than in
//! hand-written driver code.

use serde::{Deserialize, Serialize};
use simdsim_isa::Ext;
use simdsim_kernels::{BuiltKernel, Variant};
use simdsim_pipe::PipeConfig;

/// Default dynamic-instruction budget for a simulated cell (matches the
/// facade crate's historical `INSTR_LIMIT`).
pub const DEFAULT_INSTR_LIMIT: u64 = 500_000_000;

/// A workload named by the scenario: a Table-II kernel or a full
/// application, resolved against the registries at execution time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadRef {
    /// A standalone kernel from [`simdsim_kernels::registry`].
    Kernel(String),
    /// A full application from [`simdsim_apps::registry`].
    App(String),
}

impl WorkloadRef {
    /// The workload's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            WorkloadRef::Kernel(n) | WorkloadRef::App(n) => n,
        }
    }

    /// Builds the workload in the variant exercising `ext`.
    ///
    /// # Errors
    ///
    /// Returns a message when the name is not in the registry.
    pub fn build(&self, ext: Ext) -> Result<BuiltKernel, String> {
        let variant = Variant::for_ext(ext);
        match self {
            WorkloadRef::Kernel(n) => simdsim_kernels::by_name(n)
                .map(|k| k.build(variant))
                .ok_or_else(|| format!("unknown kernel `{n}`")),
            WorkloadRef::App(n) => simdsim_apps::by_name(n)
                .map(|a| a.build(variant))
                .ok_or_else(|| format!("unknown app `{n}`")),
        }
    }
}

impl std::fmt::Display for WorkloadRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One named configuration override, applied through
/// [`PipeConfig::set`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter key (e.g. `lanes`, `l2.port_width`).
    pub key: String,
    /// The value to set.
    pub value: u64,
}

/// A set of overrides applied together to one cell's configuration —
/// one point on a scenario's override axis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverrideSet {
    /// The overrides, applied in order.
    pub params: Vec<Param>,
}

impl OverrideSet {
    /// An override set with a single parameter.
    #[must_use]
    pub fn single(key: &str, value: u64) -> Self {
        Self {
            params: vec![Param {
                key: key.to_owned(),
                value,
            }],
        }
    }

    /// `true` when no parameter is overridden.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Short display label, `"lanes=4"` style (empty when no overrides).
    #[must_use]
    pub fn label(&self) -> String {
        self.params
            .iter()
            .map(|p| format!("{}={}", p.key, p.value))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Applies every override to `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the message of the first unknown or out-of-range parameter.
    pub fn apply(&self, cfg: &mut PipeConfig) -> Result<(), String> {
        for p in &self.params {
            cfg.set(&p.key, p.value)?;
        }
        Ok(())
    }
}

/// A declarative experiment: named axes whose cross product is the set of
/// simulation cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in cell labels and `--filter`).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadRef>,
    /// Extension axis.
    pub exts: Vec<Ext>,
    /// Processor-width axis.
    pub ways: Vec<usize>,
    /// Configuration-override axis; empty means "paper configuration
    /// as-is" (one implicit empty override set).
    pub overrides: Vec<OverrideSet>,
    /// Dynamic-instruction budget per cell.
    pub instr_limit: u64,
}

impl Scenario {
    /// An empty scenario with the default instruction budget.
    #[must_use]
    pub fn new(name: &str, description: &str) -> Self {
        Self {
            name: name.to_owned(),
            description: description.to_owned(),
            workloads: Vec::new(),
            exts: Vec::new(),
            ways: Vec::new(),
            overrides: Vec::new(),
            instr_limit: DEFAULT_INSTR_LIMIT,
        }
    }

    /// Adds kernels to the workload axis.
    #[must_use]
    pub fn kernels<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads
            .extend(names.into_iter().map(|n| WorkloadRef::Kernel(n.into())));
        self
    }

    /// Adds applications to the workload axis.
    #[must_use]
    pub fn apps<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads
            .extend(names.into_iter().map(|n| WorkloadRef::App(n.into())));
        self
    }

    /// Sets the extension axis.
    #[must_use]
    pub fn exts(mut self, exts: impl IntoIterator<Item = Ext>) -> Self {
        self.exts.extend(exts);
        self
    }

    /// Sets the width axis.
    #[must_use]
    pub fn ways(mut self, ways: impl IntoIterator<Item = usize>) -> Self {
        self.ways.extend(ways);
        self
    }

    /// Adds an override axis sweeping one parameter over `values` (each
    /// value becomes one override set).
    #[must_use]
    pub fn override_axis(mut self, key: &str, values: impl IntoIterator<Item = u64>) -> Self {
        self.overrides
            .extend(values.into_iter().map(|v| OverrideSet::single(key, v)));
        self
    }

    /// Sets the per-cell instruction budget.
    #[must_use]
    pub fn instr_limit(mut self, limit: u64) -> Self {
        self.instr_limit = limit;
        self
    }

    /// The override axis with the implicit empty set when none is given.
    fn override_sets(&self) -> Vec<OverrideSet> {
        if self.overrides.is_empty() {
            vec![OverrideSet::default()]
        } else {
            self.overrides.clone()
        }
    }

    /// Expands the axes into cells, workload-major (then override, width,
    /// extension) — a deterministic order every consumer can rely on.
    #[must_use]
    pub fn expand(&self) -> Vec<Cell> {
        let sets = self.override_sets();
        let mut cells = Vec::new();
        for w in &self.workloads {
            for o in &sets {
                for way in &self.ways {
                    for ext in &self.exts {
                        cells.push(Cell {
                            scenario: self.name.clone(),
                            workload: w.clone(),
                            ext: *ext,
                            way: *way,
                            overrides: o.clone(),
                            instr_limit: self.instr_limit,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The distinct processor configurations this scenario simulates, in
    /// override-major (then width, extension) order.  Workloads do not
    /// affect the configuration, so the list has
    /// `overrides × ways × exts` entries.
    ///
    /// # Errors
    ///
    /// Returns the message of the first invalid width or override key.
    pub fn configs(&self) -> Result<Vec<PipeConfig>, String> {
        let mut out = Vec::new();
        for o in &self.override_sets() {
            for way in &self.ways {
                for ext in &self.exts {
                    out.push(resolve_config(*way, *ext, o)?);
                }
            }
        }
        Ok(out)
    }
}

/// One point of a sweep: a workload on a fully determined configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// The scenario this cell came from.
    pub scenario: String,
    /// The workload to simulate.
    pub workload: WorkloadRef,
    /// The multimedia extension.
    pub ext: Ext,
    /// Processor width.
    pub way: usize,
    /// Configuration overrides on top of the paper machine.
    pub overrides: OverrideSet,
    /// Dynamic-instruction budget.
    pub instr_limit: u64,
}

impl Cell {
    /// Stable display label, `scenario/workload/ext/Nway[/k=v]`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}/{}/{}way",
            self.scenario,
            self.workload.name(),
            self.ext,
            self.way
        );
        if !self.overrides.is_empty() {
            s.push('/');
            s.push_str(&self.overrides.label());
        }
        s
    }

    /// The fully resolved processor configuration for this cell.
    ///
    /// # Errors
    ///
    /// Returns a message for an invalid width or an unknown override key.
    pub fn config(&self) -> Result<PipeConfig, String> {
        resolve_config(self.way, self.ext, &self.overrides)
    }
}

fn resolve_config(way: usize, ext: Ext, overrides: &OverrideSet) -> Result<PipeConfig, String> {
    if ![2, 4, 8].contains(&way) {
        return Err(format!("way must be 2, 4 or 8, got {way}"));
    }
    let mut cfg = PipeConfig::paper(way, ext);
    overrides.apply(&mut cfg)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_workload_major_and_deterministic() {
        let s = Scenario::new("t", "test")
            .kernels(["idct", "rgb"])
            .exts([Ext::Mmx64, Ext::Vmmx128])
            .ways([2, 4]);
        let cells = s.expand();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].label(), "t/idct/mmx64/2way");
        assert_eq!(cells[1].label(), "t/idct/vmmx128/2way");
        assert_eq!(cells[2].label(), "t/idct/mmx64/4way");
        assert_eq!(cells[4].label(), "t/rgb/mmx64/2way");
        assert_eq!(cells, s.expand());
    }

    #[test]
    fn override_axis_multiplies_cells_and_labels() {
        let s = Scenario::new("a", "ablation")
            .kernels(["idct"])
            .exts([Ext::Vmmx128])
            .ways([2])
            .override_axis("lanes", [1, 2, 4]);
        let cells = s.expand();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[2].label(), "a/idct/vmmx128/2way/lanes=4");
        let cfg = cells[2].config().expect("valid override");
        assert_eq!(cfg.lanes, 4);
    }

    #[test]
    fn bad_way_and_bad_key_are_errors_not_panics() {
        let s = Scenario::new("b", "bad")
            .kernels(["idct"])
            .exts([Ext::Mmx64])
            .ways([3]);
        assert!(s.expand()[0].config().is_err());
        let s = Scenario::new("b", "bad key")
            .kernels(["idct"])
            .exts([Ext::Mmx64])
            .ways([2])
            .override_axis("no-such-knob", [1]);
        assert!(s.expand()[0].config().unwrap_err().contains("no-such-knob"));
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = Scenario::new("rt", "round-trip")
            .kernels(["idct"])
            .apps(["jpegdec"])
            .exts([Ext::Mmx64, Ext::Vmmx64])
            .ways([2, 8])
            .override_axis("rob", [16, 64]);
        let text = serde_json::to_string(&s).expect("serializes");
        let back: Scenario = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_workload_reports_its_name() {
        let w = WorkloadRef::Kernel("nope".to_owned());
        assert!(w.build(Ext::Mmx64).unwrap_err().contains("nope"));
        let w = WorkloadRef::App("nope".to_owned());
        assert!(w.build(Ext::Mmx64).unwrap_err().contains("nope"));
    }
}
