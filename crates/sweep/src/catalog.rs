//! The built-in scenario catalog: the paper's figures and the ablation
//! studies, expressed declaratively.  `sweep --list` prints this catalog;
//! user-defined scenarios load from JSON files instead
//! (see [`crate::Scenario`]).

use crate::scenario::Scenario;
use simdsim_isa::Ext;

/// The three processor widths evaluated in the paper.
pub const PAPER_WAYS: [usize; 3] = [2, 4, 8];

fn kernel_names() -> Vec<String> {
    simdsim_kernels::registry()
        .iter()
        .map(|k| k.spec().name.to_owned())
        .collect()
}

fn app_names() -> Vec<String> {
    simdsim_apps::registry()
        .iter()
        .map(|a| a.spec().name.to_owned())
        .collect()
}

/// Figure 4: every kernel on every extension at the paper's 2-way width.
#[must_use]
pub fn fig4() -> Scenario {
    fig4_at_way(2)
}

/// A Figure-4-style kernel sweep at an arbitrary width (named `fig4` at
/// the paper's 2-way, `fig4-Nway` otherwise).
#[must_use]
pub fn fig4_at_way(way: usize) -> Scenario {
    let name = if way == 2 {
        "fig4".to_owned()
    } else {
        format!("fig4-{way}way")
    };
    Scenario::new(&name, "kernel speed-ups over same-width MMX64")
        .kernels(kernel_names())
        .exts(Ext::ALL)
        .ways([way])
}

/// Figure 5 (and the data behind Figures 6 and 7): every application on
/// every extension × width.
#[must_use]
pub fn fig5() -> Scenario {
    Scenario::new("fig5", "application speed-ups over 2-way MMX64")
        .apps(app_names())
        .exts(Ext::ALL)
        .ways(PAPER_WAYS)
}

/// Ablation: parallel vector lanes on the 2-way VMMX128 core.
#[must_use]
pub fn ablate_lanes() -> Scenario {
    Scenario::new("ablate-lanes", "vector lanes per SIMD unit (2-way VMMX128)")
        .kernels(["idct", "motion1", "ycc", "h2v2"])
        .exts([Ext::Vmmx128])
        .ways([2])
        .override_axis("lanes", [1, 2, 4, 8, 16])
}

/// Ablation: L2 vector-port width (the `B×64-bit` port of Table IV).
#[must_use]
pub fn ablate_l2_port() -> Scenario {
    Scenario::new("ablate-l2-port", "L2 vector-port bytes (2-way VMMX128)")
        .kernels(["motion1", "ycc", "ltpfilt"])
        .exts([Ext::Vmmx128])
        .ways([2])
        .override_axis("l2.port_width", [8, 16, 32, 64])
}

/// Ablation: physical matrix register count around the paper's sizing.
#[must_use]
pub fn ablate_matrix_regs() -> Scenario {
    Scenario::new(
        "ablate-matrix-regs",
        "physical matrix registers (2-way VMMX128)",
    )
    .kernels(["idct", "rgb", "motion2"])
    .exts([Ext::Vmmx128])
    .ways([2])
    .override_axis("phys_simd", [17, 18, 20, 24, 36, 64])
}

/// Ablation: branch-redirect penalty on the MMX64 baseline.
#[must_use]
pub fn ablate_redirect() -> Scenario {
    Scenario::new("ablate-redirect", "branch redirect penalty (2-way MMX64)")
        .kernels(["motion1", "addblock"])
        .exts([Ext::Mmx64])
        .ways([2])
        .override_axis("redirect_penalty", [1, 3, 5, 10, 20])
}

/// Every named scenario, in catalog order.
#[must_use]
pub fn all() -> Vec<Scenario> {
    vec![
        fig4(),
        fig5(),
        ablate_lanes(),
        ablate_l2_port(),
        ablate_matrix_regs(),
        ablate_redirect(),
    ]
}

/// Looks a scenario up by name.
#[must_use]
pub fn named(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shapes_match_the_paper() {
        assert_eq!(fig4().expand().len(), 11 * 4);
        assert_eq!(fig5().expand().len(), 6 * 3 * 4);
        assert_eq!(fig5().configs().expect("paper configs").len(), 12);
        assert_eq!(named("fig4").expect("fig4 exists").name, "fig4");
        assert!(named("fig9").is_none());
    }

    #[test]
    fn every_catalog_cell_resolves_a_config() {
        for scenario in all() {
            for cell in scenario.expand() {
                cell.config()
                    .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
            }
        }
    }
}
