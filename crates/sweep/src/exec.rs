//! The executor seam: *what* to simulate (a batch of [`CellTask`]s) is
//! separated from *where* it runs.
//!
//! [`run_with_executor`](crate::engine::run_with_executor) hands the
//! engine's pending cells to a [`CellExecutor`] and consumes
//! [`TaskOutcome`]s as they resolve.  [`LocalExecutor`] is the in-process
//! implementation on the work-stealing pool — byte-for-byte the engine's
//! historical behaviour.  The serving layer provides a remote
//! implementation that leases the same tasks to registered worker
//! processes, which is how one job is satisfied transparently by local
//! threads or by a fleet.

use crate::engine::{exec_cell, CellPhases, CellStats, SweepError, CANCELLED_CELL_MESSAGE};
use crate::scenario::Cell;
use crate::scheduler;
use simdsim_pipe::PipeConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One cell the engine wants simulated: its position in the filtered
/// expansion order, the cell itself and its fully resolved configuration.
#[derive(Debug, Clone)]
pub struct CellTask {
    /// Position in the (filtered) expansion order.
    pub index: usize,
    /// The cell to simulate.
    pub cell: Cell,
    /// The cell's resolved processor configuration.
    pub cfg: PipeConfig,
    /// Whether the simulation should carry cycle accounting
    /// ([`CellStats::profile`]).
    pub profile: bool,
}

/// The resolution of one [`CellTask`], delivered through the `done`
/// callback of [`CellExecutor::execute`].
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// The task's `index`.
    pub index: usize,
    /// `true` when the result came from a cache tier rather than a fresh
    /// simulation (e.g. a remote worker's local store).
    pub cached: bool,
    /// The statistics, or the per-cell failure.
    pub stats: Result<CellStats, SweepError>,
    /// Wall-clock simulation time (zero for cached and failed cells).
    pub wall: Duration,
    /// Breakdown of where the executor spent that time (a remote
    /// executor reports the worker-measured phases here).
    pub phases: CellPhases,
}

/// Where a batch of cells executes.
///
/// Contract: `execute` calls `done` **exactly once per task** (in any
/// order, possibly concurrently) and returns only after every task has
/// resolved.  When `cancel` is set, tasks that have not started may
/// resolve as [`CANCELLED_CELL_MESSAGE`] errors instead of simulating.
pub trait CellExecutor: Sync {
    /// Executes `tasks`, delivering each resolution through `done`.
    fn execute(
        &self,
        tasks: Vec<CellTask>,
        cancel: Option<&AtomicBool>,
        done: &(dyn Fn(TaskOutcome) + Sync),
    );
}

/// The in-process executor: cells run on the crate's work-stealing pool
/// with per-job panic isolation, exactly as the engine always has.
#[derive(Debug, Clone, Default)]
pub struct LocalExecutor {
    /// Worker-pool size; `None` uses the available parallelism.
    pub jobs: Option<usize>,
}

impl LocalExecutor {
    /// An executor with a fixed (or default, when `None`) pool size.
    #[must_use]
    pub fn new(jobs: Option<usize>) -> Self {
        Self { jobs }
    }
}

impl CellExecutor for LocalExecutor {
    fn execute(
        &self,
        tasks: Vec<CellTask>,
        cancel: Option<&AtomicBool>,
        done: &(dyn Fn(TaskOutcome) + Sync),
    ) {
        let workers = self.jobs.unwrap_or_else(scheduler::default_workers);
        let results = scheduler::run_jobs(&tasks, workers, |task| {
            // Cooperative cancellation: cells that have not started when
            // the flag goes up resolve as errors instead of simulating.
            let (stats, wall, phases) = if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                (
                    Err(SweepError::new(&task.cell, CANCELLED_CELL_MESSAGE)),
                    Duration::ZERO,
                    CellPhases::default(),
                )
            } else {
                let run = exec_cell(&task.cell, &task.cfg, task.profile);
                (run.stats, run.wall, run.phases)
            };
            done(TaskOutcome {
                index: task.index,
                cached: false,
                stats,
                wall,
                phases,
            });
        });
        // A panicked job never reached its `done` call; resolve it here so
        // the executor honours the once-per-task contract.
        for (task, result) in tasks.iter().zip(results) {
            if let Err(panic) = result {
                done(TaskOutcome {
                    index: task.index,
                    cached: false,
                    stats: Err(SweepError::new(&task.cell, panic.to_string())),
                    wall: Duration::ZERO,
                    phases: CellPhases::default(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_isa::Ext;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    fn task(index: usize) -> CellTask {
        let cell = Cell {
            scenario: "x".to_owned(),
            workload: crate::scenario::WorkloadRef::Kernel("idct".to_owned()),
            ext: Ext::Mmx64,
            way: 2,
            overrides: crate::scenario::OverrideSet::default(),
            instr_limit: 200_000,
        };
        let cfg = cell.config().expect("paper config");
        CellTask {
            index,
            cell,
            cfg,
            profile: true,
        }
    }

    #[test]
    fn local_executor_resolves_every_task_exactly_once() {
        let calls = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        LocalExecutor::new(Some(2)).execute(vec![task(0), task(3), task(5)], None, &|out| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(out.stats.is_ok());
            assert!(!out.cached);
            seen.lock().expect("lock").push(out.index);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let mut seen = seen.into_inner().expect("lock");
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 3, 5]);
    }

    #[test]
    fn cancelled_tasks_resolve_as_cancelled_errors() {
        let cancel = AtomicBool::new(true);
        LocalExecutor::new(Some(1)).execute(vec![task(0)], Some(&cancel), &|out| {
            let err = out.stats.expect_err("cancelled");
            assert_eq!(err.message, CANCELLED_CELL_MESSAGE);
        });
    }
}
