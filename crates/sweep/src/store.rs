//! Content-addressed result store.
//!
//! Each simulated cell is cached under a key derived from everything that
//! determines its outcome: the cache schema version, the workload
//! revisions of the kernel/app crates, the model revisions of the
//! emulator/timing/memory crates, the workload reference, the fully
//! resolved [`PipeConfig`] and the instruction budget.  Any change to any
//! of those yields a different key, so stale entries are never *re-used* —
//! they are simply never looked up again.  This supersedes the seed's
//! ad-hoc `target/simdsim-results/*.json` convention, which keyed results
//! by figure name only and had no invalidation story.

use crate::engine::CellStats;
use crate::scenario::{Cell, WorkloadRef};
use serde::{Deserialize, Serialize};
use simdsim_pipe::PipeConfig;
use std::path::{Path, PathBuf};

/// Version of the stored-cell schema; bump when [`CellStats`] or the key
/// material changes shape.  Version 2 added the L1/L2/memory-system
/// counters to [`CellStats`] so the serving layer can return full timing
/// statistics per cell.  Version 3 added the superblock-engine counters
/// (`blocks_cached`, `block_hits`, `side_exits`).  Version 4 added the
/// cycle-accounting `profile` stack, so caches populated by unprofiled
/// builds never serve profile-less results to a profiling service.
pub const CACHE_SCHEMA_VERSION: u32 = 4;

/// A content hash addressing one cell's result (32 hex digits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// The key as a hex string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parses a key from its canonical form: exactly 32 lowercase hex
    /// digits.  Anything else — the wrong length, uppercase, path
    /// separators — is rejected, which is what makes snapshot import safe
    /// against hostile key strings becoming file paths.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() == 32
            && s.bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            Some(Self(s.to_owned()))
        } else {
            None
        }
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything that determines a cell's simulation outcome: the workload
/// (with the revisions of the crates that generate it) and the machine
/// (with the revisions of the crates that model it).
#[derive(Serialize)]
struct KeyMaterial {
    schema: u32,
    kernels_rev: u32,
    apps_rev: u32,
    isa_rev: u32,
    asm_rev: u32,
    emu_rev: u32,
    pipe_rev: u32,
    mem_rev: u32,
    workload: WorkloadRef,
    config: PipeConfig,
    instr_limit: u64,
}

/// The content-addressed key for `cell` simulated on `config`.
///
/// The scenario name is deliberately **not** part of the key: two
/// scenarios sharing a cell share its cached result.
#[must_use]
pub fn cell_key(cell: &Cell, config: &PipeConfig) -> CacheKey {
    let material = KeyMaterial {
        schema: CACHE_SCHEMA_VERSION,
        kernels_rev: simdsim_kernels::REVISION,
        apps_rev: simdsim_apps::REVISION,
        isa_rev: simdsim_isa::REVISION,
        asm_rev: simdsim_asm::REVISION,
        emu_rev: simdsim_emu::REVISION,
        pipe_rev: simdsim_pipe::REVISION,
        mem_rev: simdsim_mem::REVISION,
        workload: cell.workload.clone(),
        config: *config,
        instr_limit: cell.instr_limit,
    };
    let text = serde_json::to_string(&material).expect("key material serializes");
    CacheKey(format!("{:032x}", fnv1a128(text.as_bytes())))
}

/// FNV-1a, 128-bit variant: stable across platforms and runs, which is
/// what a content address needs (`DefaultHasher` guarantees neither).
/// Public because the serving layer reuses it to fingerprint submissions
/// for queued-job coalescing.
#[must_use]
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One cached result with its human-readable label (the label is
/// redundant with the key but makes the cache dir greppable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCell {
    /// The cell's display label at save time.
    pub label: String,
    /// The simulation statistics.
    pub stats: CellStats,
}

/// An on-disk store mapping [`CacheKey`]s to [`StoredCell`]s, one JSON
/// file per key.  Safe to share between concurrent processes: writes go
/// through a temp file + rename, and unreadable entries degrade to cache
/// misses.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// A store rooted at `dir` (created lazily on first save).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the entry for `key`; any read or parse failure is a miss.
    #[must_use]
    pub fn load(&self, key: &CacheKey) -> Option<StoredCell> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Saves `cell` under `key`.  Best effort: an unwritable store means
    /// the sweep just runs uncached, so IO errors are swallowed.
    pub fn save(&self, key: &CacheKey, cell: &StoredCell) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let Ok(text) = serde_json::to_string(cell) else {
            return;
        };
        let tmp = self
            .dir
            .join(format!("{key}.json.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, self.path(key)).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Every key currently present in the store, sorted.  This is what a
    /// worker advertises at registration so the coordinator can lease
    /// with cache affinity; it reads directory names only, never entry
    /// contents.
    #[must_use]
    pub fn keys(&self) -> Vec<CacheKey> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<CacheKey> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                CacheKey::parse(name.strip_suffix(".json")?)
            })
            .collect();
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out
    }

    /// Every `(key, entry)` pair in the store, sorted by key for a
    /// deterministic snapshot.  Unreadable or misnamed files are skipped —
    /// the same degrade-to-miss policy as [`ResultStore::load`].
    #[must_use]
    pub fn export(&self) -> Vec<(CacheKey, StoredCell)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<(CacheKey, StoredCell)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let key = CacheKey::parse(name.strip_suffix(".json")?)?;
                let cell = self.load(&key)?;
                Some((key, cell))
            })
            .collect();
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// Imports snapshot entries, skipping malformed keys and keys already
    /// present (an existing entry is authoritative — content addresses
    /// never change meaning).  Returns `(imported, skipped)` counts.
    pub fn import<'a>(
        &self,
        entries: impl IntoIterator<Item = (&'a str, StoredCell)>,
    ) -> (usize, usize) {
        let (mut imported, mut skipped) = (0, 0);
        for (key, cell) in entries {
            match CacheKey::parse(key) {
                Some(k) if self.load(&k).is_none() => {
                    self.save(&k, &cell);
                    imported += 1;
                }
                _ => skipped += 1,
            }
        }
        (imported, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_isa::Ext;

    fn cell() -> Cell {
        Cell {
            scenario: "s".to_owned(),
            workload: WorkloadRef::Kernel("idct".to_owned()),
            ext: Ext::Vmmx128,
            way: 2,
            overrides: crate::scenario::OverrideSet::default(),
            instr_limit: 1000,
        }
    }

    #[test]
    fn key_ignores_scenario_name_but_not_content() {
        let a = cell();
        let mut b = cell();
        b.scenario = "other".to_owned();
        let cfg = a.config().expect("paper config");
        assert_eq!(cell_key(&a, &cfg), cell_key(&b, &cfg));

        let mut c = cell();
        c.instr_limit = 999;
        assert_ne!(cell_key(&a, &cfg), cell_key(&c, &cfg));

        let mut cfg2 = cfg;
        cfg2.lanes += 1;
        assert_ne!(cell_key(&a, &cfg), cell_key(&a, &cfg2));
    }

    #[test]
    fn export_import_roundtrip_skips_bad_and_existing_keys() {
        let base = std::env::temp_dir().join(format!("simdsim-snap-{}", std::process::id()));
        let src = ResultStore::new(base.join("src"));
        let dst = ResultStore::new(base.join("dst"));
        let c = cell();
        let key = cell_key(&c, &c.config().expect("config"));
        let stored = StoredCell {
            label: c.label(),
            stats: CellStats {
                cycles: 10,
                instrs: 20,
                ipc: 2.0,
                vector_cycles: 1,
                scalar_cycles: 9,
                branches: 3,
                mispredicts: 1,
                counts: Default::default(),
                l1: Default::default(),
                l2: Default::default(),
                memsys: Default::default(),
                blocks_cached: 2,
                block_hits: 7,
                side_exits: 0,
                profile: None,
            },
        };
        src.save(&key, &stored);
        let snap = src.export();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, key);

        let entries: Vec<(&str, StoredCell)> = vec![
            (key.as_str(), stored.clone()),
            ("../../../../etc/passwd", stored.clone()),
            ("ABCDEF", stored.clone()),
        ];
        let (imported, skipped) = dst.import(entries.iter().map(|(k, c)| (*k, c.clone())));
        assert_eq!((imported, skipped), (1, 2));
        assert_eq!(dst.load(&key).expect("imported"), stored);
        // Re-import: the existing entry wins, nothing is rewritten.
        let (imported, skipped) = dst.import([(key.as_str(), stored.clone())]);
        assert_eq!((imported, skipped), (0, 1));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!("simdsim-store-{}", std::process::id()));
        let store = ResultStore::new(&dir);
        let key = cell_key(&cell(), &cell().config().expect("config"));
        assert!(store.load(&key).is_none());
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(format!("{key}.json")), "{not json").expect("write");
        assert!(store.load(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
