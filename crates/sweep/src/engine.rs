//! The sweep engine: expands a [`Scenario`], serves cells from the
//! content-addressed [`ResultStore`], schedules the rest on the
//! work-stealing pool, and reports per-cell outcomes in deterministic
//! order.

use crate::exec::{CellExecutor, CellTask, LocalExecutor};
use crate::scenario::{Cell, Scenario, WorkloadRef};
use crate::store::{cell_key, CacheKey, ResultStore, StoredCell};
use serde::{Deserialize, Serialize};
use simdsim_isa::{ClassCounts, Decoded};
use simdsim_mem::{CacheStats, MemTimingStats};
use simdsim_pipe::{simulate_decoded, simulate_decoded_profiled, CpiStack, PipeConfig};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The per-cell failure message of a cell skipped by a cancelled run.
pub const CANCELLED_CELL_MESSAGE: &str = "cancelled before simulation";

/// A failure in one sweep cell, carrying the cell's label so a single bad
/// job names itself instead of aborting the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Label of the failing cell (`scenario/workload/ext/Nway[...]`).
    pub cell: String,
    /// What went wrong.
    pub message: String,
}

impl SweepError {
    /// An error for `cell` with `message`.
    #[must_use]
    pub fn new(cell: &Cell, message: impl Into<String>) -> Self {
        Self {
            cell: cell.label(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {}: {}", self.cell, self.message)
    }
}

impl std::error::Error for SweepError {}

/// Timing statistics of one simulated cell — the engine's unit of result,
/// cached by content address and assembled into figures by the drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Cycles attributed to vectorised kernel regions.
    pub vector_cycles: u64,
    /// Cycles attributed to scalar application code.
    pub scalar_cycles: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Committed instructions per Figure-7 class.
    pub counts: ClassCounts,
    /// L1 cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// Memory-system timing counters.
    pub memsys: MemTimingStats,
    /// Superblocks discovered at predecode (static block count).
    #[serde(default)]
    pub blocks_cached: u64,
    /// Dynamic superblocks executed end-to-end on the fused path.
    #[serde(default)]
    pub block_hits: u64,
    /// Dynamic instructions committed outside any superblock (per-
    /// instruction fallback path).
    #[serde(default)]
    pub side_exits: u64,
    /// The cell's CPI stack (`None` when the run had profiling disabled,
    /// or for results cached by a pre-profiler build).
    #[serde(default)]
    pub profile: Option<CpiStack>,
}

/// How the engine runs a scenario.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker-pool size; `None` uses the available parallelism.
    pub jobs: Option<usize>,
    /// Result-store directory; `None` disables caching (every cell is
    /// simulated in-process — the right default for library callers and
    /// tests, which must not observe stale on-disk state).
    pub cache_dir: Option<PathBuf>,
    /// Substring filter on cell labels; non-matching cells are skipped.
    pub filter: Option<String>,
    /// Cooperative cancellation flag.  Once set, cells that have not
    /// started simulating resolve as [`CANCELLED_CELL_MESSAGE`] errors;
    /// in-flight cells run to completion (the engine stops *between*
    /// cells, never mid-simulation).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Cycle accounting: when `true` (the default) every simulated cell
    /// carries a [`CpiStack`] in its [`CellStats::profile`].  Hot-path
    /// benchmarks turn this off to measure the bare model.
    pub profile: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            jobs: None,
            cache_dir: None,
            filter: None,
            cancel: None,
            profile: true,
        }
    }
}

impl EngineOptions {
    /// Enables the content-addressed store at `dir`.
    #[must_use]
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Fixes the worker-pool size.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Keeps only cells whose label contains `filter`.
    #[must_use]
    pub fn filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Wires a cooperative cancellation flag into the run.
    #[must_use]
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Enables or disables cycle accounting for simulated cells.
    #[must_use]
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
}

/// Wall-clock breakdown of one cell's resolution, in milliseconds.
///
/// The phases do not have to sum to the cell's `wall` time: `probe_ms`
/// and `store_ms` happen outside the simulation proper, and a cell that
/// fails early simply leaves later phases at zero.  Events streamed while
/// a job runs carry the phases known at that point; `store_ms` lands once
/// the result is written back during report assembly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CellPhases {
    /// Content-addressed store probe (hit or miss).
    pub probe_ms: f64,
    /// Workload build + instruction predecode (amortised across cells by
    /// the per-thread decode memo, so often near zero).
    pub decode_ms: f64,
    /// The pipeline simulation itself.
    pub simulate_ms: f64,
    /// Store write-back of a fresh result.
    pub store_ms: f64,
}

impl CellPhases {
    /// Merges two breakdowns by summing each phase — used when a cell's
    /// execution (worker-side phases) and its write-back (coordinator-side
    /// `store_ms`) are measured in different places.
    #[must_use]
    pub fn merged(mut self, other: CellPhases) -> CellPhases {
        self.probe_ms += other.probe_ms;
        self.decode_ms += other.decode_ms;
        self.simulate_ms += other.simulate_ms;
        self.store_ms += other.store_ms;
        self
    }
}

/// The outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that ran (or failed, or was served from cache).
    pub cell: Cell,
    /// `true` when the result came from the store.
    pub cached: bool,
    /// The statistics, or the per-cell failure.
    pub stats: Result<CellStats, SweepError>,
    /// Wall-clock time spent simulating this cell in this run (zero for
    /// cached cells and for cells whose job panicked).
    pub wall: Duration,
    /// Where this cell's wall time went (probe/decode/simulate/store).
    pub phases: CellPhases,
}

impl CellOutcome {
    /// Simulation throughput in millions of committed instructions per
    /// wall-clock second; `None` for cached or failed cells, which were
    /// not simulated in this run.
    #[must_use]
    pub fn mips(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        match &self.stats {
            Ok(s) if !self.cached && secs > 0.0 => Some(s.instrs as f64 / secs / 1.0e6),
            _ => None,
        }
    }
}

/// Every cell outcome of one scenario run, in expansion order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The scenario's name.
    pub scenario: String,
    /// One outcome per (filtered) cell, in [`Scenario::expand`] order.
    pub outcomes: Vec<CellOutcome>,
}

impl SweepReport {
    /// Number of cells served from the store.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// Number of cells simulated in this run.
    #[must_use]
    pub fn executed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.cached && o.stats.is_ok())
            .count()
    }

    /// Number of failed cells.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.stats.is_err()).count()
    }

    /// All `(cell, stats)` pairs, or the first per-cell error.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's [`SweepError`].
    pub fn cells(&self) -> Result<Vec<(&Cell, &CellStats)>, SweepError> {
        self.outcomes
            .iter()
            .map(|o| match &o.stats {
                Ok(s) => Ok((&o.cell, s)),
                Err(e) => Err(e.clone()),
            })
            .collect()
    }

    /// Total wall-clock time spent simulating (summed across cells; cached
    /// cells contribute nothing).
    #[must_use]
    pub fn simulated_wall(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// Aggregate simulation throughput of this run in millions of
    /// committed instructions per second, or `None` when every cell was
    /// cached or failed.  Failed cells contribute neither instructions
    /// nor wall time, so one bad cell cannot deflate the aggregate.
    #[must_use]
    pub fn simulated_mips(&self) -> Option<f64> {
        let (instrs, wall) = self
            .outcomes
            .iter()
            .filter(|o| !o.cached)
            .filter_map(|o| o.stats.as_ref().ok().map(|s| (s.instrs, o.wall)))
            .fold((0u64, Duration::ZERO), |(i, w), (ci, cw)| (i + ci, w + cw));
        let secs = wall.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(instrs as f64 / secs / 1.0e6)
    }
}

/// What the preparation pass decided about each cell.
enum Prep {
    Failed(SweepError),
    Cached {
        stats: CellStats,
        probe_ms: f64,
    },
    Pending {
        cfg: PipeConfig,
        key: Option<CacheKey>,
        probe_ms: f64,
    },
}

/// One per-cell progress notification from [`run_with_progress`],
/// delivered as soon as the cell resolves (from the store, from a
/// simulation, or as a failure).  Cached and failed cells are reported
/// before any simulation starts; simulated cells are reported from the
/// worker threads as they finish.
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// Total cells in the (filtered) sweep.
    pub total: usize,
    /// Cells resolved so far, this one included.
    pub completed: usize,
    /// This cell's position in the (filtered) expansion order.
    pub index: usize,
    /// `true` when this cell came from the store.
    pub cached: bool,
    /// The cell's display label.
    pub label: String,
    /// The cell's statistics (`None` when it failed) — carrying the full
    /// result in the event is what lets a service stream per-cell stats
    /// while the sweep is still running.
    pub stats: Option<CellStats>,
    /// The failure message (`None` when the cell succeeded).
    pub error: Option<String>,
    /// Wall-clock time spent simulating this cell (zero for cached and
    /// failed cells).
    pub wall: Duration,
    /// Where the cell's time went, as far as is known when the event
    /// fires (`store_ms` is measured later, at report assembly).
    pub phases: CellPhases,
}

/// Runs `scenario` and returns one outcome per cell, in expansion order
/// regardless of worker count, cache state or steal pattern.
#[must_use]
pub fn run(scenario: &Scenario, opts: &EngineOptions) -> SweepReport {
    run_with_progress(scenario, opts, &|_| {})
}

/// [`run`] with a per-cell progress callback, invoked concurrently from
/// the worker threads — this is what lets a long-lived service (the
/// `simdsim-serve` daemon) report live job progress without polling the
/// engine.
#[must_use]
pub fn run_with_progress(
    scenario: &Scenario,
    opts: &EngineOptions,
    progress: &(dyn Fn(ProgressEvent) + Sync),
) -> SweepReport {
    let local = LocalExecutor::new(opts.jobs);
    run_with_executor(scenario, opts, progress, &local)
}

/// [`run_with_progress`] with an explicit [`CellExecutor`]: expansion,
/// filtering, the store probe, progress reporting and report assembly stay
/// in the engine; only the pending cells' execution is delegated.  This is
/// the seam the serving layer uses to satisfy a job from a remote worker
/// fleet instead of the local thread pool.
#[must_use]
pub fn run_with_executor(
    scenario: &Scenario,
    opts: &EngineOptions,
    progress: &(dyn Fn(ProgressEvent) + Sync),
    executor: &dyn CellExecutor,
) -> SweepReport {
    let mut cells = scenario.expand();
    if let Some(f) = &opts.filter {
        cells.retain(|c| c.label().contains(f.as_str()));
    }
    let store = opts.cache_dir.as_ref().map(ResultStore::new);

    // Resolve configurations and probe the store up front, sequentially —
    // both are cheap next to a simulation.
    let preps: Vec<Prep> = cells
        .iter()
        .map(|cell| match cell.config() {
            Err(msg) => Prep::Failed(SweepError::new(cell, msg)),
            Ok(cfg) => {
                let probe = Instant::now();
                let key = store.as_ref().map(|_| cell_key(cell, &cfg));
                if let (Some(st), Some(k)) = (&store, &key) {
                    if let Some(hit) = st.load(k) {
                        return Prep::Cached {
                            stats: hit.stats,
                            probe_ms: probe.elapsed().as_secs_f64() * 1.0e3,
                        };
                    }
                }
                Prep::Pending {
                    cfg,
                    key: key.clone(),
                    probe_ms: probe.elapsed().as_secs_f64() * 1.0e3,
                }
            }
        })
        .collect();

    let total = cells.len();
    let completed = AtomicUsize::new(0);
    for (index, (cell, prep)) in cells.iter().zip(&preps).enumerate() {
        match prep {
            Prep::Cached { stats, probe_ms } => progress(ProgressEvent {
                total,
                completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                index,
                cached: true,
                label: cell.label(),
                stats: Some(stats.clone()),
                error: None,
                wall: Duration::ZERO,
                phases: CellPhases {
                    probe_ms: *probe_ms,
                    ..CellPhases::default()
                },
            }),
            Prep::Failed(e) => progress(ProgressEvent {
                total,
                completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                index,
                cached: false,
                label: cell.label(),
                stats: None,
                error: Some(e.message.clone()),
                wall: Duration::ZERO,
                phases: CellPhases::default(),
            }),
            Prep::Pending { .. } => {}
        }
    }

    // Hand only the cells the store could not serve to the executor; each
    // resolution is reported as it lands and parked in its slot for the
    // in-order assembly below.
    let tasks: Vec<CellTask> = preps
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Prep::Pending { cfg, .. } => Some(CellTask {
                index: i,
                cell: cells[i].clone(),
                cfg: *cfg,
                profile: opts.profile,
            }),
            _ => None,
        })
        .collect();
    // (cached, outcome, wall, phases) for one resolved cell, parked until
    // assembly.
    type Slot = Option<(bool, Result<CellStats, SweepError>, Duration, CellPhases)>;
    let slots: Vec<Mutex<Slot>> = cells.iter().map(|_| Mutex::new(None)).collect();
    executor.execute(tasks, opts.cancel.as_deref(), &|out| {
        let probe_ms = match &preps[out.index] {
            Prep::Pending { probe_ms, .. } => *probe_ms,
            _ => 0.0,
        };
        let phases = out.phases.merged(CellPhases {
            probe_ms,
            ..CellPhases::default()
        });
        progress(ProgressEvent {
            total,
            completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
            index: out.index,
            cached: out.cached,
            label: cells[out.index].label(),
            stats: out.stats.as_ref().ok().cloned(),
            error: out.stats.as_ref().err().map(|e| e.message.clone()),
            wall: out.wall,
            phases,
        });
        *slots[out.index].lock().expect("slot lock") =
            Some((out.cached, out.stats, out.wall, phases));
    });

    let mut outcomes = Vec::with_capacity(cells.len());
    for (i, (cell, prep)) in cells.into_iter().zip(preps).enumerate() {
        let (cached, stats, wall, phases) = match prep {
            Prep::Failed(e) => (false, Err(e), Duration::ZERO, CellPhases::default()),
            Prep::Cached { stats, probe_ms } => (
                true,
                Ok(stats),
                Duration::ZERO,
                CellPhases {
                    probe_ms,
                    ..CellPhases::default()
                },
            ),
            Prep::Pending { key, .. } => {
                let (cached, result, wall, mut phases) = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .unwrap_or_else(|| {
                        // The executor contract says this cannot happen;
                        // degrade to a per-cell error rather than panic.
                        (
                            false,
                            Err(SweepError::new(&cell, "executor dropped the cell")),
                            Duration::ZERO,
                            CellPhases::default(),
                        )
                    });
                // Fresh *and* remotely cached results both land in this
                // run's store: when the executor is a fleet, the
                // coordinator's store is the shared cache tier and must
                // absorb results workers served from their own caches.
                if let (Some(st), Some(k), Ok(s)) = (&store, &key, &result) {
                    let write = Instant::now();
                    st.save(
                        k,
                        &StoredCell {
                            label: cell.label(),
                            stats: s.clone(),
                        },
                    );
                    phases.store_ms += write.elapsed().as_secs_f64() * 1.0e3;
                }
                (cached, result, wall, phases)
            }
        };
        outcomes.push(CellOutcome {
            cell,
            cached,
            stats,
            wall,
            phases,
        });
    }
    SweepReport {
        scenario: scenario.name.clone(),
        outcomes,
    }
}

/// The resolution of one [`execute_cell`] call: the statistics (or the
/// per-cell failure), the total simulation wall time, and its breakdown.
#[derive(Debug, Clone)]
pub struct CellExecution {
    /// The statistics, or the per-cell failure.
    pub stats: Result<CellStats, SweepError>,
    /// Wall-clock time of the whole execution.
    pub wall: Duration,
    /// Where that time went (decode vs. simulate; probe/store belong to
    /// the caller's cache tier and stay zero here).
    pub phases: CellPhases,
}

/// Simulates one cell end-to-end (configuration resolution included) —
/// the entry point a remote worker process uses to execute a leased cell
/// with the exact semantics of the in-process engine.  Workers always
/// profile: the coordinator's aggregate CPI stack must not depend on
/// which worker a cell landed on.
#[must_use]
pub fn execute_cell(cell: &Cell) -> CellExecution {
    match cell.config() {
        Err(msg) => CellExecution {
            stats: Err(SweepError::new(cell, msg)),
            wall: Duration::ZERO,
            phases: CellPhases::default(),
        },
        Ok(cfg) => exec_cell(cell, &cfg, true),
    }
}

/// Upper bound on per-worker memoised decode tables; generous next to the
/// catalog's `workloads × exts` (well under 100), but a hard stop against
/// unbounded growth in a long-lived server fed pathological user
/// scenarios.
const DECODE_MEMO_CAP: usize = 512;

thread_local! {
    /// Per-worker `(workload, ext) → Decoded` memo.  Workload builds are
    /// deterministic, so every cell sharing a workload/extension pair
    /// shares one predecoded table instead of rebuilding it per
    /// `simulate` call.
    static DECODE_MEMO: RefCell<HashMap<String, Rc<Decoded>>> = RefCell::new(HashMap::new());
}

/// The memoised decode table for `cell`'s workload, computing (and
/// caching) it from `program` on first sight of the workload/extension
/// pair on this thread.
fn memo_decode(cell: &Cell, program: &simdsim_isa::Program) -> Rc<Decoded> {
    let key = match &cell.workload {
        WorkloadRef::Kernel(n) => format!("kernel/{n}/{}", cell.ext),
        WorkloadRef::App(n) => format!("app/{n}/{}", cell.ext),
    };
    DECODE_MEMO.with(|m| {
        let mut memo = m.borrow_mut();
        if memo.len() >= DECODE_MEMO_CAP {
            memo.clear();
        }
        Rc::clone(memo.entry(key).or_insert_with(|| Rc::new(program.decode())))
    })
}

/// Simulates one cell on its resolved configuration, measuring the
/// wall-clock time of the simulation itself (workload build included —
/// it is part of the cost a cache hit saves).
pub(crate) fn exec_cell(cell: &Cell, cfg: &PipeConfig, profile: bool) -> CellExecution {
    let start = Instant::now();
    let mut phases = CellPhases::default();
    let result = (|| {
        let decode = Instant::now();
        let built = cell
            .workload
            .build(cell.ext)
            .map_err(|m| SweepError::new(cell, m))?;
        let dec = memo_decode(cell, &built.program);
        phases.decode_ms = decode.elapsed().as_secs_f64() * 1.0e3;
        let simulate = Instant::now();
        let (rs, t, stack) = if profile {
            simulate_decoded_profiled(&dec, &built.machine, cfg, cell.instr_limit)
                .map(|(rs, t, s)| (rs, t, Some(s)))
        } else {
            simulate_decoded(&dec, &built.machine, cfg, cell.instr_limit)
                .map(|(rs, t)| (rs, t, None))
        }
        .map_err(|e| SweepError::new(cell, e.to_string()))?;
        phases.simulate_ms = simulate.elapsed().as_secs_f64() * 1.0e3;
        Ok(CellStats {
            cycles: t.cycles,
            instrs: t.instrs,
            ipc: t.ipc(),
            vector_cycles: t.vector_region_cycles,
            scalar_cycles: t.scalar_region_cycles,
            branches: t.branches,
            mispredicts: t.mispredicts,
            counts: t.counts,
            l1: t.l1,
            l2: t.l2,
            memsys: t.memsys,
            blocks_cached: rs.blocks_cached,
            block_hits: rs.block_hits,
            side_exits: rs.side_exits,
            profile: stack,
        })
    })();
    CellExecution {
        stats: result,
        wall: start.elapsed(),
        phases,
    }
}
