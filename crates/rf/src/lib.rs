//! Register-file area and complexity model — regenerates the paper's
//! Table I.
//!
//! The model follows Rixner et al., *"Register Organization for Media
//! Processing"* (HPCA 2000): the area of a register-file bank grows with
//! the square of its port count, because every port adds a word line and
//! a bit line to each cell:
//!
//! ```text
//! area(bank) ∝ bits_per_bank × (C + ports)²
//! ```
//!
//! with `C` a cell-geometry constant (calibrated to ≈5 wire pitches).
//! A centralized MMX-style file pays `3·issue` read and `2·issue` write
//! ports on every bit; the distributed VMMX file splits storage into
//! per-lane banks with a constant 3R/2W ports each, which is why its
//! *much larger* capacity costs less area at wide issue — the paper's
//! central hardware argument.
//!
//! As the paper itself notes, such models "are just approximative and
//! useful to give upper bounds and determine trends": the regenerated
//! relative-area column tracks, but does not exactly equal, Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use simdsim_isa::Ext;

/// Cell-geometry constant of the area model, in wire pitches.
pub const CELL_PITCH: f64 = 5.0;

/// Register-file organization of one SIMD extension at one issue width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfConfig {
    /// Processor issue width this file is sized for.
    pub way: usize,
    /// The extension.
    pub ext: Ext,
    /// Logical registers (32 1-D, 16 matrix).
    pub logical: usize,
    /// Physical (renamed) registers.
    pub physical: usize,
    /// Bits per register row (64 or 128).
    pub width_bits: usize,
    /// Rows per register (1 for MMX, 16 for matrix registers).
    pub rows: usize,
    /// Parallel vector lanes (1 for MMX).
    pub lanes: usize,
    /// Banks per lane.
    pub banks_per_lane: usize,
    /// Read ports per bank.
    pub read_ports: usize,
    /// Write ports per bank.
    pub write_ports: usize,
}

impl RfConfig {
    /// The paper's Table I / Table III organization.
    ///
    /// # Panics
    ///
    /// Panics when `way` is not 2, 4 or 8.
    #[must_use]
    pub fn paper(way: usize, ext: Ext) -> Self {
        let idx = match way {
            2 => 0,
            4 => 1,
            8 => 2,
            _ => panic!("way must be 2, 4 or 8"),
        };
        let matrix = ext.is_matrix();
        if matrix {
            Self {
                way,
                ext,
                logical: 16,
                physical: [20, 36, 64][idx],
                width_bits: ext.width_bits(),
                rows: 16,
                lanes: 4,
                banks_per_lane: [2, 2, 4][idx],
                read_ports: 3,
                write_ports: 2,
            }
        } else {
            let issue = [2usize, 4, 8][idx];
            Self {
                way,
                ext,
                logical: 32,
                physical: [40, 64, 96][idx],
                width_bits: ext.width_bits(),
                rows: 1,
                lanes: 1,
                banks_per_lane: 1,
                read_ports: 3 * issue,
                write_ports: 2 * issue,
            }
        }
    }

    /// Total number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.lanes * self.banks_per_lane
    }

    /// Total storage in bytes.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.physical * self.rows * self.width_bits / 8
    }

    /// Total storage in kilobytes.
    #[must_use]
    pub fn storage_kb(&self) -> f64 {
        self.storage_bytes() as f64 / 1024.0
    }

    /// Area in arbitrary model units (see crate docs).
    #[must_use]
    pub fn area_units(&self) -> f64 {
        let total_bits = (self.storage_bytes() * 8) as f64;
        let ports = (self.read_ports + self.write_ports) as f64;
        let factor = (CELL_PITCH + ports).powi(2);
        // Banking splits the bits but every bank pays the port factor on
        // its share; total = total_bits × factor (bank count cancels for
        // equal-ports banks, the win comes from the small per-bank ports).
        total_bits * factor
    }
}

/// One row of the regenerated Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Configuration label (e.g. `"4way-vmmx128"`).
    pub label: String,
    /// Issue width.
    pub way: usize,
    /// Extension name.
    pub ext: String,
    /// Logical registers.
    pub logical: usize,
    /// Physical registers.
    pub physical: usize,
    /// Lanes.
    pub lanes: usize,
    /// Banks per lane.
    pub banks_per_lane: usize,
    /// Read ports per bank.
    pub read_ports: usize,
    /// Write ports per bank.
    pub write_ports: usize,
    /// Storage in KB.
    pub storage_kb: f64,
    /// Area relative to the 4-way MMX64 file (model).
    pub rel_area: f64,
    /// Area relative to 4-way MMX64 as printed in the paper, for
    /// comparison (None for the 2-way bonus rows).
    pub paper_rel_area: Option<f64>,
}

/// Regenerates Table I (4-way and 8-way rows, as in the paper).
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let paper_values = [
        (4, Ext::Mmx64, Some(1.0)),
        (4, Ext::Mmx128, Some(2.00)),
        (4, Ext::Vmmx64, Some(1.41)),
        (4, Ext::Vmmx128, Some(2.63)),
        (8, Ext::Mmx64, Some(5.14)),
        (8, Ext::Mmx128, Some(10.29)),
        (8, Ext::Vmmx64, Some(2.10)),
        (8, Ext::Vmmx128, Some(4.20)),
    ];
    let base = RfConfig::paper(4, Ext::Mmx64).area_units();
    paper_values
        .iter()
        .map(|(way, ext, paper)| {
            let c = RfConfig::paper(*way, *ext);
            Table1Row {
                label: format!("{}way-{}", way, ext),
                way: *way,
                ext: ext.name().to_owned(),
                logical: c.logical,
                physical: c.physical,
                lanes: c.lanes,
                banks_per_lane: c.banks_per_lane,
                read_ports: c.read_ports,
                write_ports: c.write_ports,
                storage_kb: c.storage_kb(),
                rel_area: c.area_units() / base,
                paper_rel_area: *paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_table1() {
        // Paper: 0.5 / 1.0 / 4.6 / 9.12 KB at 4-way; 0.77 / 1.54 / 8.19 / 16.3 at 8-way.
        let kb = |way, ext| RfConfig::paper(way, ext).storage_kb();
        assert!((kb(4, Ext::Mmx64) - 0.5).abs() < 0.01);
        assert!((kb(4, Ext::Mmx128) - 1.0).abs() < 0.01);
        assert!((kb(4, Ext::Vmmx64) - 4.5).abs() < 0.2); // paper rounds 4.6
        assert!((kb(4, Ext::Vmmx128) - 9.0).abs() < 0.2);
        assert!((kb(8, Ext::Mmx64) - 0.75).abs() < 0.05);
        assert!((kb(8, Ext::Vmmx128) - 16.0).abs() < 0.5);
    }

    #[test]
    fn vmmx_scales_more_gently_than_mmx() {
        // The headline claim: going 4-way → 8-way, the MMX128 file area
        // grows much faster than the VMMX128 file, and at 8-way the
        // (much bigger) VMMX128 file is *cheaper* than MMX128.
        let area = |way, ext| RfConfig::paper(way, ext).area_units();
        let mmx_growth = area(8, Ext::Mmx128) / area(4, Ext::Mmx128);
        let vmmx_growth = area(8, Ext::Vmmx128) / area(4, Ext::Vmmx128);
        assert!(
            mmx_growth > 2.0 * vmmx_growth,
            "{mmx_growth} vs {vmmx_growth}"
        );
        assert!(area(8, Ext::Vmmx128) < area(8, Ext::Mmx128));
    }

    #[test]
    fn model_tracks_paper_ratios() {
        for row in table1() {
            let paper = row.paper_rel_area.unwrap();
            let err = (row.rel_area - paper).abs() / paper;
            assert!(
                err < 0.35,
                "{}: model {:.2} vs paper {:.2} ({:.0}% off)",
                row.label,
                row.rel_area,
                paper,
                err * 100.0
            );
        }
    }

    #[test]
    fn mmx_ports_scale_with_issue() {
        let c = RfConfig::paper(8, Ext::Mmx64);
        assert_eq!(c.read_ports, 24);
        assert_eq!(c.write_ports, 16);
        let v = RfConfig::paper(8, Ext::Vmmx64);
        assert_eq!(v.read_ports, 3);
        assert_eq!(v.banks(), 16);
    }
}
