//! Colour-space conversion kernels: `rgb` (RGB → YCC, jpegenc) and
//! `ycc` (YCC → RGB, jpegdec).
//!
//! The transforms are fixed-point with coefficients chosen so every
//! intermediate fits 16-bit lanes (documented in DESIGN.md); golden and
//! SIMD variants implement bit-identical arithmetic.
//!
//! Forward (planar `u8` in/out, per pixel):
//! ```text
//! Y  = (77·R + 150·G + 29·B) >> 8
//! Cb = (32768 + 128·B − 43·R − 85·G) >> 8      (bias keeps it unsigned)
//! Cr = (32768 + 128·R − 107·G − 21·B) >> 8
//! ```
//! Inverse (signed 16-bit lanes, clamped to `u8`):
//! ```text
//! R = clamp(Y + (180·(Cr−128)) >> 7)
//! G = clamp(Y − (44·(Cb−128) + 91·(Cr−128)) >> 7)
//! B = clamp(Y + (227·(Cb−128)) >> 7)
//! ```

use crate::{BuiltKernel, Kernel, KernelSpec, Variant};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Esz, IReg, MOperand, MReg, VOp, VReg, VShiftOp};

/// One output channel of the colour-conversion inner loop: three
/// (coefficient, source-plane pair) terms, the destination pointer index,
/// and whether the channel carries the +32768 bias.
type ChannelTerms<C> = ([(C, usize); 3], usize, bool);

// ======================================================================
// Golden references
// ======================================================================

/// Golden forward conversion of one pixel.
#[must_use]
pub fn golden_rgb_px(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (u32::from(r), u32::from(g), u32::from(b));
    let y = (77 * r + 150 * g + 29 * b) >> 8;
    let cb = (32768 + 128 * b - 43 * r - 85 * g) >> 8;
    let cr = (32768 + 128 * r - 107 * g - 21 * b) >> 8;
    (y as u8, cb as u8, cr as u8)
}

/// Golden inverse conversion of one pixel (16-bit arithmetic, clamped).
#[must_use]
pub fn golden_ycc_px(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let yv = i32::from(y);
    let cbv = i32::from(cb) - 128;
    let crv = i32::from(cr) - 128;
    let r = yv + (((180 * crv) as i16) >> 7) as i32;
    let g = yv - (((44 * cbv + 91 * crv) as i16) >> 7) as i32;
    let b = yv + (((227 * cbv) as i16) >> 7) as i32;
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

// ======================================================================
// Coefficient-row tables for the matrix variants
// ======================================================================

/// Row indices in the RGB→YCC coefficient matrix register.
mod rgbc {
    pub const C77: u8 = 0;
    pub const C150: u8 = 1;
    pub const C29: u8 = 2;
    pub const C43: u8 = 3;
    pub const C85: u8 = 4;
    pub const C128: u8 = 5;
    pub const C21: u8 = 6;
    pub const C107: u8 = 7;
    pub const BIAS: u8 = 8;
    pub const ZERO: u8 = 9;
    pub const VALUES: [u16; 10] = [77, 150, 29, 43, 85, 128, 21, 107, 32768, 0];
}

/// Row indices in the YCC→RGB coefficient matrix register.
mod yccc {
    pub const C180: u8 = 0;
    pub const C44: u8 = 1;
    pub const C91: u8 = 2;
    pub const C227: u8 = 3;
    pub const C128: u8 = 4;
    pub const ZERO: u8 = 5;
    pub const VALUES: [u16; 6] = [180, 44, 91, 227, 128, 0];
}

/// The RGB→YCC coefficient table for the matrix variants.
#[must_use]
pub fn rgb_coltab(width: usize) -> Vec<u8> {
    splat_rows(&rgbc::VALUES, width)
}

/// The YCC→RGB coefficient table for the matrix variants.
#[must_use]
pub fn ycc_coltab(width: usize) -> Vec<u8> {
    splat_rows(&yccc::VALUES, width)
}

/// Builds the in-memory coefficient table: one `width`-byte row per value,
/// each row the 16-bit splat of the value.
#[must_use]
pub fn splat_rows(values: &[u16], width: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * width);
    for v in values {
        for _ in 0..width / 2 {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

// ======================================================================
// Emitters
// ======================================================================

/// Argument registers of the colour-conversion kernels: three source
/// planes, three destination planes, pixel count, and (matrix variants
/// only) the coefficient-table pointer.
#[derive(Debug, Clone, Copy)]
pub struct ColorArgs {
    /// Source planes (R,G,B for `rgb`; Y,Cb,Cr for `ycc`).
    pub src: [IReg; 3],
    /// Destination planes.
    pub dst: [IReg; 3],
    /// Number of pixels (must be a multiple of 256).
    pub npx: IReg,
    /// Coefficient table base (matrix variants).
    pub coltab: IReg,
}

/// Emits the full `rgb` kernel (loop included) in the requested variant.
pub fn emit_rgb(a: &mut Asm, v: Variant, args: &ColorArgs) {
    match v {
        Variant::Scalar => emit_rgb_scalar(a, args),
        Variant::Mmx64 | Variant::Mmx128 => {
            a.vector_region(|a| emit_rgb_mmx(a, v.width(), args));
        }
        Variant::Vmmx64 | Variant::Vmmx128 => {
            a.vector_region(|a| emit_rgb_vmmx(a, v.width(), args));
        }
    }
}

/// Emits the full `ycc` kernel (loop included) in the requested variant.
pub fn emit_ycc(a: &mut Asm, v: Variant, args: &ColorArgs) {
    match v {
        Variant::Scalar => emit_ycc_scalar(a, args),
        Variant::Mmx64 | Variant::Mmx128 => {
            a.vector_region(|a| emit_ycc_mmx(a, v.width(), args));
        }
        Variant::Vmmx64 | Variant::Vmmx128 => {
            a.vector_region(|a| emit_ycc_vmmx(a, v.width(), args));
        }
    }
}

fn emit_rgb_scalar(a: &mut Asm, args: &ColorArgs) {
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let (r, g, b, t, u, i) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.li(i, 0);
    a.for_loop(i, args.npx, |a| {
        a.lbu(r, ptrs[0], 0);
        a.lbu(g, ptrs[1], 0);
        a.lbu(b, ptrs[2], 0);
        // Y
        a.muli(t, r, 77);
        a.muli(u, g, 150);
        a.add(t, t, u);
        a.muli(u, b, 29);
        a.add(t, t, u);
        a.srli(t, t, 8);
        a.sb(t, ptrs[3], 0);
        // Cb
        a.muli(t, b, 128);
        a.addi(t, t, 32768);
        a.muli(u, r, 43);
        a.sub(t, t, u);
        a.muli(u, g, 85);
        a.sub(t, t, u);
        a.srli(t, t, 8);
        a.sb(t, ptrs[4], 0);
        // Cr
        a.muli(t, r, 128);
        a.addi(t, t, 32768);
        a.muli(u, g, 107);
        a.sub(t, t, u);
        a.muli(u, b, 21);
        a.sub(t, t, u);
        a.srli(t, t, 8);
        a.sb(t, ptrs[5], 0);
        for p in &ptrs {
            a.addi(*p, *p, 1);
        }
    });
    for reg in ptrs.into_iter().chain([r, g, b, t, u, i]) {
        a.release_ireg(reg);
    }
}

/// Splats a 16-bit constant into a fresh SIMD register (li + vsplat).
pub fn splat_const(a: &mut Asm, value: i64) -> VReg {
    let t = a.ireg();
    let v = a.vreg();
    a.li(t, value);
    a.vsplat(v, t, Esz::H);
    a.release_ireg(t);
    v
}

fn emit_rgb_mmx(a: &mut Asm, width: usize, args: &ColorArgs) {
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let consts: Vec<VReg> = [77i64, 150, 29, 43, 85, 128, 21, 107, 0x8000, 0]
        .iter()
        .map(|c| splat_const(a, *c))
        .collect();
    let (c77, c150, c29, c43, c85, c128, c21, c107, bias, zero) = (
        consts[0], consts[1], consts[2], consts[3], consts[4], consts[5], consts[6], consts[7],
        consts[8], consts[9],
    );
    let raw: Vec<VReg> = (0..3).map(|_| a.vreg()).collect();
    let planes16: Vec<VReg> = (0..6).map(|_| a.vreg()).collect(); // lo/hi per plane
    let (acc, t, outv) = (a.vreg(), a.vreg(), a.vreg());
    let outs: Vec<VReg> = (0..2).map(|_| a.vreg()).collect();
    let i = a.ireg();
    a.li(i, 0);
    let w = width as u8;
    a.for_loop_step(i, args.npx, width as i32, |a| {
        for p in 0..3 {
            a.vload(raw[p], ptrs[p], 0, w);
            a.simd(VOp::UnpackLo(Esz::B), planes16[2 * p], raw[p], zero);
            a.simd(VOp::UnpackHi(Esz::B), planes16[2 * p + 1], raw[p], zero);
        }
        // (coefficient, source-plane pair index) terms per output channel.
        let channels: [ChannelTerms<VReg>; 3] = [
            ([(c77, 0), (c150, 2), (c29, 4)], 3, false),
            ([(c128, 4), (c43, 0), (c85, 2)], 4, true),
            ([(c128, 0), (c107, 2), (c21, 4)], 5, true),
        ];
        for (terms, dst_idx, biased) in channels {
            for half in 0..2 {
                let out_half = outs[half];
                let (coef0, plane0) = terms[0];
                a.simd(VOp::Mullo(Esz::H), acc, planes16[plane0 + half], coef0);
                if biased {
                    a.simd(VOp::Add(Esz::H), acc, acc, bias);
                }
                for (coef, plane) in terms.iter().skip(1) {
                    a.simd(VOp::Mullo(Esz::H), t, planes16[plane + half], *coef);
                    if biased {
                        a.simd(VOp::Sub(Esz::H), acc, acc, t);
                    } else {
                        a.simd(VOp::Add(Esz::H), acc, acc, t);
                    }
                }
                a.vshift(VShiftOp::Srl(Esz::H), out_half, acc, 8);
            }
            a.simd(VOp::PackU(Esz::H), outv, outs[0], outs[1]);
            a.vstore(outv, ptrs[dst_idx], 0, w);
        }
        for p in &ptrs {
            a.addi(*p, *p, width as i32);
        }
    });
    a.release_ireg(i);
    for p in ptrs {
        a.release_ireg(p);
    }
    for vr in consts
        .into_iter()
        .chain(raw)
        .chain(planes16)
        .chain([acc, t, outv])
        .chain(outs)
    {
        a.release_vreg(vr);
    }
}

fn emit_rgb_vmmx(a: &mut Asm, width: usize, args: &ColorArgs) {
    use rgbc::*;
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let coef = a.mreg();
    let raw: Vec<MReg> = (0..3).map(|_| a.mreg()).collect();
    let planes16: Vec<MReg> = (0..6).map(|_| a.mreg()).collect();
    let (acc, t, outm) = (a.mreg(), a.mreg(), a.mreg());
    let outs: Vec<MReg> = (0..2).map(|_| a.mreg()).collect();
    let i = a.ireg();
    let tile = 16 * width; // pixels per tile: 16 rows × width bytes
    a.setvl(16);
    // Coefficient rows stay resident across the whole kernel.
    a.mload(coef, args.coltab, width as i32, width as u8);
    a.li(i, 0);
    let w = width as u8;
    a.for_loop_step(i, args.npx, tile as i32, |a| {
        for p in 0..3 {
            a.mload(raw[p], ptrs[p], width as i32, w);
            a.mop(
                VOp::UnpackLo(Esz::B),
                planes16[2 * p],
                raw[p],
                MOperand::RowBcast(coef, ZERO),
            );
            a.mop(
                VOp::UnpackHi(Esz::B),
                planes16[2 * p + 1],
                raw[p],
                MOperand::RowBcast(coef, ZERO),
            );
        }
        let channels: [ChannelTerms<u8>; 3] = [
            ([(C77, 0), (C150, 2), (C29, 4)], 3, false),
            ([(C128, 4), (C43, 0), (C85, 2)], 4, true),
            ([(C128, 0), (C107, 2), (C21, 4)], 5, true),
        ];
        for (terms, dst_idx, biased) in channels {
            for half in 0..2 {
                let (coef0, plane0) = terms[0];
                let src0 = planes16[plane0 + half];
                a.mop(
                    VOp::Mullo(Esz::H),
                    acc,
                    src0,
                    MOperand::RowBcast(coef, coef0),
                );
                if biased {
                    a.mop(VOp::Add(Esz::H), acc, acc, MOperand::RowBcast(coef, BIAS));
                }
                for (coef_row, plane) in terms.iter().skip(1) {
                    let src = planes16[plane + half];
                    a.mop(
                        VOp::Mullo(Esz::H),
                        t,
                        src,
                        MOperand::RowBcast(coef, *coef_row),
                    );
                    if biased {
                        a.mop(VOp::Sub(Esz::H), acc, acc, MOperand::M(t));
                    } else {
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::M(t));
                    }
                }
                a.mshift(VShiftOp::Srl(Esz::H), outs[half], acc, 8);
            }
            a.mop(VOp::PackU(Esz::H), outm, outs[0], outs[1]);
            a.mstore(outm, ptrs[dst_idx], width as i32, w);
        }
        for p in &ptrs {
            a.addi(*p, *p, tile as i32);
        }
    });
    a.release_ireg(i);
    for p in ptrs {
        a.release_ireg(p);
    }
    for m in [coef]
        .into_iter()
        .chain(raw)
        .chain(planes16)
        .chain([acc, t, outm])
        .chain(outs)
    {
        a.release_mreg(m);
    }
}

fn emit_ycc_scalar(a: &mut Asm, args: &ColorArgs) {
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let (y, cb, cr, t, u, i) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let clamp_store = |a: &mut Asm, val: IReg, ptr: IReg| {
        a.if_(simdsim_isa::Cond::Lt, val, 0, |a| a.li(val, 0));
        a.if_(simdsim_isa::Cond::Gt, val, 255, |a| a.li(val, 255));
        a.sb(val, ptr, 0);
    };
    a.li(i, 0);
    a.for_loop(i, args.npx, |a| {
        a.lbu(y, ptrs[0], 0);
        a.lbu(cb, ptrs[1], 0);
        a.lbu(cr, ptrs[2], 0);
        a.subi(cb, cb, 128);
        a.subi(cr, cr, 128);
        // R = y + (180*cr)>>7
        a.muli(t, cr, 180);
        a.srai(t, t, 7);
        a.add(t, t, y);
        clamp_store(a, t, ptrs[3]);
        // G = y - (44*cb + 91*cr)>>7
        a.muli(t, cb, 44);
        a.muli(u, cr, 91);
        a.add(t, t, u);
        a.srai(t, t, 7);
        a.sub(t, y, t);
        clamp_store(a, t, ptrs[4]);
        // B = y + (227*cb)>>7
        a.muli(t, cb, 227);
        a.srai(t, t, 7);
        a.add(t, t, y);
        clamp_store(a, t, ptrs[5]);
        for p in &ptrs {
            a.addi(*p, *p, 1);
        }
    });
    for reg in ptrs.into_iter().chain([y, cb, cr, t, u, i]) {
        a.release_ireg(reg);
    }
}

fn emit_ycc_mmx(a: &mut Asm, width: usize, args: &ColorArgs) {
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let consts: Vec<VReg> = [180i64, 44, 91, 227, 128, 0]
        .iter()
        .map(|c| splat_const(a, *c))
        .collect();
    let (c180, c44, c91, c227, c128, zero) = (
        consts[0], consts[1], consts[2], consts[3], consts[4], consts[5],
    );
    let raw: Vec<VReg> = (0..3).map(|_| a.vreg()).collect();
    let planes16: Vec<VReg> = (0..6).map(|_| a.vreg()).collect();
    let (acc, t, outv) = (a.vreg(), a.vreg(), a.vreg());
    let outs: Vec<VReg> = (0..2).map(|_| a.vreg()).collect();
    let i = a.ireg();
    a.li(i, 0);
    let w = width as u8;
    a.for_loop_step(i, args.npx, width as i32, |a| {
        for p in 0..3 {
            a.vload(raw[p], ptrs[p], 0, w);
            a.simd(VOp::UnpackLo(Esz::B), planes16[2 * p], raw[p], zero);
            a.simd(VOp::UnpackHi(Esz::B), planes16[2 * p + 1], raw[p], zero);
        }
        // Centre the chroma planes.
        for p in 1..3 {
            for half in 0..2 {
                let reg = planes16[2 * p + half];
                a.simd(VOp::Sub(Esz::H), reg, reg, c128);
            }
        }
        for half in 0..2 {
            let (yv, crv) = (planes16[half], planes16[4 + half]);
            // R
            a.simd(VOp::Mullo(Esz::H), acc, crv, c180);
            a.vshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
            a.simd(VOp::Add(Esz::H), outs[half], yv, acc);
            if half == 1 {
                a.simd(VOp::PackU(Esz::H), outv, outs[0], outs[1]);
                a.vstore(outv, ptrs[3], 0, w);
            }
        }
        for half in 0..2 {
            let (yv, cbv, crv) = (planes16[half], planes16[2 + half], planes16[4 + half]);
            // G
            a.simd(VOp::Mullo(Esz::H), acc, cbv, c44);
            a.simd(VOp::Mullo(Esz::H), t, crv, c91);
            a.simd(VOp::Add(Esz::H), acc, acc, t);
            a.vshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
            a.simd(VOp::Sub(Esz::H), outs[half], yv, acc);
            if half == 1 {
                a.simd(VOp::PackU(Esz::H), outv, outs[0], outs[1]);
                a.vstore(outv, ptrs[4], 0, w);
            }
        }
        for half in 0..2 {
            let (yv, cbv) = (planes16[half], planes16[2 + half]);
            // B
            a.simd(VOp::Mullo(Esz::H), acc, cbv, c227);
            a.vshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
            a.simd(VOp::Add(Esz::H), outs[half], yv, acc);
            if half == 1 {
                a.simd(VOp::PackU(Esz::H), outv, outs[0], outs[1]);
                a.vstore(outv, ptrs[5], 0, w);
            }
        }
        for p in &ptrs {
            a.addi(*p, *p, width as i32);
        }
    });
    a.release_ireg(i);
    for p in ptrs {
        a.release_ireg(p);
    }
    for vr in consts
        .into_iter()
        .chain(raw)
        .chain(planes16)
        .chain([acc, t, outv])
        .chain(outs)
    {
        a.release_vreg(vr);
    }
}

fn emit_ycc_vmmx(a: &mut Asm, width: usize, args: &ColorArgs) {
    use yccc::*;
    let ptrs: Vec<IReg> = (0..6).map(|_| a.ireg()).collect();
    for (p, src) in ptrs.iter().zip(args.src.iter().chain(args.dst.iter())) {
        a.mv(*p, *src);
    }
    let coef = a.mreg();
    let raw: Vec<MReg> = (0..3).map(|_| a.mreg()).collect();
    let planes16: Vec<MReg> = (0..6).map(|_| a.mreg()).collect();
    let (acc, t) = (a.mreg(), a.mreg());
    let outs: Vec<MReg> = (0..2).map(|_| a.mreg()).collect();
    let i = a.ireg();
    let tile = 16 * width;
    a.setvl(16);
    a.mload(coef, args.coltab, width as i32, width as u8);
    a.li(i, 0);
    let w = width as u8;
    a.for_loop_step(i, args.npx, tile as i32, |a| {
        for p in 0..3 {
            a.mload(raw[p], ptrs[p], width as i32, w);
            a.mop(
                VOp::UnpackLo(Esz::B),
                planes16[2 * p],
                raw[p],
                MOperand::RowBcast(coef, ZERO),
            );
            a.mop(
                VOp::UnpackHi(Esz::B),
                planes16[2 * p + 1],
                raw[p],
                MOperand::RowBcast(coef, ZERO),
            );
        }
        for p in 1..3 {
            for half in 0..2 {
                let reg = planes16[2 * p + half];
                a.mop(VOp::Sub(Esz::H), reg, reg, MOperand::RowBcast(coef, C128));
            }
        }
        // Per channel: (terms, subtract?, dst plane)
        for (channel, dst_idx) in [(0usize, 3usize), (1, 4), (2, 5)] {
            for half in 0..2 {
                let (yv, cbv, crv) = (planes16[half], planes16[2 + half], planes16[4 + half]);
                match channel {
                    0 => {
                        a.mop(VOp::Mullo(Esz::H), acc, crv, MOperand::RowBcast(coef, C180));
                        a.mshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
                        a.mop(VOp::Add(Esz::H), outs[half], yv, MOperand::M(acc));
                    }
                    1 => {
                        a.mop(VOp::Mullo(Esz::H), acc, cbv, MOperand::RowBcast(coef, C44));
                        a.mop(VOp::Mullo(Esz::H), t, crv, MOperand::RowBcast(coef, C91));
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::M(t));
                        a.mshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
                        a.mop(VOp::Sub(Esz::H), outs[half], yv, MOperand::M(acc));
                    }
                    _ => {
                        a.mop(VOp::Mullo(Esz::H), acc, cbv, MOperand::RowBcast(coef, C227));
                        a.mshift(VShiftOp::Sra(Esz::H), acc, acc, 7);
                        a.mop(VOp::Add(Esz::H), outs[half], yv, MOperand::M(acc));
                    }
                }
            }
            a.mop(VOp::PackU(Esz::H), acc, outs[0], outs[1]);
            a.mstore(acc, ptrs[dst_idx], width as i32, w);
        }
        for p in &ptrs {
            a.addi(*p, *p, tile as i32);
        }
    });
    a.release_ireg(i);
    for p in ptrs {
        a.release_ireg(p);
    }
    for m in [coef]
        .into_iter()
        .chain(raw)
        .chain(planes16)
        .chain([acc, t])
        .chain(outs)
    {
        a.release_mreg(m);
    }
}

// ======================================================================
// Standalone workloads
// ======================================================================

const NPX: usize = 64 * 64;

fn color_workload(v: Variant, forward: bool) -> BuiltKernel {
    let mut rng = crate::data::Rng64::new(if forward { 71 } else { 73 });
    let srcs: [Vec<u8>; 3] = [rng.bytes(NPX), rng.bytes(NPX), rng.bytes(NPX)];

    let mut asm = Asm::new();
    let args = ColorArgs {
        src: [asm.arg(0), asm.arg(1), asm.arg(2)],
        dst: [asm.arg(3), asm.arg(4), asm.arg(5)],
        npx: asm.arg(6),
        coltab: asm.arg(7),
    };
    if forward {
        emit_rgb(&mut asm, v, &args);
    } else {
        emit_ycc(&mut asm, v, &args);
    }
    asm.halt();
    let program = asm.finish();

    let mut layout = Layout::new(1 << 20);
    let src_addrs: Vec<u64> = (0..3).map(|_| layout.alloc_array(NPX as u64, 1)).collect();
    let dst_addrs: Vec<u64> = (0..3).map(|_| layout.alloc_array(NPX as u64, 1)).collect();
    let table = if forward {
        rgb_coltab(v.width())
    } else {
        ycc_coltab(v.width())
    };
    let tab_addr = layout.alloc_array(table.len() as u64, 1);

    let mut machine = Machine::new(v.machine_ext(), 1 << 20);
    for (addr, data) in src_addrs.iter().zip(srcs.iter()) {
        machine.write_bytes(*addr, data).unwrap();
    }
    machine.write_bytes(tab_addr, &table).unwrap();
    for (k, addr) in src_addrs.iter().enumerate() {
        machine.set_ireg(k, *addr as i64);
    }
    for (k, addr) in dst_addrs.iter().enumerate() {
        machine.set_ireg(3 + k, *addr as i64);
    }
    machine.set_ireg(6, NPX as i64);
    machine.set_ireg(7, tab_addr as i64);

    let mut expected: [Vec<u8>; 3] = [vec![0; NPX], vec![0; NPX], vec![0; NPX]];
    for px in 0..NPX {
        let (o0, o1, o2) = if forward {
            golden_rgb_px(srcs[0][px], srcs[1][px], srcs[2][px])
        } else {
            golden_ycc_px(srcs[0][px], srcs[1][px], srcs[2][px])
        };
        expected[0][px] = o0;
        expected[1][px] = o1;
        expected[2][px] = o2;
    }

    BuiltKernel::new(program, machine, move |m: &Machine| {
        for (plane, (addr, exp)) in dst_addrs.iter().zip(expected.iter()).enumerate() {
            let got = m.read_bytes(*addr, NPX).map_err(|e| e.to_string())?;
            if let Some(px) = got.iter().zip(exp.iter()).position(|(a, b)| a != b) {
                return Err(format!(
                    "colour mismatch plane {plane} pixel {px}: got {} want {}",
                    got[px], exp[px]
                ));
            }
        }
        Ok(())
    })
}

/// The `rgb` kernel: RGB → YCC colour conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rgb;

impl Kernel for Rgb {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "rgb",
            app: "jpegenc",
            description: "RGB to YCC color conversion",
            data_size: "RGB triads",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        color_workload(v, true)
    }
}

/// The `ycc` kernel: YCC → RGB colour conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ycc;

impl Kernel for Ycc {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "ycc",
            app: "jpegdec",
            description: "YCC to RGB color conversion",
            data_size: "(Y,Cb,Cr) x Image width 8-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        color_workload(v, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_roundtrip_is_close() {
        // Forward then inverse should land near the original colour.
        for (r, g, b) in [
            (10u8, 200u8, 30u8),
            (255, 255, 255),
            (0, 0, 0),
            (128, 64, 200),
        ] {
            let (y, cb, cr) = golden_rgb_px(r, g, b);
            let (r2, g2, b2) = golden_ycc_px(y, cb, cr);
            assert!(r.abs_diff(r2) < 12, "{r} vs {r2}");
            assert!(g.abs_diff(g2) < 12, "{g} vs {g2}");
            assert!(b.abs_diff(b2) < 12, "{b} vs {b2}");
        }
    }

    #[test]
    fn all_variants_match_golden_rgb() {
        for v in Variant::ALL {
            Rgb.build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_ycc() {
        for v in Variant::ALL {
            Ycc.build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn vmmx_reduces_instruction_count() {
        let mmx = Rgb.build(Variant::Mmx64).run_checked().unwrap();
        let vmmx = Rgb.build(Variant::Vmmx128).run_checked().unwrap();
        assert!(vmmx.dyn_instrs * 4 < mmx.dyn_instrs);
    }
}
