//! The 8×8 forward and inverse DCT kernels (`fdct`, `idct`).
//!
//! Both transforms are defined as exact fixed-point matrix products so
//! that every ISA variant computes bit-identical results:
//!
//! ```text
//! pass(M)   = sat16((COEF · M + 1024) >> 11)        (COEF scaled by 2048)
//! fdct(X)   = pass( transpose( pass( transpose(X) ) ) )   with COEF = C
//! idct(Y)   = same with COEF = Cᵀ
//! ```
//!
//! The variant implementations reproduce the costs the paper discusses:
//!
//! * **scalar** — 1024 multiply-accumulates with per-element loads;
//! * **MMX64** — in-register 4×4-block transposes through scratch memory
//!   (too few registers to hold the block, the pass results spill);
//! * **MMX128** — full in-register transpose via `unpack` networks,
//!   32-bit precision recovered with `mullo`/`mulhi` pairs;
//! * **VMMX** — the whole block lives in matrix registers, the eight
//!   coefficient-column matrices stay resident across blocks
//!   ("matrix registers used as a cache"), and products accumulate with
//!   full-vector-length operations.

use crate::{BuiltKernel, Kernel, KernelSpec, Variant};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Esz, IReg, MOperand, MReg, VLoc, VOp, VReg, VShiftOp};

/// Fixed-point scale of the coefficient matrices (`2^11`).
pub const COEF_SHIFT: u32 = 11;
const ROUND: i32 = 1 << (COEF_SHIFT - 1);

/// The forward-DCT coefficient matrix `C` (row-major, scaled by 2048):
/// `C[k][j] = round(2048 · s_k · cos((2j+1)kπ/16))` with
/// `s_0 = √(1/8)`, `s_k = 1/2`.
#[must_use]
pub fn fdct_matrix() -> [i16; 64] {
    let mut c = [0i16; 64];
    for k in 0..8 {
        let sk = if k == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
        for j in 0..8 {
            let v = 2048.0
                * sk
                * ((2.0 * j as f64 + 1.0) * k as f64 * std::f64::consts::PI / 16.0).cos();
            c[k * 8 + j] = v.round() as i16;
        }
    }
    c
}

/// The inverse-DCT coefficient matrix `Cᵀ`.
#[must_use]
pub fn idct_matrix() -> [i16; 64] {
    let c = fdct_matrix();
    let mut d = [0i16; 64];
    for k in 0..8 {
        for j in 0..8 {
            d[k * 8 + j] = c[j * 8 + k];
        }
    }
    d
}

/// Transposes a row-major 8×8 `i16` matrix.
#[must_use]
pub fn transpose64(m: &[i16]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for r in 0..8 {
        for c in 0..8 {
            out[r * 8 + c] = m[c * 8 + r];
        }
    }
    out
}

/// Golden single pass: `out[k][c] = sat16((Σ_j coef[k][j]·inp[j][c] + 1024) >> 11)`.
#[must_use]
pub fn golden_pass(inp: &[i16], coef: &[i16]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for k in 0..8 {
        for c in 0..8 {
            let mut s: i32 = ROUND;
            for j in 0..8 {
                s = s.wrapping_add(i32::from(coef[k * 8 + j]) * i32::from(inp[j * 8 + c]));
            }
            out[k * 8 + c] =
                (s >> COEF_SHIFT).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
        }
    }
    out
}

/// Golden 2-D transform (both DCT directions, depending on `coef`).
#[must_use]
pub fn golden_transform(x: &[i16], coef: &[i16]) -> [i16; 64] {
    let t1 = golden_pass(&transpose64(x), coef);
    golden_pass(&transpose64(&t1), coef)
}

/// Builds the coefficient-column table for the matrix variants: for each
/// source row `j`, an 8-row block whose row `k` is the 16-bit splat of
/// `coef[k][j]`, `width` bytes per row.
#[must_use]
pub fn dct_coltab(coef: &[i16], width: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * 8 * width);
    for j in 0..8 {
        for k in 0..8 {
            let v = coef[k * 8 + j];
            for _ in 0..width / 2 {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Argument registers of one 8×8 transform invocation.
#[derive(Debug, Clone, Copy)]
pub struct DctArgs {
    /// Input block pointer (row-major, 8 rows × 16 bytes).
    pub inp: IReg,
    /// Output block pointer.
    pub outp: IReg,
    /// Scratch area (at least 384 bytes; scalar and MMX64 variants spill).
    pub scratch: IReg,
    /// Coefficient-column table (matrix variants; see [`dct_coltab`]).
    pub coltab: IReg,
}

/// Emits one 8×8 transform in the requested variant.
///
/// `coef` selects the direction ([`fdct_matrix`] or [`idct_matrix`]); the
/// matrix variants expect the same matrix's [`dct_coltab`] in memory.
pub fn emit_dct(a: &mut Asm, v: Variant, coef: &[i16; 64], args: &DctArgs) {
    match v {
        Variant::Scalar => emit_scalar(a, coef, args),
        Variant::Mmx64 => a.vector_region(|a| emit_mmx64(a, coef, args)),
        Variant::Mmx128 => a.vector_region(|a| emit_mmx128(a, coef, args)),
        Variant::Vmmx64 => a.vector_region(|a| emit_vmmx64_body(a, args)),
        Variant::Vmmx128 => a.vector_region(|a| {
            // Without a caller-hoisted coefficient load the columns are
            // (re)loaded here; block loops should hoist via
            // `emit_vmmx128_coltab_load` instead.
            let cols = emit_vmmx128_coltab_load(a, args.coltab);
            emit_vmmx128_body(a, &cols, args);
            for m in cols {
                a.release_mreg(m);
            }
        }),
    }
}

/// Emits the hoisted per-kernel setup of the matrix variants: loads the
/// coefficient-column matrices into registers `m8..m15` (VMMX128) or
/// nothing (VMMX64 streams them from the table).  Returns the registers.
pub fn emit_vmmx128_coltab_load(a: &mut Asm, coltab: IReg) -> Vec<MReg> {
    let cols: Vec<MReg> = (0..8).map(|_| a.mreg()).collect();
    a.setvl(8);
    let p = a.ireg();
    a.mv(p, coltab);
    for (j, m) in cols.iter().enumerate() {
        a.mload(*m, p, 16, 16);
        if j != 7 {
            a.addi(p, p, 128);
        }
    }
    a.release_ireg(p);
    cols
}

// ----------------------------------------------------------------------
// Scalar
// ----------------------------------------------------------------------

fn emit_scalar(a: &mut Asm, coef: &[i16; 64], args: &DctArgs) {
    // pass1: scratch[k][c] = Σ_j coef[k][j] · inp[c][j]  (reads inp transposed)
    // pass2: outp[k][c]    = Σ_j coef[k][j] · scratch[c][j]
    for pass in 0..2 {
        let (src, dst) = if pass == 0 {
            (args.inp, args.scratch)
        } else {
            (args.scratch, args.outp)
        };
        for k in 0..8usize {
            let (c, s, t, rowp, dstp) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
            a.addi(dstp, dst, (k * 16) as i32);
            a.li(c, 0);
            a.mv(rowp, src);
            a.for_loop(c, 8, |a| {
                a.li(s, ROUND as i64);
                for j in 0..8usize {
                    let cf = i64::from(coef[k * 8 + j]);
                    if cf != 0 {
                        a.lh(t, rowp, (j * 2) as i32);
                        a.muli(t, t, cf as i32);
                        a.add(s, s, t);
                    }
                }
                a.srai(s, s, COEF_SHIFT as i32);
                a.if_(simdsim_isa::Cond::Gt, s, 32767, |a| a.li(s, 32767));
                a.if_(simdsim_isa::Cond::Lt, s, -32768, |a| a.li(s, -32768));
                a.sh(s, dstp, 0);
                a.addi(dstp, dstp, 2);
                a.addi(rowp, rowp, 16);
            });
            for r in [c, s, t, rowp, dstp] {
                a.release_ireg(r);
            }
        }
    }
}

// ----------------------------------------------------------------------
// MMX common pieces
// ----------------------------------------------------------------------

/// 4×4 16-bit in-register transpose (two unpack stages) for 64-bit words.
fn transpose4x4_mmx64(a: &mut Asm, src: [VReg; 4], dst: [VReg; 4], t: [VReg; 2]) {
    // stage 1: interleave 16-bit
    a.simd(VOp::UnpackLo(Esz::H), t[0], src[0], src[1]);
    a.simd(VOp::UnpackHi(Esz::H), t[1], src[0], src[1]);
    a.simd(VOp::UnpackLo(Esz::H), dst[2], src[2], src[3]);
    a.simd(VOp::UnpackHi(Esz::H), dst[3], src[2], src[3]);
    // stage 2: interleave 32-bit
    a.simd(VOp::UnpackLo(Esz::W), dst[0], t[0], dst[2]);
    a.simd(VOp::UnpackHi(Esz::W), dst[1], t[0], dst[2]);
    a.simd(VOp::UnpackLo(Esz::W), dst[2], t[1], dst[3]);
    a.simd(VOp::UnpackHi(Esz::W), dst[3], t[1], dst[3]);
}

/// Multiply 16-bit lanes of `src` by splat register `cf`, widening to
/// 32-bit with the `pmullw`/`pmulhw` + `punpck` idiom, and add into
/// `acc_lo`/`acc_hi`.
#[allow(clippy::too_many_arguments)] // emitter helper: the args are the register operands
fn mac32_seq(
    a: &mut Asm,
    acc_lo: VReg,
    acc_hi: VReg,
    src: VReg,
    cf: VReg,
    lo: VReg,
    hi: VReg,
    prod: VReg,
) {
    a.simd(VOp::Mullo(Esz::H), lo, src, cf);
    a.simd(VOp::Mulhi(Esz::H), hi, src, cf);
    a.simd(VOp::UnpackLo(Esz::H), prod, lo, hi);
    a.simd(VOp::Add(Esz::W), acc_lo, acc_lo, prod);
    a.simd(VOp::UnpackHi(Esz::H), prod, lo, hi);
    a.simd(VOp::Add(Esz::W), acc_hi, acc_hi, prod);
}

/// MMX64 transpose of an 8×8 `i16` matrix, through memory: four 4×4
/// register-resident sub-transposes.  Manages its own registers.
fn mmx64_transpose_to(a: &mut Asm, src: IReg, dst: IReg) {
    let rows: [VReg; 4] = [a.vreg(), a.vreg(), a.vreg(), a.vreg()];
    let outr: [VReg; 4] = [a.vreg(), a.vreg(), a.vreg(), a.vreg()];
    let tt: [VReg; 2] = [a.vreg(), a.vreg()];
    for br in 0..2 {
        for bc in 0..2 {
            for (i, row) in rows.iter().enumerate() {
                a.vload(*row, src, ((br * 4 + i) * 16 + bc * 8) as i32, 8);
            }
            transpose4x4_mmx64(a, rows, outr, tt);
            for (i, out) in outr.iter().enumerate() {
                a.vstore(*out, dst, ((bc * 4 + i) * 16 + br * 8) as i32, 8);
            }
        }
    }
    for vr in rows.into_iter().chain(outr).chain(tt) {
        a.release_vreg(vr);
    }
}

/// MMX64 pass: `dst[k][·] = sat16((Σ_j coef[k][j]·src[j][·] + R) >> 11)`.
/// Keeps the 16 half-rows of the source resident; results spill to `dst`
/// (the 64-bit file is too small to hold input and output).
fn mmx64_pass(a: &mut Asm, coef: &[i16; 64], src: IReg, dst: IReg) {
    let xt: Vec<VReg> = (0..16).map(|_| a.vreg()).collect();
    for j in 0..8 {
        a.vload(xt[2 * j], src, (j * 16) as i32, 8);
        a.vload(xt[2 * j + 1], src, (j * 16 + 8) as i32, 8);
    }
    let round = a.vreg();
    let t = a.ireg();
    a.li(t, i64::from(ROUND));
    a.vsplat(round, t, Esz::W);
    let accs: Vec<VReg> = (0..4).map(|_| a.vreg()).collect();
    let (lo, hi, prod, cf) = (a.vreg(), a.vreg(), a.vreg(), a.vreg());
    for k in 0..8usize {
        for acc in &accs {
            a.vmov(*acc, round);
        }
        for j in 0..8usize {
            let c = coef[k * 8 + j];
            if c == 0 {
                continue;
            }
            a.li(t, i64::from(c));
            a.vsplat(cf, t, Esz::H);
            mac32_seq(a, accs[0], accs[1], xt[2 * j], cf, lo, hi, prod);
            mac32_seq(a, accs[2], accs[3], xt[2 * j + 1], cf, lo, hi, prod);
        }
        for acc in &accs {
            a.vshift(VShiftOp::Sra(Esz::W), *acc, *acc, COEF_SHIFT as u8);
        }
        a.simd(VOp::PackS(Esz::W), lo, accs[0], accs[1]);
        a.simd(VOp::PackS(Esz::W), hi, accs[2], accs[3]);
        a.vstore(lo, dst, (k * 16) as i32, 8);
        a.vstore(hi, dst, (k * 16 + 8) as i32, 8);
    }
    a.release_ireg(t);
    for vr in xt.into_iter().chain(accs).chain([lo, hi, prod, cf, round]) {
        a.release_vreg(vr);
    }
}

fn emit_mmx64(a: &mut Asm, coef: &[i16; 64], args: &DctArgs) {
    // scratch layout: [0..128) = transposed matrix, [128..256) = pass-1 out.
    let (s0, s1) = (a.ireg(), a.ireg());
    a.mv(s0, args.scratch);
    a.addi(s1, args.scratch, 128);
    mmx64_transpose_to(a, args.inp, s0);
    mmx64_pass(a, coef, s0, s1);
    mmx64_transpose_to(a, s1, s0);
    mmx64_pass(a, coef, s0, args.outp);
    a.release_ireg(s0);
    a.release_ireg(s1);
}

fn emit_mmx128(a: &mut Asm, coef: &[i16; 64], args: &DctArgs) {
    // Whole block fits in registers: 8 row regs + 8 result regs.
    let x: Vec<VReg> = (0..8).map(|_| a.vreg()).collect();
    let y: Vec<VReg> = (0..8).map(|_| a.vreg()).collect();
    let (acc_lo, acc_hi, lo, hi, prod, cf, round) = (
        a.vreg(),
        a.vreg(),
        a.vreg(),
        a.vreg(),
        a.vreg(),
        a.vreg(),
        a.vreg(),
    );
    let t = a.ireg();
    a.li(t, i64::from(ROUND));
    a.vsplat(round, t, Esz::W);

    for (i, xr) in x.iter().enumerate() {
        a.vload(*xr, args.inp, (i * 16) as i32, 16);
    }

    // In-register 8×8 16-bit transpose: the classic three-stage punpck
    // network (16-bit, 32-bit, then 64-bit interleaves).  The transposed
    // rows end up in `dst`; `src` is clobbered.
    let transpose8 = |a: &mut Asm, src: &[VReg], dst: &[VReg], s2: &[VReg; 2]| {
        let (t0, t1) = (s2[0], s2[1]);
        // Stage 1 (16-bit): dst[i] = interleave of row pairs.
        for i in 0..4 {
            a.simd(
                VOp::UnpackLo(Esz::H),
                dst[2 * i],
                src[2 * i],
                src[2 * i + 1],
            );
            a.simd(
                VOp::UnpackHi(Esz::H),
                dst[2 * i + 1],
                src[2 * i],
                src[2 * i + 1],
            );
        }
        // Stage 2 (32-bit).
        for (ai, bi) in [(0usize, 2usize), (1, 3), (4, 6), (5, 7)] {
            a.simd(VOp::UnpackLo(Esz::W), t0, dst[ai], dst[bi]);
            a.simd(VOp::UnpackHi(Esz::W), t1, dst[ai], dst[bi]);
            a.vmov(dst[ai], t0);
            a.vmov(dst[bi], t1);
        }
        // Stage 3 (64-bit): result rows 0..8 = lo/hi of (0,4),(1,5),(2,6),(3,7)
        // after the stage-2 shuffle the operand order is (0,4),(2,6),(1,5),(3,7).
        let pairs = [(0usize, 4usize), (2, 6), (1, 5), (3, 7)];
        // Compute into t0/t1 then place via moves; row destinations:
        // pair p yields transposed rows 2p and 2p+1... but placing them
        // back into dst would clobber later operands, so stash in src regs
        // (their values are dead after stage 1).
        for (p, (ai, bi)) in pairs.iter().enumerate() {
            a.simd(VOp::UnpackLo(Esz::D), src[2 * p], dst[*ai], dst[*bi]);
            a.simd(VOp::UnpackHi(Esz::D), src[2 * p + 1], dst[*ai], dst[*bi]);
        }
        // Transposed matrix now lives in `src` in row order? Verify below
        // in tests; copy back to dst in order.
        for i in 0..8 {
            a.vmov(dst[i], src[i]);
        }
    };

    let scratch2: [VReg; 2] = [lo, hi];
    transpose8(a, &x, &y, &scratch2);
    // y = Xᵀ. Pass 1: results into x regs.
    let pass = |a: &mut Asm, coef: &[i16; 64], src: &[VReg], dst: &[VReg]| {
        for k in 0..8usize {
            a.vmov(acc_lo, round);
            a.vmov(acc_hi, round);
            for j in 0..8usize {
                let c = coef[k * 8 + j];
                if c == 0 {
                    continue;
                }
                a.li(t, i64::from(c));
                a.vsplat(cf, t, Esz::H);
                mac32_seq(a, acc_lo, acc_hi, src[j], cf, lo, hi, prod);
            }
            a.vshift(VShiftOp::Sra(Esz::W), acc_lo, acc_lo, COEF_SHIFT as u8);
            a.vshift(VShiftOp::Sra(Esz::W), acc_hi, acc_hi, COEF_SHIFT as u8);
            a.simd(VOp::PackS(Esz::W), dst[k], acc_lo, acc_hi);
        }
    };
    pass(a, coef, &y, &x);
    transpose8(a, &x, &y, &scratch2);
    pass(a, coef, &y, &x);
    for (i, xr) in x.iter().enumerate() {
        a.vstore(*xr, args.outp, (i * 16) as i32, 16);
    }
    a.release_ireg(t);
    for vr in x
        .into_iter()
        .chain(y)
        .chain([acc_lo, acc_hi, lo, hi, prod, cf, round])
    {
        a.release_vreg(vr);
    }
}

// ----------------------------------------------------------------------
// VMMX
// ----------------------------------------------------------------------

/// Emits the VMMX128 transform body given resident coefficient matrices.
pub fn emit_vmmx128_body(a: &mut Asm, cols: &[MReg], args: &DctArgs) {
    let (x, y) = (a.mreg(), a.mreg());
    let (t32a, t32b, plo, phi, tmp) = (a.mreg(), a.mreg(), a.mreg(), a.mreg(), a.mreg());
    let r = a.ireg();
    a.setvl(8);
    a.mload(x, args.inp, 16, 16);
    a.mtrans(x, x, Esz::H);
    let pass = |a: &mut Asm, src: MReg, dst: MReg, r: IReg| {
        a.li(r, i64::from(ROUND));
        a.msplat(t32a, r, Esz::W);
        a.msplat(t32b, r, Esz::W);
        for (j, col) in cols.iter().enumerate() {
            a.mop(
                VOp::Mullo(Esz::H),
                plo,
                *col,
                MOperand::RowBcast(src, j as u8),
            );
            a.mop(
                VOp::Mulhi(Esz::H),
                phi,
                *col,
                MOperand::RowBcast(src, j as u8),
            );
            a.mop(VOp::UnpackLo(Esz::H), tmp, plo, MOperand::M(phi));
            a.mop(VOp::Add(Esz::W), t32a, t32a, MOperand::M(tmp));
            a.mop(VOp::UnpackHi(Esz::H), tmp, plo, MOperand::M(phi));
            a.mop(VOp::Add(Esz::W), t32b, t32b, MOperand::M(tmp));
        }
        a.mshift(VShiftOp::Sra(Esz::W), t32a, t32a, COEF_SHIFT as u8);
        a.mshift(VShiftOp::Sra(Esz::W), t32b, t32b, COEF_SHIFT as u8);
        a.mop(VOp::PackS(Esz::W), dst, t32a, t32b);
    };
    pass(a, x, y, r);
    a.mtrans(y, y, Esz::H);
    pass(a, y, x, r);
    a.mstore(x, args.outp, 16, 16);
    a.release_ireg(r);
    for m in [x, y, t32a, t32b, plo, phi, tmp] {
        a.release_mreg(m);
    }
}

/// Emits the VMMX64 transform body (streams coefficient columns from the
/// table — the 64-bit matrix file cannot keep them resident).
pub fn emit_vmmx64_body(a: &mut Asm, args: &DctArgs) {
    let (x0, x1, y0, y1) = (a.mreg(), a.mreg(), a.mreg(), a.mreg());
    let (col, plo, phi, t32a, t32b, tmp, ta) = (
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
    );
    let (r, cp) = (a.ireg(), a.ireg());
    a.setvl(8);
    // Load the block as two column halves (8 rows × 8 bytes each).
    a.mload(x0, args.inp, 16, 8);
    a.addi(r, args.inp, 8);
    a.mload(x1, r, 16, 8);

    // 8×8 transpose via four VL=4 4×4 sub-transposes with row moves.
    let transpose_pair = |a: &mut Asm, x0: MReg, x1: MReg, y0: MReg, y1: MReg, ta: MReg| {
        a.setvl(4);
        // block A = x0 rows 0-3 → y0 rows 0-3
        a.mtrans(y0, x0, Esz::H);
        // block B = x1 rows 0-3 → y0 rows 4-7
        a.mtrans(ta, x1, Esz::H);
        for i in 0..4u8 {
            a.vmov(VLoc::Row(y0, 4 + i), VLoc::Row(ta, i));
        }
        // block C = x0 rows 4-7 → y1 rows 0-3
        for i in 0..4u8 {
            a.vmov(VLoc::Row(ta, i), VLoc::Row(x0, 4 + i));
        }
        a.mtrans(y1, ta, Esz::H);
        // block D = x1 rows 4-7 → y1 rows 4-7
        for i in 0..4u8 {
            a.vmov(VLoc::Row(ta, i), VLoc::Row(x1, 4 + i));
        }
        a.mtrans(ta, ta, Esz::H);
        for i in 0..4u8 {
            a.vmov(VLoc::Row(y1, 4 + i), VLoc::Row(ta, i));
        }
        a.setvl(8);
    };

    transpose_pair(a, x0, x1, y0, y1, ta);
    // Pass over each column half; coefficient columns streamed per j.
    let pass_half =
        |a: &mut Asm, src_lo: MReg, src_hi: MReg, half: usize, dst: MReg, r: IReg, cp: IReg| {
            // The broadcast operand must cover this half's 4 columns: row j of
            // the transposed matrix has columns 0-3 in src_lo and 4-7 in src_hi.
            a.li(r, i64::from(ROUND));
            a.msplat(t32a, r, Esz::W);
            a.msplat(t32b, r, Esz::W);
            a.mv(cp, args.coltab);
            for j in 0..8u8 {
                // row j of the full transposed matrix: columns 0-3 in src_lo
                // row j, columns 4-7 in src_hi row j. This half's operand:
                let bsrc = if half == 0 { src_lo } else { src_hi };
                a.mload(col, cp, 8, 8);
                a.mop(VOp::Mullo(Esz::H), plo, col, MOperand::RowBcast(bsrc, j));
                a.mop(VOp::Mulhi(Esz::H), phi, col, MOperand::RowBcast(bsrc, j));
                a.mop(VOp::UnpackLo(Esz::H), tmp, plo, MOperand::M(phi));
                a.mop(VOp::Add(Esz::W), t32a, t32a, MOperand::M(tmp));
                a.mop(VOp::UnpackHi(Esz::H), tmp, plo, MOperand::M(phi));
                a.mop(VOp::Add(Esz::W), t32b, t32b, MOperand::M(tmp));
                a.addi(cp, cp, 64);
            }
            a.mshift(VShiftOp::Sra(Esz::W), t32a, t32a, COEF_SHIFT as u8);
            a.mshift(VShiftOp::Sra(Esz::W), t32b, t32b, COEF_SHIFT as u8);
            a.mop(VOp::PackS(Esz::W), dst, t32a, t32b);
        };
    // pass 1: input = (y0, y1) = Xᵀ halves; result halves into x0, x1.
    pass_half(a, y0, y1, 0, x0, r, cp);
    pass_half(a, y0, y1, 1, x1, r, cp);
    transpose_pair(a, x0, x1, y0, y1, ta);
    pass_half(a, y0, y1, 0, x0, r, cp);
    pass_half(a, y0, y1, 1, x1, r, cp);
    a.mstore(x0, args.outp, 16, 8);
    a.addi(r, args.outp, 8);
    a.mstore(x1, r, 16, 8);
    a.release_ireg(r);
    a.release_ireg(cp);
    for m in [x0, x1, y0, y1, col, plo, phi, t32a, t32b, tmp, ta] {
        a.release_mreg(m);
    }
}

// ----------------------------------------------------------------------
// Standalone kernels
// ----------------------------------------------------------------------

const NBLOCKS: usize = 48;

fn dct_workload(v: Variant, forward: bool) -> BuiltKernel {
    let coef = if forward {
        fdct_matrix()
    } else {
        idct_matrix()
    };
    let mut rng = crate::data::Rng64::new(if forward { 101 } else { 103 });
    let lo = if forward { -256 } else { -900 };
    let hi = if forward { 255 } else { 900 };
    let input: Vec<i16> = rng.i16s_in(NBLOCKS * 64, lo, hi);

    let mut asm = Asm::new();
    let (inp, outp, scratch, coltab, nblk) =
        (asm.arg(0), asm.arg(1), asm.arg(2), asm.arg(3), asm.arg(4));
    let args = DctArgs {
        inp,
        outp,
        scratch,
        coltab,
    };
    let i = asm.ireg();
    // Hoisted coefficient residency for VMMX128.
    let cols = if v == Variant::Vmmx128 {
        Some(asm.vector_region(|a| emit_vmmx128_coltab_load(a, coltab)))
    } else {
        None
    };
    asm.li(i, 0);
    asm.for_loop(i, nblk, |a| {
        match v {
            Variant::Vmmx128 => {
                a.vector_region(|a| emit_vmmx128_body(a, cols.as_ref().unwrap(), &args));
            }
            Variant::Vmmx64 => a.vector_region(|a| emit_vmmx64_body(a, &args)),
            _ => emit_dct(a, v, &coef, &args),
        }
        a.addi(inp, inp, 128);
        a.addi(outp, outp, 128);
    });
    asm.halt();
    let program = asm.finish();

    let table = dct_coltab(&coef, v.width());
    let mut layout = Layout::new(1 << 20);
    let in_addr = layout.alloc_array((NBLOCKS * 128) as u64, 2);
    let out_addr = layout.alloc_array((NBLOCKS * 128) as u64, 2);
    let scratch_addr = layout.alloc(512, 16);
    let tab_addr = layout.alloc_array(table.len() as u64, 1);

    let mut machine = Machine::new(v.machine_ext(), 1 << 20);
    machine.write_i16s(in_addr, &input).unwrap();
    machine.write_bytes(tab_addr, &table).unwrap();
    machine.set_ireg(0, in_addr as i64);
    machine.set_ireg(1, out_addr as i64);
    machine.set_ireg(2, scratch_addr as i64);
    machine.set_ireg(3, tab_addr as i64);
    machine.set_ireg(4, NBLOCKS as i64);

    let mut expected = vec![0i16; NBLOCKS * 64];
    for b in 0..NBLOCKS {
        let out = golden_transform(&input[b * 64..b * 64 + 64], &coef);
        expected[b * 64..b * 64 + 64].copy_from_slice(&out);
    }

    BuiltKernel::new(program, machine, move |m: &Machine| {
        let got = m
            .read_i16s(out_addr, NBLOCKS * 64)
            .map_err(|e| e.to_string())?;
        if let Some(i) = got.iter().zip(&expected).position(|(a, b)| a != b) {
            return Err(format!(
                "dct mismatch block {} elem {}: got {} want {}",
                i / 64,
                i % 64,
                got[i],
                expected[i]
            ));
        }
        Ok(())
    })
}

/// The `fdct` kernel: 8×8 forward DCT.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fdct;

impl Kernel for Fdct {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "fdct",
            app: "jpegenc",
            description: "Forward Discrete Cosine Transform",
            data_size: "8x8 16-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        dct_workload(v, true)
    }
}

/// The `idct` kernel: 8×8 inverse DCT.
#[derive(Debug, Clone, Copy, Default)]
pub struct Idct;

impl Kernel for Idct {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "idct",
            app: "mpeg2dec",
            description: "Inverse Discrete Cosine Transform",
            data_size: "8x8 16-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        dct_workload(v, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_matrices_are_transposes() {
        let c = fdct_matrix();
        let d = idct_matrix();
        for k in 0..8 {
            for j in 0..8 {
                assert_eq!(c[k * 8 + j], d[j * 8 + k]);
            }
        }
        // DC row of C is flat.
        assert!(c[0..8].iter().all(|v| *v == c[0]));
    }

    #[test]
    fn golden_roundtrip_recovers_input() {
        let mut rng = crate::data::Rng64::new(9);
        let x: Vec<i16> = rng.i16s_in(64, -200, 200);
        let y = golden_transform(&x, &fdct_matrix());
        let x2 = golden_transform(&y, &idct_matrix());
        for (a, b) in x.iter().zip(x2.iter()) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 2, "{a} vs {b}");
        }
    }

    #[test]
    fn golden_dc_only() {
        // A constant block transforms to energy in the DC coefficient only.
        let x = [100i16; 64];
        let y = golden_transform(&x, &fdct_matrix());
        assert!(y[0] > 700, "DC = {}", y[0]);
        for v in &y[1..] {
            assert!(v.abs() <= 1, "AC leak {v}");
        }
    }

    #[test]
    fn all_variants_match_golden_fdct() {
        for v in Variant::ALL {
            Fdct.build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_idct() {
        for v in Variant::ALL {
            Idct.build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }
}
