//! GSM 06.10 long-term-prediction kernels: `ltppar` (lag search by
//! cross-correlation, gsmenc) and `ltpfilt` (long-term filtering, gsmdec).
//!
//! These kernels work on short 16-bit sample segments (40 and 120
//! samples), which limits the parallelism that register scaling can
//! exploit — the paper uses them to show where VMMX128 stops paying off.

use crate::{BuiltKernel, Kernel, KernelSpec, Variant};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{AccOp, Cond, Esz, IReg, VOp};

/// Samples per LTP sub-frame.
pub const SUBFRAME: usize = 40;
/// Minimum searched lag.
pub const LAG_MIN: usize = 40;
/// Maximum searched lag.
pub const LAG_MAX: usize = 120;
/// Samples processed by one `ltpfilt` call.
pub const FILT_LEN: usize = 120;

// ======================================================================
// Golden references
// ======================================================================

/// Golden LTP parameter search: returns `(best_lag, max_correlation)`.
///
/// `d` holds the 40 current samples, `hist` the preceding
/// [`LAG_MAX`] reconstructed samples (`hist[LAG_MAX - 1]` is the most
/// recent, so `d[k - lag] == hist[LAG_MAX + k - lag]`).
#[must_use]
pub fn golden_ltppar(d: &[i16], hist: &[i16]) -> (i64, i64) {
    assert!(d.len() >= SUBFRAME && hist.len() >= LAG_MAX);
    let mut best = (LAG_MIN as i64, i64::MIN);
    for lag in LAG_MIN..=LAG_MAX {
        let mut s = 0i64;
        for k in 0..SUBFRAME {
            s += i64::from(d[k]) * i64::from(hist[LAG_MAX + k - lag]);
        }
        if s > best.1 {
            best = (lag as i64, s);
        }
    }
    best
}

/// Golden long-term filter: `out[k] = sat16(x[k] + ((gain * h[k]) >> 16))`
/// over `out.len()` samples.
pub fn golden_ltpfilt(x: &[i16], h: &[i16], gain: i16, out: &mut [i16]) {
    for k in 0..out.len() {
        let contrib = (i32::from(gain) * i32::from(h[k])) >> 16;
        let v = i32::from(x[k]) + contrib;
        out[k] = v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
    }
}

// ======================================================================
// Emitters
// ======================================================================

/// Argument registers of the `ltppar` body.
#[derive(Debug, Clone, Copy)]
pub struct LtpParArgs {
    /// Pointer to the 40 current samples.
    pub d: IReg,
    /// Pointer to the 120-sample history (`hist[0]` is the oldest).
    pub hist: IReg,
    /// Receives the best lag.
    pub out_lag: IReg,
    /// Receives the maximum correlation.
    pub out_max: IReg,
}

/// Emits the `ltppar` body in the requested variant.
pub fn emit_ltppar(a: &mut Asm, v: Variant, args: &LtpParArgs) {
    match v {
        Variant::Scalar => emit_ltppar_scalar(a, args),
        Variant::Mmx64 | Variant::Mmx128 => {
            a.vector_region(|a| emit_ltppar_mmx(a, v.width(), args));
        }
        Variant::Vmmx64 | Variant::Vmmx128 => {
            a.vector_region(|a| emit_ltppar_vmmx(a, v.width(), args));
        }
    }
}

fn emit_ltppar_scalar(a: &mut Asm, args: &LtpParArgs) {
    let (lag, s, k, x, y, base) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.li(args.out_max, i64::MIN);
    a.li(args.out_lag, LAG_MIN as i64);
    a.li(lag, LAG_MIN as i64);
    a.for_loop(lag, (LAG_MAX + 1) as i64 as i32, |a| {
        // base = &hist[LAG_MAX - lag]
        a.li(base, 2 * LAG_MAX as i64);
        a.slli(x, lag, 1);
        a.sub(base, base, x);
        a.add(base, args.hist, base);
        a.li(s, 0);
        a.li(k, 0);
        a.for_loop(k, SUBFRAME as i32, |a| {
            a.slli(x, k, 1);
            a.add(y, args.d, x);
            a.lh(y, y, 0);
            a.add(x, base, x);
            a.lh(x, x, 0);
            a.mul(x, x, y);
            a.add(s, s, x);
        });
        a.if_(Cond::Gt, s, args.out_max, |a| {
            a.mv(args.out_max, s);
            a.mv(args.out_lag, lag);
        });
    });
    for r in [lag, s, k, x, y, base] {
        a.release_ireg(r);
    }
}

fn emit_ltppar_mmx(a: &mut Asm, width: usize, args: &LtpParArgs) {
    let (lag, s, x, base, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (acc, v1, v2, zero) = (a.vreg(), a.vreg(), a.vreg(), a.vreg());
    let chunk = width / 2; // i16 lanes per register
    let nchunks = SUBFRAME / chunk; // 10 for 64-bit, 5 for 128-bit
    a.li(args.out_max, i64::MIN);
    a.li(args.out_lag, LAG_MIN as i64);
    a.li(t, 0);
    a.vsplat(zero, t, Esz::B);
    a.li(lag, LAG_MIN as i64);
    a.for_loop(lag, (LAG_MAX + 1) as i32, |a| {
        a.li(base, 2 * LAG_MAX as i64);
        a.slli(x, lag, 1);
        a.sub(base, base, x);
        a.add(base, args.hist, base);
        a.vmov(acc, zero);
        for c in 0..nchunks {
            let off = (c * width) as i32;
            a.vload(v1, args.d, off, width as u8);
            a.vload(v2, base, off, width as u8);
            a.simd(VOp::Madd, v1, v1, v2);
            a.simd(VOp::Add(Esz::W), acc, acc, v1);
        }
        // Horizontal add of the 32-bit lanes.
        a.li(s, 0);
        for l in 0..width / 4 {
            a.movsv(x, acc, l as u8, Esz::W, true);
            a.add(s, s, x);
        }
        a.if_(Cond::Gt, s, args.out_max, |a| {
            a.mv(args.out_max, s);
            a.mv(args.out_lag, lag);
        });
    });
    for r in [lag, s, x, base, t] {
        a.release_ireg(r);
    }
    for vr in [acc, v1, v2, zero] {
        a.release_vreg(vr);
    }
}

fn emit_ltppar_vmmx(a: &mut Asm, width: usize, args: &LtpParArgs) {
    let (lag, s, x, base) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (md, mh) = (a.mreg(), a.mreg());
    let acc = a.areg();
    let rows = (SUBFRAME * 2) / width; // 10 rows of 8 bytes, or 5 of 16
    a.li(args.out_max, i64::MIN);
    a.li(args.out_lag, LAG_MIN as i64);
    a.setvl(rows as i32);
    // The current segment stays resident in a matrix register for the
    // whole lag search.
    a.mload(md, args.d, width as i32, width as u8);
    a.li(lag, LAG_MIN as i64);
    a.for_loop(lag, (LAG_MAX + 1) as i32, |a| {
        a.li(base, 2 * LAG_MAX as i64);
        a.slli(x, lag, 1);
        a.sub(base, base, x);
        a.add(base, args.hist, base);
        a.accclear(acc);
        a.mload(mh, base, width as i32, width as u8);
        a.macc(AccOp::Mac, acc, md, mh);
        a.accsum(s, acc);
        a.if_(Cond::Gt, s, args.out_max, |a| {
            a.mv(args.out_max, s);
            a.mv(args.out_lag, lag);
        });
    });
    for r in [lag, s, x, base] {
        a.release_ireg(r);
    }
    a.release_mreg(md);
    a.release_mreg(mh);
    a.release_areg(acc);
}

/// Argument registers of the `ltpfilt` body.
#[derive(Debug, Clone, Copy)]
pub struct LtpFiltArgs {
    /// Excitation input pointer (120 `i16`).
    pub x: IReg,
    /// History input pointer (120 `i16`).
    pub h: IReg,
    /// Output pointer (120 `i16`).
    pub out: IReg,
    /// Filter gain (scalar register, Q16).
    pub gain: IReg,
}

/// Emits the `ltpfilt` body over `n` samples (40 for one sub-frame in
/// gsmdec, [`FILT_LEN`] in the standalone kernel).
///
/// `n` must satisfy `2·n % width == 0` and yield at most 16 rows per tile
/// for the matrix variants (40 and 120 both do).
pub fn emit_ltpfilt(a: &mut Asm, v: Variant, args: &LtpFiltArgs, n: usize) {
    match v {
        Variant::Scalar => {
            let (k, t, u) = (a.ireg(), a.ireg(), a.ireg());
            a.li(k, 0);
            a.for_loop(k, n as i32, |a| {
                a.slli(t, k, 1);
                a.add(u, args.h, t);
                a.lh(u, u, 0);
                a.mul(u, u, args.gain);
                a.srai(u, u, 16);
                a.add(t, args.x, t);
                a.lh(t, t, 0);
                a.add(u, u, t);
                a.if_(Cond::Gt, u, 32767, |a| a.li(u, 32767));
                a.if_(Cond::Lt, u, -32768, |a| a.li(u, -32768));
                a.slli(t, k, 1);
                a.add(t, args.out, t);
                a.sh(u, t, 0);
            });
            for r in [k, t, u] {
                a.release_ireg(r);
            }
        }
        Variant::Mmx64 | Variant::Mmx128 => a.vector_region(|a| {
            let width = v.width();
            let (g, v1, v2) = (a.vreg(), a.vreg(), a.vreg());
            a.vsplat(g, args.gain, Esz::H);
            let nchunks = (n * 2) / width;
            for c in 0..nchunks {
                let off = (c * width) as i32;
                a.vload(v1, args.h, off, width as u8);
                a.simd(VOp::Mulhi(Esz::H), v1, v1, g);
                a.vload(v2, args.x, off, width as u8);
                a.simd(VOp::AddS(Esz::H), v1, v1, v2);
                a.vstore(v1, args.out, off, width as u8);
            }
            for vr in [g, v1, v2] {
                a.release_vreg(vr);
            }
        }),
        Variant::Vmmx64 | Variant::Vmmx128 => a.vector_region(|a| {
            let width = v.width();
            let (mg, mh, mx) = (a.mreg(), a.mreg(), a.mreg());
            // Split the 2·n bytes into tiles of at most 16 rows.
            let total_rows = (n * 2) / width;
            let tiles = total_rows.div_ceil(16);
            let rows = total_rows / tiles;
            assert_eq!(rows * tiles, total_rows, "sample count must tile evenly");
            a.setvl(rows as i32);
            a.msplat(mg, args.gain, Esz::H);
            let (ph, px, po) = (a.ireg(), a.ireg(), a.ireg());
            a.mv(ph, args.h);
            a.mv(px, args.x);
            a.mv(po, args.out);
            for tile in 0..tiles {
                a.mload(mh, ph, width as i32, width as u8);
                a.mop(VOp::Mulhi(Esz::H), mh, mh, mg);
                a.mload(mx, px, width as i32, width as u8);
                a.mop(VOp::AddS(Esz::H), mh, mh, mx);
                a.mstore(mh, po, width as i32, width as u8);
                if tile + 1 < tiles {
                    let step = (rows * width) as i32;
                    a.addi(ph, ph, step);
                    a.addi(px, px, step);
                    a.addi(po, po, step);
                }
            }
            for r in [ph, px, po] {
                a.release_ireg(r);
            }
            for m in [mg, mh, mx] {
                a.release_mreg(m);
            }
        }),
    }
}

// ======================================================================
// Standalone workloads
// ======================================================================

/// Number of sub-frames in the standalone `ltppar` workload.
const NSEG: usize = 16;
/// Number of frames in the standalone `ltpfilt` workload.
const NFRAMES: usize = 32;

/// The `ltppar` kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct LtpPar;

impl Kernel for LtpPar {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "ltppar",
            app: "gsmenc",
            description: "Parameter calculation for LTP filtering",
            data_size: "40 16-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let mut rng = crate::data::Rng64::new(81);
        // One long signal; each segment's history is the preceding 120
        // samples, like the encoder's rolling reconstruction buffer.
        let signal = rng.i16s_in(LAG_MAX + NSEG * SUBFRAME, -4095, 4095);

        let mut asm = Asm::new();
        let (sig, outp, nseg) = (asm.arg(0), asm.arg(1), asm.arg(2));
        let (d, hist, lagr, maxr, seg) =
            (asm.ireg(), asm.ireg(), asm.ireg(), asm.ireg(), asm.ireg());
        let pargs = LtpParArgs {
            d,
            hist,
            out_lag: lagr,
            out_max: maxr,
        };
        asm.li(seg, 0);
        asm.addi(hist, sig, 0);
        asm.addi(d, sig, 2 * LAG_MAX as i32);
        asm.for_loop(seg, nseg, |a| {
            emit_ltppar(a, v, &pargs);
            a.sw(lagr, outp, 0);
            a.sw(maxr, outp, 4);
            a.addi(outp, outp, 8);
            a.addi(d, d, 2 * SUBFRAME as i32);
            a.addi(hist, hist, 2 * SUBFRAME as i32);
        });
        asm.halt();
        let program = asm.finish();

        let mut layout = Layout::new(1 << 20);
        let sig_addr = layout.alloc_array(signal.len() as u64, 2);
        let out_addr = layout.alloc_array((NSEG * 2) as u64, 4);

        let mut machine = Machine::new(v.machine_ext(), 1 << 20);
        machine.write_i16s(sig_addr, &signal).unwrap();
        machine.set_ireg(0, sig_addr as i64);
        machine.set_ireg(1, out_addr as i64);
        machine.set_ireg(2, NSEG as i64);

        let expected: Vec<i32> = (0..NSEG)
            .flat_map(|s| {
                let d = &signal[LAG_MAX + s * SUBFRAME..];
                let hist = &signal[s * SUBFRAME..];
                let (lag, max) = golden_ltppar(d, hist);
                [lag as i32, max as i32]
            })
            .collect();

        BuiltKernel::new(program, machine, move |m: &Machine| {
            let got = m.read_i32s(out_addr, NSEG * 2).map_err(|e| e.to_string())?;
            if got == expected {
                Ok(())
            } else {
                Err(format!("ltppar mismatch: got {got:?} want {expected:?}"))
            }
        })
    }
}

/// The `ltpfilt` kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct LtpFilt;

impl Kernel for LtpFilt {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "ltpfilt",
            app: "gsmdec",
            description: "Long term parameter filtering",
            data_size: "120 16-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let mut rng = crate::data::Rng64::new(83);
        let x = rng.i16s_in(NFRAMES * FILT_LEN, -20000, 20000);
        let h = rng.i16s_in(NFRAMES * FILT_LEN, -20000, 20000);
        let gains: Vec<i16> = (0..NFRAMES).map(|_| rng.i16_in(0, 28000)).collect();

        let mut asm = Asm::new();
        let (xp, hp, op, gp, nfr) = (asm.arg(0), asm.arg(1), asm.arg(2), asm.arg(3), asm.arg(4));
        let (gain, f) = (asm.ireg(), asm.ireg());
        let fargs = LtpFiltArgs {
            x: xp,
            h: hp,
            out: op,
            gain,
        };
        asm.li(f, 0);
        asm.for_loop(f, nfr, |a| {
            a.lh(gain, gp, 0);
            emit_ltpfilt(a, v, &fargs, FILT_LEN);
            a.addi(gp, gp, 2);
            a.addi(xp, xp, 2 * FILT_LEN as i32);
            a.addi(hp, hp, 2 * FILT_LEN as i32);
            a.addi(op, op, 2 * FILT_LEN as i32);
        });
        asm.halt();
        let program = asm.finish();

        let mut layout = Layout::new(1 << 20);
        let x_addr = layout.alloc_array(x.len() as u64, 2);
        let h_addr = layout.alloc_array(h.len() as u64, 2);
        let o_addr = layout.alloc_array(x.len() as u64, 2);
        let g_addr = layout.alloc_array(NFRAMES as u64, 2);

        let mut machine = Machine::new(v.machine_ext(), 1 << 20);
        machine.write_i16s(x_addr, &x).unwrap();
        machine.write_i16s(h_addr, &h).unwrap();
        machine.write_i16s(g_addr, &gains).unwrap();
        machine.set_ireg(0, x_addr as i64);
        machine.set_ireg(1, h_addr as i64);
        machine.set_ireg(2, o_addr as i64);
        machine.set_ireg(3, g_addr as i64);
        machine.set_ireg(4, NFRAMES as i64);

        let mut expected = vec![0i16; x.len()];
        for (f, &gain) in gains.iter().enumerate().take(NFRAMES) {
            let lo = f * FILT_LEN;
            let mut out = vec![0i16; FILT_LEN];
            golden_ltpfilt(&x[lo..], &h[lo..], gain, &mut out);
            expected[lo..lo + FILT_LEN].copy_from_slice(&out);
        }

        BuiltKernel::new(program, machine, move |m: &Machine| {
            let got = m
                .read_i16s(o_addr, expected.len())
                .map_err(|e| e.to_string())?;
            if got == expected {
                Ok(())
            } else {
                let k = got.iter().zip(&expected).position(|(a, b)| a != b).unwrap();
                Err(format!(
                    "ltpfilt mismatch at {k}: got {} want {}",
                    got[k], expected[k]
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_ltppar_finds_planted_echo() {
        // Plant a strong echo at lag 57.
        let mut signal = vec![0i16; LAG_MAX + SUBFRAME];
        let mut rng = crate::data::Rng64::new(5);
        for s in signal.iter_mut() {
            *s = rng.i16_in(-500, 500);
        }
        for k in 0..SUBFRAME {
            let past = signal[LAG_MAX + k - 57];
            signal[LAG_MAX + k] = past.saturating_mul(2).clamp(-4000, 4000);
        }
        let (lag, _) = golden_ltppar(&signal[LAG_MAX..], &signal);
        assert_eq!(lag, 57);
    }

    #[test]
    fn golden_ltpfilt_zero_gain_is_identity() {
        let x: Vec<i16> = (0..FILT_LEN as i16).collect();
        let h = vec![1234i16; FILT_LEN];
        let mut out = vec![0i16; FILT_LEN];
        golden_ltpfilt(&x, &h, 0, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn all_variants_match_golden_ltppar() {
        for v in Variant::ALL {
            LtpPar
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_ltpfilt() {
        for v in Variant::ALL {
            LtpFilt
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn vmmx_widths_perform_similarly() {
        // The paper: short segments limit VMMX128 over VMMX64.
        let a = LtpPar.build(Variant::Vmmx64).run_checked().unwrap();
        let b = LtpPar.build(Variant::Vmmx128).run_checked().unwrap();
        // Same instruction count shape: within 20%.
        let ratio = a.dyn_instrs as f64 / b.dyn_instrs as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
