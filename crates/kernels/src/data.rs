//! Deterministic workload data generation.
//!
//! All kernel and application inputs come from a xorshift generator with a
//! fixed seed so every run (and every ISA variant of the same kernel) sees
//! identical data.

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng64(u64);

impl Rng64 {
    /// Creates a generator; `seed` must be non-zero (0 is replaced).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `i16` in `[lo, hi]`.
    pub fn i16_in(&mut self, lo: i16, hi: i16) -> i16 {
        let span = i64::from(hi) - i64::from(lo) + 1;
        (i64::from(lo) + (self.next_u64() % span as u64) as i64) as i16
    }

    /// Fills a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.next_u8();
        }
    }

    /// A vector of `n` uniform bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// A vector of `n` uniform `i16`s in `[lo, hi]`.
    pub fn i16s_in(&mut self, n: usize, lo: i16, hi: i16) -> Vec<i16> {
        (0..n).map(|_| self.i16_in(lo, hi)).collect()
    }
}

/// A "natural image"-flavoured byte plane: smooth gradients plus noise,
/// so motion-estimation and DCT workloads see realistic spatial
/// correlation rather than white noise.
#[must_use]
pub fn smooth_plane(w: usize, h: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng64::new(seed);
    let mut out = vec![0u8; w * h];
    for y in 0..h {
        for x in 0..w {
            let base = 96.0
                + 60.0 * ((x as f64) * 0.07).sin()
                + 40.0 * ((y as f64) * 0.11).cos()
                + 20.0 * (((x + y) as f64) * 0.023).sin();
            let noise = (rng.next_u64() % 17) as f64 - 8.0;
            out[y * w + x] = (base + noise).clamp(0.0, 255.0) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let v = r.i16_in(-300, 255);
            assert!((-300..=255).contains(&v));
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn smooth_plane_has_structure() {
        let p = smooth_plane(64, 8, 1);
        assert_eq!(p.len(), 512);
        // Neighbouring pixels correlate: mean |dx| well below white noise (~85).
        let mut diff = 0u64;
        for i in 1..p.len() {
            diff += u64::from(p[i].abs_diff(p[i - 1]));
        }
        assert!(diff / (p.len() as u64 - 1) < 40);
    }
}
