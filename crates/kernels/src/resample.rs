//! The `h2v2` kernel: 2×2 triangle-filter image up-sampling (jpegdec).
//!
//! Semantics (jpeglib "fancy upsampling" flavour): every input pixel
//! produces a 2×2 output quad, each output weighting the nearest input
//! 9/16, the horizontal and vertical neighbours 3/16 each and the diagonal
//! 1/16:
//!
//! ```text
//! out[2y+dy][2x+dx] = (9·in[y][x] + 3·in[y][x+ox] + 3·in[y+oy][x]
//!                      + in[y+oy][x+ox] + 8) >> 4,   ox = 2dx−1, oy = 2dy−1
//! ```
//!
//! The input buffer is edge-padded by one pixel on every side so no
//! variant needs boundary conditionals; the vectorised variants stream
//! along image rows (the "vector stride of one, maximum VL" case the
//! paper highlights for this kernel).

use crate::{BuiltKernel, Kernel, KernelSpec, Variant};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Esz, IReg, MOperand, VOp, VShiftOp};

/// Input width of the standalone workload (pixels).
pub const W_IN: usize = 256;
/// Input height of the standalone workload (pixels).
pub const H_IN: usize = 16;

/// Golden reference: up-samples a padded `w×h` plane.
///
/// `input` has stride `w + 2` and `h + 2` rows (1-pixel replicated
/// border); `out` has stride `2w` and `2h` rows.
pub fn golden_h2v2(input: &[u8], w: usize, h: usize, out: &mut [u8]) {
    let stride = w + 2;
    let at =
        |x: i64, y: i64| -> i32 { i32::from(input[((y + 1) * stride as i64 + x + 1) as usize]) };
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            for dy in 0..2i64 {
                for dx in 0..2i64 {
                    let ox = 2 * dx - 1;
                    let oy = 2 * dy - 1;
                    let v = (9 * at(x, y)
                        + 3 * at(x + ox, y)
                        + 3 * at(x, y + oy)
                        + at(x + ox, y + oy)
                        + 8)
                        >> 4;
                    out[((2 * y + dy) * 2 * w as i64 + 2 * x + dx) as usize] = v as u8;
                }
            }
        }
    }
}

/// Pads a `w×h` plane with a replicated 1-pixel border (stride `w+2`).
#[must_use]
pub fn pad_plane(plane: &[u8], w: usize, h: usize) -> Vec<u8> {
    let stride = w + 2;
    let mut out = vec![0u8; stride * (h + 2)];
    for y in 0..h + 2 {
        let sy = y.clamp(1, h) - 1;
        for x in 0..w + 2 {
            let sx = x.clamp(1, w) - 1;
            out[y * stride + x] = plane[sy * w + sx];
        }
    }
    out
}

/// Argument registers of the `h2v2` kernel.
#[derive(Debug, Clone, Copy)]
pub struct H2v2Args {
    /// Padded input base (points at the padded buffer origin).
    pub input: IReg,
    /// Output base.
    pub out: IReg,
    /// Input width in pixels (stride is `w+2`).
    pub w: IReg,
    /// Input height in pixels.
    pub h: IReg,
    /// Coefficient table base (matrix variants; 16 splat rows).
    pub coltab: IReg,
}

/// Coefficient-table row indices for the matrix variants.
mod h2c {
    pub const C9: u8 = 0;
    pub const C3: u8 = 1;
    pub const C8: u8 = 2;
    pub const ZERO: u8 = 3;
    /// 16 rows so the table can be loaded with VL = 16.
    pub const VALUES: [u16; 16] = [9, 3, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
}

/// Builds the coefficient table for the matrix variants of `h2v2`.
#[must_use]
pub fn h2v2_coltab(width: usize) -> Vec<u8> {
    crate::color::splat_rows(&h2c::VALUES, width)
}

/// Emits the full `h2v2` kernel in the requested variant.
pub fn emit_h2v2(a: &mut Asm, v: Variant, args: &H2v2Args) {
    match v {
        Variant::Scalar => emit_scalar(a, args),
        Variant::Mmx64 | Variant::Mmx128 => a.vector_region(|a| emit_mmx(a, v.width(), args)),
        Variant::Vmmx64 | Variant::Vmmx128 => a.vector_region(|a| emit_vmmx(a, v.width(), args)),
    }
}

fn emit_scalar(a: &mut Asm, args: &H2v2Args) {
    let stride = a.ireg();
    let wout = a.ireg();
    let (row_in, row_out, x, y) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (pin, pup, pdn, pout) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (cur, t, u, s) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.addi(stride, args.w, 2);
    a.slli(wout, args.w, 1);
    // row_in points at pixel (0, y) of the padded buffer.
    a.add(row_in, args.input, stride);
    a.addi(row_in, row_in, 1);
    a.mv(row_out, args.out);
    a.li(y, 0);
    a.for_loop(y, args.h, |a| {
        a.li(x, 0);
        a.for_loop(x, args.w, |a| {
            a.add(pin, row_in, x);
            a.sub(pup, pin, stride);
            a.add(pdn, pin, stride);
            a.lbu(cur, pin, 0);
            a.muli(cur, cur, 9);
            for dy in 0..2 {
                let pv = if dy == 0 { pup } else { pdn };
                for dx in 0..2 {
                    let ox = 2 * dx - 1;
                    a.lbu(t, pin, ox);
                    a.muli(t, t, 3);
                    a.add(t, t, cur);
                    a.lbu(u, pv, 0);
                    a.muli(u, u, 3);
                    a.add(t, t, u);
                    a.lbu(u, pv, ox);
                    a.add(t, t, u);
                    a.addi(t, t, 8);
                    a.srli(t, t, 4);
                    // out[(2y+dy)*wout + 2x+dx]
                    a.slli(s, x, 1);
                    a.add(s, s, row_out);
                    if dy == 1 {
                        a.add(s, s, wout);
                    }
                    a.sb(t, s, dx);
                }
            }
        });
        a.add(row_in, row_in, stride);
        a.slli(t, wout, 1);
        a.add(row_out, row_out, t);
    });
    for r in [
        stride, wout, row_in, row_out, x, y, pin, pup, pdn, pout, cur, t, u, s,
    ] {
        a.release_ireg(r);
    }
}

fn emit_mmx(a: &mut Asm, width: usize, args: &H2v2Args) {
    let w8 = width as u8;
    let stride = a.ireg();
    let wout = a.ireg();
    let (row_in, row_out, x, y) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (pin, pup, pdn, pout, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    // Constants.
    let c9 = crate::color::splat_const(a, 9);
    let c3 = crate::color::splat_const(a, 3);
    let c8 = crate::color::splat_const(a, 8);
    let zero = crate::color::splat_const(a, 0);
    // Working registers (the 8×8-pixel working set fills most of the
    // 32-register SIMD file — exactly the pressure the paper describes).
    let raw: Vec<_> = (0..6).map(|_| a.vreg()).collect(); // a, am, ap + b, bm, bp (per dy)
    let a16: Vec<_> = (0..6).map(|_| a.vreg()).collect(); // a, am, ap × lo/hi
    let b16: Vec<_> = (0..6).map(|_| a.vreg()).collect(); // b, bm, bp × lo/hi (per dy)
    let nine: Vec<_> = (0..2).map(|_| a.vreg()).collect();
    let (acc, tmp) = (a.vreg(), a.vreg());
    let res: Vec<_> = (0..4).map(|_| a.vreg()).collect(); // dx × half
    a.addi(stride, args.w, 2);
    a.slli(wout, args.w, 1);
    a.add(row_in, args.input, stride);
    a.addi(row_in, row_in, 1);
    a.mv(row_out, args.out);
    a.li(y, 0);
    a.for_loop(y, args.h, |a| {
        a.li(x, 0);
        a.for_loop_step(x, args.w, width as i32, |a| {
            a.add(pin, row_in, x);
            a.sub(pup, pin, stride);
            a.add(pdn, pin, stride);
            for (k, (base, off)) in [(pin, 0i32), (pin, -1), (pin, 1)].iter().enumerate() {
                a.vload(raw[k], *base, *off, w8);
            }
            for k in 0..3 {
                a.simd(VOp::UnpackLo(Esz::B), a16[2 * k], raw[k], zero);
                a.simd(VOp::UnpackHi(Esz::B), a16[2 * k + 1], raw[k], zero);
            }
            for half in 0..2 {
                a.simd(VOp::Mullo(Esz::H), nine[half], a16[half], c9);
            }
            for dy in 0..2usize {
                let pv = if dy == 0 { pup } else { pdn };
                for (k, off) in [0i32, -1, 1].iter().enumerate() {
                    a.vload(raw[3 + k], pv, *off, w8);
                }
                for k in 0..3 {
                    let src = raw[3 + k];
                    a.simd(VOp::UnpackLo(Esz::B), b16[2 * k], src, zero);
                    a.simd(VOp::UnpackHi(Esz::B), b16[2 * k + 1], src, zero);
                }
                for half in 0..2 {
                    // 3·b is shared between dx=0 and dx=1.
                    a.simd(VOp::Mullo(Esz::H), tmp, b16[half], c3);
                    for dx in 0..2usize {
                        let hsel = 2 + 2 * (dx == 1) as usize; // am or ap family
                        a.simd(VOp::Mullo(Esz::H), acc, a16[hsel + half], c3);
                        a.simd(VOp::Add(Esz::H), acc, acc, nine[half]);
                        a.simd(VOp::Add(Esz::H), acc, acc, tmp);
                        let bsel = 2 + 2 * (dx == 1) as usize;
                        a.simd(VOp::Add(Esz::H), acc, acc, b16[bsel + half]);
                        a.simd(VOp::Add(Esz::H), acc, acc, c8);
                        a.vshift(VShiftOp::Srl(Esz::H), res[2 * dx + half], acc, 4);
                    }
                }
                // Pack in place, then interleave dx=0 / dx=1 bytes.
                a.simd(VOp::PackU(Esz::H), res[0], res[0], res[1]);
                a.simd(VOp::PackU(Esz::H), res[2], res[2], res[3]);
                a.simd(VOp::UnpackLo(Esz::B), acc, res[0], res[2]);
                a.simd(VOp::UnpackHi(Esz::B), tmp, res[0], res[2]);
                // pout = row_out + dy*wout + 2x
                a.slli(t, x, 1);
                a.add(pout, row_out, t);
                if dy == 1 {
                    a.add(pout, pout, wout);
                }
                a.vstore(acc, pout, 0, w8);
                a.vstore(tmp, pout, width as i32, w8);
            }
        });
        a.add(row_in, row_in, stride);
        a.slli(t, wout, 1);
        a.add(row_out, row_out, t);
    });
    for r in [stride, wout, row_in, row_out, x, y, pin, pup, pdn, pout, t] {
        a.release_ireg(r);
    }
    for vr in [c9, c3, c8, zero, acc, tmp]
        .into_iter()
        .chain(raw)
        .chain(a16)
        .chain(b16)
        .chain(nine)
        .chain(res)
    {
        a.release_vreg(vr);
    }
}

fn emit_vmmx(a: &mut Asm, width: usize, args: &H2v2Args) {
    use h2c::*;
    // 2-D tiles: VL = 16 *image rows* × `width` columns per matrix load
    // (strided by the padded image stride), so narrow planes — e.g. the
    // 32-pixel chroma planes of jpegdec — vectorise at full VL too.
    // Requires the input height to be a multiple of 16.
    let w8 = width as u8;
    let stride = a.ireg();
    let wout = a.ireg();
    let (row_in, row_out, x, y) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let (pin, pup, pdn, pout, t, two_wout) =
        (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    let coef = a.mreg();
    let raw: Vec<_> = (0..3).map(|_| a.mreg()).collect(); // a, am, ap
    let braw: Vec<_> = (0..3).map(|_| a.mreg()).collect(); // b, bm, bp (per dy)
    let (nine_lo, nine_hi, acc, tmp, p0, p1, pk0, pk1) = (
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
        a.mreg(),
    );
    a.setvl(16);
    a.mload(coef, args.coltab, width as i32, w8);
    a.addi(stride, args.w, 2);
    a.slli(wout, args.w, 1);
    a.slli(two_wout, args.w, 2); // 2·wout
    a.add(row_in, args.input, stride);
    a.addi(row_in, row_in, 1);
    a.mv(row_out, args.out);
    a.li(y, 0);
    a.for_loop_step(y, args.h, 16, |a| {
        a.li(x, 0);
        a.for_loop_step(x, args.w, width as i32, |a| {
            a.add(pin, row_in, x);
            a.sub(pup, pin, stride);
            a.add(pdn, pin, stride);
            // Strided 2-D tile loads: 16 image rows per matrix register.
            a.mload(raw[0], pin, stride, w8);
            let pm = a.ireg();
            a.subi(pm, pin, 1);
            a.mload(raw[1], pm, stride, w8);
            a.addi(pm, pin, 1);
            a.mload(raw[2], pm, stride, w8);
            a.release_ireg(pm);
            a.mop(
                VOp::UnpackLo(Esz::B),
                tmp,
                raw[0],
                MOperand::RowBcast(coef, ZERO),
            );
            a.mop(
                VOp::Mullo(Esz::H),
                nine_lo,
                tmp,
                MOperand::RowBcast(coef, C9),
            );
            a.mop(
                VOp::UnpackHi(Esz::B),
                tmp,
                raw[0],
                MOperand::RowBcast(coef, ZERO),
            );
            a.mop(
                VOp::Mullo(Esz::H),
                nine_hi,
                tmp,
                MOperand::RowBcast(coef, C9),
            );
            for dy in 0..2usize {
                let pv = if dy == 0 { pup } else { pdn };
                a.mload(braw[0], pv, stride, w8);
                let pm = a.ireg();
                a.subi(pm, pv, 1);
                a.mload(braw[1], pm, stride, w8);
                a.addi(pm, pv, 1);
                a.mload(braw[2], pm, stride, w8);
                a.release_ireg(pm);
                for dx in 0..2usize {
                    let hraw = raw[1 + dx]; // am or ap
                    let braw_d = braw[1 + dx]; // bm or bp
                    for half in 0..2usize {
                        let nine_h = if half == 0 { nine_lo } else { nine_hi };
                        let unpack = if half == 0 {
                            VOp::UnpackLo(Esz::B)
                        } else {
                            VOp::UnpackHi(Esz::B)
                        };
                        // 3 · horizontal neighbour + 9 · centre
                        a.mop(unpack, tmp, hraw, MOperand::RowBcast(coef, ZERO));
                        a.mop(VOp::Mullo(Esz::H), acc, tmp, MOperand::RowBcast(coef, C3));
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::M(nine_h));
                        // 3 · vertical neighbour
                        a.mop(unpack, tmp, braw[0], MOperand::RowBcast(coef, ZERO));
                        a.mop(VOp::Mullo(Esz::H), tmp, tmp, MOperand::RowBcast(coef, C3));
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::M(tmp));
                        // + diagonal + rounding
                        a.mop(unpack, tmp, braw_d, MOperand::RowBcast(coef, ZERO));
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::M(tmp));
                        a.mop(VOp::Add(Esz::H), acc, acc, MOperand::RowBcast(coef, C8));
                        a.mshift(
                            VShiftOp::Srl(Esz::H),
                            if half == 0 { p0 } else { p1 },
                            acc,
                            4,
                        );
                    }
                    let dst = if dx == 0 { pk0 } else { pk1 };
                    a.mop(VOp::PackU(Esz::H), dst, p0, p1);
                }
                // Interleave dx=0 and dx=1 bytes.
                a.mop(VOp::UnpackLo(Esz::B), p0, pk0, MOperand::M(pk1));
                a.mop(VOp::UnpackHi(Esz::B), p1, pk0, MOperand::M(pk1));
                // Store: chunk r goes to out + 2·r·width (stride 2·width).
                a.slli(t, x, 1);
                a.add(pout, row_out, t);
                if dy == 1 {
                    a.add(pout, pout, wout);
                }
                // Tile row r lands on output row 2·(y0+r)+dy: stride 2·wout.
                a.mstore(p0, pout, two_wout, w8);
                a.addi(pout, pout, width as i32);
                a.mstore(p1, pout, two_wout, w8);
            }
        });
        // Advance one 16-row tile: 16 input rows, 32 output rows.
        a.slli(t, stride, 4);
        a.add(row_in, row_in, t);
        a.slli(t, wout, 5);
        a.add(row_out, row_out, t);
    });
    for r in [
        stride, wout, row_in, row_out, x, y, pin, pup, pdn, pout, t, two_wout,
    ] {
        a.release_ireg(r);
    }
    for m in [coef, nine_lo, nine_hi, acc, tmp, p0, p1, pk0, pk1]
        .into_iter()
        .chain(raw)
        .chain(braw)
    {
        a.release_mreg(m);
    }
}

/// The `h2v2` kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct H2v2;

impl Kernel for H2v2 {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "h2v2",
            app: "jpegdec",
            description: "Image up-sampling",
            data_size: "Image width",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let plane = crate::data::smooth_plane(W_IN, H_IN, 91);
        let padded = pad_plane(&plane, W_IN, H_IN);

        let mut asm = Asm::new();
        let args = H2v2Args {
            input: asm.arg(0),
            out: asm.arg(1),
            w: asm.arg(2),
            h: asm.arg(3),
            coltab: asm.arg(4),
        };
        emit_h2v2(&mut asm, v, &args);
        asm.halt();
        let program = asm.finish();

        let table = h2v2_coltab(v.width());
        let mut layout = Layout::new(1 << 20);
        let in_addr = layout.alloc_array(padded.len() as u64, 1);
        let out_addr = layout.alloc_array((4 * W_IN * H_IN) as u64, 1);
        let tab_addr = layout.alloc_array(table.len() as u64, 1);

        let mut machine = Machine::new(v.machine_ext(), 1 << 20);
        machine.write_bytes(in_addr, &padded).unwrap();
        machine.write_bytes(tab_addr, &table).unwrap();
        machine.set_ireg(0, in_addr as i64);
        machine.set_ireg(1, out_addr as i64);
        machine.set_ireg(2, W_IN as i64);
        machine.set_ireg(3, H_IN as i64);
        machine.set_ireg(4, tab_addr as i64);

        let mut expected = vec![0u8; 4 * W_IN * H_IN];
        golden_h2v2(&padded, W_IN, H_IN, &mut expected);

        BuiltKernel::new(program, machine, move |m: &Machine| {
            let got = m
                .read_bytes(out_addr, expected.len())
                .map_err(|e| e.to_string())?;
            if let Some(i) = got.iter().zip(&expected).position(|(a, b)| a != b) {
                return Err(format!(
                    "h2v2 mismatch at byte {i} (px ({},{})): got {} want {}",
                    i % (2 * W_IN),
                    i / (2 * W_IN),
                    got[i],
                    expected[i]
                ));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_constant_plane_stays_constant() {
        let plane = vec![100u8; 16 * 4];
        let padded = pad_plane(&plane, 16, 4);
        let mut out = vec![0u8; 4 * 16 * 4];
        golden_h2v2(&padded, 16, 4, &mut out);
        assert!(out.iter().all(|p| *p == 100));
    }

    #[test]
    fn pad_plane_replicates_edges() {
        let plane: Vec<u8> = (0..12).collect(); // 4x3
        let p = pad_plane(&plane, 4, 3);
        assert_eq!(p[0], plane[0]); // corner
        assert_eq!(p[6 + 1], plane[0]); // row 1, col 1: first interior texel
        assert_eq!(p[6 * 4 + 5], plane[11]); // bottom-right
    }

    #[test]
    fn all_variants_match_golden_h2v2() {
        for v in Variant::ALL {
            H2v2.build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }
}
