//! The paper's multimedia kernels (Table II), each in five variants:
//! plain scalar, MMX64, MMX128, VMMX64 and VMMX128.
//!
//! Every kernel module provides
//!
//! * a **golden** plain-Rust reference implementation,
//! * **emit** functions producing the kernel body in each ISA variant
//!   (reused by `simdsim-apps` inside full applications), and
//! * a [`Kernel`] implementation packaging a standalone workload:
//!   deterministic input data, the program, and a result checker.
//!
//! | kernel | application | description |
//! |---|---|---|
//! | `rgb`      | jpegenc  | RGB → YCC colour conversion |
//! | `fdct`     | jpegenc, mpeg2enc | 8×8 forward DCT |
//! | `h2v2`     | jpegdec  | 2×2 image up-sampling |
//! | `ycc`      | jpegdec  | YCC → RGB colour conversion |
//! | `motion1`  | mpeg2enc | 16×16 sum of absolute differences |
//! | `motion2`  | mpeg2enc | 16×16 sum of squared differences |
//! | `idct`     | mpeg2dec, jpegdec | 8×8 inverse DCT |
//! | `comp`     | mpeg2dec | motion compensation (8×4 average) |
//! | `addblock` | mpeg2dec | block addition with saturation |
//! | `ltppar`   | gsmenc   | long-term-predictor parameter search |
//! | `ltpfilt`  | gsmdec   | long-term filtering |
//!
//! # Example
//!
//! ```
//! use simdsim_kernels::{registry, Variant};
//!
//! for k in registry() {
//!     let built = k.build(Variant::Vmmx128);
//!     let stats = built.run_checked().expect("kernel result matches golden");
//!     assert!(stats.dyn_instrs > 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod data;
pub mod dct;
pub mod gsm;
pub mod motion;
pub mod resample;

use simdsim_emu::{EmuError, Machine, NullSink, RunStats, TraceSink};
use simdsim_isa::{Ext, Program};

/// Workload revision, part of `simdsim-sweep`'s content-addressed cache
/// key.  Bump whenever generated kernel code or input data changes in a
/// way that affects timing, so cached results from older builds are never
/// reused.
pub const REVISION: u32 = 1;

/// Which implementation variant of a kernel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Plain scalar code (Fig. 3(a) style).
    Scalar,
    /// 1-dimensional SIMD, 64-bit registers.
    Mmx64,
    /// 1-dimensional SIMD, 128-bit registers.
    Mmx128,
    /// Matrix extension, 64-bit rows.
    Vmmx64,
    /// Matrix extension, 128-bit rows.
    Vmmx128,
}

impl Variant {
    /// All five variants.
    pub const ALL: [Variant; 5] = [
        Variant::Scalar,
        Variant::Mmx64,
        Variant::Mmx128,
        Variant::Vmmx64,
        Variant::Vmmx128,
    ];

    /// The machine extension this variant runs on (scalar code runs on the
    /// baseline MMX64 machine).
    #[must_use]
    pub const fn machine_ext(self) -> Ext {
        match self {
            Variant::Scalar | Variant::Mmx64 => Ext::Mmx64,
            Variant::Mmx128 => Ext::Mmx128,
            Variant::Vmmx64 => Ext::Vmmx64,
            Variant::Vmmx128 => Ext::Vmmx128,
        }
    }

    /// The variant exercising extension `ext`.
    #[must_use]
    pub const fn for_ext(ext: Ext) -> Variant {
        match ext {
            Ext::Mmx64 => Variant::Mmx64,
            Ext::Mmx128 => Variant::Mmx128,
            Ext::Vmmx64 => Variant::Vmmx64,
            Ext::Vmmx128 => Variant::Vmmx128,
        }
    }

    /// SIMD register width in bytes for this variant (8 for scalar — the
    /// width of the machine it runs on, unused by scalar code).
    #[must_use]
    pub const fn width(self) -> usize {
        self.machine_ext().width_bytes()
    }

    /// `true` for the two matrix variants.
    #[must_use]
    pub const fn is_matrix(self) -> bool {
        matches!(self, Variant::Vmmx64 | Variant::Vmmx128)
    }

    /// Lower-case display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Variant::Scalar => "scalar",
            Variant::Mmx64 => "mmx64",
            Variant::Mmx128 => "mmx128",
            Variant::Vmmx64 => "vmmx64",
            Variant::Vmmx128 => "vmmx128",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of a kernel (the paper's Table II row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name (`motion1`, `idct`, ...).
    pub name: &'static str,
    /// Application the kernel comes from (`mpeg2enc`, ...).
    pub app: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Data-size column of Table II.
    pub data_size: &'static str,
}

/// Post-run validator comparing machine state against the golden output.
type Checker = Box<dyn Fn(&Machine) -> Result<(), String> + Send + Sync>;

/// A kernel workload ready to execute: program + pre-loaded machine +
/// golden-result checker.
pub struct BuiltKernel {
    /// The kernel program (standalone, ends in `halt`).
    pub program: Program,
    /// Machine with inputs written to memory and argument registers set.
    pub machine: Machine,
    checker: Checker,
}

impl std::fmt::Debug for BuiltKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltKernel")
            .field("static_instrs", &self.program.len())
            .finish_non_exhaustive()
    }
}

impl BuiltKernel {
    /// Packages a program, machine and checker.
    #[must_use]
    pub fn new(
        program: Program,
        machine: Machine,
        checker: impl Fn(&Machine) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Self {
            program,
            machine,
            checker: Box::new(checker),
        }
    }

    /// Default dynamic-instruction budget for kernel workloads.
    pub const INSTR_LIMIT: u64 = 200_000_000;

    /// Runs the kernel functionally and verifies the result against the
    /// golden reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the emulation failure or result mismatch.
    pub fn run_checked(&self) -> Result<RunStats, String> {
        let mut m = self.machine.clone();
        let stats = m
            .run(&self.program, &mut NullSink, Self::INSTR_LIMIT)
            .map_err(|e: EmuError| e.to_string())?;
        (self.checker)(&m)?;
        Ok(stats)
    }

    /// Runs the kernel streaming the dynamic trace into `sink` (used by the
    /// timing model), then verifies the result.
    ///
    /// # Errors
    ///
    /// Returns a description of the emulation failure or result mismatch.
    pub fn run_traced(&self, sink: &mut impl TraceSink) -> Result<RunStats, String> {
        let mut m = self.machine.clone();
        let stats = m
            .run(&self.program, sink, Self::INSTR_LIMIT)
            .map_err(|e: EmuError| e.to_string())?;
        (self.checker)(&m)?;
        Ok(stats)
    }
}

/// A kernel of the benchmark suite.
pub trait Kernel: Send + Sync {
    /// The Table-II row for this kernel.
    fn spec(&self) -> KernelSpec;
    /// Builds the standalone workload for `variant`.
    fn build(&self, variant: Variant) -> BuiltKernel;
}

/// All kernels of the paper's Table II, in presentation order
/// (idct, motion1, motion2, comp, addblock, rgb, ycc, h2v2, ltppar, ltpfilt
/// — the order of Figure 4).
#[must_use]
pub fn registry() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(dct::Idct),
        Box::new(motion::Motion1),
        Box::new(motion::Motion2),
        Box::new(motion::Comp),
        Box::new(motion::AddBlock),
        Box::new(color::Rgb),
        Box::new(color::Ycc),
        Box::new(resample::H2v2),
        Box::new(gsm::LtpPar),
        Box::new(gsm::LtpFilt),
        Box::new(dct::Fdct),
    ]
}

/// Looks a kernel up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Kernel>> {
    registry().into_iter().find(|k| k.spec().name == name)
}
