//! Motion-estimation and block-reconstruction kernels of the MPEG-2 codec:
//! `motion1` (SAD), `motion2` (SSD), `comp` (motion compensation) and
//! `addblock` (saturating block addition).
//!
//! The five variants of `motion1` follow the paper's Figure 3 line by line:
//! the scalar version keeps both loops, the MMX versions eliminate the
//! inner loop (processing one or two rows per iteration), and the VMMX
//! versions eliminate *both* loops with strided matrix loads and packed
//! accumulators.

use crate::{BuiltKernel, Kernel, KernelSpec, Variant};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{AccOp, Cond, Esz, IReg, VOp};

// ======================================================================
// Golden references
// ======================================================================

/// Golden SAD of a `16 × h` block (`dist1` of the MPEG-2 encoder).
#[must_use]
pub fn golden_sad(cur: &[u8], refp: &[u8], stride: usize, h: usize) -> i64 {
    let mut s = 0i64;
    for j in 0..h {
        for i in 0..16 {
            s += i64::from(cur[j * stride + i].abs_diff(refp[j * stride + i]));
        }
    }
    s
}

/// Golden SSD of a `16 × h` block (`dist2` of the MPEG-2 encoder).
#[must_use]
pub fn golden_ssd(cur: &[u8], refp: &[u8], stride: usize, h: usize) -> i64 {
    let mut s = 0i64;
    for j in 0..h {
        for i in 0..16 {
            let d = i64::from(cur[j * stride + i]) - i64::from(refp[j * stride + i]);
            s += d * d;
        }
    }
    s
}

/// Golden motion compensation: `dst = (a + b + 1) >> 1` over an `8 × h`
/// block.
pub fn golden_comp(a: &[u8], b: &[u8], dst: &mut [u8], stride: usize, h: usize) {
    for j in 0..h {
        for i in 0..8 {
            let s = u16::from(a[j * stride + i]) + u16::from(b[j * stride + i]) + 1;
            dst[j * stride + i] = (s >> 1) as u8;
        }
    }
}

/// Golden `addblock`: `dst = clamp(dst + blk, 0, 255)` over an 8×8 block;
/// `blk` is a contiguous row-major 8×8 `i16` array.
pub fn golden_addblock(dst: &mut [u8], stride: usize, blk: &[i16]) {
    for j in 0..8 {
        for i in 0..8 {
            let v = i32::from(dst[j * stride + i]) + i32::from(blk[j * 8 + i]);
            dst[j * stride + i] = v.clamp(0, 255) as u8;
        }
    }
}

// ======================================================================
// Emitters
// ======================================================================

/// Argument registers of the SAD/SSD body: block pointers, row stride,
/// block height and the scalar result destination.
#[derive(Debug, Clone, Copy)]
pub struct SadArgs {
    /// Current-block pointer (not clobbered).
    pub p1: IReg,
    /// Reference-block pointer (not clobbered).
    pub p2: IReg,
    /// Row stride in bytes.
    pub lx: IReg,
    /// Block height (rows).
    pub h: IReg,
    /// Result register.
    pub out: IReg,
}

/// Emits the `motion1` (SAD) body in the requested variant.
pub fn emit_motion1(a: &mut Asm, v: Variant, args: &SadArgs) {
    emit_distance(a, v, args, false);
}

/// Emits the `motion2` (SSD) body in the requested variant.
pub fn emit_motion2(a: &mut Asm, v: Variant, args: &SadArgs) {
    emit_distance(a, v, args, true);
}

fn emit_distance(a: &mut Asm, v: Variant, args: &SadArgs, squared: bool) {
    match v {
        Variant::Scalar => emit_distance_scalar(a, args, squared),
        Variant::Mmx64 | Variant::Mmx128 => {
            a.vector_region(|a| emit_distance_mmx(a, v.width(), args, squared));
        }
        Variant::Vmmx64 | Variant::Vmmx128 => {
            a.vector_region(|a| emit_distance_vmmx(a, v.width(), args, squared));
        }
    }
}

fn emit_distance_scalar(a: &mut Asm, args: &SadArgs, squared: bool) {
    let (p1, p2) = (a.ireg(), a.ireg());
    let (x, y, vv, i, j) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(p1, args.p1);
    a.mv(p2, args.p2);
    a.li(args.out, 0);
    a.li(j, 0);
    a.for_loop(j, args.h, |a| {
        a.li(i, 0);
        a.for_loop(i, 16, |a| {
            a.add(x, p1, i);
            a.lbu(x, x, 0);
            a.add(y, p2, i);
            a.lbu(y, y, 0);
            a.sub(vv, x, y);
            if squared {
                a.mul(vv, vv, vv);
            } else {
                // if (v < 0) v = -v;
                a.if_(Cond::Lt, vv, 0, |a| {
                    a.li(x, 0);
                    a.sub(vv, x, vv);
                });
            }
            a.add(args.out, args.out, vv);
        });
        a.add(p1, p1, args.lx);
        a.add(p2, p2, args.lx);
    });
    for r in [p1, p2, x, y, vv, i, j] {
        a.release_ireg(r);
    }
}

fn emit_distance_mmx(a: &mut Asm, width: usize, args: &SadArgs, squared: bool) {
    let (p1, p2, j, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(p1, args.p1);
    a.mv(p2, args.p2);
    let acc1 = a.vreg();
    let acc2 = a.vreg();
    let zero = a.vreg();
    let (v1, v2, v3, v4) = (a.vreg(), a.vreg(), a.vreg(), a.vreg());
    a.li(t, 0);
    a.vsplat(zero, t, Esz::B);
    a.vmov(acc1, zero);
    a.vmov(acc2, zero);
    a.li(j, 0);
    let halves = 16 / width; // 2 for 64-bit registers, 1 for 128-bit
    a.for_loop(j, args.h, |a| {
        for half in 0..halves {
            let off = (half * width) as i32;
            a.vload(v1, p1, off, width as u8);
            a.vload(v2, p2, off, width as u8);
            if squared {
                // abs-difference bytes, widen, square via pmaddwd
                a.simd(VOp::SubU(Esz::B), v3, v1, v2);
                a.simd(VOp::SubU(Esz::B), v4, v2, v1);
                a.simd(VOp::Or, v3, v3, v4);
                a.simd(VOp::UnpackLo(Esz::B), v1, v3, zero);
                a.simd(VOp::UnpackHi(Esz::B), v2, v3, zero);
                a.simd(VOp::Madd, v1, v1, v1);
                a.simd(VOp::Madd, v2, v2, v2);
                a.simd(VOp::Add(Esz::W), acc1, acc1, v1);
                a.simd(VOp::Add(Esz::W), acc2, acc2, v2);
            } else {
                a.simd(VOp::Sad, v1, v1, v2);
                let acc = if half == 0 { acc1 } else { acc2 };
                a.simd(VOp::Add(Esz::W), acc, acc, v1);
            }
        }
        a.add(p1, p1, args.lx);
        a.add(p2, p2, args.lx);
    });
    // Horizontal reduction to a scalar.
    let lanes_w = width / 4;
    let s = a.ireg();
    a.li(args.out, 0);
    if squared {
        for acc in [acc1, acc2] {
            for l in 0..lanes_w {
                a.movsv(s, acc, l as u8, Esz::W, false);
                a.add(args.out, args.out, s);
            }
        }
    } else {
        // SAD sums live in lane 0 of each 64-bit group.
        for acc in [acc1, acc2] {
            for g in 0..width / 8 {
                a.movsv(s, acc, (2 * g) as u8, Esz::W, false);
                a.add(args.out, args.out, s);
            }
            if width == 16 {
                break; // 128-bit code uses a single accumulator
            }
        }
    }
    a.release_ireg(s);
    for r in [p1, p2, j, t] {
        a.release_ireg(r);
    }
    for vr in [acc1, acc2, zero, v1, v2, v3, v4] {
        a.release_vreg(vr);
    }
}

fn emit_distance_vmmx(a: &mut Asm, width: usize, args: &SadArgs, squared: bool) {
    let op = if squared { AccOp::Ssd } else { AccOp::Sad };
    a.setvl(args.h);
    if width == 16 {
        // Fig. 3(e): the whole 16-wide block fits one matrix register pair.
        let (m1, m2) = (a.mreg(), a.mreg());
        let acc = a.areg();
        a.accclear(acc);
        a.mload(m1, args.p1, args.lx, 16);
        a.mload(m2, args.p2, args.lx, 16);
        a.macc(op, acc, m1, m2);
        a.accsum(args.out, acc);
        a.release_mreg(m1);
        a.release_mreg(m2);
        a.release_areg(acc);
    } else {
        // Fig. 3(c): two 8-byte column halves, two accumulators.
        let (m1, m2, m3, m4) = (a.mreg(), a.mreg(), a.mreg(), a.mreg());
        let (acc1, acc2) = (a.areg(), a.areg());
        let (tp1, tp2, r) = (a.ireg(), a.ireg(), a.ireg());
        a.accclear(acc1);
        a.accclear(acc2);
        a.mload(m1, args.p1, args.lx, 8);
        a.mload(m2, args.p2, args.lx, 8);
        a.macc(op, acc1, m1, m2);
        a.addi(tp1, args.p1, 8);
        a.addi(tp2, args.p2, 8);
        a.mload(m3, tp1, args.lx, 8);
        a.mload(m4, tp2, args.lx, 8);
        a.macc(op, acc2, m3, m4);
        a.accsum(args.out, acc1);
        a.accsum(r, acc2);
        a.add(args.out, args.out, r);
        for m in [m1, m2, m3, m4] {
            a.release_mreg(m);
        }
        a.release_areg(acc1);
        a.release_areg(acc2);
        for t in [tp1, tp2, r] {
            a.release_ireg(t);
        }
    }
}

/// Argument registers of the `comp` (motion compensation) body.
#[derive(Debug, Clone, Copy)]
pub struct CompArgs {
    /// First source pointer.
    pub src1: IReg,
    /// Second source pointer.
    pub src2: IReg,
    /// Destination pointer.
    pub dst: IReg,
    /// Row stride in bytes.
    pub lx: IReg,
    /// Block height.
    pub h: IReg,
}

/// Emits the `comp` body: `dst = avg(src1, src2)` over an 8-wide block.
pub fn emit_comp(a: &mut Asm, v: Variant, args: &CompArgs) {
    match v {
        Variant::Scalar => {
            let (pa, pb, pd) = (a.ireg(), a.ireg(), a.ireg());
            let (x, y, i, j) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            a.mv(pa, args.src1);
            a.mv(pb, args.src2);
            a.mv(pd, args.dst);
            a.li(j, 0);
            a.for_loop(j, args.h, |a| {
                a.li(i, 0);
                a.for_loop(i, 8, |a| {
                    a.add(x, pa, i);
                    a.lbu(x, x, 0);
                    a.add(y, pb, i);
                    a.lbu(y, y, 0);
                    a.add(x, x, y);
                    a.addi(x, x, 1);
                    a.srli(x, x, 1);
                    a.add(y, pd, i);
                    a.sb(x, y, 0);
                });
                a.add(pa, pa, args.lx);
                a.add(pb, pb, args.lx);
                a.add(pd, pd, args.lx);
            });
            for r in [pa, pb, pd, x, y, i, j] {
                a.release_ireg(r);
            }
        }
        Variant::Mmx64 | Variant::Mmx128 => a.vector_region(|a| {
            // The block is only 8 bytes wide: 128-bit registers bring no
            // benefit (partial loads), exactly as the paper observes.
            let (pa, pb, pd, j) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            let (v1, v2) = (a.vreg(), a.vreg());
            a.mv(pa, args.src1);
            a.mv(pb, args.src2);
            a.mv(pd, args.dst);
            a.li(j, 0);
            a.for_loop(j, args.h, |a| {
                a.vload(v1, pa, 0, 8);
                a.vload(v2, pb, 0, 8);
                a.simd(VOp::Avg(Esz::B), v1, v1, v2);
                a.vstore(v1, pd, 0, 8);
                a.add(pa, pa, args.lx);
                a.add(pb, pb, args.lx);
                a.add(pd, pd, args.lx);
            });
            for r in [pa, pb, pd, j] {
                a.release_ireg(r);
            }
            a.release_vreg(v1);
            a.release_vreg(v2);
        }),
        Variant::Vmmx64 | Variant::Vmmx128 => a.vector_region(|a| {
            let (m1, m2) = (a.mreg(), a.mreg());
            a.setvl(args.h);
            a.mload(m1, args.src1, args.lx, 8);
            a.mload(m2, args.src2, args.lx, 8);
            a.mop(VOp::Avg(Esz::B), m1, m1, m2);
            a.mstore(m1, args.dst, args.lx, 8);
            a.release_mreg(m1);
            a.release_mreg(m2);
        }),
    }
}

/// Argument registers of the `addblock` body.
#[derive(Debug, Clone, Copy)]
pub struct AddBlockArgs {
    /// Destination picture pointer (8×8 block top-left).
    pub dst: IReg,
    /// Row stride of the picture in bytes.
    pub lx: IReg,
    /// Pointer to the contiguous 8×8 `i16` residual block.
    pub blk: IReg,
}

/// Emits the `addblock` body: `dst = clamp(dst + blk)` over an 8×8 block.
pub fn emit_addblock(a: &mut Asm, v: Variant, args: &AddBlockArgs) {
    match v {
        Variant::Scalar => {
            let (pd, pb) = (a.ireg(), a.ireg());
            let (x, y, i, j) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            a.mv(pd, args.dst);
            a.mv(pb, args.blk);
            a.li(j, 0);
            a.for_loop(j, 8, |a| {
                a.li(i, 0);
                a.for_loop(i, 8, |a| {
                    a.add(x, pd, i);
                    a.lbu(x, x, 0);
                    a.slli(y, i, 1);
                    a.add(y, pb, y);
                    a.lh(y, y, 0);
                    a.add(x, x, y);
                    a.if_(Cond::Lt, x, 0, |a| a.li(x, 0));
                    a.if_(Cond::Gt, x, 255, |a| a.li(x, 255));
                    a.add(y, pd, i);
                    a.sb(x, y, 0);
                });
                a.add(pd, pd, args.lx);
                a.addi(pb, pb, 16);
            });
            for r in [pd, pb, x, y, i, j] {
                a.release_ireg(r);
            }
        }
        Variant::Mmx64 | Variant::Mmx128 => a.vector_region(|a| {
            let (pd, pb, j, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            let zero = a.vreg();
            let (d, lo, hi) = (a.vreg(), a.vreg(), a.vreg());
            a.mv(pd, args.dst);
            a.mv(pb, args.blk);
            a.li(t, 0);
            a.vsplat(zero, t, Esz::B);
            a.li(j, 0);
            if v.width() == 8 {
                a.for_loop(j, 8, |a| {
                    a.vload(d, pd, 0, 8);
                    a.simd(VOp::UnpackLo(Esz::B), lo, d, zero);
                    a.simd(VOp::UnpackHi(Esz::B), hi, d, zero);
                    a.vload(d, pb, 0, 8);
                    a.simd(VOp::AddS(Esz::H), lo, lo, d);
                    a.vload(d, pb, 8, 8);
                    a.simd(VOp::AddS(Esz::H), hi, hi, d);
                    a.simd(VOp::PackU(Esz::H), lo, lo, hi);
                    a.vstore(lo, pd, 0, 8);
                    a.add(pd, pd, args.lx);
                    a.addi(pb, pb, 16);
                });
            } else {
                a.for_loop(j, 8, |a| {
                    a.vload(d, pd, 0, 8);
                    a.simd(VOp::UnpackLo(Esz::B), lo, d, zero);
                    a.vload(d, pb, 0, 16);
                    a.simd(VOp::AddS(Esz::H), lo, lo, d);
                    a.simd(VOp::PackU(Esz::H), lo, lo, zero);
                    a.vstore(lo, pd, 0, 8);
                    a.add(pd, pd, args.lx);
                    a.addi(pb, pb, 16);
                });
            }
            for r in [pd, pb, j, t] {
                a.release_ireg(r);
            }
            for vr in [zero, d, lo, hi] {
                a.release_vreg(vr);
            }
        }),
        Variant::Vmmx64 | Variant::Vmmx128 => a.vector_region(|a| {
            let t = a.ireg();
            let zero = a.mreg();
            let (d, lo, hi, b0, b1) = (a.mreg(), a.mreg(), a.mreg(), a.mreg(), a.mreg());
            a.setvl(8);
            a.li(t, 0);
            a.msplat(zero, t, Esz::B);
            a.mload(d, args.dst, args.lx, 8);
            a.mop(VOp::UnpackLo(Esz::B), lo, d, zero);
            if v.width() == 8 {
                let tp = a.ireg();
                a.mop(VOp::UnpackHi(Esz::B), hi, d, zero);
                a.mload(b0, args.blk, 16, 8);
                a.addi(tp, args.blk, 8);
                a.mload(b1, tp, 16, 8);
                a.mop(VOp::AddS(Esz::H), lo, lo, b0);
                a.mop(VOp::AddS(Esz::H), hi, hi, b1);
                a.mop(VOp::PackU(Esz::H), lo, lo, hi);
                a.release_ireg(tp);
            } else {
                a.mload(b0, args.blk, 16, 16);
                a.mop(VOp::AddS(Esz::H), lo, lo, b0);
                a.mop(VOp::PackU(Esz::H), lo, lo, zero);
            }
            a.mstore(lo, args.dst, args.lx, 8);
            a.release_ireg(t);
            for m in [zero, d, lo, hi, b0, b1] {
                a.release_mreg(m);
            }
        }),
    }
}

// ======================================================================
// Standalone kernel workloads
// ======================================================================

const STRIDE: usize = 800; // the comp stride the paper quotes
const NPOS: usize = 48;

fn block_workload(v: Variant, squared: bool) -> BuiltKernel {
    let h = 16usize;
    let cur = crate::data::smooth_plane(STRIDE, h, 11);
    let refp = crate::data::smooth_plane(STRIDE, h, 23);

    let mut asm = Asm::new();
    let (p1, p2, lxr, hr, outp, npos) = (
        asm.arg(0),
        asm.arg(1),
        asm.arg(2),
        asm.arg(3),
        asm.arg(4),
        asm.arg(5),
    );
    let s = asm.ireg();
    let i = asm.ireg();
    let sargs = SadArgs {
        p1,
        p2,
        lx: lxr,
        h: hr,
        out: s,
    };
    asm.li(i, 0);
    asm.for_loop(i, npos, |a| {
        if squared {
            emit_motion2(a, v, &sargs);
        } else {
            emit_motion1(a, v, &sargs);
        }
        a.sw(s, outp, 0);
        a.addi(outp, outp, 4);
        a.addi(p1, p1, 16);
        a.addi(p2, p2, 16);
    });
    asm.halt();
    let program = asm.finish();

    let mut layout = Layout::new(1 << 20);
    let cur_addr = layout.alloc_array(cur.len() as u64, 1);
    let ref_addr = layout.alloc_array(refp.len() as u64, 1);
    let out_addr = layout.alloc_array(NPOS as u64, 4);

    let mut machine = Machine::new(v.machine_ext(), 1 << 20);
    machine.write_bytes(cur_addr, &cur).unwrap();
    machine.write_bytes(ref_addr, &refp).unwrap();
    machine.set_ireg(0, cur_addr as i64);
    machine.set_ireg(1, ref_addr as i64);
    machine.set_ireg(2, STRIDE as i64);
    machine.set_ireg(3, h as i64);
    machine.set_ireg(4, out_addr as i64);
    machine.set_ireg(5, NPOS as i64);

    let expected: Vec<i32> = (0..NPOS)
        .map(|p| {
            let f = if squared { golden_ssd } else { golden_sad };
            f(&cur[p * 16..], &refp[p * 16..], STRIDE, h) as i32
        })
        .collect();

    BuiltKernel::new(program, machine, move |m: &Machine| {
        let got = m.read_i32s(out_addr, NPOS).map_err(|e| e.to_string())?;
        if got == expected {
            Ok(())
        } else {
            Err(format!("SAD/SSD mismatch: got {got:?}, want {expected:?}"))
        }
    })
}

/// The `motion1` kernel: 16×16 sum of absolute differences.
#[derive(Debug, Clone, Copy, Default)]
pub struct Motion1;

impl Kernel for Motion1 {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "motion1",
            app: "mpeg2enc",
            description: "Sum of Absolute Differences",
            data_size: "16x16 8-bit",
        }
    }

    fn build(&self, variant: Variant) -> BuiltKernel {
        block_workload(variant, false)
    }
}

/// The `motion2` kernel: 16×16 sum of squared differences.
#[derive(Debug, Clone, Copy, Default)]
pub struct Motion2;

impl Kernel for Motion2 {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "motion2",
            app: "mpeg2enc",
            description: "Sum of Quadratic Differences",
            data_size: "16x16 8-bit",
        }
    }

    fn build(&self, variant: Variant) -> BuiltKernel {
        block_workload(variant, true)
    }
}

/// The `comp` kernel: 8×4 motion-compensation average.
#[derive(Debug, Clone, Copy, Default)]
pub struct Comp;

impl Kernel for Comp {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "comp",
            app: "mpeg2dec",
            description: "Motion compensation",
            data_size: "8x4 8-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let h = 4usize;
        let npos = 96usize;
        let a_plane = crate::data::smooth_plane(STRIDE, h, 31);
        let b_plane = crate::data::smooth_plane(STRIDE, h, 41);

        let mut asm = Asm::new();
        let (s1, s2, dst, lxr, hr, nposr) = (
            asm.arg(0),
            asm.arg(1),
            asm.arg(2),
            asm.arg(3),
            asm.arg(4),
            asm.arg(5),
        );
        let i = asm.ireg();
        let cargs = CompArgs {
            src1: s1,
            src2: s2,
            dst,
            lx: lxr,
            h: hr,
        };
        asm.li(i, 0);
        asm.for_loop(i, nposr, |a| {
            emit_comp(a, v, &cargs);
            a.addi(s1, s1, 8);
            a.addi(s2, s2, 8);
            a.addi(dst, dst, 8);
        });
        asm.halt();
        let program = asm.finish();

        let mut layout = Layout::new(1 << 20);
        let a_addr = layout.alloc_array(a_plane.len() as u64, 1);
        let b_addr = layout.alloc_array(b_plane.len() as u64, 1);
        let d_addr = layout.alloc_array((STRIDE * h) as u64, 1);

        let mut machine = Machine::new(v.machine_ext(), 1 << 20);
        machine.write_bytes(a_addr, &a_plane).unwrap();
        machine.write_bytes(b_addr, &b_plane).unwrap();
        machine.set_ireg(0, a_addr as i64);
        machine.set_ireg(1, b_addr as i64);
        machine.set_ireg(2, d_addr as i64);
        machine.set_ireg(3, STRIDE as i64);
        machine.set_ireg(4, h as i64);
        machine.set_ireg(5, npos as i64);

        let mut expected = vec![0u8; STRIDE * h];
        for p in 0..npos {
            let mut block = vec![0u8; STRIDE * h];
            golden_comp(&a_plane[p * 8..], &b_plane[p * 8..], &mut block, STRIDE, h);
            for j in 0..h {
                for i2 in 0..8 {
                    expected[j * STRIDE + p * 8 + i2] = block[j * STRIDE + i2];
                }
            }
        }

        BuiltKernel::new(program, machine, move |m: &Machine| {
            let got = m
                .read_bytes(d_addr, STRIDE * h)
                .map_err(|e| e.to_string())?;
            // Only block columns are written; compare those.
            for p in 0..npos {
                for j in 0..h {
                    for i2 in 0..8 {
                        let idx = j * STRIDE + p * 8 + i2;
                        if got[idx] != expected[idx] {
                            return Err(format!(
                                "comp mismatch at block {p} ({j},{i2}): got {} want {}",
                                got[idx], expected[idx]
                            ));
                        }
                    }
                }
            }
            Ok(())
        })
    }
}

/// The `addblock` kernel: saturating 8×8 block addition.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddBlock;

impl Kernel for AddBlock {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "addblock",
            app: "mpeg2dec",
            description: "Picture decoding (block addition)",
            data_size: "8x8 8-bit",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let npos = 96usize;
        let plane = crate::data::smooth_plane(STRIDE, 8, 51);
        let mut rng = crate::data::Rng64::new(61);
        let blocks: Vec<i16> = rng.i16s_in(npos * 64, -160, 160);

        let mut asm = Asm::new();
        let (dst, lxr, blk, nposr) = (asm.arg(0), asm.arg(1), asm.arg(2), asm.arg(3));
        let i = asm.ireg();
        let bargs = AddBlockArgs { dst, lx: lxr, blk };
        asm.li(i, 0);
        asm.for_loop(i, nposr, |a| {
            emit_addblock(a, v, &bargs);
            a.addi(dst, dst, 8);
            a.addi(blk, blk, 128);
        });
        asm.halt();
        let program = asm.finish();

        let mut layout = Layout::new(1 << 20);
        let d_addr = layout.alloc_array((STRIDE * 8) as u64, 1);
        let b_addr = layout.alloc_array((npos * 64) as u64, 2);

        let mut machine = Machine::new(v.machine_ext(), 1 << 20);
        machine.write_bytes(d_addr, &plane).unwrap();
        machine.write_i16s(b_addr, &blocks).unwrap();
        machine.set_ireg(0, d_addr as i64);
        machine.set_ireg(1, STRIDE as i64);
        machine.set_ireg(2, b_addr as i64);
        machine.set_ireg(3, npos as i64);

        let mut expected = plane.clone();
        for p in 0..npos {
            let mut window = vec![0u8; 8 * 8];
            for j in 0..8 {
                for i2 in 0..8 {
                    window[j * 8 + i2] = expected[j * STRIDE + p * 8 + i2];
                }
            }
            // apply golden on a compact copy with stride 8
            let mut compact = window.clone();
            golden_addblock(&mut compact, 8, &blocks[p * 64..p * 64 + 64]);
            for j in 0..8 {
                for i2 in 0..8 {
                    expected[j * STRIDE + p * 8 + i2] = compact[j * 8 + i2];
                }
            }
        }

        BuiltKernel::new(program, machine, move |m: &Machine| {
            let got = m
                .read_bytes(d_addr, STRIDE * 8)
                .map_err(|e| e.to_string())?;
            if got == &expected[..] {
                Ok(())
            } else {
                let idx = got
                    .iter()
                    .zip(expected.iter())
                    .position(|(a, b)| a != b)
                    .unwrap();
                Err(format!(
                    "addblock mismatch at byte {idx}: got {} want {}",
                    got[idx], expected[idx]
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_sad_zero_for_identical() {
        let img = crate::data::smooth_plane(64, 16, 1);
        assert_eq!(golden_sad(&img, &img, 64, 16), 0);
        assert!(golden_sad(&img, &img[1..], 64, 16) > 0);
    }

    #[test]
    fn golden_ssd_is_square_of_diffs() {
        let a = [10u8; 64 * 16];
        let mut b = [10u8; 64 * 16];
        b[0] = 13; // d = 3 → 9
        assert_eq!(golden_ssd(&a, &b, 64, 16), 9);
    }

    #[test]
    fn all_variants_match_golden_motion1() {
        for v in Variant::ALL {
            let built = Motion1.build(v);
            built.run_checked().unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_motion2() {
        for v in Variant::ALL {
            let built = Motion2.build(v);
            built.run_checked().unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_comp() {
        for v in Variant::ALL {
            let built = Comp.build(v);
            built.run_checked().unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn all_variants_match_golden_addblock() {
        for v in Variant::ALL {
            let built = AddBlock.build(v);
            built.run_checked().unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn vmmx_executes_far_fewer_instructions() {
        let scalar = Motion1.build(Variant::Scalar).run_checked().unwrap();
        let mmx64 = Motion1.build(Variant::Mmx64).run_checked().unwrap();
        let vmmx128 = Motion1.build(Variant::Vmmx128).run_checked().unwrap();
        assert!(mmx64.dyn_instrs < scalar.dyn_instrs / 5);
        assert!(vmmx128.dyn_instrs < mmx64.dyn_instrs / 5);
    }
}
