//! Keeps `docs/wire-v1.md` honest: the document must mention every
//! error code and every route of the v1 contract. A new code or route
//! that lands without documentation fails here.

use simdsim_api::ErrorCode;

fn wire_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/wire-v1.md");
    std::fs::read_to_string(path).expect("docs/wire-v1.md exists")
}

#[test]
fn every_error_code_is_documented() {
    let doc = wire_doc();
    for code in ErrorCode::ALL {
        let wire = format!("`{}`", code.as_str());
        assert!(
            doc.contains(&wire),
            "docs/wire-v1.md does not mention error code {wire}"
        );
        let status = format!("| {} |", code.status());
        assert!(
            doc.contains(&status),
            "docs/wire-v1.md does not list status {} (for {wire})",
            code.status()
        );
    }
}

#[test]
fn every_route_is_documented() {
    let doc = wire_doc();
    for route in [
        "GET | `/v1/healthz`",
        "GET | `/v1/scenarios`",
        "GET | `/v1/sweeps`",
        "POST | `/v1/sweeps`",
        "POST | `/v1/sweeps:batch`",
        "GET | `/v1/sweeps/{id}`",
        "GET | `/v1/sweeps/{id}/cells",
        "GET | `/v1/sweeps/{id}/profile`",
        "DELETE | `/v1/sweeps/{id}`",
        "POST | `/v1/workers/register`",
        "POST | `/v1/workers/{id}/heartbeat`",
        "POST | `/v1/workers/{id}/lease`",
        "POST | `/v1/workers/{id}/report`",
        "GET | `/v1/workers`",
        "GET | `/v1/store/snapshot`",
        "PUT | `/v1/store/snapshot`",
        "GET | `/v1/debug/events",
        "GET | `/metrics`",
    ] {
        assert!(
            doc.contains(route),
            "docs/wire-v1.md does not document route `{route}`"
        );
    }
}

#[test]
fn every_stall_cause_label_is_documented() {
    let doc = wire_doc();
    for cause in simdsim_api::StallCause::ALL {
        let label = format!("`{}`", cause.label());
        assert!(
            doc.contains(&label),
            "docs/wire-v1.md does not mention stall cause {label}"
        );
    }
}

#[test]
fn every_dto_has_a_section() {
    let doc = wire_doc();
    for dto in [
        "Health",
        "ScenarioInfo",
        "SweepRequest",
        "SubmitResponse",
        "BatchSubmitRequest",
        "BatchSubmitItem",
        "BatchSubmitResponse",
        "JobState",
        "Progress",
        "CellResult",
        "StallEntry",
        "ClassSlots",
        "CpiProfile",
        "ProfileResponse",
        "SweepResult",
        "SweepStatus",
        "CellsPage",
        "JobSummary",
        "JobList",
        "RegisterRequest",
        "RegisterResponse",
        "HeartbeatResponse",
        "LeaseRequest",
        "LeaseResponse",
        "CellPhases",
        "UnitResult",
        "ReportRequest",
        "ReportResponse",
        "DebugEvent",
        "DebugEvents",
        "WorkerInfo",
        "FleetStatus",
        "StoreSnapshotEntry",
        "StoreSnapshot",
        "SnapshotImported",
        "ApiError",
    ] {
        assert!(
            doc.contains(&format!("### {dto}"))
                || doc.contains(&format!("{dto} /"))
                || doc.contains(&format!("/ {dto}")),
            "docs/wire-v1.md has no section for DTO `{dto}`"
        );
    }
}
