//! `simdsim-api` — the versioned API contract of the sweep service.
//!
//! Before this crate, every consumer of `simdsim-serve` (the `loadgen`
//! bench, the smoke script, the integration tests) re-implemented its own
//! slice of the wire format by hand.  This crate is now the **only**
//! definition: typed, serializable DTOs for every request and response of
//! the `/v1` surface, a machine-readable [`ApiError`] taxonomy, and the
//! conversions from the sweep engine's report types onto the wire shapes.
//!
//! * the server (`simdsim-serve`) serializes these types;
//! * the client (`simdsim-client`) deserializes them;
//! * both agree by construction, because the bytes come from one place.
//!
//! The contract is versioned by URL: every route lives under
//! [`API_BASE`] (`/v1`).  The pre-v1 unversioned routes remain as
//! deprecated aliases onto the same handlers, and the v1 shapes are
//! field-compatible supersets of the old hand-rolled JSON, so existing
//! `curl` scripts keep working unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debug;
pub mod dto;
pub mod error;
pub mod fleet;

/// The API version this crate defines.
pub const API_VERSION: &str = "v1";

pub use debug::{DebugEvent, DebugEvents};
pub use dto::{
    parse_json, CellResult, CellsPage, ClassSlots, CpiProfile, Health, JobList, JobState,
    JobSummary, ProfileResponse, Progress, ScenarioInfo, StallEntry, SubmitResponse, SweepRequest,
    SweepResult, SweepStatus, API_BASE,
};
pub use error::{ApiError, ErrorCode};
pub use fleet::{
    BatchSubmitItem, BatchSubmitRequest, BatchSubmitResponse, FleetStatus, HeartbeatResponse,
    Lease, LeaseRequest, LeaseResponse, LeasedCell, RegisterRequest, RegisterResponse,
    ReportRequest, ReportResponse, SnapshotImported, StoreSnapshot, StoreSnapshotEntry, UnitResult,
    WorkerInfo,
};

// Re-exported so API consumers can name the payload types carried by the
// DTOs without depending on the engine crate directly.
pub use simdsim_obs::TRACE_HEADER;
pub use simdsim_sweep::{Cell, CellPhases, CellStats, CpiStack, Scenario, StallCause};
