//! The API's error contract: a machine-readable [`ErrorCode`] plus a
//! human-readable message, serialized as `{"code": ..., "error": ...}`.
//!
//! The `error` field name is shared with the pre-v1 wire format, so legacy
//! consumers that only read the message keep working; new consumers branch
//! on `code` instead of substring-matching messages.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Machine-readable error category, mapped one-to-one onto an HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was syntactically or semantically malformed (400).
    BadRequest,
    /// The route or resource does not exist (404).
    NotFound,
    /// The named scenario is in no catalog (404).
    UnknownScenario,
    /// The job id is unknown or its record was evicted (404).
    UnknownJob,
    /// The worker id is unknown or the worker was evicted for missing
    /// heartbeats — the worker should re-register (404).
    UnknownWorker,
    /// The job is already finished, so the operation no longer applies
    /// (409).
    Conflict,
    /// The submission queue is at capacity (503).
    QueueFull,
    /// The HTTP method is not supported on this route (405).
    MethodNotAllowed,
    /// A request size limit was exceeded (413).
    PayloadTooLarge,
    /// A protocol feature the server does not implement (501).
    NotImplemented,
    /// An unexpected server-side failure (500).
    Internal,
}

impl ErrorCode {
    /// Every code in the contract, in status order. Lets tests and docs
    /// enumerate the full error surface without hand-kept lists.
    pub const ALL: [ErrorCode; 11] = [
        ErrorCode::BadRequest,
        ErrorCode::NotFound,
        ErrorCode::UnknownScenario,
        ErrorCode::UnknownJob,
        ErrorCode::UnknownWorker,
        ErrorCode::MethodNotAllowed,
        ErrorCode::Conflict,
        ErrorCode::PayloadTooLarge,
        ErrorCode::Internal,
        ErrorCode::NotImplemented,
        ErrorCode::QueueFull,
    ];

    /// The snake_case wire name of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::UnknownScenario => "unknown_scenario",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::UnknownWorker => "unknown_worker",
            ErrorCode::Conflict => "conflict",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::NotImplemented => "not_implemented",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name back into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "not_found" => ErrorCode::NotFound,
            "unknown_scenario" => ErrorCode::UnknownScenario,
            "unknown_job" => ErrorCode::UnknownJob,
            "unknown_worker" => ErrorCode::UnknownWorker,
            "conflict" => ErrorCode::Conflict,
            "queue_full" => ErrorCode::QueueFull,
            "method_not_allowed" => ErrorCode::MethodNotAllowed,
            "payload_too_large" => ErrorCode::PayloadTooLarge,
            "not_implemented" => ErrorCode::NotImplemented,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status this code is answered with.
    #[must_use]
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound
            | ErrorCode::UnknownScenario
            | ErrorCode::UnknownJob
            | ErrorCode::UnknownWorker => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Conflict => 409,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::Internal => 500,
            ErrorCode::NotImplemented => 501,
            ErrorCode::QueueFull => 503,
        }
    }

    /// The generic code for an HTTP status (used when only the status is
    /// known, e.g. protocol-level rejections).
    #[must_use]
    pub fn from_status(status: u16) -> Self {
        match status {
            404 => ErrorCode::NotFound,
            405 => ErrorCode::MethodNotAllowed,
            409 => ErrorCode::Conflict,
            413 => ErrorCode::PayloadTooLarge,
            500 => ErrorCode::Internal,
            501 => ErrorCode::NotImplemented,
            503 => ErrorCode::QueueFull,
            _ => ErrorCode::BadRequest,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for ErrorCode {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => {
                ErrorCode::parse(s).ok_or_else(|| SerdeError::unknown_variant(s, "ErrorCode"))
            }
            _ => Err(SerdeError::invalid("string", "ErrorCode")),
        }
    }
}

/// A typed API error: every non-2xx v1 response body is one of these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ApiError {
    /// The machine-readable category.
    pub code: ErrorCode,
    /// The human-readable message (field named `error` on the wire for
    /// pre-v1 compatibility).
    pub error: String,
}

impl ApiError {
    /// An error with `code` and `message`.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            error: message.into(),
        }
    }

    /// The HTTP status this error is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.code.status()
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.error)
    }
}

impl std::error::Error for ApiError {}

// Hand-written: tolerate bodies without a `code` (a proxy or a pre-v1
// server answering `{"error": ...}`), mapping them onto `Internal` so the
// client still surfaces the message.
impl Deserialize for ApiError {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "ApiError"));
        };
        let error = match v.get("error") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(SerdeError::invalid("string `error` field", "ApiError")),
        };
        let code = match v.get("code") {
            Some(Value::Str(s)) => ErrorCode::parse(s).unwrap_or(ErrorCode::Internal),
            _ => ErrorCode::Internal,
        };
        Ok(ApiError { code, error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_round_trips_and_maps_to_a_status() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert!((400..=503).contains(&code.status()));
            let text = serde_json::to_string(&code).expect("serializes");
            let back: ErrorCode = serde_json::from_str(&text).expect("parses");
            assert_eq!(back, code);
        }
    }

    #[test]
    fn api_error_round_trips_and_tolerates_legacy_bodies() {
        let e = ApiError::new(ErrorCode::UnknownScenario, "no scenario `fig9`");
        let text = serde_json::to_string(&e).expect("serializes");
        assert!(text.contains("\"code\":\"unknown_scenario\""), "{text}");
        assert!(text.contains("\"error\":\"no scenario `fig9`\""), "{text}");
        let back: ApiError = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, e);

        // Pre-v1 body without a code still parses.
        let legacy: ApiError =
            serde_json::from_str(r#"{"error":"queue full"}"#).expect("legacy parses");
        assert_eq!(legacy.code, ErrorCode::Internal);
        assert_eq!(legacy.error, "queue full");

        // A body without a message is rejected.
        assert!(serde_json::from_str::<ApiError>(r#"{"code":"conflict"}"#).is_err());
    }
}
