//! The v1 data-transfer objects.
//!
//! Everything the service says or accepts on the wire is one of these
//! types; the server serializes them and [`simdsim-client`] deserializes
//! them, so there is exactly one definition of every field name.  The
//! shapes are supersets of the pre-v1 hand-rolled JSON (same field names,
//! a few additions such as [`CellResult::index`] and
//! [`SubmitResponse::deduped`]), which is what lets the unversioned legacy
//! routes alias the v1 handlers byte-compatibly.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use simdsim_sweep::{
    CellOutcome, CellPhases, CellStats, CpiStack, ProgressEvent, Scenario, StallCause, SweepReport,
    NUM_REGIONS, REGION_LABELS,
};

/// The API version segment every v1 route is mounted under.
pub const API_BASE: &str = "/v1";

/// Lifecycle of one submitted sweep job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting on the queue.
    Queued,
    /// Picked up by a worker, cells resolving.
    Running,
    /// Every cell resolved successfully (from cache or simulation).
    Done,
    /// At least one cell failed.
    Failed,
    /// Cancelled before or during the run; cells resolved before the
    /// cancel keep their statistics.
    Cancelled,
}

impl JobState {
    /// Lower-case wire name of the state.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name back into a state.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// `true` once the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Hand-written so the wire names stay lower-case (the derive shim would
// emit the capitalized variant names).
impl Serialize for JobState {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for JobState {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => {
                JobState::parse(s).ok_or_else(|| SerdeError::unknown_variant(s, "JobState"))
            }
            _ => Err(SerdeError::invalid("string", "JobState")),
        }
    }
}

/// A sweep submission: exactly one of `scenario` (a catalog/user scenario
/// by name) or `inline` (a full scenario document), optionally filtered.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct SweepRequest {
    /// Name of a catalog or user scenario.
    pub scenario: Option<String>,
    /// A full inline scenario document.
    pub inline: Option<Scenario>,
    /// Substring filter on cell labels.
    pub filter: Option<String>,
}

impl SweepRequest {
    /// A request for the named catalog/user scenario.
    #[must_use]
    pub fn by_name(name: impl Into<String>) -> Self {
        Self {
            scenario: Some(name.into()),
            ..Self::default()
        }
    }

    /// A request carrying a full inline scenario document.
    #[must_use]
    pub fn inline(scenario: Scenario) -> Self {
        Self {
            inline: Some(scenario),
            ..Self::default()
        }
    }

    /// Adds a cell-label substring filter.
    #[must_use]
    pub fn filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Checks the exactly-one-of invariant.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated rule.
    pub fn validate(&self) -> Result<(), String> {
        match (&self.scenario, &self.inline) {
            (Some(_), None) | (None, Some(_)) => Ok(()),
            _ => Err(
                "body must have exactly one of `scenario` (name) or `inline` (document)".to_owned(),
            ),
        }
    }
}

// Hand-written: human-authored bodies (curl one-liners) omit the keys
// they don't use, so absent keys must read as `None` — the derive shim
// treats a missing field as an error.
impl Deserialize for SweepRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "SweepRequest"));
        };
        let scenario = match v.get("scenario") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(s.clone()),
            Some(_) => return Err(SerdeError::new("`scenario` must be a string")),
        };
        let inline = match v.get("inline") {
            None | Some(Value::Null) => None,
            Some(doc) => Some(
                Scenario::from_value(doc)
                    .map_err(|e| SerdeError::new(format!("invalid inline scenario: {e}")))?,
            ),
        };
        let filter = match v.get("filter") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(s.clone()),
            Some(_) => return Err(SerdeError::new("`filter` must be a string")),
        };
        Ok(Self {
            scenario,
            inline,
            filter,
        })
    }
}

/// Live cell counters of a job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    /// Cells in the (filtered) sweep.
    pub total: u64,
    /// Cells resolved so far.
    pub completed: u64,
    /// Of those, cells served from the store.
    pub cached: u64,
}

/// One resolved cell: the unit the service streams while a job runs and
/// lists in the final result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's position in the scenario's deterministic expansion
    /// order (stream order is completion order; sort by `index` to
    /// recover expansion order).
    pub index: u64,
    /// The cell's display label.
    pub label: String,
    /// `true` when the result came from the content-addressed store.
    pub cached: bool,
    /// Simulation throughput in MIPS (`null` for cached/failed cells).
    pub mips: Option<f64>,
    /// The timing statistics (`null` when the cell failed).
    pub stats: Option<CellStats>,
    /// The failure message (`null` when the cell succeeded).
    pub error: Option<String>,
    /// Wall-clock breakdown of the cell's resolution (probe / decode /
    /// simulate / store, milliseconds).  Cells streamed while the job
    /// runs report the phases known so far; `store_ms` lands in the final
    /// result, once the write-back has happened.
    pub phases: Option<CellPhases>,
    /// The cell's rendered CPI stack (`null` when the cell failed or its
    /// run had profiling off).  Absent in bodies from pre-profiler
    /// servers, which reads as `null`.
    #[serde(default)]
    pub profile: Option<CpiProfile>,
}

impl CellResult {
    /// Builds the DTO for one engine progress event.
    #[must_use]
    pub fn from_progress(ev: &ProgressEvent) -> Self {
        let secs = ev.wall.as_secs_f64();
        let mips = match &ev.stats {
            Some(s) if !ev.cached && secs > 0.0 => Some(s.instrs as f64 / secs / 1.0e6),
            _ => None,
        };
        Self {
            index: ev.index as u64,
            label: ev.label.clone(),
            cached: ev.cached,
            mips,
            stats: ev.stats.clone(),
            error: ev.error.clone(),
            phases: Some(ev.phases),
            profile: ev
                .stats
                .as_ref()
                .and_then(|s| s.profile.as_ref())
                .map(CpiProfile::from_stack),
        }
    }

    /// Builds the DTO for one final report outcome.
    #[must_use]
    pub fn from_outcome(index: usize, o: &CellOutcome) -> Self {
        Self {
            index: index as u64,
            label: o.cell.label(),
            cached: o.cached,
            mips: o.mips(),
            stats: o.stats.as_ref().ok().cloned(),
            error: o.stats.as_ref().err().map(|e| e.message.clone()),
            phases: Some(o.phases),
            profile: o
                .stats
                .as_ref()
                .ok()
                .and_then(|s| s.profile.as_ref())
                .map(CpiProfile::from_stack),
        }
    }
}

/// One row of a rendered CPI stack: commit slots charged to one stall
/// cause in one code region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEntry {
    /// Stall cause (`data_dep`, `fu_contention`, `issue_width`,
    /// `branch_recovery`, `l1`, `l2`, `memory`, `rename_queue`).
    pub cause: String,
    /// Code region the slots belong to (`scalar` or `vector`).
    pub region: String,
    /// Commit slots lost to this cause in this region.
    pub slots: u64,
}

/// Retired commit slots of one Figure-7 instruction class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSlots {
    /// Class label (`smem`, `sarith`, `sctrl`, `vmem`, `varith`).
    pub class: String,
    /// Commit slots that retired an instruction of this class.
    pub slots: u64,
}

/// A rendered CPI stack: where every commit slot of a run (or of a whole
/// job, when aggregated) went.  Invariant: `issue + Σ stalls == slots`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiProfile {
    /// Execution cycles (summed across cells in an aggregate).
    pub cycles: u64,
    /// Commit width the slots were counted at; `0` when the aggregate
    /// mixes widths.
    pub way: u64,
    /// Total commit slots accounted (`cycles × way` per cell).
    pub slots: u64,
    /// Slots that retired an instruction (== committed instructions).
    pub issue: u64,
    /// Cycles per committed instruction.
    pub cpi: f64,
    /// Retired slots by Figure-7 class, in the figure's stacking order.
    pub classes: Vec<ClassSlots>,
    /// Stalled slots by cause and region, largest first (zero rows are
    /// omitted).
    pub stalls: Vec<StallEntry>,
}

impl CpiProfile {
    /// Renders a model-layer [`CpiStack`] into the wire shape: labelled
    /// rows, sorted largest-stall-first.
    #[must_use]
    pub fn from_stack(stack: &CpiStack) -> Self {
        let classes = simdsim_isa::Class::ALL
            .iter()
            .map(|c| ClassSlots {
                class: c.label().to_owned(),
                slots: stack.class_slots[*c as usize],
            })
            .collect();
        let mut stalls: Vec<StallEntry> = StallCause::ALL
            .iter()
            .flat_map(|cause| {
                (0..NUM_REGIONS).map(|region| StallEntry {
                    cause: cause.label().to_owned(),
                    region: REGION_LABELS[region].to_owned(),
                    slots: stack.stall(*cause, region),
                })
            })
            .filter(|e| e.slots > 0)
            .collect();
        stalls.sort_by(|a, b| {
            b.slots
                .cmp(&a.slots)
                .then_with(|| a.cause.cmp(&b.cause))
                .then_with(|| a.region.cmp(&b.region))
        });
        Self {
            cycles: stack.cycles,
            way: stack.way,
            slots: stack.slots,
            issue: stack.issue_total(),
            cpi: stack.cpi(),
            classes,
            stalls,
        }
    }

    /// Slots lost to stalls, all rows.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stalls.iter().map(|e| e.slots).sum()
    }
}

/// The aggregated CPI stack of one job
/// (`GET /v1/sweeps/{id}/profile`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileResponse {
    /// The id the profile was requested under.
    pub id: u64,
    /// The job's state when the aggregate was cut (a running job yields
    /// the partial aggregate over cells resolved so far).
    pub state: JobState,
    /// Cells whose stacks contributed to the aggregate.
    pub cells: u64,
    /// Cells that resolved successfully but carried no stack (profiling
    /// off, or results cached by a pre-profiler build).
    pub missing: u64,
    /// The aggregate stack (`null` when no cell contributed).
    pub profile: Option<CpiProfile>,
}

/// The final result of a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Per-cell outcomes in deterministic expansion order.
    pub cells: Vec<CellResult>,
    /// Cells served from the store.
    pub cached: u64,
    /// Cells simulated in this job.
    pub executed: u64,
    /// Cells that failed.
    pub failed: u64,
    /// Wall-clock milliseconds spent simulating.
    pub simulated_wall_ms: f64,
    /// Aggregate simulation throughput in MIPS (`null` if all cached).
    pub simulated_mips: Option<f64>,
}

impl SweepResult {
    /// Builds the DTO for a finished engine report.
    #[must_use]
    pub fn from_report(report: &SweepReport) -> Self {
        Self {
            cells: report
                .outcomes
                .iter()
                .enumerate()
                .map(|(i, o)| CellResult::from_outcome(i, o))
                .collect(),
            cached: report.cached() as u64,
            executed: report.executed() as u64,
            failed: report.failed() as u64,
            simulated_wall_ms: report.simulated_wall().as_secs_f64() * 1.0e3,
            simulated_mips: report.simulated_mips(),
        }
    }
}

/// The status document of one job (`GET /v1/sweeps/{id}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepStatus {
    /// The id this status was requested under (a deduplicated submission
    /// observes the shared run under its own id).
    pub id: u64,
    /// The scenario's name.
    pub scenario: String,
    /// The submission's cell-label filter.
    pub filter: Option<String>,
    /// Current lifecycle state.
    pub state: JobState,
    /// Live cell counters.
    pub progress: Progress,
    /// The final result (`null` until the job reaches a terminal state;
    /// stays `null` for jobs cancelled while queued).
    pub result: Option<SweepResult>,
}

/// The answer to a submission (`POST /v1/sweeps`, status 202).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// The job id to poll.
    pub id: u64,
    /// The job's v1 status URL.
    pub url: String,
    /// The job's state at submission time.
    pub state: JobState,
    /// `true` when this submission was coalesced onto an identical
    /// already-queued/running job (one engine run, observed by both ids).
    pub deduped: bool,
    /// The trace id the job is tagged with: the request's
    /// `X-Simdsim-Trace-Id` header when one was sent, otherwise a
    /// server-generated id.  Follow it on `GET /v1/debug/events?trace=`.
    pub trace: Option<String>,
}

/// One entry of the scenario listing (`GET /v1/scenarios`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioInfo {
    /// Scenario name (what [`SweepRequest::by_name`] takes).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Number of cells the scenario expands to (unfiltered).
    pub cells: u64,
    /// `"catalog"` for built-ins, `"user"` for `--scenario-file` entries.
    pub source: String,
}

/// One page of the per-cell result stream
/// (`GET /v1/sweeps/{id}/cells?since=N`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellsPage {
    /// The id the page was requested under.
    pub id: u64,
    /// The job's state when the page was cut.
    pub state: JobState,
    /// The cursor this page starts at (echoed from `?since=`).
    pub since: u64,
    /// The cursor to pass as `?since=` for the next page.
    pub next: u64,
    /// Total cells in the (filtered) sweep.
    pub total: u64,
    /// `true` when the job is terminal and every streamed cell has been
    /// delivered at or before `next` — the stream is complete.
    pub done: bool,
    /// The cells resolved since the cursor, in completion order.
    pub cells: Vec<CellResult>,
}

/// One row of the job listing (`GET /v1/sweeps`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// The job id.
    pub id: u64,
    /// The scenario's name.
    pub scenario: String,
    /// The submission's cell-label filter.
    pub filter: Option<String>,
    /// Current lifecycle state.
    pub state: JobState,
    /// Live cell counters.
    pub progress: Progress,
}

/// The job listing (`GET /v1/sweeps`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobList {
    /// Every known job (queued, running, and retained finished jobs),
    /// newest first.
    pub jobs: Vec<JobSummary>,
}

/// The liveness document (`GET /v1/healthz`) — also the version
/// negotiation handshake: the server advertises every API version it
/// speaks in `api_versions`, and the client refuses to proceed when its
/// own version is not on the list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Health {
    /// `"ok"` when the service is up.
    pub status: String,
    /// The preferred (newest) API version the server speaks (`"v1"`).
    pub version: String,
    /// Every API version the server answers, newest first.
    pub api_versions: Vec<String>,
    /// Queued (not yet running) jobs.
    pub queue_depth: u64,
}

impl Health {
    /// A healthy document for the current API version.
    #[must_use]
    pub fn ok(queue_depth: u64) -> Self {
        Self {
            status: "ok".to_owned(),
            version: crate::API_VERSION.to_owned(),
            api_versions: vec![crate::API_VERSION.to_owned()],
            queue_depth,
        }
    }

    /// `true` when the server speaks API version `v`.
    #[must_use]
    pub fn speaks(&self, v: &str) -> bool {
        self.api_versions.iter().any(|s| s == v)
    }
}

// Hand-written: a pre-negotiation server answers without `api_versions`,
// which must read as "speaks exactly `version`" rather than a parse error
// (the derive shim treats a missing field as an error).
impl Deserialize for Health {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "Health"));
        };
        let status = match v.get("status") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(SerdeError::invalid("string `status` field", "Health")),
        };
        let version = match v.get("version") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(SerdeError::invalid("string `version` field", "Health")),
        };
        let api_versions = match v.get("api_versions") {
            None | Some(Value::Null) => vec![version.clone()],
            Some(list) => Vec::<String>::from_value(list)
                .map_err(|e| SerdeError::new(format!("field `api_versions` of Health: {e}")))?,
        };
        let queue_depth = match v.get("queue_depth") {
            Some(n) => u64::from_value(n)
                .map_err(|e| SerdeError::new(format!("field `queue_depth` of Health: {e}")))?,
            None => return Err(SerdeError::new("missing field `queue_depth` of Health")),
        };
        Ok(Self {
            status,
            version,
            api_versions,
            queue_depth,
        })
    }
}

/// Convenience: parses a typed DTO out of a JSON body, mapping failures
/// onto a plain message (what server handlers wrap into an error DTO).
///
/// # Errors
///
/// Returns the parse failure as a message.
pub fn parse_json<T: Deserialize>(text: &str) -> Result<T, String> {
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_isa::Ext;

    #[test]
    fn job_states_round_trip_lower_case() {
        for st in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            let text = serde_json::to_string(&st).expect("serializes");
            assert_eq!(text, format!("\"{}\"", st.as_str()));
            let back: JobState = serde_json::from_str(&text).expect("parses");
            assert_eq!(back, st);
        }
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(serde_json::from_str::<JobState>("\"paused\"").is_err());
    }

    #[test]
    fn sweep_request_accepts_sparse_bodies_and_validates() {
        // A curl-style body with only the keys the user typed.
        let r: SweepRequest = serde_json::from_str(r#"{"scenario":"fig4"}"#).expect("parses");
        assert_eq!(r.scenario.as_deref(), Some("fig4"));
        assert_eq!(r.inline, None);
        assert_eq!(r.filter, None);
        r.validate().expect("valid");

        let r: SweepRequest =
            serde_json::from_str(r#"{"scenario":"fig4","filter":"/idct/"}"#).expect("parses");
        assert_eq!(r.filter.as_deref(), Some("/idct/"));

        // Neither or both of scenario/inline is invalid.
        let r: SweepRequest = serde_json::from_str("{}").expect("parses");
        assert!(r.validate().is_err());

        // Wrong field types are parse errors, not silent Nones.
        assert!(serde_json::from_str::<SweepRequest>(r#"{"filter":7}"#).is_err());
        assert!(serde_json::from_str::<SweepRequest>(r#"{"scenario":[1]}"#).is_err());
        assert!(serde_json::from_str::<SweepRequest>("[]").is_err());
    }

    #[test]
    fn sweep_request_round_trips_an_inline_scenario() {
        let scenario = Scenario::new("inline-demo", "one cell")
            .kernels(["idct"])
            .exts([Ext::Vmmx128])
            .ways([2]);
        let req = SweepRequest::inline(scenario).filter("/idct/");
        let text = serde_json::to_string(&req).expect("serializes");
        let back: SweepRequest = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, req);
        back.validate().expect("valid");
    }

    #[test]
    fn status_documents_round_trip() {
        let status = SweepStatus {
            id: 7,
            scenario: "fig4".to_owned(),
            filter: Some("/idct/".to_owned()),
            state: JobState::Running,
            progress: Progress {
                total: 4,
                completed: 2,
                cached: 1,
            },
            result: None,
        };
        let text = serde_json::to_string(&status).expect("serializes");
        let back: SweepStatus = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, status);

        let page = CellsPage {
            id: 7,
            state: JobState::Done,
            since: 2,
            next: 4,
            total: 4,
            done: true,
            cells: Vec::new(),
        };
        let text = serde_json::to_string(&page).expect("serializes");
        let back: CellsPage = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, page);

        let health = Health::ok(3);
        assert_eq!(health.version, "v1");
        assert!(health.speaks("v1"));
        assert!(!health.speaks("v2"));
        let text = serde_json::to_string(&health).expect("serializes");
        let back: Health = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, health);

        // A pre-negotiation health body (no `api_versions`) still parses
        // and implies the server speaks exactly its `version`.
        let legacy: Health =
            serde_json::from_str(r#"{"status":"ok","version":"v1","queue_depth":0}"#)
                .expect("legacy parses");
        assert_eq!(legacy.api_versions, vec!["v1".to_owned()]);
    }
}
