//! The debug/observability surface of the v1 contract.
//!
//! `GET /v1/debug/events` exposes the coordinator's flight recorder — the
//! bounded ring of recent structured events ([`simdsim_obs::Event`]) —
//! filterable by trace id, job id and worker id.  The same [`DebugEvent`]
//! shape rides **into** the coordinator inside a worker's
//! [`ReportRequest`](crate::fleet::ReportRequest): the worker's per-unit
//! spans, tagged with the originating trace, so one trace id links a
//! client's submit to every remote simulation it fanned out into.

use serde::{Deserialize, Serialize};
use simdsim_obs::Event;

/// One flight-recorder event on the wire (see [`simdsim_obs::Event`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DebugEvent {
    /// Recorder-assigned sequence number (recording order).
    pub seq: u64,
    /// Milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Dotted event kind, e.g. `http.request`, `job.finish`, `worker.unit`.
    pub kind: String,
    /// The trace this event belongs to (32 hex chars), if any.
    pub trace: Option<String>,
    /// The job id this event belongs to, if any.
    pub job: Option<u64>,
    /// The fleet worker id this event belongs to, if any.
    pub worker: Option<u64>,
    /// The leased unit id this event belongs to, if any.
    pub unit: Option<u64>,
    /// Span duration in milliseconds (`null` for instantaneous events).
    pub dur_ms: Option<f64>,
    /// Free-form human detail.
    pub detail: String,
}

impl DebugEvent {
    /// The wire shape of a recorder event.
    #[must_use]
    pub fn from_event(ev: &Event) -> Self {
        Self {
            seq: ev.seq,
            ts_ms: ev.ts_ms,
            kind: ev.kind.clone(),
            trace: ev.trace.clone(),
            job: ev.job,
            worker: ev.worker,
            unit: ev.unit,
            dur_ms: ev.dur_ms,
            detail: ev.detail.clone(),
        }
    }

    /// The recorder shape of a wire event — how the coordinator ingests a
    /// worker's shipped spans into its own flight recorder (`seq` is
    /// reassigned on record; the worker's timestamp is kept).
    #[must_use]
    pub fn to_event(&self) -> Event {
        let mut ev = Event::new(self.kind.clone());
        ev.ts_ms = self.ts_ms;
        ev.trace = self.trace.clone();
        ev.job = self.job;
        ev.worker = self.worker;
        ev.unit = self.unit;
        ev.dur_ms = self.dur_ms;
        ev.detail = self.detail.clone();
        ev
    }
}

/// The answer to `GET /v1/debug/events`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DebugEvents {
    /// The matching events, oldest first (recording order).
    pub events: Vec<DebugEvent>,
    /// Events the ring has dropped to overflow since the server started —
    /// a non-zero value means older history is gone.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_events_round_trip_and_map_onto_recorder_events() {
        let ev = Event::new("worker.unit")
            .with_trace(Some("ab".repeat(16)))
            .with_job(3)
            .with_worker(1)
            .with_unit(42)
            .with_dur_ms(7.25)
            .with_detail("fig4/idct/sc simulated");
        let wire = DebugEvent::from_event(&ev);
        let text = serde_json::to_string(&DebugEvents {
            events: vec![wire.clone()],
            dropped: 5,
        })
        .expect("serializes");
        let back: DebugEvents = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.dropped, 5);
        assert_eq!(back.events, vec![wire.clone()]);
        assert_eq!(wire.to_event(), ev);
    }
}
