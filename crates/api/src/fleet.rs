//! The fleet surface of the v1 contract: worker registration, heartbeats,
//! work-assignment leases, per-cell result reports, fleet introspection
//! and store snapshots.
//!
//! A worker process speaks four verbs against the coordinator —
//! `POST /v1/workers/register`, `POST /v1/workers/{id}/heartbeat`,
//! `POST /v1/workers/{id}/lease` and `POST /v1/workers/{id}/report` —
//! all carrying the DTOs below.  Cells ride the wire as the engine's own
//! serializable [`Cell`] type, so a leased cell simulates on the worker
//! with exactly the semantics of the in-process engine, and results come
//! back as the same [`CellStats`] the store caches.

use crate::debug::DebugEvent;
use crate::dto::{SubmitResponse, SweepRequest};
use crate::error::ApiError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use simdsim_sweep::{Cell, CellPhases, CellStats};

/// A worker announcing itself (`POST /v1/workers/register`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegisterRequest {
    /// Human-readable worker name (shown in `fleet status`).
    pub name: String,
    /// Concurrent simulation slots the worker offers; also the cell count
    /// it wants per lease.
    pub slots: u64,
    /// Content-address keys already present in the worker's local result
    /// store.  The coordinator uses them for lease affinity: a queued
    /// cell whose key a worker advertises is preferentially leased to
    /// that worker, where it resolves as a cache probe instead of a
    /// simulation.  Optional — an empty list opts out.
    pub cache_keys: Vec<String>,
}

impl Default for RegisterRequest {
    fn default() -> Self {
        Self {
            name: "worker".to_owned(),
            slots: 1,
            cache_keys: Vec::new(),
        }
    }
}

// Hand-written: registration is curl-able, so absent keys take defaults
// instead of erroring (the derive shim requires every field).
impl Deserialize for RegisterRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "RegisterRequest"));
        };
        let mut out = Self::default();
        match v.get("name") {
            None | Some(Value::Null) => {}
            Some(Value::Str(s)) => out.name = s.clone(),
            Some(_) => return Err(SerdeError::new("`name` must be a string")),
        }
        match v.get("slots") {
            None | Some(Value::Null) => {}
            Some(n) => match u64::from_value(n) {
                Ok(s) if s >= 1 => out.slots = s,
                _ => return Err(SerdeError::new("`slots` must be a number >= 1")),
            },
        }
        match v.get("cache_keys") {
            None | Some(Value::Null) => {}
            Some(list) => {
                out.cache_keys = Vec::from_value(list)
                    .map_err(|_| SerdeError::new("`cache_keys` must be a list of strings"))?;
            }
        }
        Ok(out)
    }
}

/// The coordinator's answer to a registration: the worker's id plus the
/// cadence contract it must honour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterResponse {
    /// The id all other fleet routes are addressed with.
    pub worker_id: u64,
    /// How often the worker must heartbeat; missing ~3 intervals evicts
    /// it and re-queues its leased cells.
    pub heartbeat_interval_ms: u64,
    /// How long a lease stays valid without a report before its cells are
    /// re-queued.
    pub lease_ttl_ms: u64,
}

/// The answer to a heartbeat (`POST /v1/workers/{id}/heartbeat`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatResponse {
    /// The worker's id, echoed.
    pub worker_id: u64,
    /// Workers the coordinator currently considers live.
    pub live_workers: u64,
}

/// A worker asking for cells (`POST /v1/workers/{id}/lease`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LeaseRequest {
    /// Upper bound on cells in the granted lease.
    pub max_cells: u64,
    /// Long-poll budget: how long the coordinator may hold the request
    /// open waiting for work before answering "no lease".
    pub wait_ms: u64,
}

impl Default for LeaseRequest {
    fn default() -> Self {
        Self {
            max_cells: 1,
            wait_ms: 0,
        }
    }
}

// Hand-written for the same curl-ability as `RegisterRequest`.
impl Deserialize for LeaseRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "LeaseRequest"));
        };
        let mut out = Self::default();
        match v.get("max_cells") {
            None | Some(Value::Null) => {}
            Some(n) => match u64::from_value(n) {
                Ok(c) if c >= 1 => out.max_cells = c,
                _ => return Err(SerdeError::new("`max_cells` must be a number >= 1")),
            },
        }
        match v.get("wait_ms") {
            None | Some(Value::Null) => {}
            Some(n) => match u64::from_value(n) {
                Ok(w) => out.wait_ms = w,
                Err(_) => return Err(SerdeError::new("`wait_ms` must be a non-negative number")),
            },
        }
        Ok(out)
    }
}

/// One cell of a lease: the coordinator-global work-unit id the report
/// must echo, plus the cell document the worker simulates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeasedCell {
    /// Coordinator-global work-unit id (unique across jobs and leases).
    pub unit: u64,
    /// The cell to simulate.
    pub cell: Cell,
    /// The job the unit belongs to, so worker-side spans can name it.
    pub job: Option<u64>,
    /// The trace id of the originating submission; the worker tags its
    /// per-unit spans with it, which is what stitches a distributed sweep
    /// into one trace.
    pub trace: Option<String>,
}

/// A granted work assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// The lease id the report must carry.
    pub lease_id: u64,
    /// Milliseconds until the lease expires and its cells re-queue.
    pub ttl_ms: u64,
    /// The leased cells.
    pub cells: Vec<LeasedCell>,
}

/// The answer to a lease request: a lease, or `null` when no work was
/// available within the long-poll budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseResponse {
    /// The granted lease (`null` when the queue is empty).
    pub lease: Option<Lease>,
}

/// One simulated (or failed, or locally cached) cell coming back from a
/// worker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UnitResult {
    /// The work-unit id from the lease.
    pub unit: u64,
    /// `true` when the worker served the cell from its local store.
    pub cached: bool,
    /// Wall-clock milliseconds the worker spent simulating.
    pub wall_ms: f64,
    /// The timing statistics (`null` when the cell failed).
    pub stats: Option<CellStats>,
    /// The failure message (`null` when the cell succeeded).
    pub error: Option<String>,
    /// The worker-measured breakdown of `wall_ms` (probe / decode /
    /// simulate / store against the worker's local cache).
    pub phases: Option<CellPhases>,
}

// Hand-written: reports are a *request*, so fields added after v1
// shipped (`phases`) must read as absent rather than erroring — a worker
// built against the original contract keeps reporting.
impl Deserialize for UnitResult {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "UnitResult"));
        };
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| SerdeError::new(format!("missing field `{key}` of UnitResult")))
        };
        fn opt<T: Deserialize>(v: &Value, key: &str) -> Result<Option<T>, SerdeError> {
            match v.get(key) {
                None => Ok(None),
                Some(val) => Option::from_value(val)
                    .map_err(|e| SerdeError::new(format!("field `{key}` of UnitResult: {e}"))),
            }
        }
        Ok(Self {
            unit: u64::from_value(field("unit")?)
                .map_err(|e| SerdeError::new(format!("field `unit` of UnitResult: {e}")))?,
            cached: bool::from_value(field("cached")?)
                .map_err(|e| SerdeError::new(format!("field `cached` of UnitResult: {e}")))?,
            wall_ms: f64::from_value(field("wall_ms")?)
                .map_err(|e| SerdeError::new(format!("field `wall_ms` of UnitResult: {e}")))?,
            stats: opt(v, "stats")?,
            error: opt(v, "error")?,
            phases: opt(v, "phases")?,
        })
    }
}

/// A worker reporting lease results (`POST /v1/workers/{id}/report`).
/// Workers report per cell as soon as it resolves; every report refreshes
/// the lease, so only a single cell outrunning the TTL risks a re-queue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReportRequest {
    /// The lease these results belong to.
    pub lease_id: u64,
    /// The resolved cells.
    pub results: Vec<UnitResult>,
    /// Worker-side spans for the resolved units (kind `worker.unit`),
    /// tagged with each unit's originating trace.  The coordinator
    /// ingests them into its flight recorder, so
    /// `GET /v1/debug/events?trace=` shows coordinator and worker spans
    /// side by side.
    pub spans: Vec<DebugEvent>,
}

// Hand-written so a report without `spans` (a pre-observability worker,
// or a minimal curl reproduction) still parses — spans are an additive
// capability, not an obligation.
impl Deserialize for ReportRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let Value::Object(_) = v else {
            return Err(SerdeError::invalid("object", "ReportRequest"));
        };
        let lease_id = match v.get("lease_id") {
            Some(n) => u64::from_value(n)
                .map_err(|e| SerdeError::new(format!("field `lease_id` of ReportRequest: {e}")))?,
            None => return Err(SerdeError::new("missing field `lease_id` of ReportRequest")),
        };
        let results = match v.get("results") {
            Some(list) => Vec::from_value(list)
                .map_err(|e| SerdeError::new(format!("field `results` of ReportRequest: {e}")))?,
            None => return Err(SerdeError::new("missing field `results` of ReportRequest")),
        };
        let spans = match v.get("spans") {
            None | Some(Value::Null) => Vec::new(),
            Some(list) => Vec::from_value(list)
                .map_err(|e| SerdeError::new(format!("field `spans` of ReportRequest: {e}")))?,
        };
        Ok(Self {
            lease_id,
            results,
            spans,
        })
    }
}

/// The coordinator's answer to a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportResponse {
    /// Results accepted into the job.
    pub accepted: u64,
    /// Results for units already resolved elsewhere (a duplicate report,
    /// or a cell that was re-queued and finished on another worker) —
    /// dropped as no-ops.
    pub stale: u64,
}

/// One row of the fleet listing (`GET /v1/workers`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// The worker's id.
    pub id: u64,
    /// The worker's registered name.
    pub name: String,
    /// Registered simulation slots.
    pub slots: u64,
    /// `true` while the worker heartbeats within its interval contract.
    pub live: bool,
    /// Cells currently leased to the worker.
    pub leased: u64,
    /// Results the coordinator has accepted from the worker.
    pub completed: u64,
    /// Milliseconds since the worker's last heartbeat (any fleet request
    /// counts).
    pub last_seen_ms: u64,
}

/// The fleet status document (`GET /v1/workers`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// Every registered worker, oldest first.
    pub workers: Vec<WorkerInfo>,
    /// Cells queued for dispatch but not currently leased.
    pub pending_cells: u64,
}

/// One entry of a store snapshot: a content address and the stored cell's
/// label and statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshotEntry {
    /// The content-address key (32 hex digits).
    pub key: String,
    /// The cell's display label at save time.
    pub label: String,
    /// The cached statistics.
    pub stats: CellStats,
}

/// A portable dump of a content-addressed result store
/// (`GET/PUT /v1/store/snapshot`, `sweepctl store export/import`) — how a
/// cold worker warm-starts from the coordinator's shared cache tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The cache schema version the entries were written under.
    pub schema: u32,
    /// The entries, sorted by key.
    pub entries: Vec<StoreSnapshotEntry>,
}

/// The answer to a snapshot import (`PUT /v1/store/snapshot`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotImported {
    /// Entries newly written into the store.
    pub imported: u64,
    /// Entries skipped (malformed key, or already present).
    pub skipped: u64,
}

/// A batch submission (`POST /v1/sweeps:batch`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSubmitRequest {
    /// The submissions, answered item-by-item in order.
    pub sweeps: Vec<SweepRequest>,
}

/// One item of a batch answer: exactly one of `submit` (accepted) or
/// `error` (rejected) is set — partial failure is typed, not all-or-
/// nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSubmitItem {
    /// The accepted submission (`null` when this item was rejected).
    pub submit: Option<SubmitResponse>,
    /// The rejection (`null` when this item was accepted).
    pub error: Option<ApiError>,
}

/// The answer to a batch submission: one item per request, same order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSubmitResponse {
    /// Per-item outcomes.
    pub items: Vec<BatchSubmitItem>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dto::JobState;
    use crate::error::ErrorCode;
    use simdsim_isa::Ext;
    use simdsim_sweep::{OverrideSet, WorkloadRef};

    fn cell() -> Cell {
        Cell {
            scenario: "fig4".to_owned(),
            workload: WorkloadRef::Kernel("idct".to_owned()),
            ext: Ext::Vmmx128,
            way: 2,
            overrides: OverrideSet::default(),
            instr_limit: 1000,
        }
    }

    #[test]
    fn register_and_lease_requests_accept_sparse_bodies() {
        let r: RegisterRequest = serde_json::from_str("{}").expect("parses");
        assert_eq!(r, RegisterRequest::default());
        let r: RegisterRequest =
            serde_json::from_str(r#"{"name":"w1","slots":4}"#).expect("parses");
        assert_eq!(r.name, "w1");
        assert_eq!(r.slots, 4);
        assert!(r.cache_keys.is_empty());
        let r: RegisterRequest =
            serde_json::from_str(r#"{"name":"w2","cache_keys":["ab12","cd34"]}"#).expect("parses");
        assert_eq!(r.cache_keys, vec!["ab12".to_owned(), "cd34".to_owned()]);
        assert!(serde_json::from_str::<RegisterRequest>(r#"{"slots":0}"#).is_err());
        assert!(serde_json::from_str::<RegisterRequest>(r#"{"name":7}"#).is_err());
        assert!(serde_json::from_str::<RegisterRequest>(r#"{"cache_keys":[3]}"#).is_err());

        let l: LeaseRequest = serde_json::from_str("{}").expect("parses");
        assert_eq!(l, LeaseRequest::default());
        let l: LeaseRequest =
            serde_json::from_str(r#"{"max_cells":8,"wait_ms":250}"#).expect("parses");
        assert_eq!((l.max_cells, l.wait_ms), (8, 250));
        assert!(serde_json::from_str::<LeaseRequest>(r#"{"max_cells":"no"}"#).is_err());
    }

    #[test]
    fn leases_and_reports_round_trip_with_engine_cells() {
        let resp = LeaseResponse {
            lease: Some(Lease {
                lease_id: 3,
                ttl_ms: 30_000,
                cells: vec![LeasedCell {
                    unit: 17,
                    cell: cell(),
                    job: Some(9),
                    trace: Some("ab".repeat(16)),
                }],
            }),
        };
        let text = serde_json::to_string(&resp).expect("serializes");
        let back: LeaseResponse = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, resp);
        assert_eq!(
            back.lease.expect("lease").cells[0].cell.label(),
            "fig4/idct/vmmx128/2way"
        );

        let empty: LeaseResponse = serde_json::from_str(r#"{"lease":null}"#).expect("parses");
        assert_eq!(empty.lease, None);

        let report = ReportRequest {
            lease_id: 3,
            results: vec![UnitResult {
                unit: 17,
                cached: false,
                wall_ms: 1.5,
                stats: None,
                error: Some("boom".to_owned()),
                phases: Some(CellPhases {
                    probe_ms: 0.1,
                    decode_ms: 0.2,
                    simulate_ms: 1.0,
                    store_ms: 0.0,
                }),
            }],
            spans: vec![DebugEvent {
                seq: 0,
                ts_ms: 1,
                kind: "worker.unit".to_owned(),
                trace: Some("ab".repeat(16)),
                job: Some(9),
                worker: None,
                unit: Some(17),
                dur_ms: Some(1.5),
                detail: String::new(),
            }],
        };
        let text = serde_json::to_string(&report).expect("serializes");
        let back: ReportRequest = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, report);

        // A pre-observability report — no `spans`, results without
        // `phases` — must still parse (requests grow compatibly).
        let sparse: ReportRequest = serde_json::from_str(
            r#"{"lease_id":3,"results":[{"unit":17,"cached":true,"wall_ms":0.0}]}"#,
        )
        .expect("sparse report parses");
        assert!(sparse.spans.is_empty());
        assert_eq!(sparse.results[0].phases, None);
        assert_eq!(sparse.results[0].stats, None);
    }

    #[test]
    fn fleet_status_and_snapshot_round_trip() {
        let status = FleetStatus {
            workers: vec![WorkerInfo {
                id: 1,
                name: "w1".to_owned(),
                slots: 2,
                live: true,
                leased: 3,
                completed: 40,
                last_seen_ms: 120,
            }],
            pending_cells: 7,
        };
        let text = serde_json::to_string(&status).expect("serializes");
        let back: FleetStatus = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, status);

        let snap: StoreSnapshot =
            serde_json::from_str(r#"{"schema":2,"entries":[]}"#).expect("parses");
        assert_eq!(snap.schema, 2);
        assert!(snap.entries.is_empty());
    }

    #[test]
    fn batch_items_carry_typed_partial_failure() {
        let resp = BatchSubmitResponse {
            items: vec![
                BatchSubmitItem {
                    submit: Some(SubmitResponse {
                        id: 1,
                        url: "/v1/sweeps/1".to_owned(),
                        state: JobState::Queued,
                        deduped: false,
                        trace: None,
                    }),
                    error: None,
                },
                BatchSubmitItem {
                    submit: None,
                    error: Some(ApiError::new(
                        ErrorCode::UnknownScenario,
                        "no scenario `fig9`",
                    )),
                },
            ],
        };
        let text = serde_json::to_string(&resp).expect("serializes");
        let back: BatchSubmitResponse = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, resp);
    }
}
