//! Conformance-subsystem integration tests: the committed corpus, the
//! differential fuzzer, the linter over every built-in program, and the
//! listing round-trip that keeps the corpus grammar synchronized with
//! the disassembler.

use proptest::prelude::*;
use simdsim_conform::{
    differential, error_count, fuzz_case, lint, parse_instr, run_corpus, CorpusProgram, Severity,
};
use simdsim_kernels::Variant;

#[test]
fn corpus_passes_all_three_engines() {
    let results = run_corpus(&simdsim_conform::corpus::corpus_dir());
    assert!(
        results.len() >= 30,
        "corpus shrank to {} cases",
        results.len()
    );
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.failure.as_ref().map(|f| format!("{}: {f}", r.name)))
        .collect();
    assert!(
        failures.is_empty(),
        "corpus failures:\n{}",
        failures.join("\n")
    );
}

proptest! {
    #[test]
    fn fuzzed_programs_conform(seed in 0u64..1_000_000) {
        let out = fuzz_case(seed);
        prop_assert!(
            out.failure.is_none(),
            "seed {} diverged: {}\n{}",
            seed,
            out.failure.as_deref().unwrap_or(""),
            out.listing.as_deref().unwrap_or("")
        );
    }
}

/// Every built-in kernel and application, on every variant, lints with
/// zero errors — the acceptance bar the CI smoke job enforces.
#[test]
fn builtin_programs_lint_clean() {
    let mut checked = 0;
    for k in simdsim_kernels::registry() {
        for v in Variant::ALL {
            let built = k.build(v);
            let diags = lint(&built.program, v.machine_ext());
            let errs: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| d.render(built.program.code()))
                .collect();
            assert!(
                errs.is_empty(),
                "kernel {}/{v}: {}",
                k.spec().name,
                errs.join("\n")
            );
            checked += 1;
        }
    }
    for a in simdsim_apps::registry() {
        for v in Variant::ALL {
            let built = a.build(v);
            let diags = lint(&built.program, v.machine_ext());
            assert_eq!(
                error_count(&diags),
                0,
                "app {}/{v} has lint errors",
                a.spec().name
            );
            checked += 1;
        }
    }
    assert!(checked >= 80, "only {checked} programs linted");
}

/// The corpus grammar is exactly the `Display` grammar: every line of
/// every built-in program's listing parses back to the same `Instr`.
#[test]
fn listing_round_trips_through_parser() {
    let mut programs = Vec::new();
    for k in simdsim_kernels::registry() {
        for v in Variant::ALL {
            programs.push((format!("kernel {}/{v}", k.spec().name), k.build(v).program));
        }
    }
    for a in simdsim_apps::registry() {
        for v in Variant::ALL {
            programs.push((format!("app {}/{v}", a.spec().name), a.build(v).program));
        }
    }
    for (label, prog) in programs {
        for (idx, line) in prog.listing().lines().enumerate() {
            // `{i:6} {tag} {ins}`: the instruction text starts at column 9.
            let text = &line[9..];
            let parsed = parse_instr(text)
                .unwrap_or_else(|e| panic!("{label} @{idx}: `{text}` does not parse: {e}"));
            assert_eq!(
                parsed,
                prog.code()[idx],
                "{label} @{idx}: `{text}` re-parses differently"
            );
        }
    }
}

/// The reference interpreter is usable directly as a library oracle.
#[test]
fn differential_accepts_handwritten_source() {
    let cp = CorpusProgram::parse(
        "; inline case\n\
         .ext mmx64\n\
         .reg r1 = 6\n\
         mul r2, r1, #7\n\
         halt\n",
    )
    .expect("parses");
    let state = differential(&cp, 1000).expect("conforms");
    assert!(state.regs.iter().any(|e| e.reg == "r2" && e.val == "42"));
}

#[test]
fn lint_flags_undefined_use_and_unreachable() {
    let cp = CorpusProgram::parse(
        ".ext mmx64\n\
         add r9, r8, #1\n\
         li r8, 5\n\
         halt\n\
         li r10, 1\n",
    )
    .expect("parses");
    let diags = lint(&cp.program, cp.ext);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "undefined-before-use" && d.idx == 0),
        "expected undefined-before-use at @0, got {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "unreachable" && d.idx == 3),
        "expected unreachable at @3, got {diags:?}"
    );
}

#[test]
fn lint_flags_illegal_instrs_as_errors() {
    let cp = CorpusProgram::parse(
        ".ext vmmx64\n\
         vld.16 v0, (r0)\n\
         setvl #0\n\
         movsv.h r1, v0[9]\n\
         j @99\n",
    )
    .expect("parses");
    let diags = lint(&cp.program, cp.ext);
    // vld.16 on an 8-byte machine, setvl #0, lane 9 of 4 h-lanes,
    // and a wild jump.
    assert_eq!(error_count(&diags), 4, "got {diags:?}");
}

#[test]
fn lint_warns_on_default_vl_reliance() {
    let cp = CorpusProgram::parse(
        ".ext vmmx64\n\
         msplat.b m0, r0\n\
         setvl #4\n\
         msplat.b m1, r0\n\
         halt\n",
    )
    .expect("parses");
    let diags = lint(&cp.program, cp.ext);
    let vl_unset: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == "vl-unset")
        .map(|d| d.idx)
        .collect();
    assert_eq!(vl_unset, vec![0], "got {diags:?}");
}
