//! The reference interpreter: a deliberately simple, slow oracle.
//!
//! [`RefMachine`] re-implements the ISA's architectural semantics as a
//! straight-line `match` over [`Instr`] with per-lane scalar loops — no
//! predecode, no superblocks, no SWAR, and nothing shared with the
//! production emulator's `subword` kernels.  Where the emulator uses
//! packed 128-bit tricks, the oracle extracts each lane, computes in
//! `i128` (so saturating arithmetic is mathematically exact rather than
//! depending on intermediate 64-bit behaviour) and reassembles the word.
//!
//! It produces the same observable artefacts as an emulator run driven
//! through an [`EffectsRecorder`](crate::EffectsRecorder): one
//! [`Effect`] per committed instruction, byte-identical [`EmuError`]
//! values on faults, and the same dynamic-count statistics the timing
//! model consumes.  The differential tester asserts all of these match
//! across engines.
//!
//! Deliberate non-goals: the oracle defines mathematically-exact
//! semantics for saturating arithmetic on 64-bit lanes and for
//! `Mulhi(Esz::D)`, where the production emulator's 64-bit intermediate
//! arithmetic can overflow (a debug-build panic).  The corpus and the
//! fuzzer stay inside the domain where both definitions agree
//! (saturating/averaging/high-multiply ops on byte/half/word lanes).

use crate::effects::{Effect, RegVal};
use simdsim_emu::{EmuError, Machine, MemAccess};
use simdsim_isa::{
    AccOp, AluOp, ClassCounts, Esz, Ext, Instr, MOperand, Operand2, Program, RegId, Region, Sat,
    VLoc, VOp, VShiftOp, MAX_VL, NUM_AREGS, NUM_FREGS, NUM_IREGS, NUM_MREGS, NUM_VREGS,
};

/// Everything one reference run produces.
///
/// `error` is carried alongside the committed prefix (rather than as a
/// `Result`) because a faulting run still has an effects stream — the
/// differential tester compares streams, errors and final state even
/// when a program traps.
#[derive(Debug, Clone, Default)]
pub struct RefRun {
    /// One effect per committed instruction, in commit order.
    pub effects: Vec<Effect>,
    /// Committed dynamic instructions.
    pub dyn_instrs: u64,
    /// Dynamic counts per Figure-7 class.
    pub counts: ClassCounts,
    /// Committed instructions tagged [`Region::Scalar`].
    pub scalar_region_instrs: u64,
    /// Committed instructions tagged [`Region::Vector`].
    pub vector_region_instrs: u64,
    /// Sub-word element operations (the emulator's DLP measure).
    pub element_ops: u64,
    /// The fault that stopped the run, if any.
    pub error: Option<EmuError>,
}

/// The oracle's architectural state: registers, accumulators and a flat
/// little-endian memory image, mirroring [`Machine`]'s state exactly.
#[derive(Debug, Clone)]
pub struct RefMachine {
    ext: Ext,
    iregs: [i64; NUM_IREGS],
    fregs: [f64; NUM_FREGS],
    vregs: [u128; NUM_VREGS],
    mregs: [[u128; MAX_VL]; NUM_MREGS],
    accs: [[i64; 8]; NUM_AREGS],
    vl: usize,
    mem: Vec<u8>,
}

impl RefMachine {
    /// Creates an oracle for extension `ext` with `mem_size` bytes of
    /// zeroed memory (same initial state as [`Machine::new`]).
    #[must_use]
    pub fn new(ext: Ext, mem_size: usize) -> Self {
        Self {
            ext,
            iregs: [0; NUM_IREGS],
            fregs: [0.0; NUM_FREGS],
            vregs: [0; NUM_VREGS],
            mregs: [[0; MAX_VL]; NUM_MREGS],
            accs: [[0; 8]; NUM_AREGS],
            vl: MAX_VL,
            mem: vec![0; mem_size],
        }
    }

    /// Clones the full architectural state of an emulator instance, so
    /// the oracle can replay a run from the same starting point (e.g. a
    /// built kernel's pre-initialised machine).
    #[must_use]
    pub fn from_machine(m: &Machine) -> Self {
        let mut s = Self::new(m.ext(), m.mem_size());
        for (i, r) in s.iregs.iter_mut().enumerate() {
            *r = m.ireg(i);
        }
        for (i, r) in s.fregs.iter_mut().enumerate() {
            *r = m.freg(i);
        }
        for (i, r) in s.vregs.iter_mut().enumerate() {
            *r = m.vreg(i);
        }
        for (i, rows) in s.mregs.iter_mut().enumerate() {
            for (r, row) in rows.iter_mut().enumerate() {
                *row = m.mrow(i, r);
            }
        }
        for (i, a) in s.accs.iter_mut().enumerate() {
            *a = m.acc(i);
        }
        s.vl = m.vl();
        s.mem
            .copy_from_slice(m.read_bytes(0, m.mem_size()).expect("full image"));
        s
    }

    /// The modelled extension.
    #[must_use]
    pub fn ext(&self) -> Ext {
        self.ext
    }

    /// SIMD register width in bytes (8 or 16).
    #[must_use]
    pub fn width(&self) -> usize {
        self.ext.width_bytes()
    }

    /// Current vector length.
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Memory image size in bytes.
    #[must_use]
    pub fn mem_size(&self) -> usize {
        self.mem.len()
    }

    /// Integer register `i`.
    #[must_use]
    pub fn ireg(&self, i: usize) -> i64 {
        self.iregs[i]
    }

    /// Floating-point register `i`.
    #[must_use]
    pub fn freg(&self, i: usize) -> f64 {
        self.fregs[i]
    }

    /// SIMD register `i`.
    #[must_use]
    pub fn vreg(&self, i: usize) -> u128 {
        self.vregs[i]
    }

    /// Row `row` of matrix register `m`.
    #[must_use]
    pub fn mrow(&self, m: usize, row: usize) -> u128 {
        self.mregs[m][row]
    }

    /// All lanes of accumulator `i`.
    #[must_use]
    pub fn acc(&self, i: usize) -> [i64; 8] {
        self.accs[i]
    }

    /// Reads `len` bytes at `addr` (setup/inspection helper; panics on
    /// out-of-bounds, which is a harness bug rather than a program fault).
    #[must_use]
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Writes `data` at `addr` (setup helper; panics on out-of-bounds).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Sets integer register `i` (setup helper).
    pub fn set_ireg(&mut self, i: usize, v: i64) {
        self.iregs[i] = v;
    }

    /// Sets floating-point register `i` (setup helper).
    pub fn set_freg(&mut self, i: usize, v: f64) {
        self.fregs[i] = v;
    }

    /// Runs `prog` from instruction 0 until `Halt`, falling off the end,
    /// a fault, or the `max_instrs` commit limit — mirroring
    /// [`Machine::run`]'s stop conditions and error values exactly.
    pub fn run(&mut self, prog: &Program, max_instrs: u64) -> RefRun {
        let mut out = RefRun::default();
        if let Err(e) = prog.validate(self.ext.is_matrix()) {
            out.error = Some(EmuError::Validation(e));
            return out;
        }
        let code = prog.code();
        let regions = prog.regions();
        let mut pc: u32 = 0;
        while (pc as usize) < code.len() {
            if out.dyn_instrs >= max_instrs {
                out.error = Some(EmuError::InstrLimit { limit: max_instrs });
                return out;
            }
            let instr = code[pc as usize];
            let mut taken: Option<u32> = None;
            let mut mem: Option<MemAccess> = None;
            let mut halted = false;
            if let Err(e) = self.step(
                instr,
                pc,
                &mut taken,
                &mut mem,
                &mut halted,
                &mut out.element_ops,
            ) {
                out.error = Some(e);
                return out;
            }
            out.effects.push(Effect {
                pc,
                taken,
                vl: if instr.is_full_vl() { self.vl as u8 } else { 1 },
                mem,
                write: self.sample_write(&instr),
            });
            out.dyn_instrs += 1;
            out.counts.add(instr.class(), 1);
            match regions[pc as usize] {
                Region::Scalar => out.scalar_region_instrs += 1,
                Region::Vector => out.vector_region_instrs += 1,
            }
            if halted {
                break;
            }
            pc = taken.unwrap_or(pc + 1);
        }
        out
    }

    /// Samples the register `instr` defines from post-instruction state
    /// (the oracle-side counterpart of [`crate::sample_write`]).
    fn sample_write(&self, instr: &Instr) -> Option<(RegId, RegVal)> {
        let du = instr.def_use();
        let reg = *du.defs().first()?;
        let val = match reg {
            RegId::I(i) => RegVal::I(self.iregs[i as usize]),
            RegId::F(i) => RegVal::F(self.fregs[i as usize].to_bits()),
            RegId::V(i) => RegVal::V(self.vregs[i as usize]),
            RegId::M(i) => RegVal::M(self.mregs[i as usize]),
            RegId::A(i) => RegVal::A(self.accs[i as usize]),
            RegId::Vl => RegVal::Vl(self.vl as u8),
        };
        Some((reg, val))
    }

    // ------------------------------------------------------------------
    // Memory (little-endian, bounds-checked)
    // ------------------------------------------------------------------

    fn check(&self, addr: u64, len: usize, pc: u32) -> Result<usize, EmuError> {
        addr.checked_add(len as u64)
            .filter(|e| *e <= self.mem.len() as u64)
            .map(|_| addr as usize)
            .ok_or(EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc,
            })
    }

    fn load_uint(&self, addr: u64, len: usize, pc: u32) -> Result<u64, EmuError> {
        let base = self.check(addr, len, pc)?;
        let mut v = 0u64;
        for i in 0..len {
            v |= u64::from(self.mem[base + i]) << (8 * i);
        }
        Ok(v)
    }

    fn store_uint(&mut self, addr: u64, len: usize, v: u64, pc: u32) -> Result<(), EmuError> {
        let base = self.check(addr, len, pc)?;
        for i in 0..len {
            self.mem[base + i] = (v >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn load_word(&self, addr: u64, len: usize, pc: u32) -> Result<u128, EmuError> {
        let base = self.check(addr, len, pc)?;
        let mut v = 0u128;
        for i in 0..len {
            v |= u128::from(self.mem[base + i]) << (8 * i);
        }
        Ok(v)
    }

    fn store_word(&mut self, addr: u64, len: usize, v: u128, pc: u32) -> Result<(), EmuError> {
        let base = self.check(addr, len, pc)?;
        for i in 0..len {
            self.mem[base + i] = (v >> (8 * i)) as u8;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Operand helpers
    // ------------------------------------------------------------------

    fn op2(&self, b: Operand2) -> i64 {
        match b {
            Operand2::Reg(r) => self.iregs[r.index()],
            Operand2::Imm(i) => i64::from(i),
        }
    }

    fn read_vloc(&self, l: VLoc) -> u128 {
        match l {
            VLoc::V(v) => self.vregs[v.index()],
            VLoc::Row(m, r) => self.mregs[m.index()][r as usize],
        }
    }

    fn write_vloc(&mut self, l: VLoc, v: u128) {
        let masked = v & self.word_mask();
        match l {
            VLoc::V(reg) => self.vregs[reg.index()] = masked,
            VLoc::Row(m, r) => self.mregs[m.index()][r as usize] = masked,
        }
    }

    fn word_mask(&self) -> u128 {
        if self.width() == 16 {
            u128::MAX
        } else {
            (1u128 << 64) - 1
        }
    }

    fn lanes(&self, e: Esz) -> usize {
        e.lanes(self.width() * 8)
    }

    // ------------------------------------------------------------------
    // Per-lane sub-word arithmetic (independent of `simdsim_emu::subword`)
    // ------------------------------------------------------------------

    /// Elements a vector-arithmetic instruction processes on one word,
    /// mirroring the emulator's `element_ops` accounting.
    fn simd_elems(&self, op: VOp) -> u64 {
        let width = self.width();
        match op {
            VOp::Add(e)
            | VOp::AddS(e)
            | VOp::AddU(e)
            | VOp::Sub(e)
            | VOp::SubS(e)
            | VOp::SubU(e)
            | VOp::Mullo(e)
            | VOp::Mulhi(e)
            | VOp::Avg(e)
            | VOp::MinS(e)
            | VOp::MinU(e)
            | VOp::MaxS(e)
            | VOp::MaxU(e)
            | VOp::CmpEq(e)
            | VOp::CmpGt(e)
            | VOp::PackS(e)
            | VOp::PackU(e)
            | VOp::UnpackLo(e)
            | VOp::UnpackHi(e) => self.lanes(e) as u64,
            VOp::Madd | VOp::Sad => width as u64,
            VOp::And | VOp::Or | VOp::Xor | VOp::AndNot => (width / 8) as u64,
        }
    }

    fn vop(&self, op: VOp, a: u128, b: u128) -> u128 {
        let r = match op {
            VOp::Add(e) => self.map2_u(a, b, e, |x, y| x.wrapping_add(y)),
            VOp::AddS(e) => self.map2_i(a, b, e, |x, y| sat_s(i128::from(x) + i128::from(y), e)),
            VOp::AddU(e) => self.map2_u(a, b, e, |x, y| sat_u(i128::from(x) + i128::from(y), e)),
            VOp::Sub(e) => self.map2_u(a, b, e, |x, y| x.wrapping_sub(y)),
            VOp::SubS(e) => self.map2_i(a, b, e, |x, y| sat_s(i128::from(x) - i128::from(y), e)),
            VOp::SubU(e) => self.map2_u(a, b, e, |x, y| sat_u(i128::from(x) - i128::from(y), e)),
            VOp::Mullo(e) => self.map2_i(a, b, e, |x, y| (i128::from(x) * i128::from(y)) as u64),
            VOp::Mulhi(e) => self.map2_i(a, b, e, |x, y| {
                ((i128::from(x) * i128::from(y)) >> e.bits()) as u64
            }),
            VOp::Madd => self.madd(a, b),
            VOp::Sad => self.sad(a, b),
            VOp::Avg(e) => self.map2_u(a, b, e, |x, y| {
                ((u128::from(x) + u128::from(y) + 1) >> 1) as u64
            }),
            VOp::MinS(e) => self.map2_i(a, b, e, |x, y| x.min(y) as u64),
            VOp::MinU(e) => self.map2_u(a, b, e, u64::min),
            VOp::MaxS(e) => self.map2_i(a, b, e, |x, y| x.max(y) as u64),
            VOp::MaxU(e) => self.map2_u(a, b, e, u64::max),
            VOp::CmpEq(e) => self.map2_u(a, b, e, |x, y| if x == y { u64::MAX } else { 0 }),
            VOp::CmpGt(e) => self.map2_i(a, b, e, |x, y| if x > y { u64::MAX } else { 0 }),
            VOp::And => a & b,
            VOp::Or => a | b,
            VOp::Xor => a ^ b,
            VOp::AndNot => a & !b,
            VOp::PackS(e) => self.pack(a, b, e, false),
            VOp::PackU(e) => self.pack(a, b, e, true),
            VOp::UnpackLo(e) => self.unpack(a, b, e, false),
            VOp::UnpackHi(e) => self.unpack(a, b, e, true),
        };
        r & self.word_mask()
    }

    fn map2_u(&self, a: u128, b: u128, e: Esz, f: impl Fn(u64, u64) -> u64) -> u128 {
        let mut out = 0u128;
        for l in 0..self.lanes(e) {
            out = put_lane(out, e, l, f(lane_u(a, e, l), lane_u(b, e, l)));
        }
        out
    }

    fn map2_i(&self, a: u128, b: u128, e: Esz, f: impl Fn(i64, i64) -> u64) -> u128 {
        let mut out = 0u128;
        for l in 0..self.lanes(e) {
            out = put_lane(out, e, l, f(lane_i(a, e, l), lane_i(b, e, l)));
        }
        out
    }

    /// `pmaddwd`: adjacent signed-16 products summed into 32-bit lanes.
    fn madd(&self, a: u128, b: u128) -> u128 {
        let mut out = 0u128;
        for l in 0..self.width() / 4 {
            let p0 = lane_i(a, Esz::H, 2 * l) * lane_i(b, Esz::H, 2 * l);
            let p1 = lane_i(a, Esz::H, 2 * l + 1) * lane_i(b, Esz::H, 2 * l + 1);
            // Products fit in i32, so wrapping i32 addition equals the
            // truncated true sum.
            let s = (p0 + p1) as i32;
            out = put_lane(out, Esz::W, l, u64::from(s as u32));
        }
        out
    }

    /// `psadbw`: one 64-bit sum of byte absolute differences per 8-byte group.
    fn sad(&self, a: u128, b: u128) -> u128 {
        let mut out = 0u128;
        for g in 0..self.width() / 8 {
            let mut sum = 0u64;
            for j in 0..8 {
                let x = lane_u(a, Esz::B, g * 8 + j);
                let y = lane_u(b, Esz::B, g * 8 + j);
                sum += x.abs_diff(y);
            }
            out |= u128::from(sum) << (g * 64);
        }
        out
    }

    /// Pack both sources' `e`-sized elements into half-size elements
    /// with saturation: low lanes from `a`, high lanes from `b`.
    fn pack(&self, a: u128, b: u128, e: Esz, unsigned: bool) -> u128 {
        let dst = match e {
            Esz::B => panic!("cannot pack byte elements"),
            Esz::H => Esz::B,
            Esz::W => Esz::H,
            Esz::D => Esz::W,
        };
        let n = self.lanes(e);
        let sat = |v: i64| -> u64 {
            if unsigned {
                sat_u(i128::from(v), dst)
            } else {
                sat_s(i128::from(v), dst)
            }
        };
        let mut out = 0u128;
        for l in 0..n {
            out = put_lane(out, dst, l, sat(lane_i(a, e, l)));
            out = put_lane(out, dst, n + l, sat(lane_i(b, e, l)));
        }
        out
    }

    /// Interleave the low (or high) halves of `a` and `b`.
    fn unpack(&self, a: u128, b: u128, e: Esz, hi: bool) -> u128 {
        let n = self.lanes(e);
        let half = n / 2;
        let base = if hi { half } else { 0 };
        let mut out = 0u128;
        for l in 0..half {
            out = put_lane(out, e, 2 * l, lane_u(a, e, base + l));
            out = put_lane(out, e, 2 * l + 1, lane_u(b, e, base + l));
        }
        out
    }

    fn vshift(&self, op: VShiftOp, a: u128, amount: u8) -> u128 {
        let (e, kind) = match op {
            VShiftOp::Sll(e) => (e, 0u8),
            VShiftOp::Srl(e) => (e, 1),
            VShiftOp::Sra(e) => (e, 2),
        };
        let bits = e.bits() as u32;
        let amt = u32::from(amount).min(bits);
        let lane_mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut out = 0u128;
        for l in 0..self.lanes(e) {
            let v = lane_u(a, e, l);
            let r = match kind {
                0 => {
                    if amt >= bits {
                        0
                    } else {
                        (v << amt) & lane_mask
                    }
                }
                1 => {
                    if amt >= bits {
                        0
                    } else {
                        v >> amt
                    }
                }
                _ => {
                    let sh = amt.min(bits - 1);
                    ((lane_i(a, e, l) >> sh) as u64) & lane_mask
                }
            };
            out = put_lane(out, e, l, r);
        }
        out & self.word_mask()
    }

    fn splat(&self, v: u64, e: Esz) -> u128 {
        let mut out = 0u128;
        for l in 0..self.lanes(e) {
            out = put_lane(out, e, l, v);
        }
        out
    }

    fn accumulate(&mut self, op: AccOp, acc: usize, a: u128, b: u128) {
        let width = self.width();
        match op {
            AccOp::Sad => {
                for j in 0..width {
                    let x = lane_u(a, Esz::B, j) as i64;
                    let y = lane_u(b, Esz::B, j) as i64;
                    self.accs[acc][j / 2] = self.accs[acc][j / 2].wrapping_add((x - y).abs());
                }
            }
            AccOp::Ssd => {
                for j in 0..width {
                    let x = lane_u(a, Esz::B, j) as i64;
                    let y = lane_u(b, Esz::B, j) as i64;
                    self.accs[acc][j / 2] =
                        self.accs[acc][j / 2].wrapping_add((x - y).wrapping_mul(x - y));
                }
            }
            AccOp::Mac => {
                for j in 0..width / 2 {
                    let p = lane_i(a, Esz::H, j).wrapping_mul(lane_i(b, Esz::H, j));
                    self.accs[acc][j] = self.accs[acc][j].wrapping_add(p);
                }
            }
            AccOp::AddH => {
                for j in 0..width / 2 {
                    self.accs[acc][j] = self.accs[acc][j].wrapping_add(lane_i(a, Esz::H, j));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // One instruction
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        instr: Instr,
        pc: u32,
        taken: &mut Option<u32>,
        mem: &mut Option<MemAccess>,
        halted: &mut bool,
        element_ops: &mut u64,
    ) -> Result<(), EmuError> {
        let width = self.width();
        match instr {
            Instr::IntOp { op, rd, ra, b } => {
                let a = self.iregs[ra.index()];
                let bv = self.op2(b);
                self.iregs[rd.index()] = match op {
                    AluOp::Add => a.wrapping_add(bv),
                    AluOp::Sub => a.wrapping_sub(bv),
                    AluOp::Mul => a.wrapping_mul(bv),
                    AluOp::Div => {
                        if bv == 0 {
                            0
                        } else {
                            a.wrapping_div(bv)
                        }
                    }
                    AluOp::Rem => {
                        if bv == 0 {
                            a
                        } else {
                            a.wrapping_rem(bv)
                        }
                    }
                    AluOp::And => a & bv,
                    AluOp::Or => a | bv,
                    AluOp::Xor => a ^ bv,
                    AluOp::Sll => ((a as u64) << (bv as u64 & 63)) as i64,
                    AluOp::Srl => ((a as u64) >> (bv as u64 & 63)) as i64,
                    AluOp::Sra => a >> (bv as u64 & 63),
                    AluOp::Slt => i64::from(a < bv),
                    AluOp::Sltu => i64::from((a as u64) < (bv as u64)),
                    AluOp::Seq => i64::from(a == bv),
                };
            }
            Instr::Li { rd, imm } => self.iregs[rd.index()] = imm,
            Instr::Load {
                sz,
                sext,
                rd,
                base,
                off,
            } => {
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                let raw = self.load_uint(addr, sz.bytes(), pc)?;
                self.iregs[rd.index()] = if sext {
                    let b = sz.bytes() * 8;
                    if b == 64 {
                        raw as i64
                    } else {
                        ((raw << (64 - b)) as i64) >> (64 - b)
                    }
                } else {
                    raw as i64
                };
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: sz.bytes() as u16,
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: false,
                });
            }
            Instr::Store { sz, rs, base, off } => {
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                self.store_uint(addr, sz.bytes(), self.iregs[rs.index()] as u64, pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: sz.bytes() as u16,
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: false,
                });
            }
            Instr::Branch {
                cond,
                ra,
                b,
                target,
            } => {
                if cond.eval(self.iregs[ra.index()], self.op2(b)) {
                    *taken = Some(target);
                }
            }
            Instr::Jump { target } => *taken = Some(target),
            Instr::Halt => *halted = true,
            Instr::Nop => {}
            Instr::FpOp { op, fd, fa, fb } => {
                use simdsim_isa::FOp;
                let a = self.fregs[fa.index()];
                let b = self.fregs[fb.index()];
                self.fregs[fd.index()] = match op {
                    FOp::Add => a + b,
                    FOp::Sub => a - b,
                    FOp::Mul => a * b,
                    FOp::Div => a / b,
                };
            }
            Instr::FpLoad { fd, base, off } => {
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                let raw = self.load_uint(addr, 8, pc)?;
                self.fregs[fd.index()] = f64::from_bits(raw);
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: 8,
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: false,
                });
            }
            Instr::FpStore { fs, base, off } => {
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                self.store_uint(addr, 8, self.fregs[fs.index()].to_bits(), pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: 8,
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: false,
                });
            }
            Instr::CvtIF { fd, ra } => self.fregs[fd.index()] = self.iregs[ra.index()] as f64,
            Instr::CvtFI { rd, fa } => self.iregs[rd.index()] = self.fregs[fa.index()] as i64,
            Instr::Simd { op, dst, a, b } => {
                let r = self.vop(op, self.read_vloc(a), self.read_vloc(b));
                self.write_vloc(dst, r);
                *element_ops += self.simd_elems(op);
            }
            Instr::SimdShift {
                op,
                dst,
                src,
                amount,
            } => {
                let r = self.vshift(op, self.read_vloc(src), amount);
                self.write_vloc(dst, r);
                let e = match op {
                    VShiftOp::Sll(e) | VShiftOp::Srl(e) | VShiftOp::Sra(e) => e,
                };
                *element_ops += self.lanes(e) as u64;
            }
            Instr::VMov { dst, src } => {
                let v = self.read_vloc(src);
                self.write_vloc(dst, v);
            }
            Instr::VSplat { dst, src, esz } => {
                let v = self.splat(self.iregs[src.index()] as u64, esz);
                self.write_vloc(dst, v);
            }
            Instr::MovSV {
                rd,
                src,
                lane,
                esz,
                sext,
            } => {
                if lane as usize >= self.lanes(esz) {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("lane {lane} out of range for {esz:?}"),
                    });
                }
                let w = self.read_vloc(src);
                self.iregs[rd.index()] = if sext {
                    lane_i(w, esz, lane as usize)
                } else {
                    lane_u(w, esz, lane as usize) as i64
                };
            }
            Instr::MovVS {
                dst,
                src,
                lane,
                esz,
            } => {
                if lane as usize >= self.lanes(esz) {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("lane {lane} out of range for {esz:?}"),
                    });
                }
                let w = put_lane(
                    self.read_vloc(dst),
                    esz,
                    lane as usize,
                    self.iregs[src.index()] as u64,
                );
                self.write_vloc(dst, w);
            }
            Instr::VLoad {
                dst,
                base,
                off,
                bytes,
            } => {
                if bytes as usize > width || bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("vload of {bytes} bytes on {width}-byte machine"),
                    });
                }
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                let v = self.load_word(addr, bytes as usize, pc)?;
                self.write_vloc(dst, v);
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: u16::from(bytes),
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: matches!(dst, VLoc::Row(..)),
                });
            }
            Instr::VStore {
                src,
                base,
                off,
                bytes,
            } => {
                if bytes as usize > width || bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("vstore of {bytes} bytes on {width}-byte machine"),
                    });
                }
                let addr = self.iregs[base.index()].wrapping_add(i64::from(off)) as u64;
                self.store_word(addr, bytes as usize, self.read_vloc(src), pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: u16::from(bytes),
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: matches!(src, VLoc::Row(..)),
                });
            }
            Instr::SetVl { src } => {
                let v = self.op2(src);
                if v <= 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("setvl with non-positive length {v}"),
                    });
                }
                self.vl = (v as usize).min(MAX_VL);
            }
            Instr::MLoad {
                dst,
                base,
                stride,
                row_bytes,
            } => {
                if row_bytes as usize > width || row_bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("mload of {row_bytes} bytes/row on {width}-byte machine"),
                    });
                }
                let base_addr = self.iregs[base.index()] as u64;
                let stride_v = self.op2(stride);
                for r in 0..self.vl {
                    let addr =
                        (base_addr as i64).wrapping_add(stride_v.wrapping_mul(r as i64)) as u64;
                    // Partial rows persist on a fault, as in the emulator.
                    self.mregs[dst.index()][r] = self.load_word(addr, row_bytes as usize, pc)?;
                }
                *mem = Some(MemAccess {
                    addr: base_addr,
                    row_bytes: u16::from(row_bytes),
                    rows: self.vl as u16,
                    stride: stride_v,
                    store: false,
                    vector_path: true,
                });
            }
            Instr::MStore {
                src,
                base,
                stride,
                row_bytes,
            } => {
                if row_bytes as usize > width || row_bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("mstore of {row_bytes} bytes/row on {width}-byte machine"),
                    });
                }
                let base_addr = self.iregs[base.index()] as u64;
                let stride_v = self.op2(stride);
                for r in 0..self.vl {
                    let addr =
                        (base_addr as i64).wrapping_add(stride_v.wrapping_mul(r as i64)) as u64;
                    self.store_word(addr, row_bytes as usize, self.mregs[src.index()][r], pc)?;
                }
                *mem = Some(MemAccess {
                    addr: base_addr,
                    row_bytes: u16::from(row_bytes),
                    rows: self.vl as u16,
                    stride: stride_v,
                    store: true,
                    vector_path: true,
                });
            }
            Instr::MOp { op, dst, a, b } => {
                // Row-sequential so destination aliasing matches the
                // emulator (dst == a or dst == b(RowBcast) is defined).
                for r in 0..self.vl {
                    let av = self.mregs[a.index()][r];
                    let bv = match b {
                        MOperand::M(m) => self.mregs[m.index()][r],
                        MOperand::RowBcast(m, row) => self.mregs[m.index()][row as usize],
                    };
                    self.mregs[dst.index()][r] = self.vop(op, av, bv);
                }
                *element_ops += self.simd_elems(op) * self.vl as u64;
            }
            Instr::MShift {
                op,
                dst,
                src,
                amount,
            } => {
                for r in 0..self.vl {
                    self.mregs[dst.index()][r] =
                        self.vshift(op, self.mregs[src.index()][r], amount);
                }
                let e = match op {
                    VShiftOp::Sll(e) | VShiftOp::Srl(e) | VShiftOp::Sra(e) => e,
                };
                *element_ops += (self.lanes(e) * self.vl) as u64;
            }
            Instr::MSplat { dst, src, esz } => {
                let v = self.splat(self.iregs[src.index()] as u64, esz);
                for r in 0..self.vl {
                    self.mregs[dst.index()][r] = v & self.word_mask();
                }
            }
            Instr::MMov { dst, src } => {
                for r in 0..self.vl {
                    self.mregs[dst.index()][r] = self.mregs[src.index()][r];
                }
            }
            Instr::MTranspose { dst, src, esz } => {
                let n = width / esz.bytes();
                if self.vl != n {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!(
                            "transpose requires square matrix: vl={} but {n} columns",
                            self.vl
                        ),
                    });
                }
                let mut rows = [0u128; MAX_VL];
                for (r, out_row) in rows.iter_mut().enumerate().take(n) {
                    for c in 0..n {
                        *out_row =
                            put_lane(*out_row, esz, c, lane_u(self.mregs[src.index()][c], esz, r));
                    }
                }
                self.mregs[dst.index()][..n].copy_from_slice(&rows[..n]);
                *element_ops += (n * n) as u64;
            }
            Instr::MAcc { op, acc, a, b } => {
                for r in 0..self.vl {
                    let av = self.mregs[a.index()][r];
                    let bv = self.mregs[b.index()][r];
                    self.accumulate(op, acc.index(), av, bv);
                }
                *element_ops += (width * self.vl) as u64;
            }
            Instr::VAcc { op, acc, a, b } => {
                let av = self.read_vloc(a);
                let bv = self.read_vloc(b);
                self.accumulate(op, acc.index(), av, bv);
                *element_ops += width as u64;
            }
            Instr::AccSum { rd, acc } => {
                let mut s = 0i64;
                for l in 0..width / 2 {
                    s = s.wrapping_add(self.accs[acc.index()][l]);
                }
                self.iregs[rd.index()] = s;
            }
            Instr::AccClear { acc } => self.accs[acc.index()] = [0; 8],
            Instr::AccPack {
                dst,
                acc,
                esz,
                sat,
                shift,
            } => {
                let lanes = width / 2;
                let n = self.lanes(esz);
                let mut out = 0u128;
                for l in 0..lanes.min(n) {
                    let v = self.accs[acc.index()][l] >> u32::from(shift).min(63);
                    let packed = match sat {
                        Sat::Wrap => (v as u64) & (u64::MAX >> (64 - esz.bits())),
                        Sat::Signed => sat_s(i128::from(v), esz),
                        Sat::Unsigned => sat_u(i128::from(v), esz),
                    };
                    out = put_lane(out, esz, l, packed);
                }
                self.write_vloc(dst, out);
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Free per-lane helpers
// ----------------------------------------------------------------------

fn lane_u(word: u128, e: Esz, l: usize) -> u64 {
    let b = e.bits();
    ((word >> (l * b)) & ((1u128 << b) - 1)) as u64
}

fn lane_i(word: u128, e: Esz, l: usize) -> i64 {
    let b = e.bits();
    let v = lane_u(word, e, l);
    if b == 64 {
        v as i64
    } else {
        ((v << (64 - b)) as i64) >> (64 - b)
    }
}

fn put_lane(word: u128, e: Esz, l: usize, v: u64) -> u128 {
    let b = e.bits();
    let mask = if b == 64 {
        u128::from(u64::MAX)
    } else {
        (1u128 << b) - 1
    };
    let cleared = word & !(mask << (l * b));
    cleared | ((u128::from(v) & mask) << (l * b))
}

/// Signed saturation of a mathematically-exact value to `e` bits.
fn sat_s(v: i128, e: Esz) -> u64 {
    let b = e.bits();
    let hi = (1i128 << (b - 1)) - 1;
    let lo = -(1i128 << (b - 1));
    let c = v.clamp(lo, hi) as i64 as u64;
    if b == 64 {
        c
    } else {
        c & ((1u64 << b) - 1)
    }
}

/// Unsigned saturation; 64-bit lanes clip at `i64::MAX` to match the
/// emulator's accumulator-oriented model.
fn sat_u(v: i128, e: Esz) -> u64 {
    let hi = match e {
        Esz::B => i128::from(u8::MAX),
        Esz::H => i128::from(u16::MAX),
        Esz::W => i128::from(u32::MAX),
        Esz::D => i128::from(i64::MAX),
    };
    v.clamp(0, hi) as u64
}
