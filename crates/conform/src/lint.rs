//! Static linter over assembled programs.
//!
//! Four rule families over the CFG of a [`Program`]:
//!
//! * **illegal-instr** (error) — static mirrors of every condition the
//!   emulator faults or panics on at runtime: transfer sizes out of
//!   range for the machine width, out-of-range element lanes and matrix
//!   rows, non-positive immediate `setvl`, byte-element packs, matrix
//!   instructions on a non-matrix extension, branch targets out of
//!   range.  A program with one of these *will* trap, so they are hard
//!   errors.
//! * **undefined-before-use** (warning) — a register read on some path
//!   before any write, where the program *does* write it elsewhere
//!   (registers never written anywhere are treated as external inputs
//!   set up by the host machine — that is the kernel ABI).  Computed as
//!   a definitely-assigned forward dataflow with intersection at joins;
//!   `r0..r7` are the builder's argument registers and start defined.
//! * **unreachable** (warning) — instructions no path from entry
//!   reaches.
//! * **vl-unset** (warning) — a full-VL matrix operation reachable
//!   without a dominating `setvl`, i.e. code silently relying on the
//!   architectural default `VL = MAX_VL`.
//!
//! The error/warning split is part of the contract: every built-in
//! kernel and application must lint with **zero errors**, and CI
//! enforces that.

use simdsim_isa::{Esz, Ext, Instr, MOperand, Operand2, Program, RegId, VLoc, VOp, MAX_VL};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program will fault or panic at runtime.
    Error,
    /// Suspicious but architecturally defined.
    Warning,
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Instruction index the finding anchors to.
    pub idx: usize,
    /// Severity.
    pub severity: Severity,
    /// Rule family (`illegal-instr`, `undefined-before-use`,
    /// `unreachable`, `vl-unset`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl Diag {
    /// Renders as `error[rule] @idx: message`.
    #[must_use]
    pub fn render(&self, code: &[Instr]) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let instr = code
            .get(self.idx)
            .map_or_else(String::new, |i| format!(" `{i}`"));
        format!(
            "{sev}[{}] @{}:{instr} {}",
            self.rule, self.idx, self.message
        )
    }
}

/// Successor instruction indices of `idx` in the CFG.
fn succs(code: &[Instr], idx: usize) -> Vec<usize> {
    match code[idx] {
        Instr::Halt => Vec::new(),
        Instr::Jump { target } => vec![target as usize],
        Instr::Branch { target, .. } => {
            let mut s = Vec::new();
            if idx + 1 < code.len() {
                s.push(idx + 1);
            }
            s.push(target as usize);
            s
        }
        _ => {
            if idx + 1 < code.len() {
                vec![idx + 1]
            } else {
                Vec::new()
            }
        }
    }
}

fn pack_esz(op: VOp) -> Option<Esz> {
    match op {
        VOp::PackS(e) | VOp::PackU(e) => Some(e),
        _ => None,
    }
}

/// Rule family 1: static mirrors of runtime faults.
#[allow(clippy::too_many_lines)]
fn illegal_instr(idx: usize, ins: &Instr, ext: Ext, len: usize, out: &mut Vec<Diag>) {
    let width = ext.width_bytes();
    let mut err = |message: String| {
        out.push(Diag {
            idx,
            severity: Severity::Error,
            rule: "illegal-instr",
            message,
        });
    };
    let check_row = |loc: VLoc, err: &mut dyn FnMut(String)| {
        if let VLoc::Row(_, r) = loc {
            if r as usize >= MAX_VL {
                err(format!("matrix row {r} out of range (MAX_VL = {MAX_VL})"));
            }
        }
    };
    match *ins {
        Instr::Branch { target, .. } | Instr::Jump { target } if target as usize >= len => {
            err(format!("branch target {target} out of range"));
        }
        Instr::Simd { op, dst, a, b } => {
            for loc in [dst, a, b] {
                check_row(loc, &mut err);
            }
            if pack_esz(op) == Some(Esz::B) {
                err("cannot pack byte elements".to_owned());
            }
        }
        Instr::MOp { op, b, .. } => {
            if let MOperand::RowBcast(_, r) = b {
                if r as usize >= MAX_VL {
                    err(format!(
                        "broadcast row {r} out of range (MAX_VL = {MAX_VL})"
                    ));
                }
            }
            if pack_esz(op) == Some(Esz::B) {
                err("cannot pack byte elements".to_owned());
            }
        }
        Instr::SimdShift { dst, src, .. } | Instr::VMov { dst, src } => {
            for loc in [dst, src] {
                check_row(loc, &mut err);
            }
        }
        Instr::VSplat { dst, .. } | Instr::AccPack { dst, .. } => check_row(dst, &mut err),
        Instr::MovSV { src, lane, esz, .. } => {
            check_row(src, &mut err);
            if lane as usize >= esz.lanes(width * 8) {
                err(format!("lane {lane} out of range for {esz:?}"));
            }
        }
        Instr::MovVS { dst, lane, esz, .. } => {
            check_row(dst, &mut err);
            if lane as usize >= esz.lanes(width * 8) {
                err(format!("lane {lane} out of range for {esz:?}"));
            }
        }
        Instr::VLoad { dst, bytes, .. } => {
            check_row(dst, &mut err);
            if bytes == 0 || bytes as usize > width {
                err(format!("vload of {bytes} bytes on {width}-byte machine"));
            }
        }
        Instr::VStore { src, bytes, .. } => {
            check_row(src, &mut err);
            if bytes == 0 || bytes as usize > width {
                err(format!("vstore of {bytes} bytes on {width}-byte machine"));
            }
        }
        Instr::SetVl {
            src: Operand2::Imm(v),
        } if v <= 0 => {
            err(format!("setvl with non-positive length {v}"));
        }
        Instr::MLoad { row_bytes, .. } if row_bytes == 0 || row_bytes as usize > width => {
            err(format!(
                "mload of {row_bytes} bytes/row on {width}-byte machine"
            ));
        }
        Instr::MStore { row_bytes, .. } if row_bytes == 0 || row_bytes as usize > width => {
            err(format!(
                "mstore of {row_bytes} bytes/row on {width}-byte machine"
            ));
        }
        Instr::VAcc { a, b, .. } => {
            for loc in [a, b] {
                check_row(loc, &mut err);
            }
        }
        _ => {}
    }
    if !ext.is_matrix() && ins.requires_matrix_ext() {
        err(format!("{ins} requires the matrix extension"));
    }
}

/// Bitset over the flat register index space.
#[derive(Clone, PartialEq, Eq)]
struct RegSet(Vec<u64>);

impl RegSet {
    fn empty() -> Self {
        Self(vec![0; simdsim_isa::NUM_FLAT_REGS.div_ceil(64)])
    }
    fn full() -> Self {
        Self(vec![u64::MAX; simdsim_isa::NUM_FLAT_REGS.div_ceil(64)])
    }
    fn set(&mut self, r: RegId) {
        let i = r.flat() as usize;
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn has(&self, r: RegId) -> bool {
        let i = r.flat() as usize;
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    fn intersect(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let n = *a & b;
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        changed
    }
}

/// Lints one program as it would run on extension `ext`.
#[must_use]
pub fn lint(prog: &Program, ext: Ext) -> Vec<Diag> {
    let code = prog.code();
    let mut diags = Vec::new();
    for (idx, ins) in code.iter().enumerate() {
        illegal_instr(idx, ins, ext, code.len(), &mut diags);
    }
    if code.is_empty() {
        return diags;
    }

    // Reachability from entry.
    let mut reachable = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if i >= code.len() || reachable[i] {
            continue;
        }
        reachable[i] = true;
        for s in succs(code, i) {
            stack.push(s);
        }
    }
    for (idx, r) in reachable.iter().enumerate() {
        if !r {
            diags.push(Diag {
                idx,
                severity: Severity::Warning,
                rule: "unreachable",
                message: "no path from entry reaches this instruction".to_owned(),
            });
        }
    }

    // Registers the program writes anywhere: reads of anything else are
    // host-initialised inputs, not use-before-def candidates.
    let mut written_somewhere = RegSet::empty();
    for ins in code {
        for &d in ins.def_use().defs() {
            written_somewhere.set(d);
        }
    }

    // Definitely-assigned forward dataflow (intersection at joins).
    // Entry state: the builder's argument registers.  VL is tracked via
    // RegId::Vl for the vl-unset rule and starts *unset*.
    let mut entry = RegSet::empty();
    for i in 0..8u8 {
        entry.set(RegId::I(i));
    }
    let mut in_states: Vec<RegSet> = vec![RegSet::full(); code.len()];
    in_states[0] = entry;
    let mut work: Vec<usize> = (0..code.len()).filter(|&i| reachable[i]).collect();
    while let Some(i) = work.pop() {
        let mut state = in_states[i].clone();
        for &d in code[i].def_use().defs() {
            state.set(d);
        }
        for s in succs(code, i) {
            if s < code.len() && reachable[s] && in_states[s].intersect(&state) {
                work.push(s);
            }
        }
    }

    // Report pass over the converged states.
    for (idx, ins) in code.iter().enumerate() {
        if !reachable[idx] {
            continue;
        }
        let state = &in_states[idx];
        let du = ins.def_use();
        let def = du.defs().first().copied();
        for &u in du.uses() {
            if u == RegId::Vl {
                // Architecturally defined default; separate rule below.
                continue;
            }
            if Some(u) == def {
                // Read-modify-write of the destination (partial writes,
                // strided loads): not a use of a prior value per se.
                continue;
            }
            if !state.has(u) && written_somewhere.has(u) {
                diags.push(Diag {
                    idx,
                    severity: Severity::Warning,
                    rule: "undefined-before-use",
                    message: format!("{u:?} may be read before it is written"),
                });
            }
        }
        if ins.is_full_vl() && !state.has(RegId::Vl) {
            diags.push(Diag {
                idx,
                severity: Severity::Warning,
                rule: "vl-unset",
                message: "full-VL operation relies on the default VL (no dominating setvl)"
                    .to_owned(),
            });
        }
    }
    diags.sort_by_key(|d| d.idx);
    diags
}

/// Convenience: the number of [`Severity::Error`] findings.
#[must_use]
pub fn error_count(diags: &[Diag]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}
