//! Text assembler for the conformance corpus.
//!
//! Parses exactly the grammar the ISA's `Display` impls emit (the
//! disassembler is the grammar's source of truth — a round-trip test
//! feeds every built-in kernel's listing back through this parser), plus
//! a small directive layer for machine setup:
//!
//! ```text
//! ; comment (also allowed after an instruction)
//! .ext vmmx128        ; machine extension (default vmmx128)
//! .mem 4096           ; memory image bytes (default 4096)
//! .reg r3 = -7        ; initial integer register
//! .freg f1 = 2.5      ; initial floating-point register
//! .data 128: 01 02 ff ; hex bytes poked at an address
//! .region vector      ; region tag for subsequent instructions
//! li r1, 5
//! bne r1, #0, @1      ; branch targets are absolute instruction indices
//! halt
//! ```
//!
//! Directive lines do not consume instruction indices, so `@N` targets
//! count instructions only — the same numbering `Program::listing`
//! prints.

use crate::refint::RefMachine;
use simdsim_emu::Machine;
use simdsim_isa::{
    AReg, AccOp, AluOp, Cond, Esz, Ext, FOp, FReg, IReg, Instr, MOperand, MReg, MemSz, Operand2,
    Program, Region, Sat, VLoc, VOp, VReg, VShiftOp,
};

/// A parsed corpus source: the program plus initial machine state.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Target extension.
    pub ext: Ext,
    /// Memory image size in bytes.
    pub mem_size: usize,
    /// Initial integer registers.
    pub init_iregs: Vec<(usize, i64)>,
    /// Initial floating-point registers.
    pub init_fregs: Vec<(usize, f64)>,
    /// Memory pokes `(addr, bytes)`.
    pub data: Vec<(u64, Vec<u8>)>,
    /// The assembled program.
    pub program: Program,
}

impl CorpusProgram {
    /// Parses a corpus source file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut ext = Ext::Vmmx128;
        let mut mem_size = 4096usize;
        let mut init_iregs = Vec::new();
        let mut init_fregs = Vec::new();
        let mut data = Vec::new();
        let mut region = Region::Scalar;
        let mut code = Vec::new();
        let mut regions = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", lineno + 1);
            if let Some(rest) = line.strip_prefix('.') {
                let (dir, body) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                let body = body.trim();
                match dir {
                    "ext" => {
                        ext = Ext::ALL
                            .iter()
                            .copied()
                            .find(|e| e.name() == body)
                            .ok_or_else(|| err(format!("unknown extension `{body}`")))?;
                    }
                    "mem" => {
                        mem_size = body
                            .parse()
                            .map_err(|_| err(format!("bad memory size `{body}`")))?;
                    }
                    "reg" => {
                        let (r, v) = parse_assign(body).map_err(&err)?;
                        let r = parse_ireg(r).map_err(&err)?;
                        let v: i64 = v.parse().map_err(|_| err(format!("bad value `{v}`")))?;
                        init_iregs.push((r.index(), v));
                    }
                    "freg" => {
                        let (r, v) = parse_assign(body).map_err(&err)?;
                        let r = parse_freg(r).map_err(&err)?;
                        let v: f64 = v.parse().map_err(|_| err(format!("bad value `{v}`")))?;
                        init_fregs.push((r.index(), v));
                    }
                    "data" => {
                        let (addr, bytes) = body
                            .split_once(':')
                            .ok_or_else(|| err("expected `.data addr: hex…`".to_owned()))?;
                        let addr: u64 = addr
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad address `{addr}`")))?;
                        let mut v = Vec::new();
                        for tok in bytes.split_whitespace() {
                            v.push(
                                u8::from_str_radix(tok, 16)
                                    .map_err(|_| err(format!("bad hex byte `{tok}`")))?,
                            );
                        }
                        data.push((addr, v));
                    }
                    "region" => {
                        region = match body {
                            "scalar" => Region::Scalar,
                            "vector" => Region::Vector,
                            other => return Err(err(format!("unknown region `{other}`"))),
                        };
                    }
                    other => return Err(err(format!("unknown directive `.{other}`"))),
                }
                continue;
            }
            code.push(parse_instr(line).map_err(&err)?);
            regions.push(region);
        }
        Ok(Self {
            ext,
            mem_size,
            init_iregs,
            init_fregs,
            data,
            program: Program::new(code, regions),
        })
    }

    /// Builds the emulator machine in this corpus case's initial state.
    #[must_use]
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.ext, self.mem_size);
        for &(i, v) in &self.init_iregs {
            m.set_ireg(i, v);
        }
        for &(i, v) in &self.init_fregs {
            m.set_freg(i, v);
        }
        for (addr, bytes) in &self.data {
            m.write_bytes(*addr, bytes).expect("corpus .data in bounds");
        }
        m
    }

    /// Builds the reference interpreter in the same initial state.
    #[must_use]
    pub fn ref_machine(&self) -> RefMachine {
        let mut m = RefMachine::new(self.ext, self.mem_size);
        for &(i, v) in &self.init_iregs {
            m.set_ireg(i, v);
        }
        for &(i, v) in &self.init_fregs {
            m.set_freg(i, v);
        }
        for (addr, bytes) in &self.data {
            m.write_bytes(*addr, bytes);
        }
        m
    }
}

fn parse_assign(body: &str) -> Result<(&str, &str), String> {
    body.split_once('=')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| format!("expected `reg = value`, got `{body}`"))
}

fn reg_num(s: &str, prefix: &str) -> Result<u8, String> {
    s.strip_prefix(prefix)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad `{prefix}` register `{s}`"))
}

fn parse_ireg(s: &str) -> Result<IReg, String> {
    IReg::try_new(reg_num(s, "r")?).ok_or_else(|| format!("register `{s}` out of range"))
}

fn parse_freg(s: &str) -> Result<FReg, String> {
    FReg::try_new(reg_num(s, "f")?).ok_or_else(|| format!("register `{s}` out of range"))
}

fn parse_vreg(s: &str) -> Result<VReg, String> {
    VReg::try_new(reg_num(s, "v")?).ok_or_else(|| format!("register `{s}` out of range"))
}

fn parse_mreg(s: &str) -> Result<MReg, String> {
    MReg::try_new(reg_num(s, "m")?).ok_or_else(|| format!("register `{s}` out of range"))
}

fn parse_areg(s: &str) -> Result<AReg, String> {
    AReg::try_new(reg_num(s, "acc")?).ok_or_else(|| format!("register `{s}` out of range"))
}

/// `m2[3]` → (m2, 3).  Splits on the *last* bracket so a lane index
/// on a matrix row (`m0[2][5]`) leaves `m0[2]` for the operand parser.
fn parse_indexed(s: &str) -> Option<(&str, u8)> {
    let open = s.rfind('[')?;
    let close = s.strip_suffix(']')?;
    let idx = close.get(open + 1..)?.parse().ok()?;
    Some((&s[..open], idx))
}

fn parse_vloc(s: &str) -> Result<VLoc, String> {
    if let Some((m, row)) = parse_indexed(s) {
        Ok(VLoc::Row(parse_mreg(m)?, row))
    } else if s.starts_with('v') {
        Ok(VLoc::V(parse_vreg(s)?))
    } else {
        Err(format!("bad SIMD operand `{s}`"))
    }
}

fn parse_moperand(s: &str) -> Result<MOperand, String> {
    if let Some(bcast) = s.strip_suffix(":bcast") {
        let (m, row) =
            parse_indexed(bcast).ok_or_else(|| format!("bad broadcast operand `{s}`"))?;
        Ok(MOperand::RowBcast(parse_mreg(m)?, row))
    } else {
        Ok(MOperand::M(parse_mreg(s)?))
    }
}

fn parse_op2(s: &str) -> Result<Operand2, String> {
    if let Some(imm) = s.strip_prefix('#') {
        imm.parse()
            .map(Operand2::Imm)
            .map_err(|_| format!("bad immediate `{s}`"))
    } else {
        Ok(Operand2::Reg(parse_ireg(s)?))
    }
}

/// `{off}({base})` → (off, base)
fn parse_memop(s: &str) -> Result<(i32, IReg), String> {
    let open = s
        .find('(')
        .ok_or_else(|| format!("bad memory operand `{s}`"))?;
    let base = s
        .get(open + 1..s.len() - 1)
        .filter(|_| s.ends_with(')'))
        .ok_or_else(|| format!("bad memory operand `{s}`"))?;
    let off = if open == 0 {
        0
    } else {
        s[..open]
            .parse()
            .map_err(|_| format!("bad offset in `{s}`"))?
    };
    Ok((off, parse_ireg(base)?))
}

fn parse_target(s: &str) -> Result<u32, String> {
    s.strip_prefix('@')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad branch target `{s}` (expected `@index`)"))
}

fn parse_esz(s: &str) -> Result<Esz, String> {
    match s {
        "b" => Ok(Esz::B),
        "h" => Ok(Esz::H),
        "w" => Ok(Esz::W),
        "d" => Ok(Esz::D),
        other => Err(format!("bad element-size suffix `{other}`")),
    }
}

fn parse_amount(s: &str) -> Result<u8, String> {
    s.strip_prefix('#')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad shift amount `{s}`"))
}

fn parse_accop(s: &str) -> Result<AccOp, String> {
    match s {
        "sad" => Ok(AccOp::Sad),
        "mac" => Ok(AccOp::Mac),
        "addh" => Ok(AccOp::AddH),
        "ssd" => Ok(AccOp::Ssd),
        other => Err(format!("bad accumulator op `{other}`")),
    }
}

/// Parses a `v…` mnemonic (already split from its operands) into a
/// [`VOp`], or `None` when it is not an element-wise operation.
fn parse_vop(mn: &str) -> Option<Result<VOp, String>> {
    let (base, sfx) = mn.split_once('.').map_or((mn, None), |(b, s)| (b, Some(s)));
    let esz = || -> Result<Esz, String> {
        parse_esz(sfx.ok_or_else(|| format!("`{base}` needs an element-size suffix"))?)
    };
    let op = match base {
        "vadd" => esz().map(VOp::Add),
        "vadds" => esz().map(VOp::AddS),
        "vaddu" => esz().map(VOp::AddU),
        "vsub" => esz().map(VOp::Sub),
        "vsubs" => esz().map(VOp::SubS),
        "vsubu" => esz().map(VOp::SubU),
        "vmullo" => esz().map(VOp::Mullo),
        "vmulhi" => esz().map(VOp::Mulhi),
        "vmadd" => Ok(VOp::Madd),
        "vsad" => Ok(VOp::Sad),
        "vavg" => esz().map(VOp::Avg),
        "vmins" => esz().map(VOp::MinS),
        "vminu" => esz().map(VOp::MinU),
        "vmaxs" => esz().map(VOp::MaxS),
        "vmaxu" => esz().map(VOp::MaxU),
        "vcmpeq" => esz().map(VOp::CmpEq),
        "vcmpgt" => esz().map(VOp::CmpGt),
        "vand" => Ok(VOp::And),
        "vor" => Ok(VOp::Or),
        "vxor" => Ok(VOp::Xor),
        "vandn" => Ok(VOp::AndNot),
        "vpacks" => esz().map(VOp::PackS),
        "vpacku" => esz().map(VOp::PackU),
        "vunpklo" => esz().map(VOp::UnpackLo),
        "vunpkhi" => esz().map(VOp::UnpackHi),
        _ => return None,
    };
    Some(op)
}

fn parse_vshift(mn: &str) -> Option<Result<VShiftOp, String>> {
    let (base, sfx) = mn.split_once('.')?;
    let ctor = match base {
        "vsll" => VShiftOp::Sll,
        "vsrl" => VShiftOp::Srl,
        "vsra" => VShiftOp::Sra,
        _ => return None,
    };
    Some(parse_esz(sfx).map(ctor))
}

/// Parses one instruction in the `Display` grammar.
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
#[allow(clippy::too_many_lines)]
pub fn parse_instr(line: &str) -> Result<Instr, String> {
    let line = line.trim();
    let (mn, rest) = line
        .split_once(char::is_whitespace)
        .map_or((line, ""), |(m, r)| (m, r.trim()));
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nops = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mn}` expects {n} operands, got {}", ops.len()))
        }
    };

    // Fixed mnemonics first.
    match mn {
        "li" => {
            nops(2)?;
            return Ok(Instr::Li {
                rd: parse_ireg(ops[0])?,
                imm: ops[1]
                    .parse()
                    .map_err(|_| format!("bad immediate `{}`", ops[1]))?,
            });
        }
        "j" => {
            nops(1)?;
            return Ok(Instr::Jump {
                target: parse_target(ops[0])?,
            });
        }
        "halt" => {
            nops(0)?;
            return Ok(Instr::Halt);
        }
        "nop" => {
            nops(0)?;
            return Ok(Instr::Nop);
        }
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            nops(3)?;
            let op = match mn {
                "fadd" => FOp::Add,
                "fsub" => FOp::Sub,
                "fmul" => FOp::Mul,
                _ => FOp::Div,
            };
            return Ok(Instr::FpOp {
                op,
                fd: parse_freg(ops[0])?,
                fa: parse_freg(ops[1])?,
                fb: parse_freg(ops[2])?,
            });
        }
        "fld" => {
            nops(2)?;
            let (off, base) = parse_memop(ops[1])?;
            return Ok(Instr::FpLoad {
                fd: parse_freg(ops[0])?,
                base,
                off,
            });
        }
        "fst" => {
            nops(2)?;
            let (off, base) = parse_memop(ops[1])?;
            return Ok(Instr::FpStore {
                fs: parse_freg(ops[0])?,
                base,
                off,
            });
        }
        "cvtif" => {
            nops(2)?;
            return Ok(Instr::CvtIF {
                fd: parse_freg(ops[0])?,
                ra: parse_ireg(ops[1])?,
            });
        }
        "cvtfi" => {
            nops(2)?;
            return Ok(Instr::CvtFI {
                rd: parse_ireg(ops[0])?,
                fa: parse_freg(ops[1])?,
            });
        }
        "vmov" => {
            nops(2)?;
            return Ok(Instr::VMov {
                dst: parse_vloc(ops[0])?,
                src: parse_vloc(ops[1])?,
            });
        }
        "setvl" => {
            nops(1)?;
            return Ok(Instr::SetVl {
                src: parse_op2(ops[0])?,
            });
        }
        "mmov" => {
            nops(2)?;
            return Ok(Instr::MMov {
                dst: parse_mreg(ops[0])?,
                src: parse_mreg(ops[1])?,
            });
        }
        "accsum" => {
            nops(2)?;
            return Ok(Instr::AccSum {
                rd: parse_ireg(ops[0])?,
                acc: parse_areg(ops[1])?,
            });
        }
        "accclr" => {
            nops(1)?;
            return Ok(Instr::AccClear {
                acc: parse_areg(ops[0])?,
            });
        }
        _ => {}
    }

    // Scalar ALU.
    if let Some(op) = match mn {
        "add" => Some(AluOp::Add),
        "sub" => Some(AluOp::Sub),
        "mul" => Some(AluOp::Mul),
        "div" => Some(AluOp::Div),
        "rem" => Some(AluOp::Rem),
        "and" => Some(AluOp::And),
        "or" => Some(AluOp::Or),
        "xor" => Some(AluOp::Xor),
        "sll" => Some(AluOp::Sll),
        "srl" => Some(AluOp::Srl),
        "sra" => Some(AluOp::Sra),
        "slt" => Some(AluOp::Slt),
        "sltu" => Some(AluOp::Sltu),
        "seq" => Some(AluOp::Seq),
        _ => None,
    } {
        nops(3)?;
        return Ok(Instr::IntOp {
            op,
            rd: parse_ireg(ops[0])?,
            ra: parse_ireg(ops[1])?,
            b: parse_op2(ops[2])?,
        });
    }

    // Branches: b{cond}.
    if let Some(cond) = mn.strip_prefix('b').and_then(|c| match c {
        "eq" => Some(Cond::Eq),
        "ne" => Some(Cond::Ne),
        "lt" => Some(Cond::Lt),
        "ge" => Some(Cond::Ge),
        "le" => Some(Cond::Le),
        "gt" => Some(Cond::Gt),
        "ltu" => Some(Cond::LtU),
        "geu" => Some(Cond::GeU),
        _ => None,
    }) {
        nops(3)?;
        return Ok(Instr::Branch {
            cond,
            ra: parse_ireg(ops[0])?,
            b: parse_op2(ops[1])?,
            target: parse_target(ops[2])?,
        });
    }

    // Scalar loads/stores: l{b,h,w,d} / lu{…} / s{…}.
    let memsz = |c: &str| match c {
        "b" => Some(MemSz::B),
        "h" => Some(MemSz::H),
        "w" => Some(MemSz::W),
        "d" => Some(MemSz::D),
        _ => None,
    };
    for (prefix, load, sext) in [("lu", true, false), ("l", true, true), ("s", false, false)] {
        if let Some(sz) = mn.strip_prefix(prefix).and_then(memsz) {
            nops(2)?;
            let (off, base) = parse_memop(ops[1])?;
            return Ok(if load {
                Instr::Load {
                    sz,
                    sext,
                    rd: parse_ireg(ops[0])?,
                    base,
                    off,
                }
            } else {
                Instr::Store {
                    sz,
                    rs: parse_ireg(ops[0])?,
                    base,
                    off,
                }
            });
        }
    }

    // Dotted mnemonics.
    if let Some((base, sfx)) = mn.split_once('.') {
        match base {
            "vsplat" => {
                nops(2)?;
                return Ok(Instr::VSplat {
                    dst: parse_vloc(ops[0])?,
                    src: parse_ireg(ops[1])?,
                    esz: parse_esz(sfx)?,
                });
            }
            "msplat" => {
                nops(2)?;
                return Ok(Instr::MSplat {
                    dst: parse_mreg(ops[0])?,
                    src: parse_ireg(ops[1])?,
                    esz: parse_esz(sfx)?,
                });
            }
            "mtrans" => {
                nops(2)?;
                return Ok(Instr::MTranspose {
                    dst: parse_mreg(ops[0])?,
                    src: parse_mreg(ops[1])?,
                    esz: parse_esz(sfx)?,
                });
            }
            "movsv" | "movsvu" => {
                nops(2)?;
                let (src, lane) = parse_indexed(ops[1])
                    .ok_or_else(|| format!("bad lane operand `{}`", ops[1]))?;
                return Ok(Instr::MovSV {
                    rd: parse_ireg(ops[0])?,
                    src: parse_vloc(src)?,
                    lane,
                    esz: parse_esz(sfx)?,
                    sext: base == "movsv",
                });
            }
            "movvs" => {
                nops(2)?;
                let (dst, lane) = parse_indexed(ops[0])
                    .ok_or_else(|| format!("bad lane operand `{}`", ops[0]))?;
                return Ok(Instr::MovVS {
                    dst: parse_vloc(dst)?,
                    src: parse_ireg(ops[1])?,
                    lane,
                    esz: parse_esz(sfx)?,
                });
            }
            "vld" | "vst" => {
                nops(2)?;
                let bytes: u8 = sfx
                    .parse()
                    .map_err(|_| format!("bad transfer size `{sfx}`"))?;
                let (off, base_r) = parse_memop(ops[1])?;
                return Ok(if base == "vld" {
                    Instr::VLoad {
                        dst: parse_vloc(ops[0])?,
                        base: base_r,
                        off,
                        bytes,
                    }
                } else {
                    Instr::VStore {
                        src: parse_vloc(ops[0])?,
                        base: base_r,
                        off,
                        bytes,
                    }
                });
            }
            "mld" | "mst" => {
                // `mld.16 m3, (r4) vs=r5` — the second comma-operand
                // carries both the base and the stride.
                nops(2)?;
                let row_bytes: u8 = sfx.parse().map_err(|_| format!("bad row size `{sfx}`"))?;
                let (memop, stride) = ops[1]
                    .split_once("vs=")
                    .ok_or_else(|| format!("`{mn}` needs a `vs=` stride in `{}`", ops[1]))?;
                let (off, base_r) = parse_memop(memop.trim())?;
                if off != 0 {
                    return Err(format!("`{mn}` takes no offset, got {off}"));
                }
                let stride = parse_op2(stride.trim())?;
                return Ok(if base == "mld" {
                    Instr::MLoad {
                        dst: parse_mreg(ops[0])?,
                        base: base_r,
                        stride,
                        row_bytes,
                    }
                } else {
                    Instr::MStore {
                        src: parse_mreg(ops[0])?,
                        base: base_r,
                        stride,
                        row_bytes,
                    }
                });
            }
            "macc" | "vacc" => {
                nops(3)?;
                let op = parse_accop(sfx)?;
                let acc = parse_areg(ops[0])?;
                return Ok(if base == "macc" {
                    Instr::MAcc {
                        op,
                        acc,
                        a: parse_mreg(ops[1])?,
                        b: parse_mreg(ops[2])?,
                    }
                } else {
                    Instr::VAcc {
                        op,
                        acc,
                        a: parse_vloc(ops[1])?,
                        b: parse_vloc(ops[2])?,
                    }
                });
            }
            "accpack" => {
                nops(3)?;
                let (esz_s, sat_s) = sfx
                    .split_once('.')
                    .ok_or_else(|| format!("`accpack` needs `.esz.sat`, got `.{sfx}`"))?;
                let sat = match sat_s {
                    "wrap" => Sat::Wrap,
                    "sat" => Sat::Signed,
                    "satu" => Sat::Unsigned,
                    other => return Err(format!("bad saturation mode `{other}`")),
                };
                let shift: u8 = ops[2]
                    .strip_prefix(">>")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad shift `{}` (expected `>>n`)", ops[2]))?;
                return Ok(Instr::AccPack {
                    dst: parse_vloc(ops[0])?,
                    acc: parse_areg(ops[1])?,
                    esz: parse_esz(esz_s)?,
                    sat,
                    shift,
                });
            }
            _ => {}
        }
    }

    // Element-wise SIMD ops and shifts, in both the one-word (`v…`) and
    // full-VL matrix (`mv…`) spellings.
    let (vmn, matrix) = mn
        .strip_prefix("mv")
        .map_or((mn.to_owned(), false), |s| (format!("v{s}"), true));
    if let Some(shift) = parse_vshift(&vmn) {
        let op = shift?;
        nops(3)?;
        let amount = parse_amount(ops[2])?;
        return Ok(if matrix {
            Instr::MShift {
                op,
                dst: parse_mreg(ops[0])?,
                src: parse_mreg(ops[1])?,
                amount,
            }
        } else {
            Instr::SimdShift {
                op,
                dst: parse_vloc(ops[0])?,
                src: parse_vloc(ops[1])?,
                amount,
            }
        });
    }
    if let Some(vop) = parse_vop(&vmn) {
        let op = vop?;
        nops(3)?;
        return Ok(if matrix {
            Instr::MOp {
                op,
                dst: parse_mreg(ops[0])?,
                a: parse_mreg(ops[1])?,
                b: parse_moperand(ops[2])?,
            }
        } else {
            Instr::Simd {
                op,
                dst: parse_vloc(ops[0])?,
                a: parse_vloc(ops[1])?,
                b: parse_vloc(ops[2])?,
            }
        });
    }

    Err(format!("unknown mnemonic `{mn}`"))
}
