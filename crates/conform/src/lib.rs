//! Conformance subsystem: reference oracle, differential corpus,
//! fuzzer and assembly linter.
//!
//! The production emulator is heavily optimised — predecoded tables,
//! superblock dispatch, SWAR sub-word kernels — which is exactly why it
//! needs a permanently-simple second opinion.  This crate provides:
//!
//! * [`RefMachine`] — a deliberately slow reference interpreter
//!   (straight-line `match`, per-lane loops, `i128` arithmetic) that
//!   defines the ISA's architectural semantics independently of the
//!   emulator's implementation tricks;
//! * an architectural-**effects** model ([`Effect`],
//!   [`EffectsRecorder`]) capturing what every committed instruction
//!   wrote, observed live via the emulator's `StepObserver` seam;
//! * the conformance **corpus** (`corpus/*.s`, parsed by
//!   [`CorpusProgram`]): small hand-written programs, one per
//!   instruction family, executed through the reference interpreter and
//!   both emulator dispatch paths with committed expected-state
//!   fixtures;
//! * a differential **fuzzer** ([`fuzz_case`]) generating random
//!   well-formed programs through `simdsim_asm::Asm`;
//! * a static **linter** ([`lint`]) over assembled programs.
//!
//! The `conform` binary exposes all of it on the command line
//! (`conform run | fuzz --cases N | lint`), and `just conform` runs the
//! same set CI's `conform-smoke` job enforces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asmtext;
pub mod corpus;
pub mod effects;
pub mod fuzz;
pub mod lint;
pub mod refint;
pub mod state;

pub use asmtext::{parse_instr, CorpusProgram};
pub use corpus::{differential, run_corpus, summarize, CaseResult};
pub use effects::{diff_effects, sample_write, Effect, EffectsRecorder, RegVal};
pub use fuzz::{fuzz_case, fuzz_many, random_program, FuzzOutcome, Rng};
pub use lint::{error_count, lint, Diag, Severity};
pub use refint::{RefMachine, RefRun};
pub use state::{fnv1a64, ArchState, StateEntry};
