//! The conformance corpus: run `.s` cases through all three engines.
//!
//! Every `crates/conform/corpus/*.s` file is parsed by
//! [`CorpusProgram`], executed by
//!
//! 1. the [`RefMachine`] reference interpreter,
//! 2. `Machine::run_decoded_observed` over the normal predecoded
//!    (superblock) table, and
//! 3. the same entry point over [`Decoded::without_blocks`], which
//!    forces the per-instruction side-exit path,
//!
//! and the three runs must agree on the complete effects stream, the
//! final architectural state, the error (if any) and the dynamic-count
//! statistics the timing model consumes.  The reference run's final
//! state is additionally compared against the committed
//! `<case>.expect.json` fixture, so a semantic change to *all* engines
//! at once still trips conformance until the fixture is regenerated
//! (`CONFORM_REGEN=1`).

use crate::asmtext::CorpusProgram;
use crate::effects::{diff_effects, EffectsRecorder};
use crate::state::ArchState;
use simdsim_emu::NullSink;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Commit limit for corpus and fuzz programs — generous for hand-written
/// cases, small enough to catch accidental infinite loops quickly.
pub const MAX_INSTRS: u64 = 200_000;

/// Outcome of one corpus case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name (file stem).
    pub name: String,
    /// Failure report, `None` on pass.
    pub failure: Option<String>,
}

impl CaseResult {
    /// Whether the case passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs one parsed program through all three engines and checks they
/// agree; returns the reference run's final architectural state.
///
/// # Errors
///
/// Returns a divergence report naming the engines and the first
/// differing artefact.
pub fn differential(cp: &CorpusProgram, max_instrs: u64) -> Result<ArchState, String> {
    let code = cp.program.code();

    let mut rm = cp.ref_machine();
    let ref_run = rm.run(&cp.program, max_instrs);
    let ref_state = ArchState::of_ref(&rm);

    let dec = cp.program.decode();
    let engines = [("blocks", dec.clone()), ("stepped", dec.without_blocks())];
    for (label, table) in engines {
        let mut m = cp.machine();
        let mut rec = EffectsRecorder::default();
        let res = m.run_decoded_observed(&table, &mut NullSink, max_instrs, &mut rec);
        let emu_state = ArchState::of_machine(&m);

        let emu_err = res.as_ref().err().cloned();
        if ref_run.error != emu_err {
            return Err(format!(
                "error divergence: reference={:?} emu/{label}={emu_err:?}",
                ref_run.error
            ));
        }
        if let Some(d) = diff_effects("reference", &ref_run.effects, label, &rec.effects, code) {
            return Err(d);
        }
        if let Some(d) = ref_state.diff("reference", &emu_state, label) {
            return Err(format!("final state divergence: {d}"));
        }
        if let Ok(stats) = res {
            let same = stats.dyn_instrs == ref_run.dyn_instrs
                && stats.counts == ref_run.counts
                && stats.scalar_region_instrs == ref_run.scalar_region_instrs
                && stats.vector_region_instrs == ref_run.vector_region_instrs
                && stats.element_ops == ref_run.element_ops;
            if !same {
                return Err(format!(
                    "stats divergence vs {label}: reference \
                     dyn={} counts={:?} sreg={} vreg={} elems={} / emu \
                     dyn={} counts={:?} sreg={} vreg={} elems={}",
                    ref_run.dyn_instrs,
                    ref_run.counts,
                    ref_run.scalar_region_instrs,
                    ref_run.vector_region_instrs,
                    ref_run.element_ops,
                    stats.dyn_instrs,
                    stats.counts,
                    stats.scalar_region_instrs,
                    stats.vector_region_instrs,
                    stats.element_ops,
                ));
            }
        }
    }
    Ok(ref_state)
}

/// The committed corpus directory (`crates/conform/corpus`).
#[must_use]
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Runs one corpus file: three-engine differential plus the
/// `.expect.json` fixture check.  With `regen`, rewrites the fixture
/// instead of comparing.
#[must_use]
pub fn run_case(path: &Path, regen: bool) -> CaseResult {
    let name = path.file_stem().map_or_else(
        || path.display().to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    let fail = |m: String| CaseResult {
        name: name.clone(),
        failure: Some(m),
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("unreadable: {e}")),
    };
    let cp = match CorpusProgram::parse(&text) {
        Ok(cp) => cp,
        Err(e) => return fail(format!("parse error: {e}")),
    };
    let state = match differential(&cp, MAX_INSTRS) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };

    let fixture = path.with_extension("expect.json");
    let rendered = serde_json::to_string_pretty(&state).expect("state serializes");
    if regen {
        if let Err(e) = std::fs::write(&fixture, rendered + "\n") {
            return fail(format!("cannot write fixture: {e}"));
        }
        return CaseResult {
            name,
            failure: None,
        };
    }
    let expect_text = match std::fs::read_to_string(&fixture) {
        Ok(t) => t,
        Err(_) => {
            return fail(format!(
                "missing fixture {} (run with CONFORM_REGEN=1 to create it)",
                fixture.display()
            ))
        }
    };
    let expected: ArchState = match serde_json::from_str(&expect_text) {
        Ok(s) => s,
        Err(e) => return fail(format!("bad fixture JSON: {e:?}")),
    };
    if let Some(d) = expected.diff("expected", &state, "actual") {
        return fail(format!("fixture mismatch: {d}"));
    }
    CaseResult {
        name,
        failure: None,
    }
}

/// Runs the whole corpus in deterministic (sorted) order.
///
/// Reads `CONFORM_REGEN=1` from the environment to rewrite fixtures.
#[must_use]
pub fn run_corpus(dir: &Path) -> Vec<CaseResult> {
    let regen = std::env::var("CONFORM_REGEN").is_ok_and(|v| v == "1");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "s"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files.iter().map(|p| run_case(p, regen)).collect()
}

/// Renders a one-line-per-failure summary plus the pass/fail counters
/// the CI smoke job greps for.
#[must_use]
pub fn summarize(results: &[CaseResult]) -> String {
    let mut out = String::new();
    for r in results {
        if let Some(f) = &r.failure {
            let _ = writeln!(out, "FAIL {}: {f}", r.name);
        }
    }
    let passed = results.iter().filter(|r| r.ok()).count();
    let _ = writeln!(
        out,
        "conform-corpus: {passed} passed, {} failed, {} total",
        results.len() - passed,
        results.len()
    );
    out
}
