//! Architectural-effects traces: what each committed instruction wrote.
//!
//! Every engine under test produces one [`Effect`] per committed dynamic
//! instruction — the defined register's post-instruction value plus the
//! control-flow and memory facts the timing model consumes
//! ([`DynInstr`]'s `taken` / `mem` / `vl` fields).  Two engines conform
//! when their effect streams are element-wise identical and they end in
//! the same architectural state.

use simdsim_emu::{DynInstr, Machine, MemAccess, StepObserver};
use simdsim_isa::{Instr, RegId, MAX_VL};

/// Post-instruction value of one architectural register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegVal {
    /// Integer register value.
    I(i64),
    /// Floating-point register value, as raw bits for exact comparison.
    F(u64),
    /// SIMD register value.
    V(u128),
    /// All rows of a matrix register (defs are whole-register grain).
    M([u128; MAX_VL]),
    /// All lanes of an accumulator.
    A([i64; 8]),
    /// The vector-length register.
    Vl(u8),
}

/// The observable architectural effect of one committed instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    /// Static instruction index.
    pub pc: u32,
    /// `Some(target)` when a branch/jump was taken.
    pub taken: Option<u32>,
    /// Effective vector length ([`DynInstr::vl`] convention: the
    /// post-instruction VL for full-VL matrix operations, 1 otherwise).
    pub vl: u8,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// The defined register and its post-instruction value, if the
    /// instruction defines one (the ISA allows at most one def).
    pub write: Option<(RegId, RegVal)>,
}

/// Samples the register `instr` defines from post-instruction machine
/// state, shared by the emulator-side observer; the reference
/// interpreter builds the same shape from its own state.
#[must_use]
pub fn sample_write(m: &Machine, instr: &Instr) -> Option<(RegId, RegVal)> {
    let du = instr.def_use();
    let reg = *du.defs().first()?;
    let val = match reg {
        RegId::I(i) => RegVal::I(m.ireg(i as usize)),
        RegId::F(i) => RegVal::F(m.freg(i as usize).to_bits()),
        RegId::V(i) => RegVal::V(m.vreg(i as usize)),
        RegId::M(i) => {
            let mut rows = [0u128; MAX_VL];
            for (r, row) in rows.iter_mut().enumerate() {
                *row = m.mrow(i as usize, r);
            }
            RegVal::M(rows)
        }
        RegId::A(i) => RegVal::A(m.acc(i as usize)),
        RegId::Vl => RegVal::Vl(m.vl() as u8),
    };
    Some((reg, val))
}

/// A [`StepObserver`] that records the effect stream of an emulator run.
#[derive(Debug, Default)]
pub struct EffectsRecorder {
    /// Collected effects, one per committed instruction.
    pub effects: Vec<Effect>,
}

impl StepObserver for EffectsRecorder {
    fn step(&mut self, m: &Machine, di: &DynInstr) {
        self.effects.push(Effect {
            pc: di.pc,
            taken: di.taken,
            vl: di.vl,
            mem: di.mem,
            write: sample_write(m, &di.instr),
        });
    }
}

/// First divergence between two effect streams, as a human-readable
/// report, or `None` when the streams are identical.
#[must_use]
pub fn diff_effects(
    label_a: &str,
    a: &[Effect],
    label_b: &str,
    b: &[Effect],
    code: &[Instr],
) -> Option<String> {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            let instr = code
                .get(a[i].pc as usize)
                .map_or_else(|| "<out of range>".to_owned(), ToString::to_string);
            return Some(format!(
                "effect #{i} diverges (pc {}: `{instr}`)\n  {label_a}: {:?}\n  {label_b}: {:?}",
                a[i].pc, a[i], b[i]
            ));
        }
    }
    if a.len() != b.len() {
        return Some(format!(
            "effect streams diverge in length: {label_a} committed {} instructions, {label_b} {}",
            a.len(),
            b.len()
        ));
    }
    None
}
