//! Differential fuzzer: random well-formed programs, three engines.
//!
//! Programs are generated through `simdsim_asm::Asm` from a seeded
//! [`splitmix64`] stream, so every case is reproducible from its seed
//! (printed on failure together with the listing).  The generator is
//! recipe-driven: it emits an initialisation prologue (immediates,
//! splats, memory seeding), then a body of random instructions drawn
//! from the classes legal for the chosen extension — optionally wrapped
//! in a bounded counted loop and sprinkled with forward skip branches
//! so the superblock engine actually exercises splits and side exits.
//!
//! The generator stays inside the domain where the production
//! emulator's semantics are well-defined in both build profiles:
//! saturating/average/high-multiply element ops only on byte/half/word
//! lanes, element values seeded from 16-bit immediates, bounded
//! accumulator traffic, and memory traffic confined to the 4 KiB image
//! (a small fraction of cases intentionally emits out-of-range lanes
//! and `setvl` from a possibly-negative register to check *error*
//! conformance).

use crate::asmtext::CorpusProgram;
use crate::corpus::{differential, MAX_INSTRS};
use simdsim_asm::Asm;
use simdsim_isa::{
    AReg, AccOp, AluOp, Cond, Esz, Ext, FReg, IReg, MOperand, MReg, MemSz, Program, Sat, VLoc, VOp,
    VReg, VShiftOp, MAX_VL,
};

/// Deterministic 64-bit PRNG (splitmix64), good enough for recipe choices.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Register pools the generator draws from.  Fixed numbering keeps the
/// generator simple and leaves `r15` free as the loop counter.
const IPOOL: [u8; 6] = [8, 9, 10, 11, 12, 13];
const BASE: u8 = 14;
const COUNTER: u8 = 15;
const VPOOL: [u8; 4] = [0, 1, 2, 3];
const MPOOL: [u8; 4] = [0, 1, 2, 3];
const FPOOL: [u8; 3] = [0, 1, 2];
/// Element sizes safe for saturating/average/high-multiply ops (64-bit
/// lanes hit intermediate-overflow territory the emulator leaves
/// undefined in debug builds).
const NARROW: [Esz; 3] = [Esz::B, Esz::H, Esz::W];
const ALL_ESZ: [Esz; 4] = [Esz::B, Esz::H, Esz::W, Esz::D];

fn ireg(r: &mut Rng) -> IReg {
    IReg::new(*r.pick(&IPOOL))
}

fn vreg(r: &mut Rng) -> VReg {
    VReg::new(*r.pick(&VPOOL))
}

fn mreg(r: &mut Rng) -> MReg {
    MReg::new(*r.pick(&MPOOL))
}

fn freg(r: &mut Rng) -> FReg {
    FReg::new(*r.pick(&FPOOL))
}

fn vloc(r: &mut Rng, matrix: bool) -> VLoc {
    if matrix && r.chance(1, 3) {
        VLoc::Row(mreg(r), r.below(MAX_VL as u64) as u8)
    } else {
        VLoc::V(vreg(r))
    }
}

fn vop(r: &mut Rng, width: usize) -> VOp {
    let narrow = *r.pick(&NARROW);
    let any = *r.pick(&ALL_ESZ);
    // Pack narrows H→B / W→H / D→W; byte sources are rejected by the
    // emulator, so draw from the wider three.
    let packable = *r.pick(&[Esz::H, Esz::W, Esz::D]);
    let unpackable = if width == 8 && r.chance(1, 8) {
        Esz::D // a single 64-bit lane: unpack degenerates, still defined
    } else {
        *r.pick(&NARROW)
    };
    match r.below(24) {
        0 => VOp::Add(any),
        1 => VOp::AddS(narrow),
        2 => VOp::AddU(narrow),
        3 => VOp::Sub(any),
        4 => VOp::SubS(narrow),
        5 => VOp::SubU(narrow),
        6 => VOp::Mullo(any),
        7 => VOp::Mulhi(narrow),
        8 => VOp::Madd,
        9 => VOp::Sad,
        10 => VOp::Avg(narrow),
        11 => VOp::MinS(any),
        12 => VOp::MinU(any),
        13 => VOp::MaxS(any),
        14 => VOp::MaxU(any),
        15 => VOp::CmpEq(any),
        16 => VOp::CmpGt(any),
        17 => VOp::And,
        18 => VOp::Or,
        19 => VOp::Xor,
        20 => VOp::AndNot,
        21 => VOp::PackS(packable),
        22 => VOp::PackU(packable),
        _ => {
            if r.chance(1, 2) {
                VOp::UnpackLo(unpackable)
            } else {
                VOp::UnpackHi(unpackable)
            }
        }
    }
}

fn vshift(r: &mut Rng) -> (VShiftOp, u8) {
    let e = *r.pick(&ALL_ESZ);
    let op = match r.below(3) {
        0 => VShiftOp::Sll(e),
        1 => VShiftOp::Srl(e),
        _ => VShiftOp::Sra(e),
    };
    // Amounts past the lane width are defined (clear / sign-fill); keep
    // them in the mix.
    (op, r.below(70) as u8)
}

fn accop(r: &mut Rng) -> AccOp {
    *r.pick(&[AccOp::Sad, AccOp::Mac, AccOp::AddH, AccOp::Ssd])
}

fn aluop(r: &mut Rng) -> AluOp {
    *r.pick(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
    ])
}

fn cond(r: &mut Rng) -> Cond {
    *r.pick(&[
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ge,
        Cond::Le,
        Cond::Gt,
        Cond::LtU,
        Cond::GeU,
    ])
}

/// Emits one random body instruction.
#[allow(clippy::too_many_lines)]
fn body_instr(a: &mut Asm, r: &mut Rng, ext: Ext) {
    let width = ext.width_bytes();
    let matrix = ext.is_matrix();
    let kinds = if matrix { 13 } else { 7 };
    match r.below(kinds) {
        // Scalar ALU.
        0 | 1 => {
            let op = aluop(r);
            if r.chance(1, 2) {
                let imm = (r.next_u64() as i32) % 4096;
                a.alu(op, ireg(r), ireg(r), imm);
            } else {
                a.alu(op, ireg(r), ireg(r), ireg(r));
            }
        }
        // Scalar memory (confined to the image through `BASE`) and the
        // small floating-point corner of the ISA.
        2 => match r.below(8) {
            0 => a.fop(
                *r.pick(&[
                    simdsim_isa::FOp::Add,
                    simdsim_isa::FOp::Sub,
                    simdsim_isa::FOp::Mul,
                    simdsim_isa::FOp::Div,
                ]),
                freg(r),
                freg(r),
                freg(r),
            ),
            1 => a.fld(freg(r), IReg::new(BASE), r.below(256) as i32),
            2 => a.fst(freg(r), IReg::new(BASE), r.below(256) as i32),
            3 => a.cvt_fi(ireg(r), freg(r)),
            _ => {
                let sz = *r.pick(&[MemSz::B, MemSz::H, MemSz::W, MemSz::D]);
                let off = r.below(256) as i32;
                if r.chance(1, 2) {
                    a.load(sz, r.chance(1, 2), ireg(r), IReg::new(BASE), off);
                } else {
                    a.store(sz, ireg(r), IReg::new(BASE), off);
                }
            }
        },
        // One-word SIMD arithmetic.
        3 | 4 => {
            let op = vop(r, width);
            a.simd(op, vloc(r, matrix), vloc(r, matrix), vloc(r, matrix));
        }
        // Shifts and lane moves.
        5 => match r.below(4) {
            0 => {
                let (op, amt) = vshift(r);
                a.vshift(op, vloc(r, matrix), vloc(r, matrix), amt);
            }
            1 => {
                let e = *r.pick(&ALL_ESZ);
                // ~1 in 16 draws an out-of-range lane on purpose: the
                // InvalidInstr fault must also conform.
                let lanes = e.lanes(width * 8) as u64;
                let bound = if r.chance(1, 16) { lanes + 2 } else { lanes };
                let lane = r.below(bound) as u8;
                a.movsv(ireg(r), vloc(r, matrix), lane, e, r.chance(1, 2));
            }
            2 => {
                let e = *r.pick(&ALL_ESZ);
                let lane = r.below(e.lanes(width * 8) as u64) as u8;
                a.movvs(vloc(r, matrix), ireg(r), lane, e);
            }
            _ => a.vmov(vloc(r, matrix), vloc(r, matrix)),
        },
        // SIMD memory and splats.
        6 => match r.below(3) {
            0 => {
                let bytes = 1 + r.below(width as u64) as u8;
                a.vload(vloc(r, matrix), IReg::new(BASE), r.below(256) as i32, bytes);
            }
            1 => {
                let bytes = 1 + r.below(width as u64) as u8;
                a.vstore(vloc(r, matrix), IReg::new(BASE), r.below(256) as i32, bytes);
            }
            _ => a.vsplat(vloc(r, matrix), ireg(r), *r.pick(&ALL_ESZ)),
        },
        // --- matrix-only kinds below ---
        7 => {
            // VL changes; mostly immediates, sometimes a register whose
            // value may be non-positive (error conformance).
            if r.chance(5, 6) {
                a.setvl(1 + r.below(MAX_VL as u64) as i32);
            } else {
                a.setvl(ireg(r));
            }
        }
        8 => {
            let row_bytes = 1 + r.below(width as u64) as u8;
            let stride = r.below(64) as i32;
            if r.chance(1, 2) {
                a.mload(mreg(r), IReg::new(BASE), stride, row_bytes);
            } else {
                a.mstore(mreg(r), IReg::new(BASE), stride, row_bytes);
            }
        }
        9 | 10 => {
            let op = vop(r, width);
            let b = if r.chance(1, 4) {
                MOperand::RowBcast(mreg(r), r.below(MAX_VL as u64) as u8)
            } else {
                MOperand::M(mreg(r))
            };
            a.mop(op, mreg(r), mreg(r), b);
        }
        11 => match r.below(3) {
            0 => {
                let (op, amt) = vshift(r);
                a.mshift(op, mreg(r), mreg(r), amt);
            }
            1 => a.msplat(mreg(r), ireg(r), *r.pick(&ALL_ESZ)),
            _ => a.mmov(mreg(r), mreg(r)),
        },
        _ => match r.below(5) {
            0 => a.macc(accop(r), AReg::new(r.below(2) as u8), mreg(r), mreg(r)),
            1 => a.vacc(
                accop(r),
                AReg::new(r.below(2) as u8),
                vloc(r, matrix),
                vloc(r, matrix),
            ),
            2 => a.accsum(ireg(r), AReg::new(r.below(2) as u8)),
            3 => a.accclear(AReg::new(r.below(2) as u8)),
            _ => {
                let sat = *r.pick(&[Sat::Wrap, Sat::Signed, Sat::Unsigned]);
                let e = *r.pick(&[Esz::H, Esz::W]);
                a.accpack(
                    vloc(r, matrix),
                    AReg::new(r.below(2) as u8),
                    e,
                    sat,
                    r.below(17) as u8,
                );
            }
        },
    }
}

/// Generates one random well-formed program for a random extension.
#[must_use]
pub fn random_program(seed: u64) -> (Ext, Program) {
    let mut r = Rng::new(seed);
    let ext = *r.pick(&Ext::ALL);
    let matrix = ext.is_matrix();
    let mut a = Asm::new();

    // Prologue: deterministic machine setup through the program itself,
    // so all three engines start from the identical all-zero machine.
    a.li(IReg::new(BASE), 1024 + (r.below(256) * 8) as i64);
    for &i in &IPOOL {
        a.li(IReg::new(i), (r.next_u64() as i16) as i64);
    }
    for &v in &VPOOL {
        a.vsplat(VReg::new(v), IReg::new(*r.pick(&IPOOL)), *r.pick(&NARROW));
    }
    for k in 0..8 {
        a.store(MemSz::D, IReg::new(*r.pick(&IPOOL)), IReg::new(BASE), k * 8);
    }
    if matrix {
        a.setvl(1 + r.below(MAX_VL as u64) as i32);
        for &m in &MPOOL[..2] {
            a.mload(MReg::new(m), IReg::new(BASE), 8, ext.width_bytes() as u8);
        }
    }
    for &f in &FPOOL {
        a.cvt_if(FReg::new(f), IReg::new(*r.pick(&IPOOL)));
    }

    // Body: straight-line, or a bounded counted loop over the middle.
    let n_body = 8 + r.below(32);
    let loop_top = if r.chance(1, 2) {
        a.li(IReg::new(COUNTER), 2 + r.below(3) as i64);
        let top = a.label();
        a.bind(top);
        Some(top)
    } else {
        None
    };
    for _ in 0..n_body {
        if r.chance(1, 12) {
            // Forward skip branch: splits superblocks mid-body.
            let skip = a.label();
            a.branch(cond(&mut r), ireg(&mut r), 0, skip);
            body_instr(&mut a, &mut r, ext);
            a.bind(skip);
        } else {
            body_instr(&mut a, &mut r, ext);
        }
    }
    if let Some(top) = loop_top {
        a.alu(AluOp::Sub, IReg::new(COUNTER), IReg::new(COUNTER), 1);
        a.branch(Cond::Ne, IReg::new(COUNTER), 0, top);
    }
    a.halt();
    (ext, a.finish())
}

/// Outcome of one fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The case's seed (sufficient to reproduce it).
    pub seed: u64,
    /// Divergence report, `None` on pass.
    pub failure: Option<String>,
    /// Listing of the offending program (only on failure).
    pub listing: Option<String>,
}

/// Generates and differentially checks one case.
#[must_use]
pub fn fuzz_case(seed: u64) -> FuzzOutcome {
    let (ext, program) = random_program(seed);
    let cp = CorpusProgram {
        ext,
        mem_size: 4096,
        init_iregs: Vec::new(),
        init_fregs: Vec::new(),
        data: Vec::new(),
        program,
    };
    match differential(&cp, MAX_INSTRS) {
        Ok(_) => FuzzOutcome {
            seed,
            failure: None,
            listing: None,
        },
        Err(e) => FuzzOutcome {
            seed,
            failure: Some(format!("[{}] {e}", cp.ext.name())),
            listing: Some(cp.program.listing()),
        },
    }
}

/// Runs `cases` consecutive seeds starting at `start_seed`; returns the
/// pass count and every failing outcome.
#[must_use]
pub fn fuzz_many(start_seed: u64, cases: u64) -> (u64, Vec<FuzzOutcome>) {
    let mut passed = 0;
    let mut failures = Vec::new();
    for seed in start_seed..start_seed + cases {
        let o = fuzz_case(seed);
        if o.failure.is_none() {
            passed += 1;
        } else {
            failures.push(o);
        }
    }
    (passed, failures)
}
