//! Final architectural-state snapshots for corpus fixtures.
//!
//! An [`ArchState`] is a stable, human-reviewable summary of a
//! machine's post-run state: every non-zero register rendered as a
//! string, the vector length, and an FNV-1a-64 digest of the memory
//! image.  Snapshots are taken from both the emulator and the
//! reference interpreter, compared for equality, and committed next to
//! each corpus program as its `.expect.json` fixture.
//!
//! Registers are rendered as strings (decimal for scalars, hex for
//! SIMD words) rather than nested JSON so fixtures diff cleanly and
//! adding a register class never changes the schema.

use crate::refint::RefMachine;
use serde::{Deserialize, Serialize};
use simdsim_emu::Machine;
use simdsim_isa::MAX_VL;

/// One non-zero architectural register and its rendered value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateEntry {
    /// Register name in assembly syntax (`r3`, `f1`, `v2`, `m0[5]`, `acc1`).
    pub reg: String,
    /// Rendered value (decimal for `r`/`acc`, `0x…` bit patterns for
    /// `f`/`v`/`m`).
    pub val: String,
}

/// Post-run architectural state: non-zero registers, VL and a memory digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    /// Extension name (`mmx64` … `vmmx128`).
    pub ext: String,
    /// Final vector length.
    pub vl: u8,
    /// Non-zero registers in a fixed scan order (r, f, v, m rows, acc).
    pub regs: Vec<StateEntry>,
    /// Memory image size in bytes.
    pub mem_len: u64,
    /// FNV-1a-64 digest of the memory image, as 16 hex digits.
    pub mem_fnv: String,
}

/// FNV-1a-64 over a byte slice (the same construction the sweep cache
/// uses for its keys; collisions are irrelevant at corpus scale).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generic snapshot builder over any state source that can answer the
/// accessor questions both machines share.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    ext_name: &str,
    vl: usize,
    ireg: &dyn Fn(usize) -> i64,
    freg: &dyn Fn(usize) -> f64,
    vreg: &dyn Fn(usize) -> u128,
    mrow: &dyn Fn(usize, usize) -> u128,
    acc: &dyn Fn(usize) -> [i64; 8],
    mem: &[u8],
) -> ArchState {
    let mut regs = Vec::new();
    for i in 0..simdsim_isa::NUM_IREGS {
        let v = ireg(i);
        if v != 0 {
            regs.push(StateEntry {
                reg: format!("r{i}"),
                val: v.to_string(),
            });
        }
    }
    for i in 0..simdsim_isa::NUM_FREGS {
        let bits = freg(i).to_bits();
        if bits != 0 {
            regs.push(StateEntry {
                reg: format!("f{i}"),
                val: format!("{bits:#x}"),
            });
        }
    }
    for i in 0..simdsim_isa::NUM_VREGS {
        let v = vreg(i);
        if v != 0 {
            regs.push(StateEntry {
                reg: format!("v{i}"),
                val: format!("{v:#x}"),
            });
        }
    }
    for m in 0..simdsim_isa::NUM_MREGS {
        for r in 0..MAX_VL {
            let v = mrow(m, r);
            if v != 0 {
                regs.push(StateEntry {
                    reg: format!("m{m}[{r}]"),
                    val: format!("{v:#x}"),
                });
            }
        }
    }
    for i in 0..simdsim_isa::NUM_AREGS {
        let lanes = acc(i);
        if lanes.iter().any(|&l| l != 0) {
            let rendered = lanes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            regs.push(StateEntry {
                reg: format!("acc{i}"),
                val: rendered,
            });
        }
    }
    ArchState {
        ext: ext_name.to_owned(),
        vl: vl as u8,
        regs,
        mem_len: mem.len() as u64,
        mem_fnv: format!("{:016x}", fnv1a64(mem)),
    }
}

impl ArchState {
    /// Snapshots an emulator instance.
    #[must_use]
    pub fn of_machine(m: &Machine) -> Self {
        snapshot(
            m.ext().name(),
            m.vl(),
            &|i| m.ireg(i),
            &|i| m.freg(i),
            &|i| m.vreg(i),
            &|r, c| m.mrow(r, c),
            &|i| m.acc(i),
            m.read_bytes(0, m.mem_size()).expect("full image"),
        )
    }

    /// Snapshots the reference interpreter.
    #[must_use]
    pub fn of_ref(m: &RefMachine) -> Self {
        snapshot(
            m.ext().name(),
            m.vl(),
            &|i| m.ireg(i),
            &|i| m.freg(i),
            &|i| m.vreg(i),
            &|r, c| m.mrow(r, c),
            &|i| m.acc(i),
            m.read_bytes(0, m.mem_size()),
        )
    }

    /// Human-readable first difference against `other`, or `None` when equal.
    #[must_use]
    pub fn diff(&self, label_self: &str, other: &Self, label_other: &str) -> Option<String> {
        if self == other {
            return None;
        }
        if self.vl != other.vl {
            return Some(format!(
                "vl: {label_self}={} {label_other}={}",
                self.vl, other.vl
            ));
        }
        for e in &self.regs {
            match other.regs.iter().find(|o| o.reg == e.reg) {
                None => return Some(format!("{}: {label_self}={} {label_other}=0", e.reg, e.val)),
                Some(o) if o.val != e.val => {
                    return Some(format!(
                        "{}: {label_self}={} {label_other}={}",
                        e.reg, e.val, o.val
                    ))
                }
                Some(_) => {}
            }
        }
        for o in &other.regs {
            if !self.regs.iter().any(|e| e.reg == o.reg) {
                return Some(format!("{}: {label_self}=0 {label_other}={}", o.reg, o.val));
            }
        }
        if self.mem_fnv != other.mem_fnv || self.mem_len != other.mem_len {
            return Some(format!(
                "memory: {label_self}={}B fnv {} / {label_other}={}B fnv {}",
                self.mem_len, self.mem_fnv, other.mem_len, other.mem_fnv
            ));
        }
        Some(format!(
            "ext: {label_self}={} {label_other}={}",
            self.ext, other.ext
        ))
    }
}
