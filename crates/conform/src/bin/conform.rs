//! `conform` — conformance subsystem CLI.
//!
//! ```text
//! conform run  [--corpus DIR]          # corpus through all three engines
//! conform fuzz [--cases N] [--seed S]  # differential fuzzing
//! conform lint [NAME ...]              # lint built-in kernels/apps (all by default)
//! conform smoke [--cases N]            # run + fuzz + lint; prints the CI line
//! ```
//!
//! Exit status is non-zero on any corpus failure, fuzz divergence or
//! lint *error* (warnings never fail the build).

use simdsim_conform::{corpus, error_count, fuzz_many, lint, Severity};
use simdsim_isa::Ext;
use simdsim_kernels::Variant;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: conform run [--corpus DIR]\n       \
         conform fuzz [--cases N] [--seed S]\n       \
         conform lint [NAME ...]\n       \
         conform smoke [--cases N]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Corpus pass/fail; prints per-failure detail and the counter line.
fn cmd_run(dir: &Path) -> (usize, usize) {
    let results = corpus::run_corpus(dir);
    print!("{}", corpus::summarize(&results));
    let passed = results.iter().filter(|r| r.ok()).count();
    (passed, results.len())
}

/// Fuzz pass/fail; prints seeds and listings for divergences.
fn cmd_fuzz(seed: u64, cases: u64) -> (u64, u64) {
    let (passed, failures) = fuzz_many(seed, cases);
    for f in &failures {
        println!(
            "FAIL seed {}: {}",
            f.seed,
            f.failure.as_deref().unwrap_or("")
        );
        if let Some(l) = &f.listing {
            println!("{l}");
        }
    }
    println!(
        "conform-fuzz: {passed} passed, {} failed, {cases} total (seed base {seed})",
        failures.len()
    );
    (passed, cases)
}

/// Lints every built-in kernel and application program across all
/// variants (or just the named ones); returns (errors, warnings).
fn cmd_lint(names: &[String]) -> (usize, usize) {
    let mut errors = 0;
    let mut warnings = 0;
    let mut targets: Vec<(String, Ext, simdsim_isa::Program)> = Vec::new();
    for k in simdsim_kernels::registry() {
        let name = k.spec().name;
        if !names.is_empty() && !names.iter().any(|n| n == name) {
            continue;
        }
        for v in Variant::ALL {
            let built = k.build(v);
            targets.push((
                format!("kernel {name}/{}", v.name()),
                v.machine_ext(),
                built.program,
            ));
        }
    }
    for a in simdsim_apps::registry() {
        let name = a.spec().name;
        if !names.is_empty() && !names.iter().any(|n| n == name) {
            continue;
        }
        for v in Variant::ALL {
            let built = a.build(v);
            targets.push((
                format!("app {name}/{}", v.name()),
                v.machine_ext(),
                built.program,
            ));
        }
    }
    for (label, ext, program) in &targets {
        let diags = lint(program, *ext);
        for d in &diags {
            if d.severity == Severity::Error {
                println!("{label}: {}", d.render(program.code()));
            }
        }
        errors += error_count(&diags);
        warnings += diags.len() - error_count(&diags);
    }
    println!(
        "conform-lint: {} programs, {errors} errors, {warnings} warnings",
        targets.len()
    );
    (errors, warnings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => {
            let dir = flag_value(rest, "--corpus").map_or_else(corpus::corpus_dir, PathBuf::from);
            let (passed, total) = cmd_run(&dir);
            if passed == total && total > 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "fuzz" => {
            let cases = flag_value(rest, "--cases")
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            let seed = flag_value(rest, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let (passed, total) = cmd_fuzz(seed, cases);
            if passed == total {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "lint" => {
            let (errors, _) = cmd_lint(rest);
            if errors == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "smoke" => {
            let cases = flag_value(rest, "--cases")
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            let (cp, ct) = cmd_run(&corpus::corpus_dir());
            let (fp, ft) = cmd_fuzz(1, cases);
            let (errors, warnings) = cmd_lint(&[]);
            let ok = cp == ct && ct > 0 && fp == ft && errors == 0;
            println!(
                "conform-smoke: corpus {cp}/{ct} fuzz {fp}/{ft} lint {errors} errors \
                 {warnings} warnings => {}",
                if ok { "PASS" } else { "FAIL" }
            );
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
