; The same sub-word ops on the 64-bit machine: 8-byte registers.
.ext mmx64
.data 0:  7f 80 ff 00 01 fe 55 aa
.data 8:  01 01 01 01 02 02 02 02
.reg r1 = 0
vld.8 v0, (r1)
vld.8 v1, 8(r1)
vadd.b v2, v0, v1
vadds.b v3, v0, v1
vaddu.h v4, v0, v1
vavg.b v5, v0, v1
vmullo.h v6, v0, v1
vpacks.h v7, v0, v1
vsra.h v8, v0, #3
vmadd v9, v0, v1
vsad v10, v0, v1
halt
