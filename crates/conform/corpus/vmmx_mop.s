; Full-VL element-wise matrix ops: matrix-matrix, row-broadcast,
; and aliased destination (mop reads rows sequentially).
.ext vmmx128
.data 0:   01 02 03 04 05 06 07 08  09 0a 0b 0c 0d 0e 0f 10
.reg r1 = 0
.reg r2 = 5
setvl #4
mld.16 m0, (r1) vs=#4  ; shifted copies of the pattern
msplat.b m1, r2
mvadd.b m2, m0, m1
mvsub.b m3, m0, m1
mvadds.b m4, m0, m0
mvavg.b m5, m0, m1
mvmullo.h m6, m0, m1
mvadd.b m7, m0, m0[2]:bcast  ; broadcast one row
mvcmpgt.b m8, m0, m1
mvand m9, m0, m1
mvadd.b m0, m0, m0     ; dst aliases both sources
halt
