; A small kernel-shaped program: 16-element h-lane dot product,
; SIMD multiply-accumulate in the vector region, scalar reduction.
.ext mmx128
.data 0:  01 00 02 00 03 00 04 00  05 00 06 00 07 00 08 00
.data 16: 09 00 0a 00 0b 00 0c 00  0d 00 0e 00 0f 00 10 00
.data 32: 02 00 02 00 02 00 02 00  03 00 03 00 03 00 03 00
.data 48: 04 00 04 00 04 00 04 00  05 00 05 00 05 00 05 00
.reg r1 = 0            ; a cursor
.reg r2 = 32           ; b cursor
.reg r3 = 2            ; chunks of 8 h-lanes
.reg r4 = 0            ; result
.region vector
vld.16 v1, (r1)        ; @0 loop head
vld.16 v2, (r2)
vmadd v3, v1, v2       ; pairwise 32-bit partial sums
movsv.w r5, v3[0]
movsv.w r6, v3[1]
movsv.w r7, v3[2]
movsv.w r8, v3[3]
.region scalar
add r4, r4, r5
add r4, r4, r6
add r4, r4, r7
add r4, r4, r8
add r1, r1, #16
add r2, r2, #16
sub r3, r3, #1
bne r3, #0, @0
halt
