; Matrix rows as one-word SIMD operands: VLoc::Row in vadd/vmov/
; vsplat/vld/vst and lane moves.
.ext vmmx64
.data 0: 01 02 03 04 05 06 07 08
.reg r1 = 0
.reg r2 = 77
setvl #4
vld.8 m0[0], (r1)
vld.8 m0[1], 0(r1)
vsplat.b m0[2], r2
vmov m0[3], m0[0]
vadd.b v0, m0[0], m0[2]
vadd.h m1[0], m0[0], m0[3]
vsra.h m1[1], m0[0], #2
movvs.b m1[2][0], r2   ; row 2, byte lane 0
movsv.b r3, m0[2][5]
vst.8 m1[0], 64(r1)
vmov v1, m1[0]
halt
