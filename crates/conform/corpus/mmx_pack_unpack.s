; Pack narrows with saturation; unpack interleaves halves.
.ext mmx128
.data 0:  00 01 ff 7f 00 80 ff ff  34 12 78 56 bc 9a f0 de
.data 16: 01 00 00 01 80 ff 7f 00  11 22 33 44 55 66 77 88
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vpacks.h v2, v0, v1   ; 16->8 signed saturate
vpacku.h v3, v0, v1   ; 16->8 unsigned saturate
vpacks.w v4, v0, v1
vpacku.d v5, v0, v1
vunpklo.b v6, v0, v1
vunpkhi.b v7, v0, v1
vunpklo.h v8, v0, v1
vunpkhi.w v9, v0, v1
halt
