; Scalar ALU: add/sub/mul with immediate and register operands.
.ext mmx64
.reg r1 = 1000
.reg r2 = -37
add r3, r1, r2        ; 963
add r4, r3, #-963     ; 0
sub r5, r1, r2        ; 1037
sub r6, r2, #-37      ; 0
mul r7, r1, r2        ; -37000
mul r8, r7, #0        ; 0
li r9, 9223372036854775807
add r10, r9, #1       ; wraps to i64::MIN
mul r11, r9, r9       ; wrapping multiply
halt
