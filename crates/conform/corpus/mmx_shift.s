; Sub-word shifts, including over-shift: sll/srl zero out at
; amount >= lane bits, sra clamps to bits-1 (sign fill).
.ext mmx128
.data 0: 01 80 ff 7f 00 80 ff ff  10 00 00 80 f0 0f aa 55
.reg r1 = 0
vld.16 v0, (r1)
vsll.b v1, v0, #1
vsll.b v2, v0, #8     ; zeroed
vsrl.b v3, v0, #4
vsrl.h v4, v0, #17    ; zeroed
vsra.b v5, v0, #4     ; sign fill
vsra.h v6, v0, #20    ; clamps to 15: all sign bits
vsll.w v7, v0, #31
vsra.d v8, v0, #63
vsrl.d v9, v0, #0     ; unchanged
halt
