; Packed accumulators: matrix and one-row accumulate ops,
; horizontal sum, clear, and saturating pack-out.
.ext vmmx128
.data 0:   01 02 03 04 05 06 07 08  09 0a 0b 0c 0d 0e 0f 10
.data 16:  10 0f 0e 0d 0c 0b 0a 09  08 07 06 05 04 03 02 01
.reg r1 = 0
setvl #4
mld.16 m0, (r1) vs=#4
mld.16 m1, 0(r1) vs=#8
macc.sad acc0, m0, m1  ; byte abs-diff sums
macc.mac acc1, m0, m1  ; 16-bit products
macc.addh acc2, m0, m1
macc.ssd acc3, m0, m1
accsum r2, acc0
accsum r3, acc1
vacc.sad acc0, m0[0], m1[1]   ; one-row accumulate on rows
vacc.mac acc2, m0[2], m1[3]
accpack.h.sat v0, acc1, >>2
accpack.h.satu v1, acc1, >>0
accpack.w.wrap v2, acc3, >>4
accclr acc1
accsum r4, acc1        ; 0
halt
