; A strip-mined full-VL loop: process 16 rows in VL=4 chunks.
.ext vmmx128
.reg r1 = 0            ; src cursor
.reg r2 = 1024         ; dst cursor
.reg r3 = 4            ; chunks remaining
.reg r5 = 3
.data 0: 01 02 03 04 05 06 07 08 09 0a 0b 0c 0d 0e 0f 10
setvl #4
.region vector
mld.16 m0, (r1) vs=#16 ; @1 loop head
msplat.b m1, r5
mvadd.b m2, m0, m1
mst.16 m2, (r2) vs=#16
.region scalar
add r1, r1, #64
add r2, r2, #64
sub r3, r3, #1
bne r3, #0, @1
halt
