; Element compares produce all-ones/all-zero masks; bitwise ops
; combine them (the classic branch-free select).
.ext mmx128
.data 0:  05 05 10 90 7f 7f 00 ff  01 02 03 04 05 06 07 08
.data 16: 05 06 20 10 7f 80 00 ff  08 07 06 05 04 03 02 01
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vcmpeq.b v2, v0, v1
vcmpgt.b v3, v0, v1   ; signed: 0x90 is negative
vcmpeq.h v4, v0, v1
vcmpgt.w v5, v0, v1
vand v6, v0, v2
vandn v7, v2, v1      ; b & !a mask select
vor v8, v6, v7
vxor v9, v0, v1
halt
