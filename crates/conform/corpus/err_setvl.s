; Error conformance: setvl from a register holding a non-positive
; value faults, and the committed prefix must still match.
.ext vmmx128
.reg r1 = -3
li r2, 42
setvl #8
setvl r1               ; faults: non-positive length
li r3, 99              ; never committed
halt
