; Negative and zero offsets, and .data-initialised memory.
.ext mmx64
.data 256: 11 22 33 44 55 66 77 88
.reg r1 = 260
lw r2, -4(r1)          ; bytes 11 22 33 44 little-endian
lub r3, (r1)           ; 0x55
luh r4, 2(r1)          ; 0x8877
sd r2, -260(r1)        ; store at address 0
ld r5, -260(r1)        ; reload the word stored at address 0
halt
