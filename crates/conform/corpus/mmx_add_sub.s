; Wrapping sub-word add/sub at every element size.
.ext mmx128
.data 0:  ff 01 7f 80 00 10 20 30  40 50 60 70 80 90 a0 b0
.data 16: 01 01 01 01 ff ff ff ff  02 02 02 02 03 03 03 03
.reg r1 = 0
.region vector
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vadd.b v2, v0, v1     ; per-byte wrap: ff+01 -> 00
vadd.h v3, v0, v1
vadd.w v4, v0, v1
vadd.d v5, v0, v1
vsub.b v6, v0, v1
vsub.h v7, v0, v1
vsub.w v8, v0, v1
vsub.d v9, v0, v1
.region scalar
halt
