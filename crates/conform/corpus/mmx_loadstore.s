; Vector loads/stores at partial transfer sizes; the untouched
; destination bytes must survive a partial vld.
.ext mmx128
.data 0: 11 22 33 44 55 66 77 88  99 aa bb cc dd ee ff 00
.reg r1 = 0
.reg r2 = 64
vld.16 v0, (r1)
vld.8 v1, (r1)        ; low 8 bytes only
vld.4 v2, 4(r1)
vld.1 v3, 15(r1)
vst.16 v0, (r2)
vst.8 v0, 16(r2)
vst.4 v0, 24(r2)
vst.1 v0, 28(r2)
vld.16 v4, (r2)       ; reload what we stored
vld.16 v5, 16(r2)
halt
