; Scalar division and remainder, including the divide-by-zero
; convention (quotient 0, remainder passes the dividend through).
.ext mmx64
.reg r1 = 100
.reg r2 = 7
.reg r3 = -100
.reg r4 = 0
div r5, r1, r2        ; 14
rem r6, r1, r2        ; 2
div r7, r3, r2        ; -14
rem r8, r3, r2        ; -2
div r9, r1, r4        ; /0 -> 0
rem r10, r1, r4       ; %0 -> dividend
div r11, r1, #-7      ; -14
rem r12, r3, #-7      ; -2
halt
