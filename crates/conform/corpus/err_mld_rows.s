; Error conformance: matrix row transfer wider than the machine,
; after some rows of architectural state already changed.
.ext vmmx64
.reg r1 = 0
.reg r2 = 3
setvl #2
msplat.b m0, r2
mld.16 m1, (r1) vs=#16 ; faults: 16 bytes/row on an 8-byte machine
halt
