; Store and reload at every width; loads sign-extend by default.
.ext mmx64
.reg r1 = 512          ; base address
.reg r2 = -2           ; 0xff..fe
sb r2, 0(r1)
sh r2, 8(r1)
sw r2, 16(r1)
sd r2, 24(r1)
lb r3, 0(r1)           ; -2
lh r4, 8(r1)           ; -2
lw r5, 16(r1)          ; -2
ld r6, 24(r1)          ; -2
lub r7, 0(r1)          ; 0xfe
luh r8, 8(r1)          ; 0xfffe
luw r9, 16(r1)         ; 0xfffffffe
halt
