; Error conformance: lane index out of range for the element size.
.ext mmx128
.reg r1 = 7
vsplat.h v0, r1
movsv.h r2, v0[3]      ; fine: 8 h-lanes
movsv.h r3, v0[8]      ; faults: lane 8 out of range
halt
