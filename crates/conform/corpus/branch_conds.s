; All eight branch conditions, each taken and not taken once.
; Targets are absolute instruction indices (directives don't count).
.ext mmx64
.reg r1 = 5
.reg r2 = -5
beq r1, #5, @2        ; taken: skip the poison write
li r31, 111
bne r1, #5, @4        ; not taken
add r3, r3, #1
blt r2, r1, @6        ; taken (signed)
li r31, 222
bge r1, r2, @8        ; taken
li r31, 333
ble r1, #5, @10       ; taken (equal)
li r31, 444
bgt r1, r2, @12       ; taken
li r31, 555
bltu r1, r2, @14      ; taken: -5 unsigned is huge
li r31, 666
bgeu r2, r1, @16      ; taken
li r31, 777
add r4, r3, #10
halt
