; Rounding average and signed/unsigned min/max.
.ext mmx128
.data 0:  00 01 fe ff 7f 80 10 20  00 00 ff ff 01 01 02 02
.data 16: 01 02 ff 01 80 7f 30 40  ff ff 00 00 03 03 04 04
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vavg.b v2, v0, v1     ; (a+b+1)>>1 unsigned, rounds up
vavg.h v3, v0, v1
vavg.w v4, v0, v1
vmins.b v5, v0, v1    ; 0x80 is most negative
vmaxs.b v6, v0, v1
vminu.b v7, v0, v1    ; 0xff is largest
vmaxu.b v8, v0, v1
vmins.h v9, v0, v1
vmaxu.w v10, v0, v1
halt
