; Strided matrix loads/stores: immediate and register strides,
; full and partial row widths.
.ext vmmx128
.data 0:   01 02 03 04 05 06 07 08  09 0a 0b 0c 0d 0e 0f 10
.data 16:  11 12 13 14 15 16 17 18  19 1a 1b 1c 1d 1e 1f 20
.data 32:  21 22 23 24 25 26 27 28  29 2a 2b 2c 2d 2e 2f 30
.data 48:  31 32 33 34 35 36 37 38  39 3a 3b 3c 3d 3e 3f 40
.reg r1 = 0
.reg r2 = 512
.reg r3 = 8            ; register stride
setvl #4
mld.16 m0, (r1) vs=#16 ; dense 4x16
mld.8 m1, (r1) vs=r3   ; overlapping 8-byte rows
mld.4 m2, (r1) vs=#3   ; unaligned stride
mst.16 m0, (r2) vs=#16
mst.8 m1, (r2) vs=#32  ; scattered rows
setvl #2
mst.4 m2, 0(r2) vs=r3
halt
