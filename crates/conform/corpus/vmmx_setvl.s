; VL manipulation: immediate and register setvl, and a full-VL
; splat whose row count follows the current VL.
.ext vmmx128
.reg r1 = 3
.reg r2 = -9
setvl #4
msplat.h m0, r2       ; 4 rows written
setvl r1              ; VL = 3
msplat.w m1, r2
setvl #16             ; MAX_VL
msplat.b m2, r1
setvl #1
msplat.d m3, r2
halt
