; vmadd: pairwise 16-bit multiply-add into 32-bit lanes.
; vsad: sum of absolute byte differences per 8-byte group.
.ext mmx128
.data 0:  01 00 02 00 03 00 04 00  ff ff 00 80 10 00 20 00
.data 16: 0a 00 0b 00 0c 00 0d 00  01 00 ff 7f 02 00 03 00
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vmadd v2, v0, v1
vsad v3, v0, v1
halt
