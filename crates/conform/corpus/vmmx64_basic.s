; The 64-bit matrix machine: 8-byte rows, 4 h-lanes.
.ext vmmx64
.data 0:  01 00 02 00 03 00 04 00
.data 8:  ff ff fe ff 00 80 ff 7f
.reg r1 = 0
.reg r2 = 10
.reg r4 = 8
setvl #4
mld.8 m0, (r1) vs=#0   ; stride 0: same row 4 times
mld.8 m1, (r4) vs=#0
mvadds.h m2, m0, m1
mvsubs.h m3, m0, m1
mvmulhi.h m4, m0, m1
macc.mac acc0, m0, m1
accsum r3, acc0
mtrans.h m5, m0        ; 4x4 square at VL=4
msplat.h m6, r2
halt
