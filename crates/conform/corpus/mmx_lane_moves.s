; Scalar<->vector lane moves, splats and whole-register moves.
.ext mmx128
.reg r2 = -2
.reg r3 = 1000
vsplat.b v0, r2       ; all 0xfe
vsplat.h v1, r3
vsplat.w v2, r2
vsplat.d v3, r3
movvs.h v1[3], r2     ; poke one lane
movsv.h r4, v1[3]     ; -2 sign-extended back
movsvu.h r5, v1[3]    ; 0xfffe zero-extended
movsv.b r6, v0[15]    ; top lane
movsv.w r7, v2[0]
movsvu.w r8, v2[1]
vmov v4, v1
halt
