; Full-VL shifts, register copies and the square transpose.
.ext vmmx128
.data 0:   80 01 7f ff 10 20 30 40  50 60 70 80 90 a0 b0 c0
.reg r1 = 0
.reg r2 = 66
setvl #8               ; 8 rows x 8 h-lanes: square for mtrans.h
mld.16 m0, (r1) vs=#2
mvsll.h m1, m0, #3
mvsrl.h m2, m0, #5
mvsra.h m3, m0, #12
mvsra.b m4, m0, #9     ; over-shift clamps per lane
mmov m5, m1
mtrans.h m6, m0
mtrans.h m7, m6        ; transpose twice: back to m0
setvl #16
msplat.b m8, r2
mtrans.b m9, m8        ; 16x16 byte transpose
halt
