; Saturating add/sub at the signed and unsigned boundaries.
.ext mmx128
.data 0:  7f 7f 80 80 ff ff 00 00  7e 81 01 fe 40 c0 20 e0
.data 16: 01 7f 01 ff 01 ff 01 80  7f 80 7f 80 7f 80 7f 80
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vadds.b v2, v0, v1    ; 7f+01 clamps to 7f, 80+ff(-1) stays
vaddu.b v3, v0, v1    ; ff+01 clamps to ff
vsubs.b v4, v0, v1    ; 80-01 clamps to 80
vsubu.b v5, v0, v1    ; 00-01 clamps to 00
vadds.h v6, v0, v1
vaddu.h v7, v0, v1
vsubs.h v8, v0, v1
vsubu.h v9, v0, v1
vadds.w v10, v0, v1
vsubu.w v11, v0, v1
halt
