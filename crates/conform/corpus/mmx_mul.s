; Sub-word multiplies: low half wraps, high half is signed.
.ext mmx128
.data 0:  ff 7f 00 80 64 00 9c ff  02 00 00 00 ff ff ff ff
.data 16: 02 00 02 00 0a 00 0a 00  03 00 00 00 02 00 00 00
.reg r1 = 0
vld.16 v0, (r1)
vld.16 v1, 16(r1)
vmullo.h v2, v0, v1
vmulhi.h v3, v0, v1   ; 0x7fff*2 >> 16
vmullo.w v4, v0, v1
vmulhi.w v5, v0, v1
vmullo.b v6, v0, v1
halt
