; Full-VL ops without any setvl run at the architectural default
; VL = MAX_VL.
.ext vmmx128
.reg r1 = 9
.reg r2 = 0
msplat.b m0, r1        ; 16 rows
mvadd.b m1, m0, m0
mst.16 m1, (r2) vs=#16
setvl #2
msplat.b m0, r1        ; only 2 rows overwritten
halt
