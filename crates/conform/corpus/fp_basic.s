; Floating point: arithmetic, loads/stores, int<->fp conversion.
.ext mmx64
.freg f1 = 2.5
.freg f2 = -0.5
.reg r1 = 1024
.reg r2 = 7
fadd f3, f1, f2        ; 2.0
fsub f4, f1, f2        ; 3.0
fmul f5, f1, f2        ; -1.25
fdiv f6, f1, f2        ; -5.0
fst f5, 0(r1)
fld f7, 0(r1)          ; -1.25 round-trips through memory
cvtif f8, r2           ; 7.0
cvtfi r3, f1           ; 2 (truncates)
cvtfi r4, f2           ; 0
halt
