; An infinite loop: all engines must stop at the same committed
; instruction when the dynamic-instruction limit is reached.
.ext mmx64
li r1, 0
add r1, r1, #1         ; @1
j @1
