; Counted loop with a backward branch: sum 1..=10.
.ext mmx64
li r1, 10             ; counter
li r2, 0              ; sum
add r2, r2, r1        ; @2 loop body
sub r1, r1, #1
bne r1, #0, @2
halt                  ; r2 == 55
