; Error conformance: vector transfer wider than the machine.
.ext mmx64
.reg r1 = 0
vld.8 v0, (r1)         ; fine on the 8-byte machine
vld.16 v1, (r1)        ; faults: 16 bytes on an 8-byte machine
halt
