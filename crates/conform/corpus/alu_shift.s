; Scalar shifts: amounts are taken mod 64, sra keeps the sign.
.ext mmx64
.reg r1 = -8
.reg r2 = 3
.reg r3 = 67
sll r4, r1, r2        ; -64
srl r5, r1, r2        ; logical: high zeros come in
sra r6, r1, r2        ; -1
sll r7, r1, r3        ; 67 & 63 == 3
srl r8, r1, #63       ; 1
sra r9, r1, #63       ; -1
sll r10, r2, #0       ; unchanged
halt
