; Unconditional jumps, including dead code the jump skips
; and falling off the end of the program (a clean stop, no halt).
.ext mmx64
li r1, 1
j @4
li r1, 999            ; dead
li r2, 999            ; dead
add r3, r1, #41       ; @4: r3 = 42
j @6
add r4, r3, #0        ; @6: last instruction, then fall off the end
