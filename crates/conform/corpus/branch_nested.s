; Nested loops: 4 outer x 3 inner iterations.
.ext mmx64
li r1, 4              ; outer counter
li r3, 0              ; total
li r2, 3              ; @2 inner counter reset
add r3, r3, #1        ; @3 inner body
sub r2, r2, #1
bne r2, #0, @3
sub r1, r1, #1
bne r1, #0, @2
halt                  ; r3 == 12
