; Scalar logic ops and set-on-compare.
.ext mmx64
.reg r1 = 240
.reg r2 = 165
.reg r3 = -1
and r4, r1, r2        ; 160
or  r5, r1, r2        ; 245
xor r6, r1, r2        ; 85
and r7, r1, #15       ; 0
slt r8, r2, r1        ; 1
slt r9, r1, r2        ; 0
sltu r10, r3, r1      ; -1 as unsigned is huge: 0
sltu r11, r1, r3      ; 1
seq r12, r1, #240     ; 1
seq r13, r1, r2       ; 0
halt
