//! Directed semantic tests for instructions not covered by the kernel
//! suite: lane moves, accumulator packing, compares, min/max, floating
//! point and partial stores.

use simdsim_asm::Asm;
use simdsim_emu::{Machine, NullSink};
use simdsim_isa::{AccOp, Esz, Ext, FOp, Sat, VOp, VShiftOp};

fn run(ext: Ext, build: impl FnOnce(&mut Asm)) -> Machine {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    let prog = a.finish();
    let mut m = Machine::new(ext, 1 << 16);
    m.set_ireg(0, 1024);
    m.run(&prog, &mut NullSink, 1_000_000).unwrap();
    m
}

#[test]
fn lane_insert_extract_roundtrip() {
    let m = run(Ext::Mmx128, |a| {
        let p = a.arg(0);
        let v = a.vreg();
        let t = a.ireg();
        let zero = a.ireg();
        a.li(zero, 0);
        a.vsplat(v, zero, Esz::B);
        for lane in 0..8u8 {
            a.li(t, i64::from(lane) * 100 - 300);
            a.movvs(v, t, lane, Esz::H);
        }
        for lane in 0..8u8 {
            a.movsv(t, v, lane, Esz::H, true);
            a.sw(t, p, i32::from(lane) * 4);
        }
    });
    let got = m.read_i32s(1024, 8).unwrap();
    let want: Vec<i32> = (0..8).map(|l| l * 100 - 300).collect();
    assert_eq!(got, want);
}

#[test]
fn unsigned_extract_zero_extends() {
    let m = run(Ext::Mmx64, |a| {
        let p = a.arg(0);
        let v = a.vreg();
        let t = a.ireg();
        a.li(t, -1); // 0xFFFF in the lane
        a.vsplat(v, t, Esz::H);
        a.movsv(t, v, 0, Esz::H, false);
        a.sd(t, p, 0);
        a.movsv(t, v, 0, Esz::H, true);
        a.sd(t, p, 8);
    });
    let got = m.read_i32s(1024, 4).unwrap();
    assert_eq!(got[0], 0xFFFF);
    assert_eq!(got[2], -1);
}

#[test]
fn accpack_saturates_per_mode() {
    // Accumulate large values, pack with each saturation mode.
    let m = run(Ext::Vmmx128, |a| {
        let p = a.arg(0);
        let acc = a.areg();
        let (v, t) = (a.vreg(), a.ireg());
        a.accclear(acc);
        // acc lanes += 1000 * 8 rows... use a splatted matrix and AddH.
        let mreg = a.mreg();
        a.setvl(16);
        a.li(t, 30000);
        a.msplat(mreg, t, Esz::H);
        a.macc(AccOp::AddH, acc, mreg, mreg); // lanes = 16 * 30000 = 480000
        a.accpack(v, acc, Esz::H, Sat::Signed, 0);
        a.vstore(v, p, 0, 16);
        a.accpack(v, acc, Esz::H, Sat::Signed, 5); // 480000 >> 5 = 15000
        a.vstore(v, p, 16, 16);
        a.accpack(v, acc, Esz::H, Sat::Unsigned, 3); // 60000 fits u16
        a.vstore(v, p, 32, 16);
    });
    let signed = m.read_i16s(1024, 8).unwrap();
    assert!(signed.iter().all(|v| *v == i16::MAX), "{signed:?}");
    let shifted = m.read_i16s(1024 + 16, 8).unwrap();
    assert!(shifted.iter().all(|v| *v == 15000), "{shifted:?}");
    let unsigned = m.read_bytes(1024 + 32, 16).unwrap();
    let u: Vec<u16> = unsigned
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    assert!(u.iter().all(|v| *v == 60000), "{u:?}");
}

#[test]
fn compares_produce_masks() {
    let m = run(Ext::Mmx64, |a| {
        let p = a.arg(0);
        let (va, vb, vr) = (a.vreg(), a.vreg(), a.vreg());
        let t = a.ireg();
        a.li(t, 5);
        a.vsplat(va, t, Esz::H);
        a.li(t, 3);
        a.vsplat(vb, t, Esz::H);
        a.simd(VOp::CmpGt(Esz::H), vr, va, vb);
        a.vstore(vr, p, 0, 8);
        a.simd(VOp::CmpEq(Esz::H), vr, va, va);
        a.vstore(vr, p, 8, 8);
        a.simd(VOp::CmpGt(Esz::H), vr, vb, va);
        a.vstore(vr, p, 16, 8);
    });
    assert!(m.read_i16s(1024, 4).unwrap().iter().all(|v| *v == -1));
    assert!(m.read_i16s(1032, 4).unwrap().iter().all(|v| *v == -1));
    assert!(m.read_i16s(1040, 4).unwrap().iter().all(|v| *v == 0));
}

#[test]
fn min_max_follow_signedness() {
    let m = run(Ext::Mmx64, |a| {
        let p = a.arg(0);
        let (va, vb, vr) = (a.vreg(), a.vreg(), a.vreg());
        let t = a.ireg();
        a.li(t, -1); // unsigned max / signed min-ish
        a.vsplat(va, t, Esz::B);
        a.li(t, 1);
        a.vsplat(vb, t, Esz::B);
        a.simd(VOp::MinS(Esz::B), vr, va, vb);
        a.vstore(vr, p, 0, 8);
        a.simd(VOp::MinU(Esz::B), vr, va, vb);
        a.vstore(vr, p, 8, 8);
        a.simd(VOp::MaxS(Esz::B), vr, va, vb);
        a.vstore(vr, p, 16, 8);
        a.simd(VOp::MaxU(Esz::B), vr, va, vb);
        a.vstore(vr, p, 24, 8);
    });
    let b = m.read_bytes(1024, 32).unwrap();
    assert!(b[0..8].iter().all(|v| *v == 0xFF)); // signed min: -1
    assert!(b[8..16].iter().all(|v| *v == 1)); // unsigned min: 1
    assert!(b[16..24].iter().all(|v| *v == 1)); // signed max: 1
    assert!(b[24..32].iter().all(|v| *v == 0xFF)); // unsigned max: 255
}

#[test]
fn mulhi_recovers_high_product_bits() {
    let m = run(Ext::Mmx64, |a| {
        let p = a.arg(0);
        let (va, vb, lo, hi) = (a.vreg(), a.vreg(), a.vreg(), a.vreg());
        let t = a.ireg();
        a.li(t, -1234);
        a.vsplat(va, t, Esz::H);
        a.li(t, 5678);
        a.vsplat(vb, t, Esz::H);
        a.simd(VOp::Mullo(Esz::H), lo, va, vb);
        a.simd(VOp::Mulhi(Esz::H), hi, va, vb);
        a.simd(VOp::UnpackLo(Esz::H), lo, lo, hi);
        a.vstore(lo, p, 0, 8);
    });
    let got = m.read_i32s(1024, 2).unwrap();
    assert_eq!(got[0], -1234 * 5678);
    assert_eq!(got[1], -1234 * 5678);
}

#[test]
fn partial_vstore_leaves_neighbours() {
    let m = run(Ext::Mmx128, |a| {
        let p = a.arg(0);
        let v = a.vreg();
        let t = a.ireg();
        a.li(t, 0x55);
        a.vsplat(v, t, Esz::B);
        a.vstore(v, p, 0, 16);
        a.li(t, 0xAA);
        a.vsplat(v, t, Esz::B);
        a.vstore(v, p, 4, 4); // 4-byte partial store in the middle
    });
    let b = m.read_bytes(1024, 16).unwrap();
    assert_eq!(&b[0..4], &[0x55; 4]);
    assert_eq!(&b[4..8], &[0xAA; 4]);
    assert_eq!(&b[8..16], &[0x55; 8]);
}

#[test]
fn floating_point_path_works() {
    let m = run(Ext::Mmx64, |a| {
        let p = a.arg(0);
        let (fa, fb, fc) = (a.freg(), a.freg(), a.freg());
        let t = a.ireg();
        a.li(t, 7);
        a.cvt_if(fa, t);
        a.li(t, 2);
        a.cvt_if(fb, t);
        a.fop(FOp::Div, fc, fa, fb); // 3.5
        a.fop(FOp::Mul, fc, fc, fb); // 7.0
        a.fop(FOp::Add, fc, fc, fa); // 14.0
        a.fop(FOp::Sub, fc, fc, fb); // 12.0
        a.cvt_fi(t, fc);
        a.sd(t, p, 0);
        a.fst(fc, p, 8);
    });
    assert_eq!(m.read_i32s(1024, 1).unwrap()[0], 12);
    let bits = u64::from_le_bytes(m.read_bytes(1032, 8).unwrap().try_into().unwrap());
    assert_eq!(f64::from_bits(bits), 12.0);
}

#[test]
fn mshift_and_msplat_cover_all_rows() {
    let m = run(Ext::Vmmx128, |a| {
        let p = a.arg(0);
        let mreg = a.mreg();
        let t = a.ireg();
        a.setvl(5);
        a.li(t, 0x0100);
        a.msplat(mreg, t, Esz::H);
        a.mshift(VShiftOp::Srl(Esz::H), mreg, mreg, 4);
        a.mstore(mreg, p, 16, 16);
    });
    for row in 0..5 {
        let r = m.read_i16s(1024 + row * 16, 8).unwrap();
        assert!(r.iter().all(|v| *v == 0x10), "row {row}: {r:?}");
    }
}

#[test]
fn setvl_clamps_to_max() {
    let m = run(Ext::Vmmx128, |a| {
        let p = a.arg(0);
        let t = a.ireg();
        a.li(t, 99);
        a.setvl(t);
        let mreg = a.mreg();
        a.li(t, 1);
        a.msplat(mreg, t, Esz::H);
        a.mstore(mreg, p, 16, 16); // writes VL=16 rows, not 99
    });
    assert_eq!(m.vl(), 16);
    let r = m.read_i16s(1024 + 15 * 16, 8).unwrap();
    assert!(r.iter().all(|v| *v == 1));
}
