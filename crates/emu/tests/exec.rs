//! End-to-end emulator tests: small programs written with the assembler,
//! checked against plain-Rust reference results.

use simdsim_asm::Asm;
use simdsim_emu::{EmuError, Machine, NullSink, VecSink};
use simdsim_isa::{AccOp, Cond, Esz, Ext, MemSz, VOp};

#[test]
fn scalar_sum_of_bytes() {
    let data: Vec<u8> = (0..97u32).map(|i| (i * 7 % 251) as u8).collect();
    let expect: i64 = data.iter().map(|b| i64::from(*b)).sum();

    let mut a = Asm::new();
    let ptr = a.arg(0);
    let n = a.arg(1);
    let out = a.arg(2);
    let t = a.ireg();
    let i = a.ireg();
    a.li(out, 0);
    a.li(i, 0);
    a.for_loop(i, n, |a| {
        a.lbu(t, ptr, 0);
        a.add(out, out, t);
        a.addi(ptr, ptr, 1);
    });
    a.halt();
    let prog = a.finish();

    let mut m = Machine::new(Ext::Mmx64, 4096);
    m.write_bytes(256, &data).unwrap();
    m.set_ireg(0, 256);
    m.set_ireg(1, data.len() as i64);
    let stats = m.run(&prog, &mut NullSink, 100_000).unwrap();
    assert_eq!(m.ireg(2), expect);
    // li,li + 97 * (lbu,add,addi,branch... wait: body 3 + addi + branch) + halt
    assert_eq!(stats.dyn_instrs, 2 + 97 * 5 + 1);
}

#[test]
fn simd_sad_matches_scalar() {
    // 16 bytes SAD via two 64-bit psadbw on a 64-bit machine.
    let a_bytes: [u8; 16] = [1, 250, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
    let b_bytes: [u8; 16] = [4, 2, 9, 4, 0, 6, 70, 8, 9, 1, 11, 2, 13, 4, 15, 6];
    let expect: i64 = a_bytes
        .iter()
        .zip(b_bytes.iter())
        .map(|(x, y)| i64::from(x.abs_diff(*y)))
        .sum();

    let mut asm = Asm::new();
    let pa = asm.arg(0);
    let pb = asm.arg(1);
    let out = asm.arg(2);
    let (v1, v2, v3, v4) = (asm.vreg(), asm.vreg(), asm.vreg(), asm.vreg());
    let (t1, t2) = (asm.ireg(), asm.ireg());
    asm.vload(v1, pa, 0, 8);
    asm.vload(v2, pb, 0, 8);
    asm.vload(v3, pa, 8, 8);
    asm.vload(v4, pb, 8, 8);
    asm.simd(VOp::Sad, v1, v1, v2);
    asm.simd(VOp::Sad, v3, v3, v4);
    asm.movsv(t1, v1, 0, Esz::W, false);
    asm.movsv(t2, v3, 0, Esz::W, false);
    asm.add(out, t1, t2);
    asm.halt();
    let prog = asm.finish();

    let mut m = Machine::new(Ext::Mmx64, 4096);
    m.write_bytes(128, &a_bytes).unwrap();
    m.write_bytes(192, &b_bytes).unwrap();
    m.set_ireg(0, 128);
    m.set_ireg(1, 192);
    m.run(&prog, &mut NullSink, 1000).unwrap();
    assert_eq!(m.ireg(2), expect);
}

#[test]
fn vmmx_strided_sad_matches_scalar() {
    // The paper's Fig. 3(e): SAD of a 16x16 block with row stride lx,
    // as a single pair of strided matrix loads plus one macc.sad.
    let lx = 40u64;
    let h = 16u64;
    let mut img1 = vec![0u8; (lx * h) as usize];
    let mut img2 = vec![0u8; (lx * h) as usize];
    for i in 0..img1.len() {
        img1[i] = (i * 13 % 256) as u8;
        img2[i] = (i * 29 % 256) as u8;
    }
    let mut expect = 0i64;
    for r in 0..h {
        for c in 0..16 {
            let x = img1[(r * lx + c) as usize];
            let y = img2[(r * lx + c) as usize];
            expect += i64::from(x.abs_diff(y));
        }
    }

    let mut asm = Asm::new();
    let p1 = asm.arg(0);
    let p2 = asm.arg(1);
    let out = asm.arg(2);
    let stride = asm.arg(3);
    let (m1, m2) = (asm.mreg(), asm.mreg());
    let acc = asm.areg();
    asm.setvl(16);
    asm.accclear(acc);
    asm.mload(m1, p1, stride, 16);
    asm.mload(m2, p2, stride, 16);
    asm.macc(AccOp::Sad, acc, m1, m2);
    asm.accsum(out, acc);
    asm.halt();
    let prog = asm.finish();

    let mut m = Machine::new(Ext::Vmmx128, 1 << 16);
    m.write_bytes(1024, &img1).unwrap();
    m.write_bytes(8192, &img2).unwrap();
    m.set_ireg(0, 1024);
    m.set_ireg(1, 8192);
    m.set_ireg(3, lx as i64);
    let mut sink = VecSink::default();
    let stats = m.run(&prog, &mut sink, 1000).unwrap();
    assert_eq!(m.ireg(2), expect);
    assert_eq!(stats.dyn_instrs, 7);
    // Matrix loads report 16 rows and the right stride.
    let loads: Vec<_> = sink
        .trace
        .iter()
        .filter_map(|d| d.mem)
        .filter(|a| !a.store)
        .collect();
    assert_eq!(loads.len(), 2);
    assert!(loads
        .iter()
        .all(|l| l.rows == 16 && l.stride == 40 && l.vector_path));
}

#[test]
fn transpose_roundtrip() {
    let mut asm = Asm::new();
    let base = asm.arg(0);
    let (m1, m2) = (asm.mreg(), asm.mreg());
    asm.setvl(8);
    asm.mload(m1, base, 16, 16);
    asm.mtrans(m2, m1, Esz::H);
    asm.mtrans(m1, m2, Esz::H);
    asm.mstore(m1, base, 16, 16);
    asm.halt();
    let prog = asm.finish();

    let vals: Vec<i16> = (0..64).map(|i| (i * 31 - 1000) as i16).collect();
    let mut m = Machine::new(Ext::Vmmx128, 4096);
    m.write_i16s(512, &vals).unwrap();
    m.set_ireg(0, 512);
    m.run(&prog, &mut NullSink, 1000).unwrap();
    assert_eq!(m.read_i16s(512, 64).unwrap(), vals);

    // And a single transpose actually transposes.
    let mut asm = Asm::new();
    let base = asm.arg(0);
    let out = asm.arg(1);
    let m1 = asm.mreg();
    asm.setvl(8);
    asm.mload(m1, base, 16, 16);
    asm.mtrans(m1, m1, Esz::H);
    asm.mstore(m1, out, 16, 16);
    asm.halt();
    let prog = asm.finish();
    let mut m = Machine::new(Ext::Vmmx128, 4096);
    m.write_i16s(512, &vals).unwrap();
    m.set_ireg(0, 512);
    m.set_ireg(1, 2048);
    m.run(&prog, &mut NullSink, 1000).unwrap();
    let t = m.read_i16s(2048, 64).unwrap();
    for r in 0..8 {
        for c in 0..8 {
            assert_eq!(t[r * 8 + c], vals[c * 8 + r]);
        }
    }
}

#[test]
fn matrix_ops_rejected_on_mmx_machine() {
    let mut asm = Asm::new();
    asm.setvl(8);
    asm.halt();
    let prog = asm.finish();
    let mut m = Machine::new(Ext::Mmx64, 1024);
    let err = m.run(&prog, &mut NullSink, 10).unwrap_err();
    assert!(matches!(err, EmuError::Validation(_)));
}

#[test]
fn out_of_bounds_reported() {
    let mut asm = Asm::new();
    let p = asm.arg(0);
    let t = asm.ireg();
    asm.ld(t, p, 0);
    asm.halt();
    let prog = asm.finish();
    let mut m = Machine::new(Ext::Mmx64, 64);
    m.set_ireg(0, 1 << 30);
    let err = m.run(&prog, &mut NullSink, 10).unwrap_err();
    assert!(matches!(err, EmuError::OutOfBounds { .. }));
}

#[test]
fn instr_limit_guards_runaway() {
    let mut asm = Asm::new();
    let l = asm.label();
    asm.bind(l);
    asm.jump(l);
    let prog = asm.finish();
    let mut m = Machine::new(Ext::Mmx64, 64);
    let err = m.run(&prog, &mut NullSink, 100).unwrap_err();
    assert!(matches!(err, EmuError::InstrLimit { limit: 100 }));
}

#[test]
fn control_flow_if_else() {
    for (x, expect) in [(5i64, 1i64), (-5, 2)] {
        let mut asm = Asm::new();
        let xr = asm.arg(0);
        let out = asm.arg(1);
        asm.if_else(Cond::Gt, xr, 0, |a| a.li(out, 1), |a| a.li(out, 2));
        asm.halt();
        let prog = asm.finish();
        let mut m = Machine::new(Ext::Mmx64, 64);
        m.set_ireg(0, x);
        m.run(&prog, &mut NullSink, 100).unwrap();
        assert_eq!(m.ireg(1), expect, "x={x}");
    }
}

#[test]
fn accumulator_mac_and_pack() {
    // acc = column-wise dot products over 4 rows of 16-bit values.
    let rows_a: [[i16; 8]; 4] = [
        [1, 2, 3, 4, 5, 6, 7, 8],
        [-1, -2, -3, -4, -5, -6, -7, -8],
        [100, 200, 300, 400, 500, 600, 700, 800],
        [7, 0, -7, 0, 7, 0, -7, 0],
    ];
    let rows_b: [[i16; 8]; 4] = [
        [2, 2, 2, 2, 2, 2, 2, 2],
        [3, 3, 3, 3, 3, 3, 3, 3],
        [1, 1, 1, 1, 1, 1, 1, 1],
        [10, 10, 10, 10, 10, 10, 10, 10],
    ];
    let mut expect = [0i64; 8];
    for r in 0..4 {
        for c in 0..8 {
            expect[c] += i64::from(rows_a[r][c]) * i64::from(rows_b[r][c]);
        }
    }

    let mut asm = Asm::new();
    let (pa, pb, out) = (asm.arg(0), asm.arg(1), asm.arg(2));
    let (m1, m2) = (asm.mreg(), asm.mreg());
    let acc = asm.areg();
    asm.setvl(4);
    asm.accclear(acc);
    asm.mload(m1, pa, 16, 16);
    asm.mload(m2, pb, 16, 16);
    asm.macc(AccOp::Mac, acc, m1, m2);
    asm.accsum(out, acc);
    asm.halt();
    let prog = asm.finish();

    let mut m = Machine::new(Ext::Vmmx128, 4096);
    for r in 0..4 {
        m.write_i16s(256 + 16 * r as u64, &rows_a[r]).unwrap();
        m.write_i16s(1024 + 16 * r as u64, &rows_b[r]).unwrap();
    }
    m.set_ireg(0, 256);
    m.set_ireg(1, 1024);
    m.run(&prog, &mut NullSink, 1000).unwrap();
    assert_eq!(m.ireg(2), expect.iter().sum::<i64>());
}

#[test]
fn store_writes_memory_scalar() {
    let mut asm = Asm::new();
    let p = asm.arg(0);
    let t = asm.ireg();
    asm.li(t, -2);
    asm.store(MemSz::H, t, p, 0);
    asm.halt();
    let prog = asm.finish();
    let mut m = Machine::new(Ext::Mmx64, 128);
    m.set_ireg(0, 64);
    m.run(&prog, &mut NullSink, 10).unwrap();
    assert_eq!(m.read_i16s(64, 1).unwrap()[0], -2);
}
