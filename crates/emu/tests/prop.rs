//! Property-based tests of the sub-word semantics and the emulator —
//! the ground truth every kernel correctness test rests on.

use proptest::prelude::*;
use simdsim_asm::Asm;
use simdsim_emu::subword::{
    apply_shift, apply_vop, get_lane_i, get_lane_u, sad, scalar_ref, set_lane, splat,
};
use simdsim_emu::{Machine, NullSink};
use simdsim_isa::{AluOp, Esz, Ext, VOp, VShiftOp};

fn esz_strategy() -> impl Strategy<Value = Esz> {
    prop_oneof![Just(Esz::B), Just(Esz::H), Just(Esz::W)]
}

/// Every [`VOp`] that is total for `esz` in the scalar ground-truth model.
/// 64-bit saturating / averaging / high-multiply lanes route their exact
/// math through `i64` intermediates and are undefined on overflow (they
/// never appear in generated code), so they are excluded for `Esz::D`.
fn vops_for(esz: Esz) -> Vec<VOp> {
    let mut ops = vec![
        VOp::Add(esz),
        VOp::Sub(esz),
        VOp::Mullo(esz),
        VOp::MinS(esz),
        VOp::MinU(esz),
        VOp::MaxS(esz),
        VOp::MaxU(esz),
        VOp::CmpEq(esz),
        VOp::CmpGt(esz),
        VOp::And,
        VOp::Or,
        VOp::Xor,
        VOp::AndNot,
        VOp::Madd,
        VOp::Sad,
        VOp::UnpackLo(esz),
        VOp::UnpackHi(esz),
    ];
    if esz != Esz::D {
        ops.extend([
            VOp::AddS(esz),
            VOp::AddU(esz),
            VOp::SubS(esz),
            VOp::SubU(esz),
            VOp::Mulhi(esz),
            VOp::Avg(esz),
        ]);
    }
    if esz != Esz::B {
        ops.extend([VOp::PackS(esz), VOp::PackU(esz)]);
    }
    ops
}

proptest! {
    #[test]
    fn lane_set_get_roundtrip(word in any::<u128>(), esz in esz_strategy(), lane in 0usize..4, val in any::<u64>()) {
        let lanes = esz.lanes(128);
        let lane = lane % lanes;
        let w = set_lane(word, esz, lane, val);
        let mask = u64::MAX >> (64 - esz.bits());
        prop_assert_eq!(get_lane_u(w, esz, lane), val & mask);
        // Other lanes untouched.
        for l in 0..lanes.min(8) {
            if l != lane {
                prop_assert_eq!(get_lane_u(w, esz, l), get_lane_u(word, esz, l));
            }
        }
    }

    #[test]
    fn signed_unsigned_lane_agree(word in any::<u128>(), esz in esz_strategy(), lane in 0usize..8) {
        let lanes = esz.lanes(128);
        let lane = lane % lanes;
        let u = get_lane_u(word, esz, lane);
        let i = get_lane_i(word, esz, lane);
        let mask = u64::MAX >> (64 - esz.bits());
        prop_assert_eq!((i as u64) & mask, u);
    }

    #[test]
    fn add_sub_inverse(a in any::<u128>(), b in any::<u128>(), esz in esz_strategy()) {
        for width in [8usize, 16] {
            let s = apply_vop(VOp::Add(esz), a, b, width);
            let back = apply_vop(VOp::Sub(esz), s, b, width);
            let mask = if width == 16 { u128::MAX } else { (1u128 << 64) - 1 };
            prop_assert_eq!(back, a & mask);
        }
    }

    #[test]
    fn saturating_add_bounds(a in any::<u128>(), b in any::<u128>(), esz in esz_strategy()) {
        let r = apply_vop(VOp::AddS(esz), a, b, 16);
        for l in 0..esz.lanes(128) {
            let x = get_lane_i(a, esz, l);
            let y = get_lane_i(b, esz, l);
            let got = get_lane_i(r, esz, l);
            let exact = x + y;
            let (lo, hi) = match esz {
                Esz::B => (i64::from(i8::MIN), i64::from(i8::MAX)),
                Esz::H => (i64::from(i16::MIN), i64::from(i16::MAX)),
                _ => (i64::from(i32::MIN), i64::from(i32::MAX)),
            };
            prop_assert_eq!(got, exact.clamp(lo, hi));
        }
    }

    #[test]
    fn sad_properties(a in any::<u128>(), b in any::<u128>()) {
        // Symmetric, zero on identical inputs, bounded by 8*255 per group.
        prop_assert_eq!(sad(a, b, 16), sad(b, a, 16));
        prop_assert_eq!(sad(a, a, 16), 0);
        let r = sad(a, b, 16);
        prop_assert!((r as u64) <= 8 * 255);
        prop_assert!(((r >> 64) as u64) <= 8 * 255);
    }

    #[test]
    fn unpack_lo_hi_partition(a in any::<u128>(), b in any::<u128>(), esz in esz_strategy()) {
        // UnpackLo/Hi together contain every element of a and b exactly once.
        let lo = apply_vop(VOp::UnpackLo(esz), a, b, 16);
        let hi = apply_vop(VOp::UnpackHi(esz), a, b, 16);
        let n = esz.lanes(128);
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for l in 0..n / 2 {
            seen_a.push(get_lane_u(lo, esz, 2 * l));
            seen_b.push(get_lane_u(lo, esz, 2 * l + 1));
        }
        for l in 0..n / 2 {
            seen_a.push(get_lane_u(hi, esz, 2 * l));
            seen_b.push(get_lane_u(hi, esz, 2 * l + 1));
        }
        let want_a: Vec<u64> = (0..n).map(|l| get_lane_u(a, esz, l)).collect();
        let want_b: Vec<u64> = (0..n).map(|l| get_lane_u(b, esz, l)).collect();
        prop_assert_eq!(seen_a, want_a);
        prop_assert_eq!(seen_b, want_b);
    }

    #[test]
    fn shifts_match_scalar_model(a in any::<u128>(), amt in 0u8..20, esz in esz_strategy()) {
        let r = apply_shift(VShiftOp::Sra(esz), a, amt, 16);
        for l in 0..esz.lanes(128) {
            let x = get_lane_i(a, esz, l);
            let sh = u32::from(amt).min(esz.bits() as u32 - 1);
            let want = (x >> sh) as u64 & (u64::MAX >> (64 - esz.bits()));
            prop_assert_eq!(get_lane_u(r, esz, l), want);
        }
    }

    #[test]
    fn splat_fills_every_lane(v in any::<u64>(), esz in esz_strategy()) {
        let w = splat(v, esz, 16);
        let mask = u64::MAX >> (64 - esz.bits());
        for l in 0..esz.lanes(128) {
            prop_assert_eq!(get_lane_u(w, esz, l), v & mask);
        }
    }

    #[test]
    fn vops_match_scalar_reference(a in any::<u128>(), b in any::<u128>()) {
        // The SWAR fast paths must be bit-identical to the per-lane
        // reference for every element size, opcode and register width.
        for esz in [Esz::B, Esz::H, Esz::W, Esz::D] {
            for op in vops_for(esz) {
                for width in [8usize, 16] {
                    prop_assert_eq!(
                        apply_vop(op, a, b, width),
                        scalar_ref::apply_vop(op, a, b, width),
                        "op {:?} width {}",
                        op,
                        width
                    );
                }
            }
        }
    }

    #[test]
    fn shifts_match_scalar_reference(a in any::<u128>(), amt in any::<u8>()) {
        for esz in [Esz::B, Esz::H, Esz::W, Esz::D] {
            for op in [VShiftOp::Sll(esz), VShiftOp::Srl(esz), VShiftOp::Sra(esz)] {
                for width in [8usize, 16] {
                    // Full-range amounts plus the in-range remainder, so the
                    // saturating >= bits behaviour and every lane-internal
                    // amount both get exercised.
                    for a_eff in [amt, amt % (esz.bits() as u8)] {
                        prop_assert_eq!(
                            apply_shift(op, a, a_eff, width),
                            scalar_ref::apply_shift(op, a, a_eff, width),
                            "op {:?} amt {} width {}",
                            op,
                            a_eff,
                            width
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn splat_matches_scalar_reference(v in any::<u64>()) {
        for esz in [Esz::B, Esz::H, Esz::W, Esz::D] {
            for width in [8usize, 16] {
                prop_assert_eq!(
                    splat(v, esz, width),
                    scalar_ref::splat(v, esz, width),
                    "esz {:?} width {}",
                    esz,
                    width
                );
            }
        }
    }

    #[test]
    fn sad_matches_scalar_reference(a in any::<u128>(), b in any::<u128>()) {
        for width in [8usize, 16] {
            prop_assert_eq!(sad(a, b, width), scalar_ref::sad(a, b, width));
        }
    }

    #[test]
    fn alu_programs_match_rust_semantics(
        ops in prop::collection::vec((0usize..10, any::<i32>()), 1..40),
        x0 in any::<i32>(),
    ) {
        // Build a straight-line ALU program and mirror it in Rust.
        let mut a = Asm::new();
        let r = a.arg(0);
        let mut model = i64::from(x0);
        for (op, imm) in &ops {
            let imm = *imm;
            match op {
                0 => { a.addi(r, r, imm); model = model.wrapping_add(i64::from(imm)); }
                1 => { a.subi(r, r, imm); model = model.wrapping_sub(i64::from(imm)); }
                2 => { a.muli(r, r, imm); model = model.wrapping_mul(i64::from(imm)); }
                3 => { a.and(r, r, imm); model &= i64::from(imm); }
                4 => { a.or(r, r, imm); model |= i64::from(imm); }
                5 => { a.xor(r, r, imm); model ^= i64::from(imm); }
                6 => { a.slli(r, r, imm.rem_euclid(63)); model = ((model as u64) << (imm.rem_euclid(63) as u64)) as i64; }
                7 => { a.srli(r, r, imm.rem_euclid(63)); model = ((model as u64) >> (imm.rem_euclid(63) as u64)) as i64; }
                8 => { a.srai(r, r, imm.rem_euclid(63)); model >>= imm.rem_euclid(63) as u64; }
                _ => {
                    a.alu(AluOp::Div, r, r, imm);
                    model = if i64::from(imm) == 0 { 0 } else { model.wrapping_div(i64::from(imm)) };
                }
            }
        }
        a.halt();
        let prog = a.finish();
        let mut m = Machine::new(Ext::Mmx64, 64);
        m.set_ireg(0, i64::from(x0));
        m.run(&prog, &mut NullSink, 10_000).unwrap();
        prop_assert_eq!(m.ireg(0), model);
    }
}
