//! The architectural machine state and instruction semantics.

use crate::subword;
use crate::trace::{DynInstr, MemAccess, TraceSink};
use crate::EmuError;
use simdsim_isa::{
    AccOp, AluOp, ClassCounts, Decoded, DecodedInstr, Esz, Ext, FOp, Instr, MOperand, MemSz,
    Operand2, Program, Region, Sat, VLoc, MAX_BLOCK_LEN, MAX_VL, NO_BLOCK,
};

/// Architectural statistics of one emulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total dynamic instructions committed.
    pub dyn_instrs: u64,
    /// Dynamic instruction counts per Figure-7 class.
    pub counts: ClassCounts,
    /// Dynamic instructions tagged [`Region::Scalar`].
    pub scalar_region_instrs: u64,
    /// Dynamic instructions tagged [`Region::Vector`].
    pub vector_region_instrs: u64,
    /// Total sub-word element operations performed by vector-arithmetic
    /// instructions (a measure of exploited DLP).
    pub element_ops: u64,
    /// Superblocks discovered for the program (static block-cache size).
    pub blocks_cached: u64,
    /// Superblocks delivered whole to the sink (fast-path block commits).
    pub block_hits: u64,
    /// Blocks delivered partially (run stopped mid-block on a fault or
    /// the instruction limit, or entry off a block leader).
    pub side_exits: u64,
}

/// Per-committed-instruction observer for conformance checking.
///
/// Unlike [`TraceSink`], which receives whole superblocks after they
/// retire (and therefore cannot see intermediate architectural state),
/// an observer is called synchronously after every committed
/// instruction, while the machine still holds the state that
/// instruction produced.  The differential tester (`simdsim-conform`)
/// samples the registers an instruction defines here and compares them
/// against the reference interpreter's effects trace.
///
/// The default entry points use [`NoObserver`], which monomorphizes the
/// hot loop back to the unobserved code, so timing-model callers pay
/// nothing for this seam.
pub trait StepObserver {
    /// Called after `di` committed; `m` holds post-instruction state.
    fn step(&mut self, m: &Machine, di: &DynInstr);
}

/// The no-op observer used by [`Machine::run`] / [`Machine::run_decoded`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl StepObserver for NoObserver {
    #[inline(always)]
    fn step(&mut self, _m: &Machine, _di: &DynInstr) {}
}

/// A functional emulator instance: registers, accumulators and a flat
/// little-endian memory image.
///
/// # Example
///
/// ```
/// use simdsim_emu::Machine;
/// use simdsim_isa::Ext;
///
/// let mut m = Machine::new(Ext::Vmmx128, 4096);
/// m.write_bytes(0, &[1, 2, 3, 4]).unwrap();
/// assert_eq!(m.read_bytes(0, 4).unwrap(), &[1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    ext: Ext,
    iregs: [i64; simdsim_isa::NUM_IREGS],
    fregs: [f64; simdsim_isa::NUM_FREGS],
    vregs: [u128; simdsim_isa::NUM_VREGS],
    mregs: [[u128; MAX_VL]; simdsim_isa::NUM_MREGS],
    accs: [[i64; 8]; simdsim_isa::NUM_AREGS],
    vl: usize,
    mem: Vec<u8>,
}

impl Machine {
    /// Creates a machine for extension `ext` with `mem_size` bytes of
    /// zeroed memory.
    #[must_use]
    pub fn new(ext: Ext, mem_size: usize) -> Self {
        Self {
            ext,
            iregs: [0; simdsim_isa::NUM_IREGS],
            fregs: [0.0; simdsim_isa::NUM_FREGS],
            vregs: [0; simdsim_isa::NUM_VREGS],
            mregs: [[0; MAX_VL]; simdsim_isa::NUM_MREGS],
            accs: [[0; 8]; simdsim_isa::NUM_AREGS],
            vl: MAX_VL,
            mem: vec![0; mem_size],
        }
    }

    /// The modelled extension.
    #[must_use]
    pub fn ext(&self) -> Ext {
        self.ext
    }

    /// Resets this machine to the architectural state of `src` without
    /// reallocating the memory image (the buffer is reused when the sizes
    /// match, which is the sweep engine's steady state).  After the call
    /// the two machines are indistinguishable, so a worker can replay one
    /// pristine reference machine across many cells instead of cloning a
    /// multi-megabyte image per cell.
    pub fn reset_from(&mut self, src: &Machine) {
        self.ext = src.ext;
        self.iregs = src.iregs;
        self.fregs = src.fregs;
        self.vregs = src.vregs;
        self.mregs = src.mregs;
        self.accs = src.accs;
        self.vl = src.vl;
        if self.mem.len() == src.mem.len() {
            self.mem.copy_from_slice(&src.mem);
        } else {
            self.mem.clear();
            self.mem.extend_from_slice(&src.mem);
        }
    }

    /// SIMD register width in bytes (8 or 16).
    #[must_use]
    pub fn width(&self) -> usize {
        self.ext.width_bytes()
    }

    /// Current vector length.
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    // ------------------------------------------------------------------
    // Register access (for argument passing and result inspection)
    // ------------------------------------------------------------------

    /// Reads integer register `i`.
    #[must_use]
    pub fn ireg(&self, i: usize) -> i64 {
        self.iregs[i]
    }
    /// Writes integer register `i`.
    pub fn set_ireg(&mut self, i: usize, v: i64) {
        self.iregs[i] = v;
    }
    /// Reads SIMD register `i`.
    #[must_use]
    pub fn vreg(&self, i: usize) -> u128 {
        self.vregs[i]
    }
    /// Reads row `row` of matrix register `m`.
    #[must_use]
    pub fn mrow(&self, m: usize, row: usize) -> u128 {
        self.mregs[m][row]
    }
    /// Reads floating-point register `i`.
    #[must_use]
    pub fn freg(&self, i: usize) -> f64 {
        self.fregs[i]
    }
    /// Writes floating-point register `i`.
    pub fn set_freg(&mut self, i: usize, v: f64) {
        self.fregs[i] = v;
    }
    /// Reads the lane array of accumulator `i`.
    #[must_use]
    pub fn acc(&self, i: usize) -> [i64; 8] {
        self.accs[i]
    }

    // ------------------------------------------------------------------
    // Memory access
    // ------------------------------------------------------------------

    /// Memory image size in bytes.
    #[must_use]
    pub fn mem_size(&self) -> usize {
        self.mem.len()
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], EmuError> {
        let end = addr
            .checked_add(len as u64)
            .filter(|e| *e <= self.mem.len() as u64)
            .ok_or(EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc: u32::MAX,
            })?;
        Ok(&self.mem[addr as usize..end as usize])
    }

    /// Writes `data` at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), EmuError> {
        let end = addr
            .checked_add(data.len() as u64)
            .filter(|e| *e <= self.mem.len() as u64)
            .ok_or(EmuError::OutOfBounds {
                addr,
                size: data.len() as u64,
                pc: u32::MAX,
            })?;
        self.mem[addr as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    /// Writes a slice of `i16` values (little-endian) at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn write_i16s(&mut self, addr: u64, data: &[i16]) -> Result<(), EmuError> {
        for (k, v) in data.iter().enumerate() {
            self.write_bytes(addr + 2 * k as u64, &v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a slice of `i16` values at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn read_i16s(&self, addr: u64, n: usize) -> Result<Vec<i16>, EmuError> {
        let b = self.read_bytes(addr, n * 2)?;
        Ok(b.chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect())
    }

    /// Writes a slice of `i32` values at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn write_i32s(&mut self, addr: u64, data: &[i32]) -> Result<(), EmuError> {
        for (k, v) in data.iter().enumerate() {
            self.write_bytes(addr + 4 * k as u64, &v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a slice of `i32` values at `addr`.
    ///
    /// # Errors
    ///
    /// [`EmuError::OutOfBounds`] when the range exceeds the image.
    pub fn read_i32s(&self, addr: u64, n: usize) -> Result<Vec<i32>, EmuError> {
        let b = self.read_bytes(addr, n * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn load_uint(&self, addr: u64, len: usize, pc: u32) -> Result<u64, EmuError> {
        let b = self
            .read_bytes(addr, len)
            .map_err(|_| EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc,
            })?;
        let mut v = 0u64;
        for (i, byte) in b.iter().enumerate() {
            v |= u64::from(*byte) << (8 * i);
        }
        Ok(v)
    }

    fn store_uint(&mut self, addr: u64, len: usize, v: u64, pc: u32) -> Result<(), EmuError> {
        let bytes = v.to_le_bytes();
        self.write_bytes(addr, &bytes[..len])
            .map_err(|_| EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc,
            })
    }

    fn load_word(&self, addr: u64, len: usize, pc: u32) -> Result<u128, EmuError> {
        let b = self
            .read_bytes(addr, len)
            .map_err(|_| EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc,
            })?;
        let mut v = 0u128;
        for (i, byte) in b.iter().enumerate() {
            v |= u128::from(*byte) << (8 * i);
        }
        Ok(v)
    }

    fn store_word(&mut self, addr: u64, len: usize, v: u128, pc: u32) -> Result<(), EmuError> {
        let bytes = v.to_le_bytes();
        self.write_bytes(addr, &bytes[..len])
            .map_err(|_| EmuError::OutOfBounds {
                addr,
                size: len as u64,
                pc,
            })
    }

    // ------------------------------------------------------------------
    // Operand helpers
    // ------------------------------------------------------------------

    fn op2(&self, b: Operand2) -> i64 {
        match b {
            Operand2::Reg(r) => self.iregs[r.index()],
            Operand2::Imm(i) => i64::from(i),
        }
    }

    fn read_vloc(&self, l: VLoc) -> u128 {
        match l {
            VLoc::V(v) => self.vregs[v.index()],
            VLoc::Row(m, r) => self.mregs[m.index()][r as usize],
        }
    }

    fn write_vloc(&mut self, l: VLoc, v: u128) {
        let mask: u128 = if self.width() == 16 {
            u128::MAX
        } else {
            (1u128 << 64) - 1
        };
        match l {
            VLoc::V(reg) => self.vregs[reg.index()] = v & mask,
            VLoc::Row(m, r) => self.mregs[m.index()][r as usize] = v & mask,
        }
    }

    fn acc_lanes(&self) -> usize {
        self.width() / 2
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs `prog` from instruction 0 until `Halt` (or falling off the end),
    /// streaming every committed instruction into `sink`.
    ///
    /// Predecodes the program first; callers that already hold a
    /// [`Decoded`] table (the timing model, repeated runs of one program)
    /// should call [`Machine::run_decoded`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on validation failure, illegal instructions,
    /// out-of-bounds accesses, or when `max_instrs` is exceeded.
    pub fn run(
        &mut self,
        prog: &Program,
        sink: &mut impl TraceSink,
        max_instrs: u64,
    ) -> Result<RunStats, EmuError> {
        self.run_decoded(&prog.decode(), sink, max_instrs)
    }

    /// [`Machine::run`] with a per-step [`StepObserver`] for conformance
    /// checking.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on validation failure, illegal instructions,
    /// out-of-bounds accesses, or when `max_instrs` is exceeded.
    pub fn run_observed(
        &mut self,
        prog: &Program,
        sink: &mut impl TraceSink,
        max_instrs: u64,
        obs: &mut impl StepObserver,
    ) -> Result<RunStats, EmuError> {
        self.run_decoded_observed(&prog.decode(), sink, max_instrs, obs)
    }

    /// Runs a predecoded program from instruction 0 until `Halt` (or
    /// falling off the end), streaming every committed instruction into
    /// `sink` together with its predecoded metadata.
    ///
    /// This is the hot loop: one indexed fetch per dynamic instruction
    /// yields the instruction, its region tag and every static fact the
    /// sink needs, with no per-instruction allocation or recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on validation failure, illegal instructions,
    /// out-of-bounds accesses, or when `max_instrs` is exceeded.
    pub fn run_decoded(
        &mut self,
        dec: &Decoded,
        sink: &mut impl TraceSink,
        max_instrs: u64,
    ) -> Result<RunStats, EmuError> {
        self.run_decoded_observed(dec, sink, max_instrs, &mut NoObserver)
    }

    /// [`Machine::run_decoded`] with a per-step [`StepObserver`] for
    /// conformance checking.  The observer fires after every committed
    /// instruction in both the block and the per-instruction paths,
    /// before control transfers; the trace streamed to `sink` is
    /// identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on validation failure, illegal instructions,
    /// out-of-bounds accesses, or when `max_instrs` is exceeded.
    pub fn run_decoded_observed(
        &mut self,
        dec: &Decoded,
        sink: &mut impl TraceSink,
        max_instrs: u64,
        obs: &mut impl StepObserver,
    ) -> Result<RunStats, EmuError> {
        dec.validate(self.ext.is_matrix())
            .map_err(EmuError::Validation)?;
        let table = dec.instrs();
        let blocks = dec.blocks();
        let mut stats = RunStats {
            blocks_cached: blocks.len() as u64,
            ..RunStats::default()
        };
        let mut pc: u32 = 0;
        let mut buf: Vec<DynInstr> = Vec::with_capacity(MAX_BLOCK_LEN);

        'run: while (pc as usize) < table.len() {
            let bidx = dec.block_idx_at(pc as usize);
            if bidx == NO_BLOCK {
                // Control flow always lands on a block leader (targets,
                // fall-throughs and split points all start blocks), so
                // this per-instruction path only guards hand-built
                // `Decoded` tables.
                if stats.dyn_instrs >= max_instrs {
                    return Err(EmuError::InstrLimit { limit: max_instrs });
                }
                let d = &table[pc as usize];
                let mut taken: Option<u32> = None;
                let mut mem: Option<MemAccess> = None;
                let mut halted = false;
                self.execute(d.instr, pc, &mut taken, &mut mem, &mut halted, &mut stats)?;
                let di = DynInstr {
                    pc,
                    instr: d.instr,
                    region: d.region,
                    taken,
                    mem,
                    vl: if d.is_full_vl { self.vl as u8 } else { 1 },
                };
                obs.step(self, &di);
                sink.push(&di, d);
                Self::account(&mut stats, d);
                stats.side_exits += 1;
                if halted {
                    break;
                }
                pc = taken.unwrap_or(pc + 1);
                continue;
            }

            let block = &blocks[bidx as usize];
            let start = block.start;
            let decs = &table[start as usize..(start + block.len) as usize];
            buf.clear();
            for (rel, d) in decs.iter().enumerate() {
                if stats.dyn_instrs >= max_instrs {
                    // Deliver the committed prefix before bailing so the
                    // sink sees the same stream the per-instruction path
                    // produced (stats are dropped with the error).
                    sink.push_block(&buf, decs, block);
                    return Err(EmuError::InstrLimit { limit: max_instrs });
                }
                let ipc = start + rel as u32;
                let mut taken: Option<u32> = None;
                let mut mem: Option<MemAccess> = None;
                let mut halted = false;
                if let Err(e) =
                    self.execute(d.instr, ipc, &mut taken, &mut mem, &mut halted, &mut stats)
                {
                    sink.push_block(&buf, decs, block);
                    return Err(e);
                }
                let di = DynInstr {
                    pc: ipc,
                    instr: d.instr,
                    region: d.region,
                    taken,
                    mem,
                    vl: if d.is_full_vl { self.vl as u8 } else { 1 },
                };
                obs.step(self, &di);
                buf.push(di);
                Self::account(&mut stats, d);
                pc = taken.unwrap_or(ipc + 1);
                if halted {
                    // `halt` ends its block, so the buffer is complete.
                    stats.block_hits += 1;
                    sink.push_block(&buf, decs, block);
                    break 'run;
                }
            }
            stats.block_hits += 1;
            sink.push_block(&buf, decs, block);
        }
        Ok(stats)
    }

    /// Per-committed-instruction statistics bookkeeping shared by the
    /// block and per-instruction paths.
    #[inline]
    fn account(stats: &mut RunStats, d: &DecodedInstr) {
        stats.dyn_instrs += 1;
        stats.counts.add(d.class, 1);
        match d.region {
            Region::Scalar => stats.scalar_region_instrs += 1,
            Region::Vector => stats.vector_region_instrs += 1,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        instr: Instr,
        pc: u32,
        taken: &mut Option<u32>,
        mem: &mut Option<MemAccess>,
        halted: &mut bool,
        stats: &mut RunStats,
    ) -> Result<(), EmuError> {
        let width = self.width();
        match instr {
            Instr::IntOp { op, rd, ra, b } => {
                let a = self.iregs[ra.index()];
                let b = self.op2(b);
                let r = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    AluOp::Rem => {
                        if b == 0 {
                            a
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
                    AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
                    AluOp::Sra => a >> (b as u64 & 63),
                    AluOp::Slt => i64::from(a < b),
                    AluOp::Sltu => i64::from((a as u64) < (b as u64)),
                    AluOp::Seq => i64::from(a == b),
                };
                self.iregs[rd.index()] = r;
            }
            Instr::Li { rd, imm } => self.iregs[rd.index()] = imm,
            Instr::Load {
                sz,
                sext,
                rd,
                base,
                off,
            } => {
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                let raw = self.load_uint(addr, sz.bytes(), pc)?;
                let v = if sext {
                    match sz {
                        MemSz::B => raw as u8 as i8 as i64,
                        MemSz::H => raw as u16 as i16 as i64,
                        MemSz::W => raw as u32 as i32 as i64,
                        MemSz::D => raw as i64,
                    }
                } else {
                    raw as i64
                };
                self.iregs[rd.index()] = v;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: sz.bytes() as u16,
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: false,
                });
            }
            Instr::Store { sz, rs, base, off } => {
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                self.store_uint(addr, sz.bytes(), self.iregs[rs.index()] as u64, pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: sz.bytes() as u16,
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: false,
                });
            }
            Instr::Branch {
                cond,
                ra,
                b,
                target,
            } => {
                let a = self.iregs[ra.index()];
                let bv = self.op2(b);
                if cond.eval(a, bv) {
                    *taken = Some(target);
                }
            }
            Instr::Jump { target } => *taken = Some(target),
            Instr::Halt => *halted = true,
            Instr::Nop => {}
            Instr::FpOp { op, fd, fa, fb } => {
                let a = self.fregs[fa.index()];
                let b = self.fregs[fb.index()];
                self.fregs[fd.index()] = match op {
                    FOp::Add => a + b,
                    FOp::Sub => a - b,
                    FOp::Mul => a * b,
                    FOp::Div => a / b,
                };
            }
            Instr::FpLoad { fd, base, off } => {
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                let raw = self.load_uint(addr, 8, pc)?;
                self.fregs[fd.index()] = f64::from_bits(raw);
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: 8,
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: false,
                });
            }
            Instr::FpStore { fs, base, off } => {
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                self.store_uint(addr, 8, self.fregs[fs.index()].to_bits(), pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: 8,
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: false,
                });
            }
            Instr::CvtIF { fd, ra } => self.fregs[fd.index()] = self.iregs[ra.index()] as f64,
            Instr::CvtFI { rd, fa } => self.iregs[rd.index()] = self.fregs[fa.index()] as i64,

            // ----------------------------------------------------------
            // 1-word SIMD
            // ----------------------------------------------------------
            Instr::Simd { op, dst, a, b } => {
                let av = self.read_vloc(a);
                let bv = self.read_vloc(b);
                self.write_vloc(dst, subword::apply_vop(op, av, bv, width));
                stats.element_ops += self.simd_elems(op) as u64;
            }
            Instr::SimdShift {
                op,
                dst,
                src,
                amount,
            } => {
                let v = self.read_vloc(src);
                self.write_vloc(dst, subword::apply_shift(op, v, amount, width));
                let esz = match op {
                    simdsim_isa::VShiftOp::Sll(e)
                    | simdsim_isa::VShiftOp::Srl(e)
                    | simdsim_isa::VShiftOp::Sra(e) => e,
                };
                stats.element_ops += esz.lanes(width * 8) as u64;
            }
            Instr::VMov { dst, src } => {
                let v = self.read_vloc(src);
                self.write_vloc(dst, v);
            }
            Instr::VSplat { dst, src, esz } => {
                let v = subword::splat(self.iregs[src.index()] as u64, esz, width);
                self.write_vloc(dst, v);
            }
            Instr::MovSV {
                rd,
                src,
                lane,
                esz,
                sext,
            } => {
                let n = esz.lanes(width * 8);
                if lane as usize >= n {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("lane {lane} out of range for {esz:?}"),
                    });
                }
                let v = self.read_vloc(src);
                self.iregs[rd.index()] = if sext {
                    subword::get_lane_i(v, esz, lane as usize)
                } else {
                    subword::get_lane_u(v, esz, lane as usize) as i64
                };
            }
            Instr::MovVS {
                dst,
                src,
                lane,
                esz,
            } => {
                let n = esz.lanes(width * 8);
                if lane as usize >= n {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("lane {lane} out of range for {esz:?}"),
                    });
                }
                let old = self.read_vloc(dst);
                let v = subword::set_lane(old, esz, lane as usize, self.iregs[src.index()] as u64);
                self.write_vloc(dst, v);
            }
            Instr::VLoad {
                dst,
                base,
                off,
                bytes,
            } => {
                if bytes as usize > width || bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("vload of {bytes} bytes on {width}-byte machine"),
                    });
                }
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                let v = self.load_word(addr, bytes as usize, pc)?;
                self.write_vloc(dst, v);
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: u16::from(bytes),
                    rows: 1,
                    stride: 0,
                    store: false,
                    vector_path: matches!(dst, VLoc::Row(..)),
                });
            }
            Instr::VStore {
                src,
                base,
                off,
                bytes,
            } => {
                if bytes as usize > width || bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("vstore of {bytes} bytes on {width}-byte machine"),
                    });
                }
                let addr = (self.iregs[base.index()].wrapping_add(i64::from(off))) as u64;
                let v = self.read_vloc(src);
                self.store_word(addr, bytes as usize, v, pc)?;
                *mem = Some(MemAccess {
                    addr,
                    row_bytes: u16::from(bytes),
                    rows: 1,
                    stride: 0,
                    store: true,
                    vector_path: matches!(src, VLoc::Row(..)),
                });
            }

            // ----------------------------------------------------------
            // Matrix extension
            // ----------------------------------------------------------
            Instr::SetVl { src } => {
                let v = self.op2(src);
                if v <= 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("setvl with non-positive length {v}"),
                    });
                }
                self.vl = (v as usize).min(MAX_VL);
            }
            Instr::MLoad {
                dst,
                base,
                stride,
                row_bytes,
            } => {
                if row_bytes as usize > width || row_bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("mload of {row_bytes} bytes/row on {width}-byte machine"),
                    });
                }
                let base_addr = self.iregs[base.index()] as u64;
                let stride_v = self.op2(stride);
                for r in 0..self.vl {
                    let addr = (base_addr as i64).wrapping_add(stride_v * r as i64) as u64;
                    let v = self.load_word(addr, row_bytes as usize, pc)?;
                    self.mregs[dst.index()][r] = v;
                }
                *mem = Some(MemAccess {
                    addr: base_addr,
                    row_bytes: u16::from(row_bytes),
                    rows: self.vl as u16,
                    stride: stride_v,
                    store: false,
                    vector_path: true,
                });
            }
            Instr::MStore {
                src,
                base,
                stride,
                row_bytes,
            } => {
                if row_bytes as usize > width || row_bytes == 0 {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!("mstore of {row_bytes} bytes/row on {width}-byte machine"),
                    });
                }
                let base_addr = self.iregs[base.index()] as u64;
                let stride_v = self.op2(stride);
                for r in 0..self.vl {
                    let addr = (base_addr as i64).wrapping_add(stride_v * r as i64) as u64;
                    let v = self.mregs[src.index()][r];
                    self.store_word(addr, row_bytes as usize, v, pc)?;
                }
                *mem = Some(MemAccess {
                    addr: base_addr,
                    row_bytes: u16::from(row_bytes),
                    rows: self.vl as u16,
                    stride: stride_v,
                    store: true,
                    vector_path: true,
                });
            }
            Instr::MOp { op, dst, a, b } => {
                for r in 0..self.vl {
                    let av = self.mregs[a.index()][r];
                    let bv = match b {
                        MOperand::M(m) => self.mregs[m.index()][r],
                        MOperand::RowBcast(m, row) => self.mregs[m.index()][row as usize],
                    };
                    self.mregs[dst.index()][r] = subword::apply_vop(op, av, bv, width);
                }
                stats.element_ops += (self.simd_elems(op) * self.vl) as u64;
            }
            Instr::MShift {
                op,
                dst,
                src,
                amount,
            } => {
                for r in 0..self.vl {
                    let v = self.mregs[src.index()][r];
                    self.mregs[dst.index()][r] = subword::apply_shift(op, v, amount, width);
                }
                let esz = match op {
                    simdsim_isa::VShiftOp::Sll(e)
                    | simdsim_isa::VShiftOp::Srl(e)
                    | simdsim_isa::VShiftOp::Sra(e) => e,
                };
                stats.element_ops += (esz.lanes(width * 8) * self.vl) as u64;
            }
            Instr::MSplat { dst, src, esz } => {
                let v = subword::splat(self.iregs[src.index()] as u64, esz, width);
                for r in 0..self.vl {
                    self.mregs[dst.index()][r] = v;
                }
            }
            Instr::MMov { dst, src } => {
                for r in 0..self.vl {
                    self.mregs[dst.index()][r] = self.mregs[src.index()][r];
                }
            }
            Instr::MTranspose { dst, src, esz } => {
                let n = width / esz.bytes();
                if self.vl != n {
                    return Err(EmuError::InvalidInstr {
                        pc,
                        reason: format!(
                            "transpose requires square matrix: vl={} but {n} columns",
                            self.vl
                        ),
                    });
                }
                let mut rows = [0u128; MAX_VL];
                for (r, row) in rows.iter_mut().enumerate().take(n) {
                    let mut w = 0u128;
                    for c in 0..n {
                        let v = subword::get_lane_u(self.mregs[src.index()][c], esz, r);
                        w = subword::set_lane(w, esz, c, v);
                    }
                    *row = w;
                }
                self.mregs[dst.index()][..n].copy_from_slice(&rows[..n]);
                stats.element_ops += (n * n) as u64;
            }
            Instr::MAcc { op, acc, a, b } => {
                for r in 0..self.vl {
                    let av = self.mregs[a.index()][r];
                    let bv = self.mregs[b.index()][r];
                    self.accumulate(op, acc.index(), av, bv);
                }
                stats.element_ops += (width * self.vl) as u64;
            }
            Instr::VAcc { op, acc, a, b } => {
                let av = self.read_vloc(a);
                let bv = self.read_vloc(b);
                self.accumulate(op, acc.index(), av, bv);
                stats.element_ops += width as u64;
            }
            Instr::AccSum { rd, acc } => {
                let lanes = self.acc_lanes();
                let s: i64 = self.accs[acc.index()][..lanes]
                    .iter()
                    .fold(0i64, |x, y| x.wrapping_add(*y));
                self.iregs[rd.index()] = s;
            }
            Instr::AccClear { acc } => self.accs[acc.index()] = [0; 8],
            Instr::AccPack {
                dst,
                acc,
                esz,
                sat,
                shift,
            } => {
                let lanes = self.acc_lanes();
                let n = esz.lanes(width * 8);
                let mut out = 0u128;
                for l in 0..lanes.min(n) {
                    let v = self.accs[acc.index()][l] >> shift;
                    let r = match sat {
                        Sat::Wrap => (v as u64) & (u64::MAX >> (64 - esz.bits())),
                        Sat::Signed => subword::saturate_signed(v, esz),
                        Sat::Unsigned => subword::saturate_unsigned(v, esz),
                    };
                    out = subword::set_lane(out, esz, l, r);
                }
                self.write_vloc(dst, out);
            }
        }
        Ok(())
    }

    fn accumulate(&mut self, op: AccOp, acc: usize, a: u128, b: u128) {
        let width = self.width();
        match op {
            AccOp::Sad => {
                for j in 0..width {
                    let x = subword::get_lane_u(a, Esz::B, j) as i64;
                    let y = subword::get_lane_u(b, Esz::B, j) as i64;
                    self.accs[acc][j / 2] += (x - y).abs();
                }
            }
            AccOp::Ssd => {
                for j in 0..width {
                    let x = subword::get_lane_u(a, Esz::B, j) as i64;
                    let y = subword::get_lane_u(b, Esz::B, j) as i64;
                    self.accs[acc][j / 2] += (x - y) * (x - y);
                }
            }
            AccOp::Mac => {
                for j in 0..width / 2 {
                    let x = subword::get_lane_i(a, Esz::H, j);
                    let y = subword::get_lane_i(b, Esz::H, j);
                    self.accs[acc][j] += x * y;
                }
            }
            AccOp::AddH => {
                for j in 0..width / 2 {
                    self.accs[acc][j] += subword::get_lane_i(a, Esz::H, j);
                }
            }
        }
    }

    fn simd_elems(&self, op: simdsim_isa::VOp) -> usize {
        use simdsim_isa::VOp;
        let width_bits = self.width() * 8;
        match op {
            VOp::Add(e)
            | VOp::AddS(e)
            | VOp::AddU(e)
            | VOp::Sub(e)
            | VOp::SubS(e)
            | VOp::SubU(e)
            | VOp::Mullo(e)
            | VOp::Mulhi(e)
            | VOp::Avg(e)
            | VOp::MinS(e)
            | VOp::MinU(e)
            | VOp::MaxS(e)
            | VOp::MaxU(e)
            | VOp::CmpEq(e)
            | VOp::CmpGt(e)
            | VOp::PackS(e)
            | VOp::PackU(e)
            | VOp::UnpackLo(e)
            | VOp::UnpackHi(e) => e.lanes(width_bits),
            VOp::Madd | VOp::Sad => self.width(),
            VOp::And | VOp::Or | VOp::Xor | VOp::AndNot => self.width() / 8,
        }
    }
}
