//! Emulation errors.

use std::fmt;

/// Error raised while emulating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A memory access fell outside the allocated memory image.
    OutOfBounds {
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// An instruction was illegal for the configured extension or had
    /// inconsistent operands.
    InvalidInstr {
        /// Program counter.
        pc: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// The dynamic instruction limit was exceeded (runaway loop guard).
    InstrLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The program failed structural validation before execution.
    Validation(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::OutOfBounds { addr, size, pc } => write!(
                f,
                "out-of-bounds access of {size} bytes at {addr:#x} (pc {pc})"
            ),
            EmuError::InvalidInstr { pc, reason } => {
                write!(f, "invalid instruction at pc {pc}: {reason}")
            }
            EmuError::InstrLimit { limit } => {
                write!(f, "dynamic instruction limit of {limit} exceeded")
            }
            EmuError::Validation(msg) => write!(f, "program validation failed: {msg}"),
        }
    }
}

impl std::error::Error for EmuError {}
