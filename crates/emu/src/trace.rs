//! Dynamic instruction records streamed from the emulator to consumers
//! (the timing model, statistics collectors, debuggers).

use simdsim_isa::{DecodedBlock, DecodedInstr, Instr, Region};

/// One memory access performed by a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// First byte address.
    pub addr: u64,
    /// Bytes per row (scalar/SIMD accesses have one row).
    pub row_bytes: u16,
    /// Number of rows (matrix accesses transfer `VL` rows).
    pub rows: u16,
    /// Byte distance between consecutive rows.
    pub stride: i64,
    /// `true` for stores.
    pub store: bool,
    /// `true` when the access uses the vector path (bypasses L1, goes to
    /// the L2 vector cache) — matrix accesses and matrix-row SIMD accesses.
    pub vector_path: bool,
}

impl MemAccess {
    /// `true` when rows are adjacent in memory (unit stride), the case the
    /// vector cache serves at full port bandwidth.
    #[must_use]
    pub fn unit_stride(&self) -> bool {
        self.rows <= 1 || self.stride == i64::from(self.row_bytes)
    }

    /// Total bytes transferred.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.row_bytes) * u64::from(self.rows)
    }
}

/// One dynamic (committed-path) instruction, in program order.
#[derive(Debug, Clone, Copy)]
pub struct DynInstr {
    /// Static instruction index (program counter).
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Region tag for Figure-6 style cycle attribution.
    pub region: Region,
    /// `Some(target)` when a branch/jump was taken.
    pub taken: Option<u32>,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Effective vector length for full-VL matrix operations (1 otherwise).
    pub vl: u8,
}

/// Consumer of the dynamic instruction stream.
///
/// The emulator pushes instructions in commit order; implementations range
/// from simple counters to the full out-of-order timing model.  Each push
/// also hands the instruction's predecoded static metadata
/// ([`DecodedInstr`]), so consumers on the hot path never recompute
/// def/use sets, classes or latencies per dynamic instruction.
pub trait TraceSink {
    /// Called once per committed dynamic instruction.
    fn push(&mut self, di: &DynInstr, dec: &DecodedInstr);

    /// Called once per executed superblock with the committed dynamic
    /// instructions of the block in program order.
    ///
    /// `decs` holds the predecoded metadata of the *whole* block
    /// (`block.len` entries starting at `block.start`); `dis` is the
    /// prefix that actually committed — shorter than `decs` when the run
    /// stopped mid-block (instruction limit, fault).  `dis[i]` pairs with
    /// `decs[i]`.
    ///
    /// The default implementation replays the block through [`push`]
    /// one instruction at a time, so sinks that don't care about block
    /// granularity need not override it.  Sinks overriding it must be
    /// observationally identical to the default.
    ///
    /// [`push`]: TraceSink::push
    fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], block: &DecodedBlock) {
        let _ = block;
        for (di, dec) in dis.iter().zip(decs) {
            self.push(di, dec);
        }
    }
}

/// A sink that discards the stream (functional-only runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn push(&mut self, _di: &DynInstr, _dec: &DecodedInstr) {}
}

/// A sink that stores the whole stream (tests and debugging only — full
/// application traces are large).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The collected trace.
    pub trace: Vec<DynInstr>,
}

impl TraceSink for VecSink {
    fn push(&mut self, di: &DynInstr, _dec: &DecodedInstr) {
        self.trace.push(*di);
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
        (**self).push(di, dec);
    }

    // Forward explicitly so an overridden `push_block` on `T` is not
    // bypassed by the trait's default per-instruction replay.
    fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], block: &DecodedBlock) {
        (**self).push_block(dis, decs, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_detection() {
        let a = MemAccess {
            addr: 0,
            row_bytes: 16,
            rows: 8,
            stride: 16,
            store: false,
            vector_path: true,
        };
        assert!(a.unit_stride());
        assert_eq!(a.total_bytes(), 128);
        let b = MemAccess { stride: 720, ..a };
        assert!(!b.unit_stride());
        let scalar = MemAccess {
            rows: 1,
            stride: 0,
            ..a
        };
        assert!(scalar.unit_stride());
    }
}
