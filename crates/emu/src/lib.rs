//! Functional emulator for the `simdsim` ISA.
//!
//! This crate is the study's equivalent of the paper's *emulation
//! libraries*: it executes programs written against the MMX64 / MMX128 /
//! VMMX64 / VMMX128 extensions, producing
//!
//! * architectural results (register and memory state) used by the
//!   correctness tests against golden Rust implementations, and
//! * a streamed **dynamic instruction trace** ([`DynInstr`]) consumed by
//!   the `simdsim-pipe` timing model — the trace-driven half of the
//!   paper's ATOM-based methodology.
//!
//! # Example
//!
//! ```
//! use simdsim_asm::Asm;
//! use simdsim_emu::{Machine, NullSink};
//! use simdsim_isa::Ext;
//!
//! // r2 = r0 + r1
//! let mut a = Asm::new();
//! let (x, y, z) = (a.arg(0), a.arg(1), a.arg(2));
//! a.add(z, x, y);
//! a.halt();
//! let prog = a.finish();
//!
//! let mut m = Machine::new(Ext::Mmx64, 1024);
//! m.set_ireg(0, 30);
//! m.set_ireg(1, 12);
//! m.run(&prog, &mut NullSink, 1000)?;
//! assert_eq!(m.ireg(2), 42);
//! # Ok::<(), simdsim_emu::EmuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layout;
mod machine;
pub mod subword;
mod trace;

pub use error::EmuError;
pub use layout::Layout;
pub use machine::{Machine, NoObserver, RunStats, StepObserver};
pub use trace::{DynInstr, MemAccess, NullSink, TraceSink, VecSink};

/// Emulator revision, part of `simdsim-sweep`'s content-addressed cache
/// key.  Bump whenever a change to this crate alters the dynamic
/// instruction trace (and therefore simulated timing), so cached results
/// from older builds are never reused.
pub const REVISION: u32 = 1;
