//! Pure sub-word arithmetic on SIMD words.
//!
//! A SIMD word is represented as a `u128`; operations take the register
//! width in bytes (8 for the 64-bit extensions, 16 for the 128-bit ones)
//! and only the low `width` bytes participate.  All functions are pure and
//! extensively property-tested — they are the semantic ground truth the
//! kernels' correctness tests rest on.
//!
//! The hot entry points ([`apply_vop`], [`apply_shift`], [`splat`]) are
//! implemented as branch-free SWAR (SIMD-within-a-register) bit tricks on
//! the whole `u128` for 8/16/32-bit elements, so a `paddb` over 16 lanes
//! costs a handful of word ops instead of 16 extract/insert round trips.
//! 64-bit elements (rare, data-movement only) and the multiply family keep
//! the per-lane loops; those loops double as the differential oracles in
//! `scalar_ref`.

use simdsim_isa::{Esz, VOp, VShiftOp};

/// Extracts element `lane` of size `esz` as an unsigned value.
#[must_use]
pub fn get_lane_u(word: u128, esz: Esz, lane: usize) -> u64 {
    ((word >> (lane * esz.bits())) & esz.lane_mask()) as u64
}

/// Extracts element `lane` of size `esz` as a signed value.
#[must_use]
pub fn get_lane_i(word: u128, esz: Esz, lane: usize) -> i64 {
    let v = get_lane_u(word, esz, lane);
    match esz {
        Esz::B => v as u8 as i8 as i64,
        Esz::H => v as u16 as i16 as i64,
        Esz::W => v as u32 as i32 as i64,
        Esz::D => v as i64,
    }
}

/// Writes element `lane` of size `esz` (low bits of `val`).
#[must_use]
pub fn set_lane(word: u128, esz: Esz, lane: usize, val: u64) -> u128 {
    let shift = lane * esz.bits();
    let mask = esz.lane_mask() << shift;
    let v = ((val as u128) << shift) & mask;
    (word & !mask) | v
}

fn sat_s(v: i64, esz: Esz) -> u64 {
    let (lo, hi) = match esz {
        Esz::B => (i8::MIN as i64, i8::MAX as i64),
        Esz::H => (i16::MIN as i64, i16::MAX as i64),
        Esz::W => (i32::MIN as i64, i32::MAX as i64),
        Esz::D => (i64::MIN, i64::MAX),
    };
    (v.clamp(lo, hi) as u64) & (u64::MAX >> (64 - esz.bits()))
}

fn sat_u(v: i64, esz: Esz) -> u64 {
    let hi = match esz {
        Esz::B => u8::MAX as i64,
        Esz::H => u16::MAX as i64,
        Esz::W => u32::MAX as i64,
        Esz::D => i64::MAX, // unsigned-64 saturation clips at i64::MAX in this model
    };
    v.clamp(0, hi) as u64
}

/// Saturates `v` to a signed value of size `esz` (public for `AccPack`).
#[must_use]
pub fn saturate_signed(v: i64, esz: Esz) -> u64 {
    sat_s(v, esz)
}

/// Saturates `v` to an unsigned value of size `esz`.
#[must_use]
pub fn saturate_unsigned(v: i64, esz: Esz) -> u64 {
    sat_u(v, esz)
}

fn lanewise(a: u128, b: u128, esz: Esz, width: usize, f: impl Fn(i64, i64) -> u64) -> u128 {
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let r = f(get_lane_i(a, esz, l), get_lane_i(b, esz, l));
        out = set_lane(out, esz, l, r);
    }
    out
}

fn lanewise_u(a: u128, b: u128, esz: Esz, width: usize, f: impl Fn(u64, u64) -> u64) -> u128 {
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let r = f(get_lane_u(a, esz, l), get_lane_u(b, esz, l));
        out = set_lane(out, esz, l, r);
    }
    out
}

// ---------------------------------------------------------------------------
// SWAR core
//
// Each element size has two replicated constants: `L` (a one in every lane's
// least-significant bit) and `H = L << (bits-1)` (every lane's sign bit).
// All per-lane arithmetic below is expressed so carries and borrows never
// cross a lane boundary; see each helper for the invariant that makes the
// plain `u128` add/sub safe.
// ---------------------------------------------------------------------------

/// One in the least-significant bit of every lane.
const fn lsb_ones(esz: Esz) -> u128 {
    match esz {
        Esz::B => 0x0101_0101_0101_0101_0101_0101_0101_0101,
        Esz::H => 0x0001_0001_0001_0001_0001_0001_0001_0001,
        Esz::W => 0x0000_0001_0000_0001_0000_0001_0000_0001,
        Esz::D => 0x0000_0000_0000_0001_0000_0000_0000_0001,
    }
}

/// One in the most-significant (sign) bit of every lane.
const fn msb_ones(esz: Esz) -> u128 {
    lsb_ones(esz) << (esz.bits() - 1)
}

/// Expands a word with ones only in lane LSB positions into full-lane
/// masks: `m * (2^bits - 1)` computed as a shift and subtract.
#[inline]
fn lane_fill(lsb: u128, bits: usize) -> u128 {
    (lsb << bits).wrapping_sub(lsb)
}

/// Full-lane mask from a word with bits only in lane sign positions.
#[inline]
fn fill_from_msb(msb: u128, bits: usize) -> u128 {
    lane_fill(msb >> (bits - 1), bits)
}

/// Lane-wise wrapping addition: add with sign bits masked off (so no carry
/// escapes a lane), then xor the sign bits back in.
#[inline]
fn swar_add(a: u128, b: u128, h: u128) -> u128 {
    ((a & !h) + (b & !h)) ^ ((a ^ b) & h)
}

/// Lane-wise wrapping subtraction: force the minuend's sign bit so the low
/// bits can never borrow across a lane, then patch the sign bit.
#[inline]
fn swar_sub(a: u128, b: u128, h: u128) -> u128 {
    ((a | h) - (b & !h)) ^ ((a ^ !b) & h)
}

/// Sign bit set in every lane where `a < b` unsigned.
///
/// `z`'s sign bit holds "low bits of `a` ≥ low bits of `b`"; combine with
/// the operands' own sign bits: `a < b` iff the sign bits say so outright,
/// or they tie and the low bits borrowed.
#[inline]
fn ltu_msb(a: u128, b: u128, h: u128) -> u128 {
    let z = ((a & !h) | h) - (b & !h);
    ((!a & b) | (!(a ^ b) & !z)) & h
}

/// Sign bit set in every lane where `a == b`.
#[inline]
fn eq_msb(a: u128, b: u128, h: u128) -> u128 {
    let v = a ^ b;
    // Adding 0x7f.. to the low bits carries into the sign position iff they
    // are non-zero; `| v` folds in the lane's own sign bit.
    ((((v & !h) + !h) | v) & h) ^ h
}

/// Selects `x` where `mask` lanes are all-ones, else `y`.
#[inline]
fn sel(mask: u128, x: u128, y: u128) -> u128 {
    y ^ ((x ^ y) & mask)
}

/// Lane-wise signed saturating add/sub: `s` is the wrapping result and
/// `ov` has sign bits set on overflowing lanes; overflowed lanes are
/// replaced by `0x7f..` plus the sign of `a` (giving `0x80..` when `a` is
/// negative).
#[inline]
fn swar_saturate_signed(a: u128, s: u128, ov: u128, h: u128, bits: usize) -> u128 {
    let ov_lsb = ov >> (bits - 1);
    let ovf = lane_fill(ov_lsb, bits);
    let sat = (ovf & !h) + ((a >> (bits - 1)) & ov_lsb);
    (s & !ovf) | sat
}

/// Lane-wise unsigned average `(a + b + 1) >> 1` without widening:
/// `(a | b) - ((a ^ b) >> 1)`.  The shifted word's lane sign positions are
/// contaminated by the neighbouring lane's LSB, and a per-lane logical
/// shift always leaves them zero, so mask them off.
#[inline]
fn swar_avg(a: u128, b: u128, h: u128) -> u128 {
    (a | b) - (((a ^ b) >> 1) & !h)
}

/// `psadbw` via SWAR: per-byte absolute difference (max − min, which never
/// borrows across lanes), then a three-step horizontal fold to one sum per
/// 64-bit group.
#[inline]
fn swar_sad(a: u128, b: u128) -> u128 {
    let h = msb_ones(Esz::B);
    const FOLD_B: u128 = lsb_ones(Esz::H) * 0xff;
    const FOLD_H: u128 = lsb_ones(Esz::W) * 0xffff;
    const FOLD_W: u128 = lsb_ones(Esz::D) * 0xffff_ffff;
    let m = fill_from_msb(ltu_msb(a, b, h), 8);
    let diff = sel(m, b, a) - sel(m, a, b); // max - min, lane-wise
    let t = (diff & FOLD_B) + ((diff >> 8) & FOLD_B);
    let t = (t & FOLD_H) + ((t >> 16) & FOLD_H);
    (t & FOLD_W) + ((t >> 32) & FOLD_W)
}

/// `psadbw`-style sum of absolute byte differences: one 64-bit sum per
/// 64-bit group of the register.
#[must_use]
pub fn sad(a: u128, b: u128, width: usize) -> u128 {
    let r = swar_sad(a, b);
    if width == 16 {
        r
    } else {
        r & ((1u128 << (width * 8)) - 1)
    }
}

/// `pmaddwd`: multiply signed 16-bit lanes, add adjacent 32-bit products.
#[must_use]
pub fn madd(a: u128, b: u128, width: usize) -> u128 {
    let mut out = 0u128;
    for l in 0..width / 4 {
        let p0 = get_lane_i(a, Esz::H, 2 * l) * get_lane_i(b, Esz::H, 2 * l);
        let p1 = get_lane_i(a, Esz::H, 2 * l + 1) * get_lane_i(b, Esz::H, 2 * l + 1);
        let s = (p0 as i32).wrapping_add(p1 as i32);
        out = set_lane(out, Esz::W, l, s as u32 as u64);
    }
    out
}

/// Pack elements of size `esz` from `a` (low half of the result) and `b`
/// (high half) into elements of half the size.
#[must_use]
pub fn pack(a: u128, b: u128, esz: Esz, width: usize, unsigned: bool) -> u128 {
    let dst = match esz {
        Esz::H => Esz::B,
        Esz::W => Esz::H,
        Esz::D => Esz::W,
        Esz::B => panic!("cannot pack byte elements"),
    };
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let v = get_lane_i(a, esz, l);
        let r = if unsigned {
            sat_u(v, dst)
        } else {
            sat_s(v, dst)
        };
        out = set_lane(out, dst, l, r);
    }
    for l in 0..n {
        let v = get_lane_i(b, esz, l);
        let r = if unsigned {
            sat_u(v, dst)
        } else {
            sat_s(v, dst)
        };
        out = set_lane(out, dst, n + l, r);
    }
    out
}

/// Interleave elements from the low (`hi = false`) or high halves of `a`
/// and `b` (`punpckl*` / `punpckh*`).
#[must_use]
pub fn unpack(a: u128, b: u128, esz: Esz, width: usize, hi: bool) -> u128 {
    let n = esz.lanes(width * 8);
    let half = n / 2;
    let base = if hi { half } else { 0 };
    let mut out = 0u128;
    for l in 0..half {
        out = set_lane(out, esz, 2 * l, get_lane_u(a, esz, base + l));
        out = set_lane(out, esz, 2 * l + 1, get_lane_u(b, esz, base + l));
    }
    out
}

/// Whether `esz` takes the SWAR fast path (64-bit lanes keep the scalar
/// loops: they appear only in data movement, and their ground-truth
/// semantics route through `i64` intermediates).
#[inline]
const fn swar_esz(esz: Esz) -> bool {
    !matches!(esz, Esz::D)
}

/// Applies a binary [`VOp`] to two SIMD words of `width` bytes.
///
/// # Panics
///
/// Panics on `pack` with byte source elements (not representable).
#[must_use]
pub fn apply_vop(op: VOp, a: u128, b: u128, width: usize) -> u128 {
    let mask: u128 = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (width * 8)) - 1
    };
    let r = match op {
        VOp::Add(e) if swar_esz(e) => swar_add(a, b, msb_ones(e)),
        VOp::Sub(e) if swar_esz(e) => swar_sub(a, b, msb_ones(e)),
        VOp::AddS(e) if swar_esz(e) => {
            let h = msb_ones(e);
            let s = swar_add(a, b, h);
            let ov = !(a ^ b) & (a ^ s) & h;
            swar_saturate_signed(a, s, ov, h, e.bits())
        }
        VOp::SubS(e) if swar_esz(e) => {
            let h = msb_ones(e);
            let s = swar_sub(a, b, h);
            let ov = (a ^ b) & (a ^ s) & h;
            swar_saturate_signed(a, s, ov, h, e.bits())
        }
        VOp::AddU(e) if swar_esz(e) => {
            let h = msb_ones(e);
            let s = swar_add(a, b, h);
            let carry = ((a & b) | ((a | b) & !s)) & h;
            s | fill_from_msb(carry, e.bits())
        }
        VOp::SubU(e) if swar_esz(e) => {
            let h = msb_ones(e);
            let s = swar_sub(a, b, h);
            s & !fill_from_msb(ltu_msb(a, b, h), e.bits())
        }
        VOp::Avg(e) if swar_esz(e) => swar_avg(a, b, msb_ones(e)),
        VOp::MinS(e) if swar_esz(e) => {
            let h = msb_ones(e);
            sel(fill_from_msb(ltu_msb(a ^ h, b ^ h, h), e.bits()), a, b)
        }
        VOp::MaxS(e) if swar_esz(e) => {
            let h = msb_ones(e);
            sel(fill_from_msb(ltu_msb(a ^ h, b ^ h, h), e.bits()), b, a)
        }
        VOp::MinU(e) if swar_esz(e) => {
            let h = msb_ones(e);
            sel(fill_from_msb(ltu_msb(a, b, h), e.bits()), a, b)
        }
        VOp::MaxU(e) if swar_esz(e) => {
            let h = msb_ones(e);
            sel(fill_from_msb(ltu_msb(a, b, h), e.bits()), b, a)
        }
        VOp::CmpEq(e) if swar_esz(e) => {
            let h = msb_ones(e);
            fill_from_msb(eq_msb(a, b, h), e.bits())
        }
        VOp::CmpGt(e) if swar_esz(e) => {
            let h = msb_ones(e);
            fill_from_msb(ltu_msb(b ^ h, a ^ h, h), e.bits())
        }
        // 64-bit lanes and everything below stay on the scalar loops.
        VOp::Add(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_add(y)),
        VOp::AddS(e) => lanewise(a, b, e, width, |x, y| sat_s(x + y, e)),
        VOp::AddU(e) => lanewise_u(a, b, e, width, |x, y| sat_u((x + y) as i64, e)),
        VOp::Sub(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_sub(y)),
        VOp::SubS(e) => lanewise(a, b, e, width, |x, y| sat_s(x - y, e)),
        VOp::SubU(e) => lanewise_u(a, b, e, width, |x, y| sat_u(x as i64 - y as i64, e)),
        VOp::Mullo(e) => lanewise(a, b, e, width, |x, y| (x.wrapping_mul(y)) as u64),
        VOp::Mulhi(e) => lanewise(a, b, e, width, |x, y| ((x * y) >> e.bits()) as u64),
        VOp::Madd => madd(a, b, width),
        VOp::Sad => sad(a, b, width),
        VOp::Avg(e) => lanewise_u(a, b, e, width, |x, y| (x + y + 1) >> 1),
        VOp::MinS(e) => lanewise(a, b, e, width, |x, y| x.min(y) as u64),
        VOp::MinU(e) => lanewise_u(a, b, e, width, |x, y| x.min(y)),
        VOp::MaxS(e) => lanewise(a, b, e, width, |x, y| x.max(y) as u64),
        VOp::MaxU(e) => lanewise_u(a, b, e, width, |x, y| x.max(y)),
        VOp::CmpEq(e) => lanewise_u(a, b, e, width, |x, y| if x == y { u64::MAX } else { 0 }),
        VOp::CmpGt(e) => lanewise(a, b, e, width, |x, y| if x > y { u64::MAX } else { 0 }),
        VOp::And => a & b,
        VOp::Or => a | b,
        VOp::Xor => a ^ b,
        VOp::AndNot => a & !b,
        VOp::PackS(e) => pack(a, b, e, width, false),
        VOp::PackU(e) => pack(a, b, e, width, true),
        VOp::UnpackLo(e) => unpack(a, b, e, width, false),
        VOp::UnpackHi(e) => unpack(a, b, e, width, true),
    };
    r & mask
}

/// Applies an element-wise shift-by-immediate.
///
/// All lanes shift by the same amount, so the whole word is shifted once
/// and a replicated mask clears the bits that leaked in from neighbouring
/// lanes; arithmetic right shifts OR a replicated sign-extension mask into
/// lanes whose sign bit was set.
#[must_use]
pub fn apply_shift(op: VShiftOp, a: u128, amount: u8, width: usize) -> u128 {
    let mask: u128 = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (width * 8)) - 1
    };
    let (esz, kind) = match op {
        VShiftOp::Sll(e) => (e, 0),
        VShiftOp::Srl(e) => (e, 1),
        VShiftOp::Sra(e) => (e, 2),
    };
    let bits = esz.bits() as u32;
    let amt = (amount as u32).min(bits); // shifting by >= width clears (or fills with sign)
    let lane = esz.lane_mask();
    let l_ones = lsb_ones(esz);
    let out = match kind {
        0 => {
            let keep = ((lane << amt) & lane) * l_ones;
            (a << amt) & keep
        }
        1 => {
            let keep = (lane >> amt) * l_ones;
            (a >> amt) & keep
        }
        _ => {
            let sh = amt.min(bits - 1);
            let keep = lane >> sh;
            let ext = (keep ^ lane) * l_ones;
            let signs = lane_fill((a >> (bits - 1)) & l_ones, bits as usize);
            ((a >> sh) & (keep * l_ones)) | (ext & signs)
        }
    };
    out & mask
}

/// Broadcasts the low `esz` bits of `v` to every lane of a `width`-byte word.
#[must_use]
pub fn splat(v: u64, esz: Esz, width: usize) -> u128 {
    let word = ((v as u128) & esz.lane_mask()) * lsb_ones(esz);
    if width == 16 {
        word
    } else {
        word & ((1u128 << (width * 8)) - 1)
    }
}

/// The original per-lane reference implementations, kept verbatim as the
/// differential oracles for the SWAR fast paths (`tests/prop.rs` drives
/// them against [`apply_vop`]/[`apply_shift`]/[`splat`] across every
/// `Esz` × op × width combination).
#[cfg(any(test, feature = "scalar-ref"))]
pub mod scalar_ref {
    use super::*;

    /// Per-lane reference for [`super::sad`].
    #[must_use]
    pub fn sad(a: u128, b: u128, width: usize) -> u128 {
        let mut out = 0u128;
        for g in 0..width / 8 {
            let mut sum = 0u64;
            for j in 0..8 {
                let l = g * 8 + j;
                let x = get_lane_u(a, Esz::B, l) as i64;
                let y = get_lane_u(b, Esz::B, l) as i64;
                sum += x.abs_diff(y);
            }
            out |= (sum as u128) << (g * 64);
        }
        out
    }

    /// Per-lane reference for [`super::apply_vop`].
    #[must_use]
    pub fn apply_vop(op: VOp, a: u128, b: u128, width: usize) -> u128 {
        let mask: u128 = if width == 16 {
            u128::MAX
        } else {
            (1u128 << (width * 8)) - 1
        };
        let r = match op {
            VOp::Add(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_add(y)),
            VOp::AddS(e) => lanewise(a, b, e, width, |x, y| sat_s(x + y, e)),
            VOp::AddU(e) => lanewise_u(a, b, e, width, |x, y| sat_u((x + y) as i64, e)),
            VOp::Sub(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_sub(y)),
            VOp::SubS(e) => lanewise(a, b, e, width, |x, y| sat_s(x - y, e)),
            VOp::SubU(e) => lanewise_u(a, b, e, width, |x, y| sat_u(x as i64 - y as i64, e)),
            VOp::Mullo(e) => lanewise(a, b, e, width, |x, y| (x.wrapping_mul(y)) as u64),
            VOp::Mulhi(e) => lanewise(a, b, e, width, |x, y| ((x * y) >> e.bits()) as u64),
            VOp::Madd => madd(a, b, width),
            VOp::Sad => sad(a, b, width),
            VOp::Avg(e) => lanewise_u(a, b, e, width, |x, y| (x + y + 1) >> 1),
            VOp::MinS(e) => lanewise(a, b, e, width, |x, y| x.min(y) as u64),
            VOp::MinU(e) => lanewise_u(a, b, e, width, |x, y| x.min(y)),
            VOp::MaxS(e) => lanewise(a, b, e, width, |x, y| x.max(y) as u64),
            VOp::MaxU(e) => lanewise_u(a, b, e, width, |x, y| x.max(y)),
            VOp::CmpEq(e) => lanewise_u(a, b, e, width, |x, y| if x == y { u64::MAX } else { 0 }),
            VOp::CmpGt(e) => lanewise(a, b, e, width, |x, y| if x > y { u64::MAX } else { 0 }),
            VOp::And => a & b,
            VOp::Or => a | b,
            VOp::Xor => a ^ b,
            VOp::AndNot => a & !b,
            VOp::PackS(e) => pack(a, b, e, width, false),
            VOp::PackU(e) => pack(a, b, e, width, true),
            VOp::UnpackLo(e) => unpack(a, b, e, width, false),
            VOp::UnpackHi(e) => unpack(a, b, e, width, true),
        };
        r & mask
    }

    /// Per-lane reference for [`super::apply_shift`].
    #[must_use]
    pub fn apply_shift(op: VShiftOp, a: u128, amount: u8, width: usize) -> u128 {
        let mask: u128 = if width == 16 {
            u128::MAX
        } else {
            (1u128 << (width * 8)) - 1
        };
        let (esz, kind) = match op {
            VShiftOp::Sll(e) => (e, 0),
            VShiftOp::Srl(e) => (e, 1),
            VShiftOp::Sra(e) => (e, 2),
        };
        let bits = esz.bits() as u32;
        let amt = (amount as u32).min(bits); // shifting by >= width clears (or fills with sign)
        let n = esz.lanes(width * 8);
        let mut out = 0u128;
        for l in 0..n {
            let v = get_lane_u(a, esz, l);
            let r = match kind {
                0 => {
                    if amt >= bits {
                        0
                    } else {
                        (v << amt) & (u64::MAX >> (64 - bits))
                    }
                }
                1 => {
                    if amt >= bits {
                        0
                    } else {
                        v >> amt
                    }
                }
                _ => {
                    let s = get_lane_i(a, esz, l);
                    let sh = amt.min(bits - 1);
                    ((s >> sh) as u64) & (u64::MAX >> (64 - bits))
                }
            };
            out = set_lane(out, esz, l, r);
        }
        out & mask
    }

    /// Per-lane reference for [`super::splat`].
    #[must_use]
    pub fn splat(v: u64, esz: Esz, width: usize) -> u128 {
        let n = esz.lanes(width * 8);
        let mut out = 0u128;
        for l in 0..n {
            out = set_lane(out, esz, l, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_accessors() {
        let w: u128 = 0x8899_aabb_ccdd_eeff;
        assert_eq!(get_lane_u(w, Esz::B, 0), 0xff);
        assert_eq!(get_lane_u(w, Esz::B, 7), 0x88);
        assert_eq!(get_lane_i(w, Esz::B, 0), -1);
        assert_eq!(get_lane_u(w, Esz::H, 1), 0xccdd);
        assert_eq!(get_lane_i(w, Esz::H, 3), 0x8899u16 as i16 as i64);
        let w2 = set_lane(w, Esz::H, 0, 0x1234);
        assert_eq!(get_lane_u(w2, Esz::H, 0), 0x1234);
        assert_eq!(get_lane_u(w2, Esz::H, 1), 0xccdd);
    }

    #[test]
    fn saturating_add_bytes() {
        let a = splat(0x7f, Esz::B, 8);
        let b = splat(0x01, Esz::B, 8);
        let r = apply_vop(VOp::AddS(Esz::B), a, b, 8);
        assert_eq!(r, splat(0x7f, Esz::B, 8));
        let r = apply_vop(VOp::AddU(Esz::B), splat(0xff, Esz::B, 8), b, 8);
        assert_eq!(r, splat(0xff, Esz::B, 8));
        let r = apply_vop(VOp::Add(Esz::B), splat(0xff, Esz::B, 8), b, 8);
        assert_eq!(r, 0);
    }

    #[test]
    fn sad_basic() {
        let a = u128::from_le_bytes([10, 0, 5, 200, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]);
        let b = u128::from_le_bytes([0, 10, 15, 100, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0]);
        let r = sad(a, b, 16);
        assert_eq!(r as u64, 10 + 10 + 10 + 100);
        assert_eq!((r >> 64) as u64, 4);
    }

    #[test]
    fn madd_pairs() {
        // lanes (i16): a = [2, 3, -1, 4, ...], b = [10, 100, 7, -2, ...]
        let mut a = 0u128;
        let mut b = 0u128;
        for (l, (x, y)) in [(2i64, 10i64), (3, 100), (-1, 7), (4, -2)]
            .iter()
            .enumerate()
        {
            a = set_lane(a, Esz::H, l, *x as u64);
            b = set_lane(b, Esz::H, l, *y as u64);
        }
        let r = madd(a, b, 8);
        assert_eq!(get_lane_i(r, Esz::W, 0), 2 * 10 + 3 * 100);
        assert_eq!(get_lane_i(r, Esz::W, 1), -7 - 8);
    }

    #[test]
    fn pack_and_unpack() {
        let mut a = 0u128;
        for l in 0..4 {
            a = set_lane(a, Esz::H, l, 300 + l as u64); // >255 saturates unsigned pack
        }
        let r = pack(a, 0, Esz::H, 8, true);
        for l in 0..4 {
            assert_eq!(get_lane_u(r, Esz::B, l), 255);
        }
        for l in 4..8 {
            assert_eq!(get_lane_u(r, Esz::B, l), 0);
        }

        let x = u128::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0]);
        let y = u128::from_le_bytes([11, 12, 13, 14, 15, 16, 17, 18, 0, 0, 0, 0, 0, 0, 0, 0]);
        let lo = unpack(x, y, Esz::B, 8, false);
        assert_eq!(lo.to_le_bytes()[..8], [1, 11, 2, 12, 3, 13, 4, 14][..]);
        let hi = unpack(x, y, Esz::B, 8, true);
        assert_eq!(hi.to_le_bytes()[..8], [5, 15, 6, 16, 7, 17, 8, 18][..]);
    }

    #[test]
    fn shifts() {
        let a = splat(0x8000, Esz::H, 8);
        let r = apply_shift(VShiftOp::Sra(Esz::H), a, 15, 8);
        assert_eq!(r, splat(0xffff, Esz::H, 8));
        let r = apply_shift(VShiftOp::Srl(Esz::H), a, 15, 8);
        assert_eq!(r, splat(1, Esz::H, 8));
        let r = apply_shift(VShiftOp::Sll(Esz::H), splat(1, Esz::H, 8), 3, 8);
        assert_eq!(r, splat(8, Esz::H, 8));
    }

    #[test]
    fn width64_masks_upper() {
        let a = u128::MAX;
        let r = apply_vop(VOp::Add(Esz::B), a, 0, 8);
        assert_eq!(r >> 64, 0);
    }

    #[test]
    fn swar_matches_scalar_spot_checks() {
        // Deterministic spot checks; the exhaustive sweep lives in
        // tests/prop.rs.
        let a: u128 = 0x8000_7fff_0001_fffe_80ff_0100_7f80_01ff;
        let b: u128 = 0x7fff_8001_ffff_0002_01ff_80fe_ff00_8080;
        for e in [Esz::B, Esz::H, Esz::W] {
            for op in [
                VOp::Add(e),
                VOp::Sub(e),
                VOp::AddS(e),
                VOp::SubS(e),
                VOp::AddU(e),
                VOp::SubU(e),
                VOp::Avg(e),
                VOp::MinS(e),
                VOp::MaxS(e),
                VOp::MinU(e),
                VOp::MaxU(e),
                VOp::CmpEq(e),
                VOp::CmpGt(e),
            ] {
                for width in [8usize, 16] {
                    assert_eq!(
                        apply_vop(op, a, b, width),
                        scalar_ref::apply_vop(op, a, b, width),
                        "{op:?} width {width}"
                    );
                }
            }
        }
        assert_eq!(sad(a, b, 16), scalar_ref::sad(a, b, 16));
        assert_eq!(sad(a, b, 8), scalar_ref::sad(a, b, 8));
    }

    #[test]
    fn swar_shift_matches_scalar_all_amounts() {
        let a: u128 = 0x8000_7fff_0001_fffe_80ff_0100_7f80_01ff;
        for e in [Esz::B, Esz::H, Esz::W, Esz::D] {
            for amt in 0..=(e.bits() as u8 + 2) {
                for op in [VShiftOp::Sll(e), VShiftOp::Srl(e), VShiftOp::Sra(e)] {
                    for width in [8usize, 16] {
                        assert_eq!(
                            apply_shift(op, a, amt, width),
                            scalar_ref::apply_shift(op, a, amt, width),
                            "{op:?} amt {amt} width {width}"
                        );
                    }
                }
            }
        }
    }
}
