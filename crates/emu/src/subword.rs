//! Pure sub-word arithmetic on SIMD words.
//!
//! A SIMD word is represented as a `u128`; operations take the register
//! width in bytes (8 for the 64-bit extensions, 16 for the 128-bit ones)
//! and only the low `width` bytes participate.  All functions are pure and
//! extensively property-tested — they are the semantic ground truth the
//! kernels' correctness tests rest on.

use simdsim_isa::{Esz, VOp, VShiftOp};

/// Extracts element `lane` of size `esz` as an unsigned value.
#[must_use]
pub fn get_lane_u(word: u128, esz: Esz, lane: usize) -> u64 {
    ((word >> (lane * esz.bits())) & esz.lane_mask()) as u64
}

/// Extracts element `lane` of size `esz` as a signed value.
#[must_use]
pub fn get_lane_i(word: u128, esz: Esz, lane: usize) -> i64 {
    let v = get_lane_u(word, esz, lane);
    match esz {
        Esz::B => v as u8 as i8 as i64,
        Esz::H => v as u16 as i16 as i64,
        Esz::W => v as u32 as i32 as i64,
        Esz::D => v as i64,
    }
}

/// Writes element `lane` of size `esz` (low bits of `val`).
#[must_use]
pub fn set_lane(word: u128, esz: Esz, lane: usize, val: u64) -> u128 {
    let shift = lane * esz.bits();
    let mask = esz.lane_mask() << shift;
    let v = ((val as u128) << shift) & mask;
    (word & !mask) | v
}

fn sat_s(v: i64, esz: Esz) -> u64 {
    let (lo, hi) = match esz {
        Esz::B => (i8::MIN as i64, i8::MAX as i64),
        Esz::H => (i16::MIN as i64, i16::MAX as i64),
        Esz::W => (i32::MIN as i64, i32::MAX as i64),
        Esz::D => (i64::MIN, i64::MAX),
    };
    (v.clamp(lo, hi) as u64) & (u64::MAX >> (64 - esz.bits()))
}

fn sat_u(v: i64, esz: Esz) -> u64 {
    let hi = match esz {
        Esz::B => u8::MAX as i64,
        Esz::H => u16::MAX as i64,
        Esz::W => u32::MAX as i64,
        Esz::D => i64::MAX, // unsigned-64 saturation clips at i64::MAX in this model
    };
    v.clamp(0, hi) as u64
}

/// Saturates `v` to a signed value of size `esz` (public for `AccPack`).
#[must_use]
pub fn saturate_signed(v: i64, esz: Esz) -> u64 {
    sat_s(v, esz)
}

/// Saturates `v` to an unsigned value of size `esz`.
#[must_use]
pub fn saturate_unsigned(v: i64, esz: Esz) -> u64 {
    sat_u(v, esz)
}

fn lanewise(a: u128, b: u128, esz: Esz, width: usize, f: impl Fn(i64, i64) -> u64) -> u128 {
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let r = f(get_lane_i(a, esz, l), get_lane_i(b, esz, l));
        out = set_lane(out, esz, l, r);
    }
    out
}

fn lanewise_u(a: u128, b: u128, esz: Esz, width: usize, f: impl Fn(u64, u64) -> u64) -> u128 {
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let r = f(get_lane_u(a, esz, l), get_lane_u(b, esz, l));
        out = set_lane(out, esz, l, r);
    }
    out
}

/// `psadbw`-style sum of absolute byte differences: one 64-bit sum per
/// 64-bit group of the register.
#[must_use]
pub fn sad(a: u128, b: u128, width: usize) -> u128 {
    let mut out = 0u128;
    for g in 0..width / 8 {
        let mut sum = 0u64;
        for j in 0..8 {
            let l = g * 8 + j;
            let x = get_lane_u(a, Esz::B, l) as i64;
            let y = get_lane_u(b, Esz::B, l) as i64;
            sum += x.abs_diff(y);
        }
        out |= (sum as u128) << (g * 64);
    }
    out
}

/// `pmaddwd`: multiply signed 16-bit lanes, add adjacent 32-bit products.
#[must_use]
pub fn madd(a: u128, b: u128, width: usize) -> u128 {
    let mut out = 0u128;
    for l in 0..width / 4 {
        let p0 = get_lane_i(a, Esz::H, 2 * l) * get_lane_i(b, Esz::H, 2 * l);
        let p1 = get_lane_i(a, Esz::H, 2 * l + 1) * get_lane_i(b, Esz::H, 2 * l + 1);
        let s = (p0 as i32).wrapping_add(p1 as i32);
        out = set_lane(out, Esz::W, l, s as u32 as u64);
    }
    out
}

/// Pack elements of size `esz` from `a` (low half of the result) and `b`
/// (high half) into elements of half the size.
#[must_use]
pub fn pack(a: u128, b: u128, esz: Esz, width: usize, unsigned: bool) -> u128 {
    let dst = match esz {
        Esz::H => Esz::B,
        Esz::W => Esz::H,
        Esz::D => Esz::W,
        Esz::B => panic!("cannot pack byte elements"),
    };
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let v = get_lane_i(a, esz, l);
        let r = if unsigned {
            sat_u(v, dst)
        } else {
            sat_s(v, dst)
        };
        out = set_lane(out, dst, l, r);
    }
    for l in 0..n {
        let v = get_lane_i(b, esz, l);
        let r = if unsigned {
            sat_u(v, dst)
        } else {
            sat_s(v, dst)
        };
        out = set_lane(out, dst, n + l, r);
    }
    out
}

/// Interleave elements from the low (`hi = false`) or high halves of `a`
/// and `b` (`punpckl*` / `punpckh*`).
#[must_use]
pub fn unpack(a: u128, b: u128, esz: Esz, width: usize, hi: bool) -> u128 {
    let n = esz.lanes(width * 8);
    let half = n / 2;
    let base = if hi { half } else { 0 };
    let mut out = 0u128;
    for l in 0..half {
        out = set_lane(out, esz, 2 * l, get_lane_u(a, esz, base + l));
        out = set_lane(out, esz, 2 * l + 1, get_lane_u(b, esz, base + l));
    }
    out
}

/// Applies a binary [`VOp`] to two SIMD words of `width` bytes.
///
/// # Panics
///
/// Panics on `pack` with byte source elements (not representable).
#[must_use]
pub fn apply_vop(op: VOp, a: u128, b: u128, width: usize) -> u128 {
    let mask: u128 = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (width * 8)) - 1
    };
    let r = match op {
        VOp::Add(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_add(y)),
        VOp::AddS(e) => lanewise(a, b, e, width, |x, y| sat_s(x + y, e)),
        VOp::AddU(e) => lanewise_u(a, b, e, width, |x, y| sat_u((x + y) as i64, e)),
        VOp::Sub(e) => lanewise_u(a, b, e, width, |x, y| x.wrapping_sub(y)),
        VOp::SubS(e) => lanewise(a, b, e, width, |x, y| sat_s(x - y, e)),
        VOp::SubU(e) => lanewise_u(a, b, e, width, |x, y| sat_u(x as i64 - y as i64, e)),
        VOp::Mullo(e) => lanewise(a, b, e, width, |x, y| (x.wrapping_mul(y)) as u64),
        VOp::Mulhi(e) => lanewise(a, b, e, width, |x, y| ((x * y) >> e.bits()) as u64),
        VOp::Madd => madd(a, b, width),
        VOp::Sad => sad(a, b, width),
        VOp::Avg(e) => lanewise_u(a, b, e, width, |x, y| (x + y + 1) >> 1),
        VOp::MinS(e) => lanewise(a, b, e, width, |x, y| x.min(y) as u64),
        VOp::MinU(e) => lanewise_u(a, b, e, width, |x, y| x.min(y)),
        VOp::MaxS(e) => lanewise(a, b, e, width, |x, y| x.max(y) as u64),
        VOp::MaxU(e) => lanewise_u(a, b, e, width, |x, y| x.max(y)),
        VOp::CmpEq(e) => lanewise_u(a, b, e, width, |x, y| if x == y { u64::MAX } else { 0 }),
        VOp::CmpGt(e) => lanewise(a, b, e, width, |x, y| if x > y { u64::MAX } else { 0 }),
        VOp::And => a & b,
        VOp::Or => a | b,
        VOp::Xor => a ^ b,
        VOp::AndNot => a & !b,
        VOp::PackS(e) => pack(a, b, e, width, false),
        VOp::PackU(e) => pack(a, b, e, width, true),
        VOp::UnpackLo(e) => unpack(a, b, e, width, false),
        VOp::UnpackHi(e) => unpack(a, b, e, width, true),
    };
    r & mask
}

/// Applies an element-wise shift-by-immediate.
#[must_use]
pub fn apply_shift(op: VShiftOp, a: u128, amount: u8, width: usize) -> u128 {
    let mask: u128 = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (width * 8)) - 1
    };
    let (esz, kind) = match op {
        VShiftOp::Sll(e) => (e, 0),
        VShiftOp::Srl(e) => (e, 1),
        VShiftOp::Sra(e) => (e, 2),
    };
    let bits = esz.bits() as u32;
    let amt = (amount as u32).min(bits); // shifting by >= width clears (or fills with sign)
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        let v = get_lane_u(a, esz, l);
        let r = match kind {
            0 => {
                if amt >= bits {
                    0
                } else {
                    (v << amt) & (u64::MAX >> (64 - bits))
                }
            }
            1 => {
                if amt >= bits {
                    0
                } else {
                    v >> amt
                }
            }
            _ => {
                let s = get_lane_i(a, esz, l);
                let sh = amt.min(bits - 1);
                ((s >> sh) as u64) & (u64::MAX >> (64 - bits))
            }
        };
        out = set_lane(out, esz, l, r);
    }
    out & mask
}

/// Broadcasts the low `esz` bits of `v` to every lane of a `width`-byte word.
#[must_use]
pub fn splat(v: u64, esz: Esz, width: usize) -> u128 {
    let n = esz.lanes(width * 8);
    let mut out = 0u128;
    for l in 0..n {
        out = set_lane(out, esz, l, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_accessors() {
        let w: u128 = 0x8899_aabb_ccdd_eeff;
        assert_eq!(get_lane_u(w, Esz::B, 0), 0xff);
        assert_eq!(get_lane_u(w, Esz::B, 7), 0x88);
        assert_eq!(get_lane_i(w, Esz::B, 0), -1);
        assert_eq!(get_lane_u(w, Esz::H, 1), 0xccdd);
        assert_eq!(get_lane_i(w, Esz::H, 3), 0x8899u16 as i16 as i64);
        let w2 = set_lane(w, Esz::H, 0, 0x1234);
        assert_eq!(get_lane_u(w2, Esz::H, 0), 0x1234);
        assert_eq!(get_lane_u(w2, Esz::H, 1), 0xccdd);
    }

    #[test]
    fn saturating_add_bytes() {
        let a = splat(0x7f, Esz::B, 8);
        let b = splat(0x01, Esz::B, 8);
        let r = apply_vop(VOp::AddS(Esz::B), a, b, 8);
        assert_eq!(r, splat(0x7f, Esz::B, 8));
        let r = apply_vop(VOp::AddU(Esz::B), splat(0xff, Esz::B, 8), b, 8);
        assert_eq!(r, splat(0xff, Esz::B, 8));
        let r = apply_vop(VOp::Add(Esz::B), splat(0xff, Esz::B, 8), b, 8);
        assert_eq!(r, 0);
    }

    #[test]
    fn sad_basic() {
        let a = u128::from_le_bytes([10, 0, 5, 200, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]);
        let b = u128::from_le_bytes([0, 10, 15, 100, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0]);
        let r = sad(a, b, 16);
        assert_eq!(r as u64, 10 + 10 + 10 + 100);
        assert_eq!((r >> 64) as u64, 4);
    }

    #[test]
    fn madd_pairs() {
        // lanes (i16): a = [2, 3, -1, 4, ...], b = [10, 100, 7, -2, ...]
        let mut a = 0u128;
        let mut b = 0u128;
        for (l, (x, y)) in [(2i64, 10i64), (3, 100), (-1, 7), (4, -2)]
            .iter()
            .enumerate()
        {
            a = set_lane(a, Esz::H, l, *x as u64);
            b = set_lane(b, Esz::H, l, *y as u64);
        }
        let r = madd(a, b, 8);
        assert_eq!(get_lane_i(r, Esz::W, 0), 2 * 10 + 3 * 100);
        assert_eq!(get_lane_i(r, Esz::W, 1), -7 - 8);
    }

    #[test]
    fn pack_and_unpack() {
        let mut a = 0u128;
        for l in 0..4 {
            a = set_lane(a, Esz::H, l, 300 + l as u64); // >255 saturates unsigned pack
        }
        let r = pack(a, 0, Esz::H, 8, true);
        for l in 0..4 {
            assert_eq!(get_lane_u(r, Esz::B, l), 255);
        }
        for l in 4..8 {
            assert_eq!(get_lane_u(r, Esz::B, l), 0);
        }

        let x = u128::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0]);
        let y = u128::from_le_bytes([11, 12, 13, 14, 15, 16, 17, 18, 0, 0, 0, 0, 0, 0, 0, 0]);
        let lo = unpack(x, y, Esz::B, 8, false);
        assert_eq!(lo.to_le_bytes()[..8], [1, 11, 2, 12, 3, 13, 4, 14][..]);
        let hi = unpack(x, y, Esz::B, 8, true);
        assert_eq!(hi.to_le_bytes()[..8], [5, 15, 6, 16, 7, 17, 8, 18][..]);
    }

    #[test]
    fn shifts() {
        let a = splat(0x8000, Esz::H, 8);
        let r = apply_shift(VShiftOp::Sra(Esz::H), a, 15, 8);
        assert_eq!(r, splat(0xffff, Esz::H, 8));
        let r = apply_shift(VShiftOp::Srl(Esz::H), a, 15, 8);
        assert_eq!(r, splat(1, Esz::H, 8));
        let r = apply_shift(VShiftOp::Sll(Esz::H), splat(1, Esz::H, 8), 3, 8);
        assert_eq!(r, splat(8, Esz::H, 8));
    }

    #[test]
    fn width64_masks_upper() {
        let a = u128::MAX;
        let r = apply_vop(VOp::Add(Esz::B), a, 0, 8);
        assert_eq!(r >> 64, 0);
    }
}
