//! Memory-image layout helper.
//!
//! Kernels and applications receive pointers to their inputs in argument
//! registers; [`Layout`] hands out non-overlapping, aligned regions of the
//! machine's flat memory image for the harness to fill.

/// Bump allocator over a memory image of a fixed size.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
    size: u64,
}

impl Layout {
    /// Creates a layout for an image of `size` bytes.  The first 64 bytes
    /// are reserved (null-pointer guard).
    #[must_use]
    pub fn new(size: u64) -> Self {
        Self { next: 64, size }
    }

    /// Reserves `bytes` bytes aligned to `align` and returns the address.
    ///
    /// # Panics
    ///
    /// Panics when the image is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        assert!(
            addr + bytes <= self.size,
            "memory image exhausted: need {bytes} at {addr:#x}, image is {:#x}",
            self.size
        );
        self.next = addr + bytes;
        addr
    }

    /// Reserves space for `n` elements of `elem_bytes` each, 64-byte
    /// aligned (cache-line aligned, matching how media frameworks allocate
    /// frame buffers).
    pub fn alloc_array(&mut self, n: u64, elem_bytes: u64) -> u64 {
        self.alloc(n * elem_bytes, 64)
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Total image size.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_respected() {
        let mut l = Layout::new(1 << 20);
        let a = l.alloc(3, 1);
        let b = l.alloc(16, 16);
        assert_eq!(b % 16, 0);
        assert!(b >= a + 3);
        let c = l.alloc_array(10, 2);
        assert_eq!(c % 64, 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut l = Layout::new(128);
        let _ = l.alloc(256, 1);
    }
}
