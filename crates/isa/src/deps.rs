//! Register def/use extraction, used by the out-of-order timing model for
//! dependency tracking and renaming.

use crate::{Instr, MOperand, Operand2, VLoc};
use serde::{Deserialize, Serialize};

/// An architectural register name, across all register files.
///
/// The vector-length register [`RegId::Vl`] is modelled as an ordinary
/// renamed register so that `setvl` serialises against in-flight matrix
/// operations exactly like a real implementation's VL checkpointing would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegId {
    /// Scalar integer register.
    I(u8),
    /// Scalar floating-point register.
    F(u8),
    /// 1-dimensional SIMD register.
    V(u8),
    /// Matrix register.
    M(u8),
    /// Packed accumulator.
    A(u8),
    /// The vector-length control register.
    Vl,
}

impl RegId {
    /// `true` for registers renamed out of the SIMD/matrix physical file
    /// (the resource the paper's Table I sizes).
    #[must_use]
    pub const fn is_simd_file(self) -> bool {
        matches!(self, RegId::V(_) | RegId::M(_))
    }
}

/// Def/use sets of one instruction.  Sized for the worst case in the ISA.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefUse {
    /// Registers read.
    pub uses: Vec<RegId>,
    /// Registers written.
    pub defs: Vec<RegId>,
}

fn vloc_reg(l: VLoc) -> RegId {
    match l {
        VLoc::V(v) => RegId::V(v.index() as u8),
        // A row is tracked at whole-matrix-register granularity; real MOM
        // implementations rename matrix registers as a unit too.
        VLoc::Row(m, _) => RegId::M(m.index() as u8),
    }
}

fn op2_use(b: Operand2, uses: &mut Vec<RegId>) {
    if let Operand2::Reg(r) = b {
        uses.push(RegId::I(r.index() as u8));
    }
}

impl Instr {
    /// Computes the registers this instruction reads and writes.
    ///
    /// Partial writes (element inserts, row writes, accumulator updates)
    /// are modelled as read-modify-write: the destination also appears in
    /// `uses`.
    #[must_use]
    pub fn def_use(&self) -> DefUse {
        let mut du = DefUse::default();
        let u = &mut du.uses;
        let d = &mut du.defs;
        match *self {
            Instr::IntOp { rd, ra, b, .. } => {
                u.push(RegId::I(ra.index() as u8));
                op2_use(b, u);
                d.push(RegId::I(rd.index() as u8));
            }
            Instr::Li { rd, .. } => d.push(RegId::I(rd.index() as u8)),
            Instr::Load { rd, base, .. } => {
                u.push(RegId::I(base.index() as u8));
                d.push(RegId::I(rd.index() as u8));
            }
            Instr::Store { rs, base, .. } => {
                u.push(RegId::I(rs.index() as u8));
                u.push(RegId::I(base.index() as u8));
            }
            Instr::Branch { ra, b, .. } => {
                u.push(RegId::I(ra.index() as u8));
                op2_use(b, u);
            }
            Instr::Jump { .. } | Instr::Halt | Instr::Nop => {}
            Instr::FpOp { fd, fa, fb, .. } => {
                u.push(RegId::F(fa.index() as u8));
                u.push(RegId::F(fb.index() as u8));
                d.push(RegId::F(fd.index() as u8));
            }
            Instr::FpLoad { fd, base, .. } => {
                u.push(RegId::I(base.index() as u8));
                d.push(RegId::F(fd.index() as u8));
            }
            Instr::FpStore { fs, base, .. } => {
                u.push(RegId::F(fs.index() as u8));
                u.push(RegId::I(base.index() as u8));
            }
            Instr::CvtIF { fd, ra } => {
                u.push(RegId::I(ra.index() as u8));
                d.push(RegId::F(fd.index() as u8));
            }
            Instr::CvtFI { rd, fa } => {
                u.push(RegId::F(fa.index() as u8));
                d.push(RegId::I(rd.index() as u8));
            }
            Instr::Simd { dst, a, b, .. } => {
                u.push(vloc_reg(a));
                u.push(vloc_reg(b));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
            Instr::SimdShift { dst, src, .. } => {
                u.push(vloc_reg(src));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
            Instr::VMov { dst, src } => {
                u.push(vloc_reg(src));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
            Instr::VSplat { dst, src, .. } => {
                u.push(RegId::I(src.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
            Instr::MovSV { rd, src, .. } => {
                u.push(vloc_reg(src));
                d.push(RegId::I(rd.index() as u8));
            }
            Instr::MovVS { dst, src, .. } => {
                u.push(RegId::I(src.index() as u8));
                u.push(vloc_reg(dst)); // lane insert preserves other lanes
                d.push(vloc_reg(dst));
            }
            Instr::VLoad { dst, base, .. } => {
                u.push(RegId::I(base.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
            Instr::VStore { src, base, .. } => {
                u.push(vloc_reg(src));
                u.push(RegId::I(base.index() as u8));
            }
            Instr::SetVl { src } => {
                op2_use(src, u);
                d.push(RegId::Vl);
            }
            Instr::MLoad {
                dst, base, stride, ..
            } => {
                u.push(RegId::I(base.index() as u8));
                op2_use(stride, u);
                u.push(RegId::Vl);
                u.push(RegId::M(dst.index() as u8)); // rows ≥ VL preserved
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MStore {
                src, base, stride, ..
            } => {
                u.push(RegId::M(src.index() as u8));
                u.push(RegId::I(base.index() as u8));
                op2_use(stride, u);
                u.push(RegId::Vl);
            }
            Instr::MOp { dst, a, b, .. } => {
                u.push(RegId::M(a.index() as u8));
                match b {
                    MOperand::M(m) | MOperand::RowBcast(m, _) => {
                        u.push(RegId::M(m.index() as u8));
                    }
                }
                u.push(RegId::Vl);
                u.push(RegId::M(dst.index() as u8));
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MShift { dst, src, .. } => {
                u.push(RegId::M(src.index() as u8));
                u.push(RegId::Vl);
                u.push(RegId::M(dst.index() as u8));
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MSplat { dst, src, .. } => {
                u.push(RegId::I(src.index() as u8));
                u.push(RegId::Vl);
                u.push(RegId::M(dst.index() as u8));
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MMov { dst, src } => {
                u.push(RegId::M(src.index() as u8));
                u.push(RegId::Vl);
                u.push(RegId::M(dst.index() as u8));
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MTranspose { dst, src, .. } => {
                u.push(RegId::M(src.index() as u8));
                u.push(RegId::Vl);
                d.push(RegId::M(dst.index() as u8));
            }
            Instr::MAcc { acc, a, b, .. } => {
                u.push(RegId::M(a.index() as u8));
                u.push(RegId::M(b.index() as u8));
                u.push(RegId::Vl);
                u.push(RegId::A(acc.index() as u8));
                d.push(RegId::A(acc.index() as u8));
            }
            Instr::VAcc { acc, a, b, .. } => {
                u.push(vloc_reg(a));
                u.push(vloc_reg(b));
                u.push(RegId::A(acc.index() as u8));
                d.push(RegId::A(acc.index() as u8));
            }
            Instr::AccSum { rd, acc } => {
                u.push(RegId::A(acc.index() as u8));
                d.push(RegId::I(rd.index() as u8));
            }
            Instr::AccClear { acc } => d.push(RegId::A(acc.index() as u8)),
            Instr::AccPack { dst, acc, .. } => {
                u.push(RegId::A(acc.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    u.push(vloc_reg(dst));
                }
                d.push(vloc_reg(dst));
            }
        }
        du
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Esz, IReg, MReg, VOp, VReg};

    #[test]
    fn defuse_alu() {
        let i = Instr::IntOp {
            op: AluOp::Add,
            rd: IReg::new(1),
            ra: IReg::new(2),
            b: Operand2::Reg(IReg::new(3)),
        };
        let du = i.def_use();
        assert_eq!(du.defs, vec![RegId::I(1)]);
        assert!(du.uses.contains(&RegId::I(2)) && du.uses.contains(&RegId::I(3)));
    }

    #[test]
    fn defuse_matrix_uses_vl() {
        let i = Instr::MOp {
            op: VOp::Add(Esz::H),
            dst: MReg::new(0),
            a: MReg::new(1),
            b: MOperand::M(MReg::new(2)),
        };
        let du = i.def_use();
        assert!(du.uses.contains(&RegId::Vl));
        assert!(du.uses.contains(&RegId::M(1)));
        assert!(du.uses.contains(&RegId::M(0)), "dst is RMW at VL<rows");
        assert_eq!(du.defs, vec![RegId::M(0)]);
    }

    #[test]
    fn defuse_row_write_is_rmw() {
        let i = Instr::Simd {
            op: VOp::Add(Esz::H),
            dst: VLoc::Row(MReg::new(3), 1),
            a: VLoc::Row(MReg::new(3), 0),
            b: VLoc::V(VReg::new(2)),
        };
        let du = i.def_use();
        assert_eq!(du.defs, vec![RegId::M(3)]);
        // dst row preserved lanes → matrix also read.
        assert!(du.uses.iter().filter(|r| **r == RegId::M(3)).count() >= 1);
        assert!(RegId::M(3).is_simd_file());
        assert!(!RegId::Vl.is_simd_file());
    }
}
