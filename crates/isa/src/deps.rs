//! Register def/use extraction, used by the out-of-order timing model for
//! dependency tracking and renaming.

use crate::{Instr, MOperand, Operand2, VLoc};
use serde::{Deserialize, Serialize};

/// An architectural register name, across all register files.
///
/// The vector-length register [`RegId::Vl`] is modelled as an ordinary
/// renamed register so that `setvl` serialises against in-flight matrix
/// operations exactly like a real implementation's VL checkpointing would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegId {
    /// Scalar integer register.
    I(u8),
    /// Scalar floating-point register.
    F(u8),
    /// 1-dimensional SIMD register.
    V(u8),
    /// Matrix register.
    M(u8),
    /// Packed accumulator.
    A(u8),
    /// The vector-length control register.
    Vl,
}

/// Rename-class index of the scalar integer physical file.
pub const RENAME_INT: usize = 0;
/// Rename-class index of the scalar floating-point physical file.
pub const RENAME_FP: usize = 1;
/// Rename-class index of the shared SIMD/matrix physical file.
pub const RENAME_SIMD: usize = 2;
/// Number of rename classes.
pub const NUM_RENAME_CLASSES: usize = 3;

impl RegId {
    /// `true` for registers renamed out of the SIMD/matrix physical file
    /// (the resource the paper's Table I sizes).
    #[must_use]
    pub const fn is_simd_file(self) -> bool {
        matches!(self, RegId::V(_) | RegId::M(_))
    }

    /// The physical register file this register is renamed out of
    /// ([`RENAME_INT`], [`RENAME_FP`] or [`RENAME_SIMD`]), or `None` for
    /// the small dedicated files (accumulators, VL) that never stall
    /// rename.
    #[must_use]
    pub const fn rename_class(self) -> Option<usize> {
        match self {
            RegId::I(_) => Some(RENAME_INT),
            RegId::F(_) => Some(RENAME_FP),
            RegId::V(_) | RegId::M(_) => Some(RENAME_SIMD),
            RegId::A(_) | RegId::Vl => None,
        }
    }
}

/// Base of the scalar integer file in the flat scoreboard index space.
const FLAT_I: u16 = 0;
/// Base of the scalar floating-point file.
const FLAT_F: u16 = FLAT_I + crate::NUM_IREGS as u16;
/// Base of the 1-D SIMD file.
const FLAT_V: u16 = FLAT_F + crate::NUM_FREGS as u16;
/// Base of the matrix file.
const FLAT_M: u16 = FLAT_V + crate::NUM_VREGS as u16;
/// Base of the packed-accumulator file.
const FLAT_A: u16 = FLAT_M + crate::NUM_MREGS as u16;
/// Flat index of the vector-length register.
const FLAT_VL: u16 = FLAT_A + crate::NUM_AREGS as u16;

/// Total number of flat scoreboard slots: every architectural register
/// across all files maps to a unique index in `0..NUM_FLAT_REGS` (see
/// [`RegId::flat`]), so the timing model can keep ready times in one flat
/// array instead of matching on [`RegId`] per access.
pub const NUM_FLAT_REGS: usize = FLAT_VL as usize + 1;

impl RegId {
    /// Dense index of this register in the flat scoreboard layout
    /// `[I | F | V | M | A | VL]`; always `< NUM_FLAT_REGS`.
    #[must_use]
    pub const fn flat(self) -> u16 {
        match self {
            RegId::I(n) => FLAT_I + n as u16,
            RegId::F(n) => FLAT_F + n as u16,
            RegId::V(n) => FLAT_V + n as u16,
            RegId::M(n) => FLAT_M + n as u16,
            RegId::A(n) => FLAT_A + n as u16,
            RegId::Vl => FLAT_VL,
        }
    }
}

/// Worst-case number of registers one instruction reads.  The widest
/// cases today use four (`mload` with a register stride: base, stride,
/// VL, read-modify-write destination; `mop`: two sources, VL, RMW
/// destination); one slot of headroom keeps a future operand from
/// silently overflowing into a panic.
pub const MAX_USES: usize = 5;

/// Worst-case number of registers one instruction writes (every
/// instruction in the ISA writes at most one).
pub const MAX_DEFS: usize = 1;

/// Def/use sets of one instruction, stored inline at the ISA's worst-case
/// capacity ([`MAX_USES`]/[`MAX_DEFS`]) so extraction never allocates —
/// this runs once per dynamic instruction on the timing model's commit
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefUse {
    uses: [RegId; MAX_USES],
    defs: [RegId; MAX_DEFS],
    n_uses: u8,
    n_defs: u8,
}

impl Default for DefUse {
    fn default() -> Self {
        Self {
            uses: [RegId::I(0); MAX_USES],
            defs: [RegId::I(0); MAX_DEFS],
            n_uses: 0,
            n_defs: 0,
        }
    }
}

impl DefUse {
    /// Registers read.
    #[must_use]
    pub fn uses(&self) -> &[RegId] {
        &self.uses[..self.n_uses as usize]
    }

    /// Registers written.
    #[must_use]
    pub fn defs(&self) -> &[RegId] {
        &self.defs[..self.n_defs as usize]
    }

    fn push_use(&mut self, r: RegId) {
        self.uses[self.n_uses as usize] = r;
        self.n_uses += 1;
    }

    fn push_def(&mut self, r: RegId) {
        self.defs[self.n_defs as usize] = r;
        self.n_defs += 1;
    }
}

fn vloc_reg(l: VLoc) -> RegId {
    match l {
        VLoc::V(v) => RegId::V(v.index() as u8),
        // A row is tracked at whole-matrix-register granularity; real MOM
        // implementations rename matrix registers as a unit too.
        VLoc::Row(m, _) => RegId::M(m.index() as u8),
    }
}

fn op2_use(b: Operand2, du: &mut DefUse) {
    if let Operand2::Reg(r) = b {
        du.push_use(RegId::I(r.index() as u8));
    }
}

impl Instr {
    /// Computes the registers this instruction reads and writes.
    ///
    /// Partial writes (element inserts, row writes, accumulator updates)
    /// are modelled as read-modify-write: the destination also appears in
    /// `uses`.
    #[must_use]
    pub fn def_use(&self) -> DefUse {
        let mut du = DefUse::default();
        match *self {
            Instr::IntOp { rd, ra, b, .. } => {
                du.push_use(RegId::I(ra.index() as u8));
                op2_use(b, &mut du);
                du.push_def(RegId::I(rd.index() as u8));
            }
            Instr::Li { rd, .. } => du.push_def(RegId::I(rd.index() as u8)),
            Instr::Load { rd, base, .. } => {
                du.push_use(RegId::I(base.index() as u8));
                du.push_def(RegId::I(rd.index() as u8));
            }
            Instr::Store { rs, base, .. } => {
                du.push_use(RegId::I(rs.index() as u8));
                du.push_use(RegId::I(base.index() as u8));
            }
            Instr::Branch { ra, b, .. } => {
                du.push_use(RegId::I(ra.index() as u8));
                op2_use(b, &mut du);
            }
            Instr::Jump { .. } | Instr::Halt | Instr::Nop => {}
            Instr::FpOp { fd, fa, fb, .. } => {
                du.push_use(RegId::F(fa.index() as u8));
                du.push_use(RegId::F(fb.index() as u8));
                du.push_def(RegId::F(fd.index() as u8));
            }
            Instr::FpLoad { fd, base, .. } => {
                du.push_use(RegId::I(base.index() as u8));
                du.push_def(RegId::F(fd.index() as u8));
            }
            Instr::FpStore { fs, base, .. } => {
                du.push_use(RegId::F(fs.index() as u8));
                du.push_use(RegId::I(base.index() as u8));
            }
            Instr::CvtIF { fd, ra } => {
                du.push_use(RegId::I(ra.index() as u8));
                du.push_def(RegId::F(fd.index() as u8));
            }
            Instr::CvtFI { rd, fa } => {
                du.push_use(RegId::F(fa.index() as u8));
                du.push_def(RegId::I(rd.index() as u8));
            }
            Instr::Simd { dst, a, b, .. } => {
                du.push_use(vloc_reg(a));
                du.push_use(vloc_reg(b));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
            Instr::SimdShift { dst, src, .. } => {
                du.push_use(vloc_reg(src));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
            Instr::VMov { dst, src } => {
                du.push_use(vloc_reg(src));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
            Instr::VSplat { dst, src, .. } => {
                du.push_use(RegId::I(src.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
            Instr::MovSV { rd, src, .. } => {
                du.push_use(vloc_reg(src));
                du.push_def(RegId::I(rd.index() as u8));
            }
            Instr::MovVS { dst, src, .. } => {
                du.push_use(RegId::I(src.index() as u8));
                du.push_use(vloc_reg(dst)); // lane insert preserves other lanes
                du.push_def(vloc_reg(dst));
            }
            Instr::VLoad { dst, base, .. } => {
                du.push_use(RegId::I(base.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
            Instr::VStore { src, base, .. } => {
                du.push_use(vloc_reg(src));
                du.push_use(RegId::I(base.index() as u8));
            }
            Instr::SetVl { src } => {
                op2_use(src, &mut du);
                du.push_def(RegId::Vl);
            }
            Instr::MLoad {
                dst, base, stride, ..
            } => {
                du.push_use(RegId::I(base.index() as u8));
                op2_use(stride, &mut du);
                du.push_use(RegId::Vl);
                du.push_use(RegId::M(dst.index() as u8)); // rows ≥ VL preserved
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MStore {
                src, base, stride, ..
            } => {
                du.push_use(RegId::M(src.index() as u8));
                du.push_use(RegId::I(base.index() as u8));
                op2_use(stride, &mut du);
                du.push_use(RegId::Vl);
            }
            Instr::MOp { dst, a, b, .. } => {
                du.push_use(RegId::M(a.index() as u8));
                match b {
                    MOperand::M(m) | MOperand::RowBcast(m, _) => {
                        du.push_use(RegId::M(m.index() as u8));
                    }
                }
                du.push_use(RegId::Vl);
                du.push_use(RegId::M(dst.index() as u8));
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MShift { dst, src, .. } => {
                du.push_use(RegId::M(src.index() as u8));
                du.push_use(RegId::Vl);
                du.push_use(RegId::M(dst.index() as u8));
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MSplat { dst, src, .. } => {
                du.push_use(RegId::I(src.index() as u8));
                du.push_use(RegId::Vl);
                du.push_use(RegId::M(dst.index() as u8));
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MMov { dst, src } => {
                du.push_use(RegId::M(src.index() as u8));
                du.push_use(RegId::Vl);
                du.push_use(RegId::M(dst.index() as u8));
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MTranspose { dst, src, .. } => {
                du.push_use(RegId::M(src.index() as u8));
                du.push_use(RegId::Vl);
                du.push_def(RegId::M(dst.index() as u8));
            }
            Instr::MAcc { acc, a, b, .. } => {
                du.push_use(RegId::M(a.index() as u8));
                du.push_use(RegId::M(b.index() as u8));
                du.push_use(RegId::Vl);
                du.push_use(RegId::A(acc.index() as u8));
                du.push_def(RegId::A(acc.index() as u8));
            }
            Instr::VAcc { acc, a, b, .. } => {
                du.push_use(vloc_reg(a));
                du.push_use(vloc_reg(b));
                du.push_use(RegId::A(acc.index() as u8));
                du.push_def(RegId::A(acc.index() as u8));
            }
            Instr::AccSum { rd, acc } => {
                du.push_use(RegId::A(acc.index() as u8));
                du.push_def(RegId::I(rd.index() as u8));
            }
            Instr::AccClear { acc } => du.push_def(RegId::A(acc.index() as u8)),
            Instr::AccPack { dst, acc, .. } => {
                du.push_use(RegId::A(acc.index() as u8));
                if matches!(dst, VLoc::Row(..)) {
                    du.push_use(vloc_reg(dst));
                }
                du.push_def(vloc_reg(dst));
            }
        }
        du
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Esz, IReg, MReg, VOp, VReg};

    #[test]
    fn defuse_alu() {
        let i = Instr::IntOp {
            op: AluOp::Add,
            rd: IReg::new(1),
            ra: IReg::new(2),
            b: Operand2::Reg(IReg::new(3)),
        };
        let du = i.def_use();
        assert_eq!(du.defs(), [RegId::I(1)]);
        assert!(du.uses().contains(&RegId::I(2)) && du.uses().contains(&RegId::I(3)));
    }

    #[test]
    fn defuse_matrix_uses_vl() {
        let i = Instr::MOp {
            op: VOp::Add(Esz::H),
            dst: MReg::new(0),
            a: MReg::new(1),
            b: MOperand::M(MReg::new(2)),
        };
        let du = i.def_use();
        assert!(du.uses().contains(&RegId::Vl));
        assert!(du.uses().contains(&RegId::M(1)));
        assert!(du.uses().contains(&RegId::M(0)), "dst is RMW at VL<rows");
        assert_eq!(du.defs(), [RegId::M(0)]);
    }

    #[test]
    fn defuse_row_write_is_rmw() {
        let i = Instr::Simd {
            op: VOp::Add(Esz::H),
            dst: VLoc::Row(MReg::new(3), 1),
            a: VLoc::Row(MReg::new(3), 0),
            b: VLoc::V(VReg::new(2)),
        };
        let du = i.def_use();
        assert_eq!(du.defs(), [RegId::M(3)]);
        // dst row preserved lanes → matrix also read.
        assert!(du.uses().iter().filter(|r| **r == RegId::M(3)).count() >= 1);
        assert!(RegId::M(3).is_simd_file());
        assert!(!RegId::Vl.is_simd_file());
    }
}
