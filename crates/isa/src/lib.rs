//! Instruction-set architecture definitions for the SIMD scalability study.
//!
//! This crate defines the register files, element types and the instruction
//! set used by every other crate in the workspace.  The ISA is a
//! register-level reconstruction of the machine modelled in
//! *"On the Scalability of 1- and 2-Dimensional SIMD Extensions for
//! Multimedia Applications"* (ISPASS 2005):
//!
//! * a 64-bit scalar RISC core (Alpha/MIPS-R10000 flavoured): integer ALU,
//!   branches, loads/stores and a small floating-point subset;
//! * a **1-dimensional SIMD extension** (`MMX64` / `MMX128`): 32 logical
//!   SIMD registers of 64 or 128 bits operated on by sub-word instructions
//!   ([`VOp`]);
//! * a **2-dimensional matrix extension** (`VMMX64` / `VMMX128`, the paper's
//!   MOM architecture): 16 matrix registers of up to 16 rows × 64/128 bits,
//!   strided vector loads/stores, row-addressable SIMD operations and
//!   packed accumulators ([`AccOp`]).
//!
//! The same sub-word operation vocabulary ([`VOp`]) is shared between the
//! 1D extension (operating on [`VLoc::V`] registers), the row-addressed form
//! of the matrix extension ([`VLoc::Row`]) and the full-vector-length matrix
//! form ([`Instr::MOp`]); this mirrors how MOM fuses a conventional vector
//! ISA with an MMX-like sub-word ISA.
//!
//! # Example
//!
//! Build (by hand — the `simdsim-asm` crate provides a structured builder)
//! a fragment that adds two packed 16-bit SIMD registers with saturation:
//!
//! ```
//! use simdsim_isa::{Instr, VOp, Esz, VLoc, VReg};
//!
//! let add = Instr::Simd {
//!     op: VOp::AddS(Esz::H),
//!     dst: VLoc::V(VReg::new(3)),
//!     a: VLoc::V(VReg::new(1)),
//!     b: VLoc::V(VReg::new(2)),
//! };
//! assert_eq!(add.class(), simdsim_isa::Class::VArith);
//! assert_eq!(format!("{add}"), "vadds.h v3, v1, v2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod deps;
mod display;
mod elem;
mod ext;
mod instr;
mod predecode;
mod program;
mod reg;

pub use class::{Class, FuKind};
pub use deps::{
    DefUse, RegId, MAX_DEFS, MAX_USES, NUM_FLAT_REGS, NUM_RENAME_CLASSES, RENAME_FP, RENAME_INT,
    RENAME_SIMD,
};
pub use elem::{Esz, MemSz};
pub use ext::Ext;
pub use instr::{AccOp, AluOp, Cond, FOp, Instr, MOperand, Operand2, Sat, VLoc, VOp, VShiftOp};
pub use predecode::{
    fu_index, Decoded, DecodedBlock, DecodedInstr, EDGE_INTERNAL, MAX_BLOCK_LEN, NO_BLOCK,
    NUM_FU_KINDS, RENAME_NONE,
};
pub use program::{ClassCounts, Program, Region};
pub use reg::{AReg, FReg, IReg, MReg, VReg};

/// ISA revision, part of `simdsim-sweep`'s content-addressed cache
/// key.  Bump whenever instruction semantics, encodings, class
/// assignments **or the predecoded static timing table**
/// (`predecode::static_timing` — the execution latencies the timing
/// model reads) change, so cached results from older builds are never
/// reused.
pub const REVISION: u32 = 1;

/// Maximum vector length (rows of a matrix register) supported by the
/// 2-dimensional extension.  The paper fixes this at sixteen and argues
/// that multimedia vector lengths do not warrant more.
pub const MAX_VL: usize = 16;

/// Number of logical 1-dimensional SIMD registers (MMX-like extensions).
pub const NUM_VREGS: usize = 32;

/// Number of logical matrix registers (MOM/VMMX extensions).
pub const NUM_MREGS: usize = 16;

/// Number of architectural packed accumulators.
pub const NUM_AREGS: usize = 4;

/// Number of scalar integer registers.
pub const NUM_IREGS: usize = 32;

/// Number of scalar floating-point registers.
pub const NUM_FREGS: usize = 32;
