//! Program container: resolved instructions plus per-instruction metadata.

use crate::{Class, Instr};
use serde::{Deserialize, Serialize};

/// Code region an instruction belongs to, used for the paper's Figure 6
/// (scalar-cycles vs vector-cycles breakdown of full applications).
///
/// "Vector" regions are the vectorised kernel bodies; everything else
/// (protocol handling, entropy coding, file manipulation) is "scalar".
/// Scalar-ISA overhead instructions *inside* a vectorised kernel (pointer
/// updates, loop control) count as part of the vector region, exactly as a
/// profiler attributing time to the kernel function would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Region {
    /// Non-vectorised application code.
    #[default]
    Scalar,
    /// Vectorised kernel code.
    Vector,
}

/// A resolved program: instruction sequence plus per-instruction region tags.
///
/// Programs are produced by the `simdsim-asm` builder; branch targets inside
/// [`Instr`] are indices into [`Program::code`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    code: Vec<Instr>,
    region: Vec<Region>,
}

impl Program {
    /// Creates a program from parallel instruction and region vectors.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[must_use]
    pub fn new(code: Vec<Instr>, region: Vec<Region>) -> Self {
        assert_eq!(code.len(), region.len(), "code/region length mismatch");
        Self { code, region }
    }

    /// The instruction sequence.
    #[must_use]
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Region tag of each instruction (same indexing as [`Program::code`]).
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.region
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Static instruction count per Figure-7 class.
    #[must_use]
    pub fn static_class_counts(&self) -> ClassCounts {
        let mut c = ClassCounts::default();
        for i in &self.code {
            c.add(i.class(), 1);
        }
        c
    }

    /// Validates structural well-formedness: branch targets in range and,
    /// when `matrix_ext` is false, absence of matrix instructions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, matrix_ext: bool) -> Result<(), String> {
        for (idx, ins) in self.code.iter().enumerate() {
            validate_instr(idx, ins, self.code.len(), matrix_ext)?;
        }
        Ok(())
    }

    /// Renders the program as an assembly listing.
    #[must_use]
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, ins) in self.code.iter().enumerate() {
            let tag = match self.region[i] {
                Region::Scalar => ' ',
                Region::Vector => 'V',
            };
            let _ = writeln!(s, "{i:6} {tag} {ins}");
        }
        s
    }
}

/// Validates one instruction of a `len`-instruction program: branch
/// target in range and, when `matrix_ext` is false, no matrix
/// instructions.  Shared by [`Program::validate`] and
/// `Decoded::validate` so the two checks cannot drift.
pub(crate) fn validate_instr(
    idx: usize,
    ins: &Instr,
    len: usize,
    matrix_ext: bool,
) -> Result<(), String> {
    match ins {
        Instr::Branch { target, .. } | Instr::Jump { target } if *target as usize >= len => {
            return Err(format!(
                "instruction {idx}: branch target {target} out of range"
            ));
        }
        _ => {}
    }
    if !matrix_ext && ins.requires_matrix_ext() {
        return Err(format!(
            "instruction {idx}: {ins} requires the matrix extension"
        ));
    }
    Ok(())
}

/// Dynamic or static instruction counts per Figure-7 class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Scalar memory instructions.
    pub smem: u64,
    /// Scalar arithmetic instructions.
    pub sarith: u64,
    /// Control instructions.
    pub sctrl: u64,
    /// Vector memory instructions.
    pub vmem: u64,
    /// Vector arithmetic instructions.
    pub varith: u64,
}

impl ClassCounts {
    /// Adds `n` to the counter for `class`.
    pub fn add(&mut self, class: Class, n: u64) {
        match class {
            Class::SMem => self.smem += n,
            Class::SArith => self.sarith += n,
            Class::SCtrl => self.sctrl += n,
            Class::VMem => self.vmem += n,
            Class::VArith => self.varith += n,
        }
    }

    /// Counter value for `class`.
    #[must_use]
    pub fn get(&self, class: Class) -> u64 {
        match class {
            Class::SMem => self.smem,
            Class::SArith => self.sarith,
            Class::SCtrl => self.sctrl,
            Class::VMem => self.vmem,
            Class::VArith => self.varith,
        }
    }

    /// Total across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.smem + self.sarith + self.sctrl + self.vmem + self.varith
    }

    /// Total of the two vector classes.
    #[must_use]
    pub fn vector_total(&self) -> u64 {
        self.vmem + self.varith
    }
}

impl std::ops::Add for ClassCounts {
    type Output = ClassCounts;
    fn add(self, rhs: ClassCounts) -> ClassCounts {
        ClassCounts {
            smem: self.smem + rhs.smem,
            sarith: self.sarith + rhs.sarith,
            sctrl: self.sctrl + rhs.sctrl,
            vmem: self.vmem + rhs.vmem,
            varith: self.varith + rhs.varith,
        }
    }
}

impl std::ops::AddAssign for ClassCounts {
    fn add_assign(&mut self, rhs: ClassCounts) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, IReg, Operand2};

    fn add_i(rd: u8) -> Instr {
        Instr::IntOp {
            op: AluOp::Add,
            rd: IReg::new(rd),
            ra: IReg::new(0),
            b: Operand2::Imm(1),
        }
    }

    #[test]
    fn validate_branch_range() {
        let p = Program::new(
            vec![
                add_i(1),
                Instr::Branch {
                    cond: Cond::Ne,
                    ra: IReg::new(1),
                    b: Operand2::Imm(0),
                    target: 9,
                },
            ],
            vec![Region::Scalar; 2],
        );
        assert!(p.validate(false).is_err());
    }

    #[test]
    fn class_counts_sum() {
        let p = Program::new(
            vec![add_i(1), add_i(2), Instr::Halt],
            vec![Region::Scalar; 3],
        );
        let c = p.static_class_counts();
        assert_eq!(c.sarith, 2);
        assert_eq!(c.sctrl, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.vector_total(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_regions_panic() {
        let _ = Program::new(vec![Instr::Halt], vec![]);
    }
}
