//! Sub-word element and scalar memory access sizes.

use serde::{Deserialize, Serialize};

/// Sub-word element size of a SIMD / matrix operation.
///
/// Multimedia data is dominated by 8-bit pixels and 16-bit coefficients;
/// 32-bit elements appear as intermediate precision (e.g. `pmaddwd`-style
/// products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Esz {
    /// 8-bit elements (pixels).
    B,
    /// 16-bit elements (DCT coefficients, audio samples).
    H,
    /// 32-bit elements (products, sums).
    W,
    /// 64-bit elements (whole MMX words inside a 128-bit register —
    /// `punpcklqdq`-style data movement).
    D,
}

impl Esz {
    /// Element size in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            Esz::B => 1,
            Esz::H => 2,
            Esz::W => 4,
            Esz::D => 8,
        }
    }

    /// Element size in bits.
    #[must_use]
    pub const fn bits(self) -> usize {
        self.bytes() * 8
    }

    /// Bit mask covering one lane of this element size — a constant
    /// lookup, so the sub-word hot path never recomputes `(1 << bits) - 1`
    /// or branches on the element width.
    #[must_use]
    pub const fn lane_mask(self) -> u128 {
        match self {
            Esz::B => 0xff,
            Esz::H => 0xffff,
            Esz::W => 0xffff_ffff,
            Esz::D => 0xffff_ffff_ffff_ffff,
        }
    }

    /// Number of elements of this size in a word of `width_bits`.
    #[must_use]
    pub const fn lanes(self, width_bits: usize) -> usize {
        width_bits / self.bits()
    }

    /// Assembly suffix (`.b`, `.h`, `.w`, `.d`).
    #[must_use]
    pub const fn suffix(self) -> &'static str {
        match self {
            Esz::B => "b",
            Esz::H => "h",
            Esz::W => "w",
            Esz::D => "d",
        }
    }

    /// The next wider element size, if any (`B → H → W → D`).
    #[must_use]
    pub const fn widened(self) -> Option<Esz> {
        match self {
            Esz::B => Some(Esz::H),
            Esz::H => Some(Esz::W),
            Esz::W => Some(Esz::D),
            Esz::D => None,
        }
    }
}

/// Scalar memory access size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemSz {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemSz {
    /// Access size in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            MemSz::B => 1,
            MemSz::H => 2,
            MemSz::W => 4,
            MemSz::D => 8,
        }
    }

    /// Assembly suffix (`b`, `h`, `w`, `d`).
    #[must_use]
    pub const fn suffix(self) -> &'static str {
        match self {
            MemSz::B => "b",
            MemSz::H => "h",
            MemSz::W => "w",
            MemSz::D => "d",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Esz::B.bytes(), 1);
        assert_eq!(Esz::H.bits(), 16);
        assert_eq!(Esz::W.lanes(128), 4);
        assert_eq!(Esz::B.lanes(64), 8);
        assert_eq!(MemSz::D.bytes(), 8);
    }

    #[test]
    fn widening_chain() {
        assert_eq!(Esz::B.widened(), Some(Esz::H));
        assert_eq!(Esz::H.widened(), Some(Esz::W));
        assert_eq!(Esz::W.widened(), Some(Esz::D));
        assert_eq!(Esz::D.widened(), None);
    }
}
