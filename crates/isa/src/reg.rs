//! Register newtypes.
//!
//! Each register file gets its own index newtype so that a matrix register
//! can never be passed where a scalar register is expected
//! (C-NEWTYPE static distinctions).

use serde::{Deserialize, Serialize};

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $count:expr, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u8);

        impl $name {
            /// Number of architectural registers in this file.
            pub const COUNT: usize = $count;

            /// Creates a register index.
            ///
            /// # Panics
            ///
            /// Panics if `index >= Self::COUNT`.
            #[must_use]
            pub const fn new(index: u8) -> Self {
                assert!((index as usize) < $count, "register index out of range");
                Self(index)
            }

            /// Creates a register index, returning `None` when out of range.
            #[must_use]
            pub const fn try_new(index: u8) -> Option<Self> {
                if (index as usize) < $count {
                    Some(Self(index))
                } else {
                    None
                }
            }

            /// The raw register number.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

reg_newtype!(
    /// A scalar integer register (`r0`..`r31`).
    IReg,
    crate::NUM_IREGS,
    "r"
);
reg_newtype!(
    /// A scalar floating-point register (`f0`..`f31`).
    FReg,
    crate::NUM_FREGS,
    "f"
);
reg_newtype!(
    /// A 1-dimensional SIMD register (`v0`..`v31`), 64 or 128 bits wide
    /// depending on the modelled extension.
    VReg,
    crate::NUM_VREGS,
    "v"
);
reg_newtype!(
    /// A matrix (2-dimensional vector) register (`m0`..`m15`) of up to
    /// [`MAX_VL`](crate::MAX_VL) rows.
    MReg,
    crate::NUM_MREGS,
    "m"
);
reg_newtype!(
    /// A packed accumulator register (`acc0`..`acc3`).
    AReg,
    crate::NUM_AREGS,
    "acc"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        let r = IReg::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "r7");
        assert_eq!(MReg::new(15).to_string(), "m15");
        assert_eq!(AReg::new(0).to_string(), "acc0");
    }

    #[test]
    fn try_new_bounds() {
        assert!(MReg::try_new(15).is_some());
        assert!(MReg::try_new(16).is_none());
        assert!(VReg::try_new(31).is_some());
        assert!(VReg::try_new(32).is_none());
        assert!(AReg::try_new(4).is_none());
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = IReg::new(32);
    }
}
