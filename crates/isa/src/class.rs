//! Instruction classification.
//!
//! Two orthogonal classifications are provided:
//!
//! * [`Class`] — the five categories of the paper's Figure 7 (dynamic
//!   instruction count breakdown): scalar memory, scalar arithmetic,
//!   control, vector memory and vector arithmetic;
//! * [`FuKind`] — which functional-unit pool executes the instruction in
//!   the timing model.

use crate::{Instr, VLoc};
use serde::{Deserialize, Serialize};

/// Figure-7 instruction category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Scalar memory (`smem`).
    SMem,
    /// Scalar arithmetic, moves, immediates (`sarith`).
    SArith,
    /// Control transfer (`sctrl`).
    SCtrl,
    /// SIMD / vector memory (`vmem`).
    VMem,
    /// SIMD / vector arithmetic (`varith`).
    VArith,
}

impl Class {
    /// All categories in the order the paper's Figure 7 stacks them.
    pub const ALL: [Class; 5] = [
        Class::VArith,
        Class::VMem,
        Class::SCtrl,
        Class::SArith,
        Class::SMem,
    ];

    /// Short label used in reports (`smem`, `sarith`, ...).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Class::SMem => "smem",
            Class::SArith => "sarith",
            Class::SCtrl => "sctrl",
            Class::VMem => "vmem",
            Class::VArith => "varith",
        }
    }

    /// `true` for the two vector categories.
    #[must_use]
    pub const fn is_vector(self) -> bool {
        matches!(self, Class::VMem | Class::VArith)
    }
}

/// Functional-unit pool an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Scalar integer ALU.
    IntAlu,
    /// Scalar integer multiplier/divider (shares the integer pool with a
    /// longer latency).
    IntMul,
    /// Floating-point unit.
    Fp,
    /// Scalar-side memory port (L1 data cache).
    Mem,
    /// SIMD / vector arithmetic pipeline.
    Simd,
    /// Vector memory (matrix loads/stores through the L2 vector cache;
    /// 1D SIMD loads/stores map to [`FuKind::Mem`] instead).
    VecMem,
    /// Front-end only (no execution resource: `nop`, `halt`).
    None,
}

impl Instr {
    /// The paper's Figure-7 category of this instruction.
    #[must_use]
    pub fn class(&self) -> Class {
        match self {
            Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::FpLoad { .. }
            | Instr::FpStore { .. } => Class::SMem,
            Instr::IntOp { .. }
            | Instr::Li { .. }
            | Instr::FpOp { .. }
            | Instr::CvtIF { .. }
            | Instr::CvtFI { .. } => Class::SArith,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt => Class::SCtrl,
            Instr::VLoad { .. }
            | Instr::VStore { .. }
            | Instr::MLoad { .. }
            | Instr::MStore { .. } => Class::VMem,
            Instr::Simd { .. }
            | Instr::SimdShift { .. }
            | Instr::VMov { .. }
            | Instr::VSplat { .. }
            | Instr::MovSV { .. }
            | Instr::MovVS { .. }
            | Instr::SetVl { .. }
            | Instr::MOp { .. }
            | Instr::MShift { .. }
            | Instr::MSplat { .. }
            | Instr::MMov { .. }
            | Instr::MTranspose { .. }
            | Instr::MAcc { .. }
            | Instr::VAcc { .. }
            | Instr::AccSum { .. }
            | Instr::AccClear { .. }
            | Instr::AccPack { .. } => Class::VArith,
            Instr::Nop => Class::SArith,
        }
    }

    /// The functional-unit pool this instruction executes on.
    #[must_use]
    pub fn fu_kind(&self) -> FuKind {
        match self {
            Instr::IntOp { op, .. } => {
                use crate::AluOp::*;
                match op {
                    Mul | Div | Rem => FuKind::IntMul,
                    _ => FuKind::IntAlu,
                }
            }
            Instr::Li { .. } => FuKind::IntAlu,
            Instr::Branch { .. } | Instr::Jump { .. } => FuKind::IntAlu,
            Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::FpLoad { .. }
            | Instr::FpStore { .. } => FuKind::Mem,
            Instr::FpOp { .. } | Instr::CvtIF { .. } | Instr::CvtFI { .. } => FuKind::Fp,
            Instr::VLoad { .. } | Instr::VStore { .. } => FuKind::Mem,
            Instr::MLoad { .. } | Instr::MStore { .. } => FuKind::VecMem,
            Instr::Simd { .. }
            | Instr::SimdShift { .. }
            | Instr::VMov { .. }
            | Instr::VSplat { .. }
            | Instr::MovSV { .. }
            | Instr::MovVS { .. }
            | Instr::SetVl { .. }
            | Instr::MOp { .. }
            | Instr::MShift { .. }
            | Instr::MSplat { .. }
            | Instr::MMov { .. }
            | Instr::MTranspose { .. }
            | Instr::MAcc { .. }
            | Instr::VAcc { .. }
            | Instr::AccSum { .. }
            | Instr::AccClear { .. }
            | Instr::AccPack { .. } => FuKind::Simd,
            Instr::Halt | Instr::Nop => FuKind::None,
        }
    }

    /// `true` when this is a full-vector-length matrix operation whose
    /// execution occupancy depends on the current vector length.
    #[must_use]
    pub fn is_full_vl(&self) -> bool {
        matches!(
            self,
            Instr::MLoad { .. }
                | Instr::MStore { .. }
                | Instr::MOp { .. }
                | Instr::MShift { .. }
                | Instr::MSplat { .. }
                | Instr::MMov { .. }
                | Instr::MTranspose { .. }
                | Instr::MAcc { .. }
        )
    }

    /// `true` when executing this instruction requires matrix-register or
    /// accumulator state, i.e. it is only legal on VMMX machines.
    #[must_use]
    pub fn requires_matrix_ext(&self) -> bool {
        if self.is_full_vl() {
            return true;
        }
        let touches_row = |l: &VLoc| matches!(l, VLoc::Row(..));
        match self {
            Instr::SetVl { .. }
            | Instr::VAcc { .. }
            | Instr::AccSum { .. }
            | Instr::AccClear { .. }
            | Instr::AccPack { .. } => true,
            Instr::Simd { dst, a, b, .. } => touches_row(dst) || touches_row(a) || touches_row(b),
            Instr::SimdShift { dst, src, .. } | Instr::VMov { dst, src } => {
                touches_row(dst) || touches_row(src)
            }
            Instr::VSplat { dst, .. } | Instr::MovVS { dst, .. } | Instr::VLoad { dst, .. } => {
                touches_row(dst)
            }
            Instr::MovSV { src, .. } | Instr::VStore { src, .. } => touches_row(src),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Esz, IReg, MReg, MemSz, Operand2, VOp, VReg};

    fn ir(i: u8) -> IReg {
        IReg::new(i)
    }

    #[test]
    fn classes() {
        let ld = Instr::Load {
            sz: MemSz::W,
            sext: true,
            rd: ir(1),
            base: ir(2),
            off: 4,
        };
        assert_eq!(ld.class(), Class::SMem);
        assert_eq!(ld.fu_kind(), FuKind::Mem);

        let add = Instr::IntOp {
            op: AluOp::Add,
            rd: ir(1),
            ra: ir(2),
            b: Operand2::Imm(1),
        };
        assert_eq!(add.class(), Class::SArith);
        assert_eq!(add.fu_kind(), FuKind::IntAlu);

        let mul = Instr::IntOp {
            op: AluOp::Mul,
            rd: ir(1),
            ra: ir(2),
            b: Operand2::Reg(ir(3)),
        };
        assert_eq!(mul.fu_kind(), FuKind::IntMul);

        let mld = Instr::MLoad {
            dst: MReg::new(0),
            base: ir(1),
            stride: Operand2::Imm(16),
            row_bytes: 16,
        };
        assert_eq!(mld.class(), Class::VMem);
        assert_eq!(mld.fu_kind(), FuKind::VecMem);
        assert!(mld.is_full_vl());
        assert!(mld.requires_matrix_ext());
    }

    #[test]
    fn row_ops_require_matrix() {
        let row_add = Instr::Simd {
            op: VOp::Add(Esz::H),
            dst: VLoc::Row(MReg::new(1), 0),
            a: VLoc::Row(MReg::new(1), 1),
            b: VLoc::Row(MReg::new(1), 2),
        };
        assert!(row_add.requires_matrix_ext());
        assert!(!row_add.is_full_vl());

        let v_add = Instr::Simd {
            op: VOp::Add(Esz::H),
            dst: VLoc::V(VReg::new(0)),
            a: VLoc::V(VReg::new(1)),
            b: VLoc::V(VReg::new(2)),
        };
        assert!(!v_add.requires_matrix_ext());
    }
}
