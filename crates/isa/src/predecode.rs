//! Predecoded per-program instruction metadata.
//!
//! The emulate→time loop replays millions of dynamic instructions, and
//! every per-instruction fact that depends only on the *static* instruction
//! — def/use sets, Figure-7 class, functional-unit kind, full-VL flag,
//! rename class of the destination, static execution latencies — used to be
//! recomputed on every commit.  [`Decoded`] computes them once per program
//! so the hot loop does a single indexed fetch per dynamic instruction and
//! never allocates.
//!
//! The latency/occupancy fields encode the timing model's static execution
//! latencies (they are consumed by `simdsim-pipe`); keeping them next to
//! the other static facts is what lets the commit path avoid re-matching
//! on the instruction entirely.

use crate::{AluOp, Class, DefUse, FOp, FuKind, Instr, Program, Region};

/// Sentinel for "the destination is not renamed" in
/// [`DecodedInstr::def_rename`] (accumulators, VL, or no destination).
pub const RENAME_NONE: u8 = u8::MAX;

/// Everything the emulator and timing model need to know about one static
/// instruction, precomputed by [`Decoded::new`].
#[derive(Debug, Clone, Copy)]
pub struct DecodedInstr {
    /// The instruction itself.
    pub instr: Instr,
    /// Region tag (scalar application code vs vectorised kernel).
    pub region: Region,
    /// Registers read and written, at fixed capacity.
    pub du: DefUse,
    /// Figure-7 instruction category.
    pub class: Class,
    /// Functional-unit pool the instruction issues to.
    pub fu: FuKind,
    /// `true` for full-vector-length matrix operations whose occupancy
    /// scales with VL.
    pub is_full_vl: bool,
    /// Rename class of the destination register ([`RENAME_NONE`] when the
    /// instruction writes no renamed register).
    pub def_rename: u8,
    /// Static execution latency on the instruction's pipeline.  For
    /// [`FuKind::Simd`] this is the *base* latency; the VL-dependent
    /// occupancy is added by the timing model at run time.
    pub lat: u8,
    /// Static functional-unit occupancy (1 for pipelined operations;
    /// `lat` for unpipelined divides).  Unused for [`FuKind::Simd`],
    /// whose occupancy depends on the dynamic VL.
    pub occ: u8,
}

/// Static execution latency and occupancy of a scalar instruction, and
/// the base latency of a SIMD instruction (occupancy 1 placeholder).
fn static_timing(instr: &Instr) -> (u8, u8) {
    match instr.fu_kind() {
        FuKind::IntAlu => (1, 1),
        FuKind::IntMul => match instr {
            Instr::IntOp { op: AluOp::Mul, .. } => (6, 1),
            _ => (20, 20), // div/rem, unpipelined
        },
        FuKind::Fp => match instr {
            Instr::FpOp { op: FOp::Div, .. } => (16, 16),
            _ => (4, 1),
        },
        FuKind::Simd => {
            let base = match instr {
                Instr::Simd { op, .. } | Instr::MOp { op, .. } if op.is_multiply() => 3,
                Instr::Simd { .. } | Instr::MOp { .. } => 1,
                Instr::MAcc { .. } | Instr::VAcc { .. } => 3,
                Instr::AccSum { .. } => 4,
                Instr::MTranspose { .. } => 2,
                Instr::MovSV { .. } | Instr::MovVS { .. } | Instr::VSplat { .. } => 2,
                _ => 1,
            };
            (base, 1)
        }
        // Memory latency comes from the cache model; front-end-only
        // instructions never execute.
        FuKind::Mem | FuKind::VecMem | FuKind::None => (0, 1),
    }
}

impl DecodedInstr {
    /// Decodes one instruction (with its region tag).
    #[must_use]
    pub fn new(instr: Instr, region: Region) -> Self {
        let du = instr.def_use();
        let def_rename = du
            .defs()
            .first()
            .and_then(|d| d.rename_class())
            .map_or(RENAME_NONE, |c| c as u8);
        let (lat, occ) = static_timing(&instr);
        Self {
            instr,
            region,
            du,
            class: instr.class(),
            fu: instr.fu_kind(),
            is_full_vl: instr.is_full_vl(),
            def_rename,
            lat,
            occ,
        }
    }
}

/// The predecoded table of one [`Program`]: one [`DecodedInstr`] per
/// static instruction, same indexing as [`Program::code`].
#[derive(Debug, Clone)]
pub struct Decoded {
    instrs: Vec<DecodedInstr>,
}

impl Decoded {
    /// Predecodes every instruction of `prog`.
    #[must_use]
    pub fn new(prog: &Program) -> Self {
        let instrs = prog
            .code()
            .iter()
            .zip(prog.regions())
            .map(|(i, r)| DecodedInstr::new(*i, *r))
            .collect();
        Self { instrs }
    }

    /// The decoded instructions, indexed like [`Program::code`].
    #[must_use]
    pub fn instrs(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Validates structural well-formedness exactly like
    /// [`Program::validate`] (both call the same shared per-instruction
    /// check): branch targets in range and, when `matrix_ext` is false,
    /// absence of matrix instructions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, matrix_ext: bool) -> Result<(), String> {
        for (idx, d) in self.instrs.iter().enumerate() {
            crate::program::validate_instr(idx, &d.instr, self.instrs.len(), matrix_ext)?;
        }
        Ok(())
    }
}

impl std::ops::Index<usize> for Decoded {
    type Output = DecodedInstr;
    fn index(&self, idx: usize) -> &DecodedInstr {
        &self.instrs[idx]
    }
}

impl Program {
    /// Builds the predecoded table for this program.
    #[must_use]
    pub fn decode(&self) -> Decoded {
        Decoded::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Esz, IReg, MOperand, MReg, Operand2, RegId, VOp};

    #[test]
    fn decoded_matches_per_instr_queries() {
        let code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 7,
            },
            Instr::IntOp {
                op: AluOp::Div,
                rd: IReg::new(2),
                ra: IReg::new(1),
                b: Operand2::Imm(2),
            },
            Instr::MOp {
                op: VOp::Mullo(Esz::H),
                dst: MReg::new(0),
                a: MReg::new(1),
                b: MOperand::M(MReg::new(2)),
            },
            Instr::Halt,
        ];
        let prog = Program::new(code.clone(), vec![Region::Scalar; 4]);
        let dec = prog.decode();
        assert_eq!(dec.len(), 4);
        assert!(!dec.is_empty());
        for (d, i) in dec.instrs().iter().zip(&code) {
            assert_eq!(d.class, i.class());
            assert_eq!(d.fu, i.fu_kind());
            assert_eq!(d.is_full_vl, i.is_full_vl());
            assert_eq!(d.du, i.def_use());
        }
        // Static timing: ALU div is unpipelined 20/20; SIMD multiply has
        // base latency 3; destination rename classes follow the register
        // file.
        assert_eq!((dec[1].lat, dec[1].occ), (20, 20));
        assert_eq!(dec[2].lat, 3);
        assert_eq!(dec[0].def_rename, RegId::I(1).rename_class().unwrap() as u8);
        assert_eq!(dec[3].def_rename, RENAME_NONE);
    }

    #[test]
    fn decoded_validate_mirrors_program_validate() {
        let prog = Program::new(
            vec![
                Instr::Branch {
                    cond: Cond::Ne,
                    ra: IReg::new(1),
                    b: Operand2::Imm(0),
                    target: 9,
                },
                Instr::Halt,
            ],
            vec![Region::Scalar; 2],
        );
        let dec = prog.decode();
        assert_eq!(
            dec.validate(false),
            prog.validate(false),
            "branch range check must match"
        );

        let m = Program::new(
            vec![Instr::SetVl {
                src: Operand2::Imm(4),
            }],
            vec![Region::Vector],
        );
        let dec = m.decode();
        assert!(dec.validate(false).is_err());
        assert!(dec.validate(true).is_ok());
    }
}
