//! Predecoded per-program instruction metadata.
//!
//! The emulate→time loop replays millions of dynamic instructions, and
//! every per-instruction fact that depends only on the *static* instruction
//! — def/use sets, Figure-7 class, functional-unit kind, full-VL flag,
//! rename class of the destination, static execution latencies — used to be
//! recomputed on every commit.  [`Decoded`] computes them once per program
//! so the hot loop does a single indexed fetch per dynamic instruction and
//! never allocates.
//!
//! The latency/occupancy fields encode the timing model's static execution
//! latencies (they are consumed by `simdsim-pipe`); keeping them next to
//! the other static facts is what lets the commit path avoid re-matching
//! on the instruction entirely.

use crate::{
    AluOp, Class, DefUse, FOp, FuKind, Instr, Program, Region, MAX_DEFS, MAX_USES, NUM_FLAT_REGS,
};

/// Sentinel for "the destination is not renamed" in
/// [`DecodedInstr::def_rename`] (accumulators, VL, or no destination).
pub const RENAME_NONE: u8 = u8::MAX;

/// Maximum number of instructions in one superblock.  Longer straight-line
/// regions are split; 64 keeps the timing model's per-block completion
/// times in a fixed-size stack array.
pub const MAX_BLOCK_LEN: usize = 64;

/// Bit set in a [`DecodedBlock`] dependence edge when the producer is an
/// earlier instruction *of the same block* (the low bits are then its
/// block-relative index).  When clear, the low bits are the flat register
/// index ([`crate::RegId::flat`]) of an external (live-in) value.
pub const EDGE_INTERNAL: u16 = 1 << 15;

/// Sentinel in [`Decoded::block_idx_at`] for "this pc does not start a
/// block".
pub const NO_BLOCK: u32 = u32::MAX;

/// Everything the emulator and timing model need to know about one static
/// instruction, precomputed by [`Decoded::new`].
#[derive(Debug, Clone, Copy)]
pub struct DecodedInstr {
    /// The instruction itself.
    pub instr: Instr,
    /// Region tag (scalar application code vs vectorised kernel).
    pub region: Region,
    /// Registers read and written, at fixed capacity.
    pub du: DefUse,
    /// Figure-7 instruction category.
    pub class: Class,
    /// Functional-unit pool the instruction issues to.
    pub fu: FuKind,
    /// `true` for full-vector-length matrix operations whose occupancy
    /// scales with VL.
    pub is_full_vl: bool,
    /// Rename class of the destination register ([`RENAME_NONE`] when the
    /// instruction writes no renamed register).
    pub def_rename: u8,
    /// Static execution latency on the instruction's pipeline.  For
    /// [`FuKind::Simd`] this is the *base* latency; the VL-dependent
    /// occupancy is added by the timing model at run time.
    pub lat: u8,
    /// Static functional-unit occupancy (1 for pipelined operations;
    /// `lat` for unpipelined divides).  Unused for [`FuKind::Simd`],
    /// whose occupancy depends on the dynamic VL.
    pub occ: u8,
    /// Flat scoreboard indices of `du.uses()` (same order, same count).
    pub flat_uses: [u16; MAX_USES],
    /// Flat scoreboard indices of `du.defs()` (same order, same count).
    pub flat_defs: [u16; MAX_DEFS],
}

/// Static execution latency and occupancy of a scalar instruction, and
/// the base latency of a SIMD instruction (occupancy 1 placeholder).
fn static_timing(instr: &Instr) -> (u8, u8) {
    match instr.fu_kind() {
        FuKind::IntAlu => (1, 1),
        FuKind::IntMul => match instr {
            Instr::IntOp { op: AluOp::Mul, .. } => (6, 1),
            _ => (20, 20), // div/rem, unpipelined
        },
        FuKind::Fp => match instr {
            Instr::FpOp { op: FOp::Div, .. } => (16, 16),
            _ => (4, 1),
        },
        FuKind::Simd => {
            let base = match instr {
                Instr::Simd { op, .. } | Instr::MOp { op, .. } if op.is_multiply() => 3,
                Instr::Simd { .. } | Instr::MOp { .. } => 1,
                Instr::MAcc { .. } | Instr::VAcc { .. } => 3,
                Instr::AccSum { .. } => 4,
                Instr::MTranspose { .. } => 2,
                Instr::MovSV { .. } | Instr::MovVS { .. } | Instr::VSplat { .. } => 2,
                _ => 1,
            };
            (base, 1)
        }
        // Memory latency comes from the cache model; front-end-only
        // instructions never execute.
        FuKind::Mem | FuKind::VecMem | FuKind::None => (0, 1),
    }
}

impl DecodedInstr {
    /// Decodes one instruction (with its region tag).
    #[must_use]
    pub fn new(instr: Instr, region: Region) -> Self {
        let du = instr.def_use();
        let def_rename = du
            .defs()
            .first()
            .and_then(|d| d.rename_class())
            .map_or(RENAME_NONE, |c| c as u8);
        let (lat, occ) = static_timing(&instr);
        let mut flat_uses = [0u16; MAX_USES];
        for (slot, r) in flat_uses.iter_mut().zip(du.uses()) {
            *slot = r.flat();
        }
        let mut flat_defs = [0u16; MAX_DEFS];
        for (slot, r) in flat_defs.iter_mut().zip(du.defs()) {
            *slot = r.flat();
        }
        Self {
            instr,
            region,
            du,
            class: instr.class(),
            fu: instr.fu_kind(),
            is_full_vl: instr.is_full_vl(),
            def_rename,
            lat,
            occ,
            flat_uses,
            flat_defs,
        }
    }
}

/// One superblock: a single-entry, straight-line run of instructions that
/// control flow can only enter at `start` and only leave at the end (the
/// last instruction is the only one that may branch, jump or halt).
///
/// Blocks partition the program: every static instruction belongs to
/// exactly one block, and every possible control-flow successor of a
/// block (branch target, fall-through, region boundary, length split) is
/// itself a block leader.  The emulator therefore always sits on a block
/// leader between blocks, which is what makes block-granular replay and
/// the timing model's fused fast path exact.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// Index of the first instruction (the block leader).
    pub start: u32,
    /// Number of instructions; `1..=MAX_BLOCK_LEN`.
    pub len: u32,
    /// Region tag shared by every instruction in the block (region
    /// boundaries are block boundaries).
    pub region: Region,
    /// Flattened dependence edges: instruction `i` of the block reads the
    /// producers in `edges[edge_off[i]..edge_off[i+1]]`.  Each edge is
    /// either `EDGE_INTERNAL | rel` (value produced by instruction `rel`
    /// of this block) or a flat register index of a live-in value.
    pub edges: Vec<u16>,
    /// `len + 1` offsets into `edges`.
    pub edge_off: Vec<u16>,
    /// Deferred scoreboard writes: for each flat register defined in the
    /// block, the block-relative index of its *last* writer.  Applying
    /// these after the block leaves the scoreboard exactly as the
    /// per-instruction path would.
    pub live_out: Vec<(u16, u16)>,
    /// Sum of the static execution latencies of the block's instructions.
    pub lat_sum: u32,
    /// Instruction count per functional-unit pool, indexed by
    /// [`fu_index`].
    pub fu_counts: [u16; NUM_FU_KINDS],
}

/// Number of [`FuKind`] variants (for [`fu_index`]-indexed tables).
pub const NUM_FU_KINDS: usize = 7;

/// Dense index of a [`FuKind`] for per-pool summary tables.
#[must_use]
pub const fn fu_index(fu: FuKind) -> usize {
    match fu {
        FuKind::IntAlu => 0,
        FuKind::IntMul => 1,
        FuKind::Fp => 2,
        FuKind::Mem => 3,
        FuKind::Simd => 4,
        FuKind::VecMem => 5,
        FuKind::None => 6,
    }
}

/// The predecoded table of one [`Program`]: one [`DecodedInstr`] per
/// static instruction, same indexing as [`Program::code`].
#[derive(Debug, Clone)]
pub struct Decoded {
    instrs: Vec<DecodedInstr>,
    blocks: Vec<DecodedBlock>,
    /// Per-pc block index (`NO_BLOCK` when the pc is not a leader).
    block_idx: Vec<u32>,
}

/// `true` when the instruction can transfer control (or stop the
/// machine): exactly the instructions whose successor is not `pc + 1`.
fn is_control(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt
    )
}

/// Marks every block leader of `instrs`: entry point, control-flow
/// targets, fall-throughs after control flow, and region boundaries.
fn find_leaders(instrs: &[DecodedInstr]) -> Vec<bool> {
    let n = instrs.len();
    let mut leaders = vec![false; n];
    if n == 0 {
        return leaders;
    }
    leaders[0] = true;
    for (i, d) in instrs.iter().enumerate() {
        match d.instr {
            Instr::Branch { target, .. } | Instr::Jump { target } => {
                if (target as usize) < n {
                    leaders[target as usize] = true;
                }
                if i + 1 < n {
                    leaders[i + 1] = true;
                }
            }
            Instr::Halt if i + 1 < n => {
                leaders[i + 1] = true;
            }
            _ => {}
        }
        if i > 0 && d.region != instrs[i - 1].region {
            leaders[i] = true;
        }
    }
    leaders
}

/// Builds one [`DecodedBlock`] over `instrs[start..start + len]`.
fn build_block(instrs: &[DecodedInstr], start: usize, len: usize) -> DecodedBlock {
    // Last internal writer of each flat register, or NO_DEF.
    const NO_DEF: u16 = u16::MAX;
    let mut last_def = [NO_DEF; NUM_FLAT_REGS];
    let mut edges = Vec::new();
    let mut edge_off = Vec::with_capacity(len + 1);
    let mut lat_sum = 0u32;
    let mut fu_counts = [0u16; NUM_FU_KINDS];
    for rel in 0..len {
        let d = &instrs[start + rel];
        edge_off.push(edges.len() as u16);
        for (k, _) in d.du.uses().iter().enumerate() {
            let flat = d.flat_uses[k];
            let producer = last_def[flat as usize];
            edges.push(if producer == NO_DEF {
                flat
            } else {
                EDGE_INTERNAL | producer
            });
        }
        if !d.du.defs().is_empty() {
            last_def[d.flat_defs[0] as usize] = rel as u16;
        }
        lat_sum += u32::from(d.lat);
        fu_counts[fu_index(d.fu)] += 1;
    }
    edge_off.push(edges.len() as u16);
    let mut live_out: Vec<(u16, u16)> = last_def
        .iter()
        .enumerate()
        .filter(|(_, &w)| w != NO_DEF)
        .map(|(flat, &w)| (flat as u16, w))
        .collect();
    // Apply deferred writes in program order of the last writer so ties
    // (none today: one def per flat reg survives) stay deterministic.
    live_out.sort_unstable_by_key(|&(_, w)| w);
    DecodedBlock {
        start: start as u32,
        len: len as u32,
        region: instrs[start].region,
        edges,
        edge_off,
        live_out,
        lat_sum,
        fu_counts,
    }
}

/// Partitions `instrs` into superblocks (see [`DecodedBlock`]).
fn find_blocks(instrs: &[DecodedInstr]) -> (Vec<DecodedBlock>, Vec<u32>) {
    let n = instrs.len();
    let leaders = find_leaders(instrs);
    let mut blocks = Vec::new();
    let mut block_idx = vec![NO_BLOCK; n];
    let mut start = 0;
    while start < n {
        let mut len = 1;
        // Extend until the next leader, a control-flow end, or the split
        // cap; every end-of-block successor then lands on a leader (the
        // split point itself becomes one implicitly: block starts are
        // exactly where lookup succeeds).
        while start + len < n
            && len < MAX_BLOCK_LEN
            && !leaders[start + len]
            && !is_control(&instrs[start + len - 1].instr)
        {
            len += 1;
        }
        block_idx[start] = blocks.len() as u32;
        blocks.push(build_block(instrs, start, len));
        start += len;
    }
    (blocks, block_idx)
}

impl Decoded {
    /// Predecodes every instruction of `prog` and discovers its
    /// superblocks.
    #[must_use]
    pub fn new(prog: &Program) -> Self {
        let instrs: Vec<DecodedInstr> = prog
            .code()
            .iter()
            .zip(prog.regions())
            .map(|(i, r)| DecodedInstr::new(*i, *r))
            .collect();
        let (blocks, block_idx) = find_blocks(&instrs);
        Self {
            instrs,
            blocks,
            block_idx,
        }
    }

    /// The discovered superblocks, in program order.
    #[must_use]
    pub fn blocks(&self) -> &[DecodedBlock] {
        &self.blocks
    }

    /// Index into [`Decoded::blocks`] of the block starting at `pc`, or
    /// [`NO_BLOCK`] when `pc` is not a block leader (or out of range).
    #[must_use]
    pub fn block_idx_at(&self, pc: usize) -> u32 {
        self.block_idx.get(pc).copied().unwrap_or(NO_BLOCK)
    }

    /// The decoded instructions, indexed like [`Program::code`].
    #[must_use]
    pub fn instrs(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// A copy of this table with no superblocks: every pc maps to
    /// [`NO_BLOCK`], so the emulator's per-instruction side-exit path
    /// executes the whole program.  Differential testers use this to
    /// exercise that path as a distinct engine; timing-model callers
    /// never want it.
    #[must_use]
    pub fn without_blocks(&self) -> Self {
        Self {
            instrs: self.instrs.clone(),
            blocks: Vec::new(),
            block_idx: vec![NO_BLOCK; self.instrs.len()],
        }
    }

    /// Validates structural well-formedness exactly like
    /// [`Program::validate`] (both call the same shared per-instruction
    /// check): branch targets in range and, when `matrix_ext` is false,
    /// absence of matrix instructions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, matrix_ext: bool) -> Result<(), String> {
        for (idx, d) in self.instrs.iter().enumerate() {
            crate::program::validate_instr(idx, &d.instr, self.instrs.len(), matrix_ext)?;
        }
        Ok(())
    }
}

impl std::ops::Index<usize> for Decoded {
    type Output = DecodedInstr;
    fn index(&self, idx: usize) -> &DecodedInstr {
        &self.instrs[idx]
    }
}

impl Program {
    /// Builds the predecoded table for this program.
    #[must_use]
    pub fn decode(&self) -> Decoded {
        Decoded::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Esz, IReg, MOperand, MReg, Operand2, RegId, VOp};

    #[test]
    fn decoded_matches_per_instr_queries() {
        let code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 7,
            },
            Instr::IntOp {
                op: AluOp::Div,
                rd: IReg::new(2),
                ra: IReg::new(1),
                b: Operand2::Imm(2),
            },
            Instr::MOp {
                op: VOp::Mullo(Esz::H),
                dst: MReg::new(0),
                a: MReg::new(1),
                b: MOperand::M(MReg::new(2)),
            },
            Instr::Halt,
        ];
        let prog = Program::new(code.clone(), vec![Region::Scalar; 4]);
        let dec = prog.decode();
        assert_eq!(dec.len(), 4);
        assert!(!dec.is_empty());
        for (d, i) in dec.instrs().iter().zip(&code) {
            assert_eq!(d.class, i.class());
            assert_eq!(d.fu, i.fu_kind());
            assert_eq!(d.is_full_vl, i.is_full_vl());
            assert_eq!(d.du, i.def_use());
        }
        // Static timing: ALU div is unpipelined 20/20; SIMD multiply has
        // base latency 3; destination rename classes follow the register
        // file.
        assert_eq!((dec[1].lat, dec[1].occ), (20, 20));
        assert_eq!(dec[2].lat, 3);
        assert_eq!(dec[0].def_rename, RegId::I(1).rename_class().unwrap() as u8);
        assert_eq!(dec[3].def_rename, RENAME_NONE);
    }

    #[test]
    fn blocks_partition_program_and_respect_leaders() {
        use crate::Cond;
        // 0: li r1, 10        <- leader (entry)
        // 1: li r2, 0
        // 2: add r2, r2, r1   <- leader (branch target)
        // 3: sub r1, r1, 1
        // 4: bne r1, 0, 2
        // 5: halt             <- leader (fall-through after branch)
        let code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 10,
            },
            Instr::Li {
                rd: IReg::new(2),
                imm: 0,
            },
            Instr::IntOp {
                op: AluOp::Add,
                rd: IReg::new(2),
                ra: IReg::new(2),
                b: Operand2::Reg(IReg::new(1)),
            },
            Instr::IntOp {
                op: AluOp::Sub,
                rd: IReg::new(1),
                ra: IReg::new(1),
                b: Operand2::Imm(1),
            },
            Instr::Branch {
                cond: Cond::Ne,
                ra: IReg::new(1),
                b: Operand2::Imm(0),
                target: 2,
            },
            Instr::Halt,
        ];
        let n = code.len();
        let prog = Program::new(code, vec![Region::Scalar; n]);
        let dec = prog.decode();
        let blocks = dec.blocks();
        let starts: Vec<u32> = blocks.iter().map(|b| b.start).collect();
        assert_eq!(starts, [0, 2, 5]);
        let lens: Vec<u32> = blocks.iter().map(|b| b.len).collect();
        assert_eq!(lens, [2, 3, 1]);
        // Partition: blocks tile 0..n with no gaps.
        let total: u32 = lens.iter().sum();
        assert_eq!(total as usize, n);
        // Leader lookup.
        assert_eq!(dec.block_idx_at(0), 0);
        assert_eq!(dec.block_idx_at(2), 1);
        assert_eq!(dec.block_idx_at(5), 2);
        assert_eq!(dec.block_idx_at(1), NO_BLOCK);
        assert_eq!(dec.block_idx_at(99), NO_BLOCK);
    }

    #[test]
    fn block_edges_distinguish_internal_and_external_producers() {
        // 0: li r1, 7         (defs r1)
        // 1: add r2, r1, r3   (r1 internal <- 0, r3 external)
        // 2: add r1, r2, r2   (both uses internal <- 1)
        // 3: halt
        let code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 7,
            },
            Instr::IntOp {
                op: AluOp::Add,
                rd: IReg::new(2),
                ra: IReg::new(1),
                b: Operand2::Reg(IReg::new(3)),
            },
            Instr::IntOp {
                op: AluOp::Add,
                rd: IReg::new(1),
                ra: IReg::new(2),
                b: Operand2::Reg(IReg::new(2)),
            },
            Instr::Halt,
        ];
        let prog = Program::new(code, vec![Region::Scalar; 4]);
        let dec = prog.decode();
        let b = &dec.blocks()[0];
        assert_eq!((b.start, b.len), (0, 4));
        let edges_of =
            |rel: usize| &b.edges[b.edge_off[rel] as usize..b.edge_off[rel + 1] as usize];
        assert_eq!(edges_of(0), &[] as &[u16]);
        assert_eq!(
            edges_of(1),
            &[EDGE_INTERNAL, RegId::I(3).flat()],
            "use of r1 resolves to instruction 0; r3 is live-in"
        );
        assert_eq!(edges_of(2), &[EDGE_INTERNAL | 1, EDGE_INTERNAL | 1]);
        // live_out: last writers only — r1 from instr 2, r2 from instr 1.
        assert_eq!(
            b.live_out,
            vec![(RegId::I(2).flat(), 1), (RegId::I(1).flat(), 2)]
        );
        // Summaries: three 1-cycle ALU ops + halt.
        assert_eq!(b.lat_sum, 3);
        assert_eq!(b.fu_counts[fu_index(crate::FuKind::IntAlu)], 3);
        assert_eq!(b.fu_counts[fu_index(crate::FuKind::None)], 1);
    }

    #[test]
    fn long_straight_line_code_splits_at_max_block_len() {
        let mut code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 0,
            };
            MAX_BLOCK_LEN + 10
        ];
        code.push(Instr::Halt);
        let n = code.len();
        let prog = Program::new(code, vec![Region::Scalar; n]);
        let dec = prog.decode();
        let lens: Vec<u32> = dec.blocks().iter().map(|b| b.len).collect();
        assert_eq!(lens, [MAX_BLOCK_LEN as u32, 11]);
        assert_eq!(
            dec.block_idx_at(MAX_BLOCK_LEN),
            1,
            "split point is a leader"
        );
    }

    #[test]
    fn region_boundaries_split_blocks() {
        let code = vec![
            Instr::Li {
                rd: IReg::new(1),
                imm: 0,
            };
            4
        ];
        let regions = vec![
            Region::Scalar,
            Region::Scalar,
            Region::Vector,
            Region::Vector,
        ];
        let prog = Program::new(code, regions);
        let dec = prog.decode();
        let starts: Vec<u32> = dec.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, [0, 2]);
        assert_eq!(dec.blocks()[0].region, Region::Scalar);
        assert_eq!(dec.blocks()[1].region, Region::Vector);
    }

    #[test]
    fn flat_indices_mirror_def_use() {
        let i = Instr::MOp {
            op: VOp::Mullo(Esz::H),
            dst: MReg::new(0),
            a: MReg::new(1),
            b: MOperand::M(MReg::new(2)),
        };
        let d = DecodedInstr::new(i, Region::Vector);
        for (k, r) in d.du.uses().iter().enumerate() {
            assert_eq!(d.flat_uses[k], r.flat());
        }
        assert_eq!(d.flat_defs[0], d.du.defs()[0].flat());
    }

    #[test]
    fn decoded_validate_mirrors_program_validate() {
        let prog = Program::new(
            vec![
                Instr::Branch {
                    cond: Cond::Ne,
                    ra: IReg::new(1),
                    b: Operand2::Imm(0),
                    target: 9,
                },
                Instr::Halt,
            ],
            vec![Region::Scalar; 2],
        );
        let dec = prog.decode();
        assert_eq!(
            dec.validate(false),
            prog.validate(false),
            "branch range check must match"
        );

        let m = Program::new(
            vec![Instr::SetVl {
                src: Operand2::Imm(4),
            }],
            vec![Region::Vector],
        );
        let dec = m.decode();
        assert!(dec.validate(false).is_err());
        assert!(dec.validate(true).is_ok());
    }
}
