//! Assembly-style `Display` implementations (disassembler).

use crate::{AccOp, AluOp, Cond, FOp, Instr, MOperand, Operand2, Sat, VLoc, VOp, VShiftOp};
use std::fmt;

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::Imm(i) => write!(f, "#{i}"),
        }
    }
}

impl fmt::Display for VLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VLoc::V(v) => write!(f, "{v}"),
            VLoc::Row(m, r) => write!(f, "{m}[{r}]"),
        }
    }
}

impl fmt::Display for MOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MOperand::M(m) => write!(f, "{m}"),
            MOperand::RowBcast(m, r) => write!(f, "{m}[{r}]:bcast"),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FOp::Add => "fadd",
            FOp::Sub => "fsub",
            FOp::Mul => "fmul",
            FOp::Div => "fdiv",
        };
        f.write_str(s)
    }
}

impl fmt::Display for VOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VOp::Add(e) => write!(f, "vadd.{}", e.suffix()),
            VOp::AddS(e) => write!(f, "vadds.{}", e.suffix()),
            VOp::AddU(e) => write!(f, "vaddu.{}", e.suffix()),
            VOp::Sub(e) => write!(f, "vsub.{}", e.suffix()),
            VOp::SubS(e) => write!(f, "vsubs.{}", e.suffix()),
            VOp::SubU(e) => write!(f, "vsubu.{}", e.suffix()),
            VOp::Mullo(e) => write!(f, "vmullo.{}", e.suffix()),
            VOp::Mulhi(e) => write!(f, "vmulhi.{}", e.suffix()),
            VOp::Madd => write!(f, "vmadd.h"),
            VOp::Sad => write!(f, "vsad.b"),
            VOp::Avg(e) => write!(f, "vavg.{}", e.suffix()),
            VOp::MinS(e) => write!(f, "vmins.{}", e.suffix()),
            VOp::MinU(e) => write!(f, "vminu.{}", e.suffix()),
            VOp::MaxS(e) => write!(f, "vmaxs.{}", e.suffix()),
            VOp::MaxU(e) => write!(f, "vmaxu.{}", e.suffix()),
            VOp::CmpEq(e) => write!(f, "vcmpeq.{}", e.suffix()),
            VOp::CmpGt(e) => write!(f, "vcmpgt.{}", e.suffix()),
            VOp::And => write!(f, "vand"),
            VOp::Or => write!(f, "vor"),
            VOp::Xor => write!(f, "vxor"),
            VOp::AndNot => write!(f, "vandn"),
            VOp::PackS(e) => write!(f, "vpacks.{}", e.suffix()),
            VOp::PackU(e) => write!(f, "vpacku.{}", e.suffix()),
            VOp::UnpackLo(e) => write!(f, "vunpklo.{}", e.suffix()),
            VOp::UnpackHi(e) => write!(f, "vunpkhi.{}", e.suffix()),
        }
    }
}

impl fmt::Display for VShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VShiftOp::Sll(e) => write!(f, "vsll.{}", e.suffix()),
            VShiftOp::Srl(e) => write!(f, "vsrl.{}", e.suffix()),
            VShiftOp::Sra(e) => write!(f, "vsra.{}", e.suffix()),
        }
    }
}

impl fmt::Display for AccOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccOp::Sad => "sad",
            AccOp::Mac => "mac",
            AccOp::AddH => "addh",
            AccOp::Ssd => "ssd",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Sat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sat::Wrap => "wrap",
            Sat::Signed => "sat",
            Sat::Unsigned => "satu",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::IntOp { op, rd, ra, b } => write!(f, "{op} {rd}, {ra}, {b}"),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load {
                sz,
                sext,
                rd,
                base,
                off,
            } => {
                let s = if *sext { "l" } else { "lu" };
                write!(f, "{s}{} {rd}, {off}({base})", sz.suffix())
            }
            Instr::Store { sz, rs, base, off } => {
                write!(f, "s{} {rs}, {off}({base})", sz.suffix())
            }
            Instr::Branch {
                cond,
                ra,
                b,
                target,
            } => {
                write!(f, "b{cond} {ra}, {b}, @{target}")
            }
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Halt => write!(f, "halt"),
            Instr::FpOp { op, fd, fa, fb } => write!(f, "{op} {fd}, {fa}, {fb}"),
            Instr::FpLoad { fd, base, off } => write!(f, "fld {fd}, {off}({base})"),
            Instr::FpStore { fs, base, off } => write!(f, "fst {fs}, {off}({base})"),
            Instr::CvtIF { fd, ra } => write!(f, "cvtif {fd}, {ra}"),
            Instr::CvtFI { rd, fa } => write!(f, "cvtfi {rd}, {fa}"),
            Instr::Simd { op, dst, a, b } => {
                // Strip the leading 'v' already present in the op mnemonic.
                write!(f, "{op} {dst}, {a}, {b}")
            }
            Instr::SimdShift {
                op,
                dst,
                src,
                amount,
            } => {
                write!(f, "{op} {dst}, {src}, #{amount}")
            }
            Instr::VMov { dst, src } => write!(f, "vmov {dst}, {src}"),
            Instr::VSplat { dst, src, esz } => write!(f, "vsplat.{} {dst}, {src}", esz.suffix()),
            Instr::MovSV {
                rd,
                src,
                lane,
                esz,
                sext,
            } => {
                let s = if *sext { "" } else { "u" };
                write!(f, "movsv{s}.{} {rd}, {src}[{lane}]", esz.suffix())
            }
            Instr::MovVS {
                dst,
                src,
                lane,
                esz,
            } => {
                write!(f, "movvs.{} {dst}[{lane}], {src}", esz.suffix())
            }
            Instr::VLoad {
                dst,
                base,
                off,
                bytes,
            } => {
                write!(f, "vld.{bytes} {dst}, {off}({base})")
            }
            Instr::VStore {
                src,
                base,
                off,
                bytes,
            } => {
                write!(f, "vst.{bytes} {src}, {off}({base})")
            }
            Instr::SetVl { src } => write!(f, "setvl {src}"),
            Instr::MLoad {
                dst,
                base,
                stride,
                row_bytes,
            } => {
                write!(f, "mld.{row_bytes} {dst}, ({base}) vs={stride}")
            }
            Instr::MStore {
                src,
                base,
                stride,
                row_bytes,
            } => {
                write!(f, "mst.{row_bytes} {src}, ({base}) vs={stride}")
            }
            Instr::MOp { op, dst, a, b } => write!(f, "m{op} {dst}, {a}, {b}"),
            Instr::MShift {
                op,
                dst,
                src,
                amount,
            } => {
                write!(f, "m{op} {dst}, {src}, #{amount}")
            }
            Instr::MSplat { dst, src, esz } => write!(f, "msplat.{} {dst}, {src}", esz.suffix()),
            Instr::MMov { dst, src } => write!(f, "mmov {dst}, {src}"),
            Instr::MTranspose { dst, src, esz } => {
                write!(f, "mtrans.{} {dst}, {src}", esz.suffix())
            }
            Instr::MAcc { op, acc, a, b } => write!(f, "macc.{op} {acc}, {a}, {b}"),
            Instr::VAcc { op, acc, a, b } => write!(f, "vacc.{op} {acc}, {a}, {b}"),
            Instr::AccSum { rd, acc } => write!(f, "accsum {rd}, {acc}"),
            Instr::AccClear { acc } => write!(f, "accclr {acc}"),
            Instr::AccPack {
                dst,
                acc,
                esz,
                sat,
                shift,
            } => {
                write!(f, "accpack.{}.{sat} {dst}, {acc}, >>{shift}", esz.suffix())
            }
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IReg, MReg, VReg};

    #[test]
    fn display_samples() {
        let i = Instr::IntOp {
            op: AluOp::Add,
            rd: IReg::new(1),
            ra: IReg::new(2),
            b: Operand2::Imm(8),
        };
        assert_eq!(i.to_string(), "add r1, r2, #8");

        let m = Instr::MLoad {
            dst: MReg::new(3),
            base: IReg::new(4),
            stride: Operand2::Reg(IReg::new(5)),
            row_bytes: 16,
        };
        assert_eq!(m.to_string(), "mld.16 m3, (r4) vs=r5");

        let s = Instr::Simd {
            op: VOp::Sad,
            dst: VLoc::V(VReg::new(1)),
            a: VLoc::Row(MReg::new(2), 3),
            b: VLoc::V(VReg::new(4)),
        };
        assert_eq!(s.to_string(), "vsad.b v1, m2[3], v4");
    }

    #[test]
    fn display_never_empty() {
        // C-DEBUG-NONEMPTY analogue for Display.
        assert!(!Instr::Nop.to_string().is_empty());
        assert!(!Instr::Halt.to_string().is_empty());
    }
}
