//! The instruction set.
//!
//! A [`Instr`] is already *resolved*: branch targets are instruction indices
//! within a [`Program`](crate::Program) (the `simdsim-asm` crate turns
//! symbolic labels into these indices).

use crate::{AReg, Esz, FReg, IReg, MReg, MemSz, VReg};
use serde::{Deserialize, Serialize};

/// Scalar integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit multiplication (low half).
    Mul,
    /// Signed 64-bit division (rounds toward zero). Division by zero yields 0,
    /// matching the emulator's defined semantics.
    Div,
    /// Signed 64-bit remainder. Remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 6 bits).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less than (signed): `rd = (ra < b) as i64`.
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Set if equal.
    Seq,
}

/// Scalar floating-point operation (double precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Branch condition comparing two scalar integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Signed less or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Unsigned less than.
    LtU,
    /// Unsigned greater or equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition on two 64-bit register values.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::LtU => (a as u64) < (b as u64),
            Cond::GeU => (a as u64) >= (b as u64),
        }
    }

    /// The condition with operands swapped preserved under negation, i.e.
    /// `!cond(a,b) == negated(a,b)`.
    #[must_use]
    pub const fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }
}

/// Second operand of a scalar ALU operation or of a vector-stride field:
/// either a register or a small immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand2 {
    /// A scalar register operand.
    Reg(IReg),
    /// An immediate operand.
    Imm(i32),
}

impl From<IReg> for Operand2 {
    fn from(r: IReg) -> Self {
        Operand2::Reg(r)
    }
}

impl From<i32> for Operand2 {
    fn from(imm: i32) -> Self {
        Operand2::Imm(imm)
    }
}

/// Location of a 1-word SIMD operand: either a 1-dimensional SIMD register
/// (MMX-like extensions) or one row of a matrix register (VMMX row-addressed
/// operations — the "MMX half" of the fused MOM ISA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VLoc {
    /// A 1-dimensional SIMD register.
    V(VReg),
    /// Row `1` of matrix register `0` (row index `0..MAX_VL`).
    Row(MReg, u8),
}

impl From<VReg> for VLoc {
    fn from(v: VReg) -> Self {
        VLoc::V(v)
    }
}

/// Second source of a full-vector-length matrix operation: a whole matrix
/// register, or a single row broadcast to every row (vector-scalar form,
/// used e.g. to multiply every row of a block by one coefficient row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MOperand {
    /// Element-wise with another matrix register.
    M(MReg),
    /// One row of a matrix register broadcast to all rows.
    RowBcast(MReg, u8),
}

impl From<MReg> for MOperand {
    fn from(m: MReg) -> Self {
        MOperand::M(m)
    }
}

/// Saturation mode for [`Instr::AccPack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sat {
    /// Truncate (wrap-around).
    Wrap,
    /// Signed saturation.
    Signed,
    /// Unsigned saturation.
    Unsigned,
}

/// Element-wise sub-word operation, shared by the 1D SIMD extension,
/// VMMX row operations and full-VL matrix operations.
///
/// The vocabulary is the intersection of Intel MMX/SSE2 and the MOM
/// proposal: saturating arithmetic, sub-word multiplies, `pmaddwd`-style
/// pairwise multiply-add, `psadbw`-style sums of absolute differences,
/// pack/unpack and logical operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VOp {
    /// Wrapping addition per element.
    Add(Esz),
    /// Signed saturating addition.
    AddS(Esz),
    /// Unsigned saturating addition.
    AddU(Esz),
    /// Wrapping subtraction.
    Sub(Esz),
    /// Signed saturating subtraction.
    SubS(Esz),
    /// Unsigned saturating subtraction.
    SubU(Esz),
    /// Low half of the element-wise product.
    Mullo(Esz),
    /// High half of the element-wise signed product.
    Mulhi(Esz),
    /// Pairwise multiply of signed 16-bit elements, adding adjacent 32-bit
    /// products (`pmaddwd`).
    Madd,
    /// Sum of absolute differences of unsigned bytes; one 64-bit sum per
    /// 64-bit group (`psadbw` generalised to the register width).
    Sad,
    /// Unsigned rounding average (`pavgb`/`pavgw`).
    Avg(Esz),
    /// Signed minimum.
    MinS(Esz),
    /// Unsigned minimum.
    MinU(Esz),
    /// Signed maximum.
    MaxS(Esz),
    /// Unsigned maximum.
    MaxU(Esz),
    /// Element-wise equality: all-ones where equal.
    CmpEq(Esz),
    /// Element-wise signed greater-than: all-ones where `a > b`.
    CmpGt(Esz),
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise AND-NOT (`a & !b`).
    AndNot,
    /// Pack elements of size `1` from both sources into elements half the
    /// size with signed saturation (`packsswb`/`packssdw` style: low half
    /// from `a`, high half from `b`).
    PackS(Esz),
    /// Pack with unsigned saturation.
    PackU(Esz),
    /// Interleave the low halves of `a` and `b` (`punpckl*`).
    UnpackLo(Esz),
    /// Interleave the high halves of `a` and `b` (`punpckh*`).
    UnpackHi(Esz),
}

impl VOp {
    /// `true` for multiply-class operations (longer latency, multiplier FU).
    #[must_use]
    pub const fn is_multiply(self) -> bool {
        matches!(self, VOp::Mullo(_) | VOp::Mulhi(_) | VOp::Madd | VOp::Sad)
    }
}

/// Element-wise shift with an immediate amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VShiftOp {
    /// Logical shift left.
    Sll(Esz),
    /// Logical shift right.
    Srl(Esz),
    /// Arithmetic shift right.
    Sra(Esz),
}

/// Packed-accumulator operation of the matrix extension.
///
/// Packed accumulators give MOM reductions without inter-element
/// communication inside the datapath: each column of the matrix operand
/// accumulates into a wide (64-bit) lane, and [`Instr::AccSum`] performs the
/// final cross-lane reduction (see "On the efficiency of reductions in
/// micro-SIMD media extensions", PACT'01).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccOp {
    /// `acc[lane] += |a.byte[c] - b.byte[c]|` over all rows and byte columns
    /// (two byte columns per 16-bit accumulator lane).
    Sad,
    /// `acc[lane] += a.h[c] * b.h[c]` over all rows, signed 16-bit products.
    Mac,
    /// `acc[lane] += sext(a.h[c])` over all rows (`b` is ignored).
    AddH,
    /// `acc[lane] += (a.h[c]-b.h[c])^2` over all rows — squared differences
    /// for the motion2 kernel.
    Ssd,
}

/// A fully resolved machine instruction.
///
/// Branch targets are instruction indices within the owning
/// [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    // ------------------------------------------------------------------
    // Scalar integer
    // ------------------------------------------------------------------
    /// Integer ALU operation `rd = ra <op> b`.
    IntOp {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: IReg,
        /// First source register.
        ra: IReg,
        /// Second operand.
        b: Operand2,
    },
    /// Load a 64-bit immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: IReg,
        /// Immediate value.
        imm: i64,
    },
    /// Scalar load: `rd = mem[base + off]`, optionally sign-extended.
    Load {
        /// Access size.
        sz: MemSz,
        /// Sign-extend the loaded value.
        sext: bool,
        /// Destination register.
        rd: IReg,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
    },
    /// Scalar store: `mem[base + off] = rs`.
    Store {
        /// Access size.
        sz: MemSz,
        /// Source register.
        rs: IReg,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        ra: IReg,
        /// Second operand.
        b: Operand2,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Terminate the program.
    Halt,

    // ------------------------------------------------------------------
    // Scalar floating point (minimal; multimedia kernels are fixed-point)
    // ------------------------------------------------------------------
    /// Floating-point ALU operation `fd = fa <op> fb`.
    FpOp {
        /// Operation.
        op: FOp,
        /// Destination register.
        fd: FReg,
        /// First source.
        fa: FReg,
        /// Second source.
        fb: FReg,
    },
    /// Load a 64-bit IEEE double: `fd = mem[base + off]`.
    FpLoad {
        /// Destination register.
        fd: FReg,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
    },
    /// Store a 64-bit IEEE double.
    FpStore {
        /// Source register.
        fs: FReg,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
    },
    /// Convert scalar integer to double: `fd = ra as f64`.
    CvtIF {
        /// Destination register.
        fd: FReg,
        /// Source integer register.
        ra: IReg,
    },
    /// Convert double to scalar integer (truncating): `rd = fa as i64`.
    CvtFI {
        /// Destination integer register.
        rd: IReg,
        /// Source register.
        fa: FReg,
    },

    // ------------------------------------------------------------------
    // 1-word SIMD (MMX-like; also VMMX row operations)
    // ------------------------------------------------------------------
    /// Element-wise SIMD operation `dst = a <op> b` on one SIMD word.
    Simd {
        /// Sub-word operation.
        op: VOp,
        /// Destination.
        dst: VLoc,
        /// First source.
        a: VLoc,
        /// Second source.
        b: VLoc,
    },
    /// Element-wise shift by immediate on one SIMD word.
    SimdShift {
        /// Shift kind and element size.
        op: VShiftOp,
        /// Destination.
        dst: VLoc,
        /// Source.
        src: VLoc,
        /// Shift amount in bits.
        amount: u8,
    },
    /// SIMD register move `dst = src` (also moves matrix rows).
    VMov {
        /// Destination.
        dst: VLoc,
        /// Source.
        src: VLoc,
    },
    /// Broadcast a scalar register into every element of a SIMD word.
    VSplat {
        /// Destination.
        dst: VLoc,
        /// Scalar source.
        src: IReg,
        /// Element size to replicate.
        esz: Esz,
    },
    /// Extract one element into a scalar register.
    MovSV {
        /// Scalar destination.
        rd: IReg,
        /// SIMD source.
        src: VLoc,
        /// Element lane index.
        lane: u8,
        /// Element size.
        esz: Esz,
        /// Sign-extend the element.
        sext: bool,
    },
    /// Insert a scalar register into one element lane.
    MovVS {
        /// SIMD destination (other lanes preserved).
        dst: VLoc,
        /// Scalar source.
        src: IReg,
        /// Element lane index.
        lane: u8,
        /// Element size.
        esz: Esz,
    },
    /// SIMD load of `bytes` bytes (partial loads zero-fill the upper part):
    /// `dst = mem[base + off]`.
    VLoad {
        /// Destination.
        dst: VLoc,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
        /// Bytes transferred (1..=16).
        bytes: u8,
    },
    /// SIMD store of the low `bytes` bytes.
    VStore {
        /// Source.
        src: VLoc,
        /// Base address register.
        base: IReg,
        /// Byte offset.
        off: i32,
        /// Bytes transferred (1..=16).
        bytes: u8,
    },

    // ------------------------------------------------------------------
    // 2-dimensional matrix extension (MOM / VMMX)
    // ------------------------------------------------------------------
    /// Set the vector length for subsequent matrix operations
    /// (clamped to [`MAX_VL`](crate::MAX_VL)).
    SetVl {
        /// New vector length (register or immediate).
        src: Operand2,
    },
    /// Strided matrix load: row `r` of `dst` comes from
    /// `mem[base + r*stride .. +row_bytes]`, for `r < VL`.
    ///
    /// `row_bytes` smaller than the register width models the partial
    /// data-movement instructions added to the scaled VMMX128 ISA.
    MLoad {
        /// Destination matrix register.
        dst: MReg,
        /// Base address register.
        base: IReg,
        /// Row stride in bytes.
        stride: Operand2,
        /// Bytes per row (1..=16); upper bytes zero-filled.
        row_bytes: u8,
    },
    /// Strided matrix store (mirror of [`Instr::MLoad`]).
    MStore {
        /// Source matrix register.
        src: MReg,
        /// Base address register.
        base: IReg,
        /// Row stride in bytes.
        stride: Operand2,
        /// Bytes per row (1..=16).
        row_bytes: u8,
    },
    /// Full-vector-length element-wise matrix operation
    /// `dst[r] = a[r] <op> b[r]` for `r < VL`.
    MOp {
        /// Sub-word operation.
        op: VOp,
        /// Destination matrix register.
        dst: MReg,
        /// First source.
        a: MReg,
        /// Second source (matrix or broadcast row).
        b: MOperand,
    },
    /// Full-VL element-wise shift by immediate.
    MShift {
        /// Shift kind and element size.
        op: VShiftOp,
        /// Destination matrix register.
        dst: MReg,
        /// Source matrix register.
        src: MReg,
        /// Shift amount in bits.
        amount: u8,
    },
    /// Broadcast a scalar into every element of every row (`VL` rows).
    MSplat {
        /// Destination matrix register.
        dst: MReg,
        /// Scalar source.
        src: IReg,
        /// Element size to replicate.
        esz: Esz,
    },
    /// Matrix move `dst = src` (`VL` rows).
    MMov {
        /// Destination.
        dst: MReg,
        /// Source.
        src: MReg,
    },
    /// Transpose the `VL × (width/esz)` element matrix. The emulator
    /// requires the matrix to be square (`VL == width/esz`).
    MTranspose {
        /// Destination matrix register.
        dst: MReg,
        /// Source matrix register.
        src: MReg,
        /// Element size (16-bit in all paper kernels).
        esz: Esz,
    },
    /// Packed-accumulator reduction over all `VL` rows of the operands.
    MAcc {
        /// Accumulation operation.
        op: AccOp,
        /// Destination accumulator.
        acc: AReg,
        /// First source matrix.
        a: MReg,
        /// Second source matrix (ignored by [`AccOp::AddH`]).
        b: MReg,
    },
    /// Row-addressed accumulator op: accumulate a single SIMD word
    /// (used by MMX-style code sequences inside VMMX programs).
    VAcc {
        /// Accumulation operation.
        op: AccOp,
        /// Destination accumulator.
        acc: AReg,
        /// First source.
        a: VLoc,
        /// Second source (ignored by [`AccOp::AddH`]).
        b: VLoc,
    },
    /// Cross-lane reduction of an accumulator into a scalar register.
    AccSum {
        /// Scalar destination.
        rd: IReg,
        /// Source accumulator.
        acc: AReg,
    },
    /// Clear an accumulator.
    AccClear {
        /// Accumulator to clear.
        acc: AReg,
    },
    /// Pack accumulator lanes into elements of one SIMD word / matrix row.
    AccPack {
        /// Destination.
        dst: VLoc,
        /// Source accumulator.
        acc: AReg,
        /// Destination element size.
        esz: Esz,
        /// Saturation mode.
        sat: Sat,
        /// Right-shift applied to each lane before packing (fixed-point
        /// descaling, as in DCT final stages).
        shift: u8,
    },
    /// No operation (alignment/padding in generated code).
    Nop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Lt.eval(-1, 0));
        assert!(!Cond::LtU.eval(-1, 0)); // -1 is huge unsigned
        assert!(Cond::GeU.eval(-1, 0));
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Ge,
            Cond::Le,
            Cond::Gt,
            Cond::LtU,
            Cond::GeU,
        ] {
            for (a, b) in [(0i64, 0i64), (1, 2), (-5, 3), (i64::MAX, i64::MIN)] {
                assert_eq!(c.eval(a, b), !c.negated().eval(a, b), "{c:?} {a} {b}");
            }
        }
    }

    #[test]
    fn vop_multiply_class() {
        assert!(VOp::Madd.is_multiply());
        assert!(VOp::Sad.is_multiply());
        assert!(!VOp::Add(Esz::B).is_multiply());
        assert!(!VOp::PackS(Esz::H).is_multiply());
    }

    #[test]
    fn operand2_from() {
        assert_eq!(Operand2::from(7i32), Operand2::Imm(7));
        assert_eq!(Operand2::from(IReg::new(3)), Operand2::Reg(IReg::new(3)));
    }
}
