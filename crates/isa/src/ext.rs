//! The four modelled multimedia extensions.

use serde::{Deserialize, Serialize};

/// Which SIMD multimedia extension a modelled processor implements.
///
/// These are the four architectures compared throughout the paper:
/// two 1-dimensional (MMX-like) and two 2-dimensional (MOM/VMMX) variants,
/// each at 64-bit and 128-bit register width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ext {
    /// 1-dimensional, 64-bit registers (Intel MMX-like). The study baseline.
    Mmx64,
    /// 1-dimensional, 128-bit registers (Intel SSE2-like).
    Mmx128,
    /// 2-dimensional, 16 × 64-bit matrix registers (original MOM).
    Vmmx64,
    /// 2-dimensional, 16 × 128-bit matrix registers (scaled MOM).
    Vmmx128,
}

impl Ext {
    /// All four extensions in the paper's presentation order.
    pub const ALL: [Ext; 4] = [Ext::Mmx64, Ext::Mmx128, Ext::Vmmx64, Ext::Vmmx128];

    /// SIMD register width in bytes (8 or 16).
    #[must_use]
    pub const fn width_bytes(self) -> usize {
        match self {
            Ext::Mmx64 | Ext::Vmmx64 => 8,
            Ext::Mmx128 | Ext::Vmmx128 => 16,
        }
    }

    /// SIMD register width in bits.
    #[must_use]
    pub const fn width_bits(self) -> usize {
        self.width_bytes() * 8
    }

    /// `true` for the 2-dimensional (matrix) extensions.
    #[must_use]
    pub const fn is_matrix(self) -> bool {
        matches!(self, Ext::Vmmx64 | Ext::Vmmx128)
    }

    /// Lower-case name used in reports (`mmx64`, `vmmx128`, ...).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Ext::Mmx64 => "mmx64",
            Ext::Mmx128 => "mmx128",
            Ext::Vmmx64 => "vmmx64",
            Ext::Vmmx128 => "vmmx128",
        }
    }
}

impl std::fmt::Display for Ext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Ext::Mmx64.width_bytes(), 8);
        assert_eq!(Ext::Vmmx128.width_bits(), 128);
        assert!(Ext::Vmmx64.is_matrix());
        assert!(!Ext::Mmx128.is_matrix());
        assert_eq!(Ext::Mmx128.to_string(), "mmx128");
    }
}
