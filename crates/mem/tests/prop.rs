//! Property-based tests of the cache model and the memory system.

use proptest::prelude::*;
use simdsim_emu::MemAccess;
use simdsim_mem::{Cache, CacheConfig, MemConfig, MemSystem};

fn small_cfg() -> CacheConfig {
    CacheConfig {
        size: 2048,
        assoc: 2,
        line: 32,
        latency: 3,
        ports: 1,
        port_width: 8,
        banks: 1,
    }
}

proptest! {
    /// A probe immediately after an access always hits; the line stays
    /// resident at least until `assoc` distinct conflicting lines arrive.
    #[test]
    fn recently_accessed_lines_are_resident(addrs in prop::collection::vec(0u64..65536, 1..200)) {
        let mut c = Cache::new(small_cfg());
        for a in &addrs {
            c.access(*a, false);
            prop_assert!(c.probe(*a));
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
    }

    /// Accessing a working set that fits the cache converges to all-hits.
    #[test]
    fn small_working_set_converges(base in 0u64..4096) {
        let mut c = Cache::new(small_cfg());
        let lines: Vec<u64> = (0..8).map(|i| base + i * 32).collect();
        for _ in 0..4 {
            for l in &lines {
                c.access(*l, false);
            }
        }
        let s = c.stats();
        // At most one cold miss per distinct line (some lines may alias).
        prop_assert!(s.misses <= 2 * lines.len() as u64);
        prop_assert!(s.hits >= 3 * lines.len() as u64 - 8);
    }

    /// Invalidation removes residency and at most reports dirty once.
    #[test]
    fn invalidate_is_idempotent(addr in 0u64..65536, store in any::<bool>()) {
        let mut c = Cache::new(small_cfg());
        c.access(addr, store);
        let first = c.invalidate(addr);
        prop_assert_eq!(first, store);
        prop_assert!(!c.probe(addr));
        prop_assert!(!c.invalidate(addr));
    }

    /// Memory-system completion times are causal (>= request time + hit
    /// latency) and port-monotonic.
    #[test]
    fn completions_are_causal(
        reqs in prop::collection::vec((0u64..100_000, 1u64..64, any::<bool>()), 1..50),
    ) {
        let mut m = MemSystem::new(MemConfig::paper(2, false));
        for (now, (addr, bytes, store)) in reqs.into_iter().enumerate() {
            let now = now as u64;
            let done = m.scalar_access(now, addr, bytes, store);
            prop_assert!(done >= now + 3, "completion {done} before {now}+latency");
        }
    }

    /// Vector accesses: unit-stride transfers never take longer than the
    /// same access at a non-unit stride (the paper's bandwidth rule).
    #[test]
    fn unit_stride_is_never_slower(rows in 1u16..16, row_bytes in prop::sample::select(vec![8u16, 16])) {
        let mk = |stride: i64| MemAccess {
            addr: 4096,
            row_bytes,
            rows,
            stride,
            store: false,
            vector_path: true,
        };
        let mut a = MemSystem::new(MemConfig::paper(8, true));
        let mut b = MemSystem::new(MemConfig::paper(8, true));
        // Warm both.
        let wa = a.vector_access(0, &mk(i64::from(row_bytes)));
        let wb = b.vector_access(0, &mk(800));
        let ta = a.vector_access(wa, &mk(i64::from(row_bytes))) - wa;
        let tb = b.vector_access(wb, &mk(800)) - wb;
        prop_assert!(ta <= tb, "unit {ta} vs strided {tb}");
    }
}
