//! The two-level memory system with stride-aware vector-cache timing.

use crate::cache::{Cache, CacheConfig, CacheStats};
use serde::{Deserialize, Serialize};
use simdsim_emu::MemAccess;

/// Configuration of the whole hierarchy (the paper's Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 unified/vector cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// Cycles between successive line transfers on a multi-line miss
    /// (pipelined RDRAM bursts).
    pub mem_pipeline: u64,
}

impl MemConfig {
    /// The paper's Table IV hierarchy for a given processor width
    /// (`way` ∈ {2,4,8}): L1 ports scale 1/2/4 on MMX configurations and
    /// 1/1/2 on VMMX ones; the L2 vector port is 16/32/64 bytes wide.
    #[must_use]
    pub fn paper(way: usize, matrix: bool) -> Self {
        let (l1_ports, l2_width) = match (way, matrix) {
            (2, false) => (1, 16),
            (4, false) => (2, 32),
            (8, false) => (4, 64),
            (2, true) => (1, 16),
            (4, true) => (1, 32),
            (8, true) => (2, 64),
            _ => panic!("way must be 2, 4 or 8"),
        };
        Self {
            l1: CacheConfig {
                size: 32 * 1024,
                assoc: 4,
                line: 32,
                latency: 3,
                ports: l1_ports,
                port_width: 8,
                banks: 8,
            },
            l2: CacheConfig {
                size: 512 * 1024,
                assoc: 2,
                line: 128,
                latency: 12,
                ports: 1,
                port_width: l2_width,
                banks: 2,
            },
            mem_latency: 500,
            mem_pipeline: 32,
        }
    }
}

/// Aggregate timing counters of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTimingStats {
    /// Scalar/1D accesses served.
    pub scalar_accesses: u64,
    /// Vector (matrix-path) accesses served.
    pub vector_accesses: u64,
    /// Total cycles the L2 vector port was busy.
    pub l2_port_busy: u64,
    /// Vector accesses at unit stride (full port bandwidth).
    pub unit_stride_accesses: u64,
    /// Coherency writebacks forced by vector loads of dirty L1 lines.
    pub coherency_writebacks: u64,
}

/// The memory hierarchy timing model.
///
/// All methods take the current cycle (`now`) and return the cycle at
/// which the requested data is available; port conflicts push the start
/// time back.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    l1_port_free: Vec<u64>,
    l2_port_free: u64,
    stats: MemTimingStats,
}

impl MemSystem {
    /// Creates a cold hierarchy.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l1_port_free: vec![0; cfg.l1.ports],
            l2_port_free: 0,
            cfg,
            stats: MemTimingStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// L1 counters.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Timing counters.
    #[must_use]
    pub fn stats(&self) -> MemTimingStats {
        self.stats
    }

    fn alloc_l1_port(&mut self, now: u64) -> u64 {
        let port = self
            .l1_port_free
            .iter_mut()
            .min_by_key(|c| **c)
            .expect("at least one L1 port");
        let start = now.max(*port);
        *port = start + 1; // pipelined: one request per port per cycle
        start
    }

    /// A scalar or 1D-SIMD access through the L1.
    ///
    /// Returns the completion cycle.  Accesses wider than one L1 port
    /// (e.g. 128-bit SIMD loads on the 8-byte ports) occupy the port for
    /// multiple cycles.
    pub fn scalar_access(&mut self, now: u64, addr: u64, bytes: u64, store: bool) -> u64 {
        self.stats.scalar_accesses += 1;
        let start = self.alloc_l1_port(now);
        // Wide SIMD accesses take extra port beats.
        let beats = bytes.div_ceil(self.cfg.l1.port_width as u64).max(1);
        let mut done = start + self.cfg.l1.latency + (beats - 1);
        let mut worst_extra = 0u64;
        for line in self.l1.lines_covering(addr, bytes) {
            let l1_hit = self.l1.access(line, store);
            if !l1_hit {
                let l2_hit = self.l2.access(line, false);
                let extra = if l2_hit {
                    self.cfg.l2.latency
                } else {
                    self.cfg.l2.latency + self.cfg.mem_latency
                };
                worst_extra = worst_extra.max(extra);
            }
        }
        done += worst_extra;
        done
    }

    /// A vector (matrix-path) access, bypassing the L1 straight to the L2
    /// vector cache.
    ///
    /// Returns the completion cycle. Stride-one requests stream at the
    /// full port width per cycle; other strides transfer one 64-bit
    /// element per cycle (the paper's rule).
    pub fn vector_access(&mut self, now: u64, acc: &MemAccess) -> u64 {
        self.stats.vector_accesses += 1;
        let total_bytes = acc.total_bytes().max(1);
        let unit = acc.unit_stride();
        if unit {
            self.stats.unit_stride_accesses += 1;
        }
        let transfer = if unit {
            total_bytes.div_ceil(self.cfg.l2.port_width as u64)
        } else {
            // One vector element (row) per cycle at non-unit stride; rows
            // wider than the port take multiple beats.
            u64::from(acc.rows) * u64::from(acc.row_bytes).div_ceil(self.cfg.l2.port_width as u64)
        }
        .max(1);

        let start = now.max(self.l2_port_free);
        self.l2_port_free = start + transfer;
        self.stats.l2_port_busy += transfer;

        // Tag lookups + coherency over every touched line.
        let mut misses = 0u64;
        let mut coherency = 0u64;
        for r in 0..u64::from(acc.rows) {
            let row_addr = (acc.addr as i64 + acc.stride * r as i64) as u64;
            for line in self.l2.lines_covering(row_addr, u64::from(acc.row_bytes)) {
                if !self.l2.access(line, acc.store) {
                    misses += 1;
                }
                // Inclusion: keep L1 coherent with vector traffic.
                for l1_line in self
                    .l1
                    .lines_covering(line, self.cfg.l2.line.min(32) as u64)
                {
                    if acc.store {
                        if self.l1.invalidate(l1_line) {
                            coherency += 1;
                        }
                    } else if self.l1.probe(l1_line) && self.l1.invalidate(l1_line) {
                        coherency += 1;
                    }
                }
            }
        }
        self.stats.coherency_writebacks += coherency;

        let miss_penalty = if misses > 0 {
            self.cfg.mem_latency + (misses - 1) * self.cfg.mem_pipeline
        } else {
            0
        };
        let coherency_penalty = coherency * self.cfg.l1.latency;
        start + self.cfg.l2.latency + transfer + miss_penalty + coherency_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, rows: u16, row_bytes: u16, stride: i64, store: bool) -> MemAccess {
        MemAccess {
            addr,
            row_bytes,
            rows,
            stride,
            store,
            vector_path: true,
        }
    }

    #[test]
    fn scalar_hit_faster_than_miss() {
        let mut m = MemSystem::new(MemConfig::paper(2, false));
        let t_miss = m.scalar_access(0, 0x1000, 8, false);
        let t_hit = m.scalar_access(t_miss, 0x1000, 8, false);
        assert!(t_miss > 500, "cold miss goes to memory: {t_miss}");
        assert_eq!(t_hit, t_miss + 3, "L1 hit latency");
    }

    #[test]
    fn unit_stride_streams_at_port_width() {
        let mut m = MemSystem::new(MemConfig::paper(8, true)); // 64-byte port
                                                               // warm the cache
        let a = acc(0, 16, 16, 16, false);
        let warm = m.vector_access(0, &a);
        let now = warm + 1;
        let t_unit = m.vector_access(now, &a);
        // 256 bytes at 64 B/cycle = 4 transfer cycles + 12 latency
        assert_eq!(t_unit, now + 12 + 4);

        let strided = acc(4096, 16, 16, 800, false);
        let warm2 = m.vector_access(t_unit, &strided);
        let now2 = warm2 + 1;
        let t_str = m.vector_access(now2, &strided);
        // One row per cycle at non-unit stride: 16 cycles + 12 latency.
        assert_eq!(t_str, now2 + 12 + 16);
    }

    #[test]
    fn l2_port_serialises_vector_accesses() {
        let mut m = MemSystem::new(MemConfig::paper(2, true));
        let a = acc(0, 16, 16, 16, false);
        let _ = m.vector_access(0, &a);
        let first_busy = m.stats().l2_port_busy;
        assert!(first_busy > 0);
        // Second access issued at cycle 0 must wait for the port.
        let t2 = m.vector_access(0, &a);
        assert!(t2 >= first_busy + 12);
    }

    #[test]
    fn vector_store_invalidates_l1() {
        let mut m = MemSystem::new(MemConfig::paper(2, true));
        let _ = m.scalar_access(0, 0x2000, 8, true); // dirty L1 line
        let st = acc(0x2000, 1, 16, 16, true);
        let _ = m.vector_access(600, &st);
        assert!(m.stats().coherency_writebacks >= 1);
        // Following scalar access misses L1 again.
        let t = m.scalar_access(1200, 0x2000, 8, false);
        assert!(t >= 1200 + 3 + 12, "must refetch from L2: {t}");
    }

    #[test]
    fn paper_config_port_scaling() {
        assert_eq!(MemConfig::paper(2, false).l1.ports, 1);
        assert_eq!(MemConfig::paper(8, false).l1.ports, 4);
        assert_eq!(MemConfig::paper(8, true).l1.ports, 2);
        assert_eq!(MemConfig::paper(4, true).l2.port_width, 32);
    }
}
