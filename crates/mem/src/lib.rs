//! Memory-hierarchy timing model (the paper's Table IV).
//!
//! Two on-chip cache levels plus a high-latency main memory:
//!
//! * **L1 data cache** — 32 KB, 4-way, 32-byte lines, 3-cycle latency,
//!   1/2/4 ports of 8 bytes (scalar and 1D-SIMD accesses);
//! * **L2 vector cache** — 512 KB, 2-way, 128-byte lines, 12-cycle
//!   latency, one `B×64-bit` port, two interleaved banks.  Vector (matrix)
//!   accesses **bypass the L1** and stream from the L2: stride-one
//!   requests transfer `B` 64-bit elements per cycle, any other stride one
//!   element per cycle;
//! * **main memory** — 500 cycles (Direct-RDRAM-like), with pipelined
//!   line streaming for multi-line vector misses.
//!
//! Coherency follows the paper's exclusive-bit + inclusion policy:
//! vector stores invalidate overlapping L1 lines, vector loads force
//! writeback of dirty L1 lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod system;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use system::{MemConfig, MemSystem, MemTimingStats};

/// Memory-model revision, part of `simdsim-sweep`'s content-addressed
/// cache key.  Bump whenever a change to this crate alters simulated
/// timing, so cached results from older builds are never reused.
pub const REVISION: u32 = 1;
