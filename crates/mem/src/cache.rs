//! A set-associative cache tag model with LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Access latency in cycles.
    pub latency: u64,
    /// Number of ports.
    pub ports: usize,
    /// Port width in bytes.
    pub port_width: usize,
    /// Number of banks (informational; bank conflicts are folded into the
    /// port model).
    pub banks: usize,
}

impl CacheConfig {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }
}

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines invalidated by the coherency protocol.
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 when no accesses were made).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative cache tag array with LRU replacement.
///
/// The tag store is a single flat array indexed by `set * assoc` so a
/// lookup touches one contiguous cache-resident slice; set selection is a
/// shift-and-mask when the geometry is a power of two (it always is for
/// the paper's Table IV hierarchies), with a modulo fallback otherwise.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    assoc: usize,
    nsets: usize,
    line_shift: u32,
    /// `nsets - 1` when the set count is a power of two.
    set_mask: Option<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry is
    /// inconsistent.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.sets() > 0, "cache too small for its line size/assoc");
        let nsets = cfg.sets();
        Self {
            lines: vec![Line::default(); nsets * cfg.assoc],
            assoc: cfg.assoc,
            nsets,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: nsets.is_power_of_two().then(|| nsets as u64 - 1),
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = match self.set_mask {
            Some(m) => (line & m) as usize,
            None => (line as usize) % self.nsets,
        };
        (set, line)
    }

    /// Looks up the line containing `addr`, installing it on a miss.
    /// Returns `true` on a hit.  `store` marks the line dirty.
    pub fn access(&mut self, addr: u64, store: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let lines = &mut self.lines[set * self.assoc..(set + 1) * self.assoc];
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            l.dirty |= store;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Evict LRU.
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("non-zero associativity");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: store,
            lru: self.tick,
        };
        false
    }

    /// Probes without installing. Returns `true` on a hit.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.lines[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr`; returns `true` when the
    /// line was present and dirty (a writeback is required).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for l in &mut self.lines[set * self.assoc..(set + 1) * self.assoc] {
            if l.valid && l.tag == tag {
                l.valid = false;
                self.stats.invalidations += 1;
                return l.dirty;
            }
        }
        false
    }

    /// Iterates over the line-aligned addresses covered by
    /// `[addr, addr+len)`.
    pub fn lines_covering(&self, addr: u64, len: u64) -> impl Iterator<Item = u64> + use<> {
        let shift = self.line_shift;
        let first = addr >> shift;
        let last = (addr + len.max(1) - 1) >> shift;
        (first..=last).map(move |l| l << shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size: 1024,
            assoc: 2,
            line: 32,
            latency: 3,
            ports: 1,
            port_width: 8,
            banks: 1,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut c = small();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x11f, false), "same line");
        assert!(!c.access(0x120, false), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        let sets = c.config().sets(); // 16
        let way_stride = (sets * 32) as u64;
        c.access(0, false);
        c.access(way_stride, false);
        c.access(0, false); // refresh line 0
        c.access(2 * way_stride, false); // evicts way_stride
        assert!(c.probe(0));
        assert!(!c.probe(way_stride));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = small();
        c.access(0x40, true);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40), "already gone");
    }

    #[test]
    fn writeback_counted() {
        let mut c = small();
        let sets = c.config().sets();
        let way_stride = (sets * 32) as u64;
        c.access(0, true);
        c.access(way_stride, false);
        c.access(2 * way_stride, false); // evicts dirty line 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lines_covering_range() {
        let c = small();
        let v: Vec<u64> = c.lines_covering(0x21, 0x40).collect();
        assert_eq!(v, vec![0x20, 0x40, 0x60]);
        let single: Vec<u64> = c.lines_covering(0x20, 1).collect();
        assert_eq!(single, vec![0x20]);
    }
}
