//! Out-of-order superscalar timing model with decoupled vector lanes —
//! the study's equivalent of the Jinks simulator.
//!
//! The model consumes the dynamic instruction stream produced by
//! [`simdsim_emu`] (trace-driven timing, execution-driven functional
//! semantics) and computes cycle timestamps per instruction through a
//! renamed, windowed dataflow model:
//!
//! * **front end** — `way`-wide fetch, taken branches end a fetch group,
//!   gshare branch prediction with a redirect penalty on mispredicts,
//!   re-order-buffer occupancy stalls;
//! * **rename** — per-file physical-register budgets (Table III: e.g.
//!   40 physical MMX registers vs 20 matrix registers at 2-way);
//! * **issue** — per-class issue bandwidth and functional-unit pools;
//!   full-vector-length matrix operations occupy a SIMD unit for
//!   `ceil(VL / lanes)` cycles (the distributed-lane datapath of Fig. 2);
//! * **memory** — scalar/1D accesses through the L1 ports, matrix accesses
//!   through the L2 vector cache port ([`simdsim_mem`]);
//! * **commit** — in-order, `way` per cycle; each committed instruction
//!   attributes its commit-to-commit gap to its code region, giving the
//!   paper's Figure-6 scalar/vector cycle split.
//!
//! Simplifications (documented in DESIGN.md): wrong-path instructions are
//! not simulated (mispredicts stall the front end), store-to-load
//! forwarding is modelled conservatively at cache-line granularity, and
//! issue-queue capacity is subsumed by the ROB window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod config;
mod model;
mod profile;

pub use bpred::Gshare;
pub use config::PipeConfig;
pub use model::{
    simulate, simulate_decoded, simulate_decoded_profiled, simulate_in, PipeStats, Pipeline,
};
pub use profile::{CpiStack, StallCause, NUM_REGIONS, NUM_STALL_CAUSES, REGION_LABELS};

/// Timing-model revision, part of `simdsim-sweep`'s content-addressed
/// cache key.  Bump whenever a change to this crate (or a behavioural
/// change it absorbs from `simdsim-emu`/`simdsim-mem`) alters simulated
/// timing, so cached results from older builds are never reused.
pub const REVISION: u32 = 1;
