//! The timestamp-based out-of-order pipeline model.

use crate::profile::{CpiAccum, CpiStack, StallCause, NUM_REGIONS};
use crate::{Gshare, PipeConfig};
use serde::{Deserialize, Serialize};
use simdsim_emu::{DynInstr, EmuError, Machine, MemAccess, RunStats, TraceSink};
use simdsim_isa::Decoded;
use simdsim_isa::{
    ClassCounts, DecodedBlock, DecodedInstr, FuKind, Instr, Program, Region, EDGE_INTERNAL,
    MAX_BLOCK_LEN, NUM_FLAT_REGS, RENAME_NONE,
};
use simdsim_mem::{CacheStats, MemSystem, MemTimingStats};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const RING: usize = 1 << 14;

/// Slots of the direct-mapped store-line table.  Machines in this
/// workspace top out at 4 MiB of memory (`1 << 22` bytes), i.e. `1 << 17`
/// 32-byte lines; doubling that leaves headroom, and larger addresses wrap
/// (aliasing only ever *delays* a load, conservatively, and stays
/// deterministic).
const STORE_LINE_SLOTS: usize = 1 << 18;
const CLS_INT: usize = 0;
const CLS_FP: usize = 1;
const CLS_MEM: usize = 2;
const CLS_SIMD: usize = 3;
const CLS_VMEM: usize = 4;

/// Timing statistics of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    /// Total execution cycles (cycle of the last commit).
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Committed instructions per Figure-7 class.
    pub counts: ClassCounts,
    /// Cycles attributed to scalar-region code (Figure 6).
    pub scalar_region_cycles: u64,
    /// Cycles attributed to vector-region (kernel) code.
    pub vector_region_cycles: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// L1 cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// Memory-system timing counters.
    pub memsys: MemTimingStats,
}

impl PipeStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction ratio.
    #[must_use]
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Register-ready timestamps in one flat array across all architectural
/// register files, indexed by [`simdsim_isa::RegId::flat`].  The
/// predecoded table carries the flat indices of every operand
/// (`DecodedInstr::flat_uses`/`flat_defs`), so an operand lookup on the
/// commit path is a single array index — no per-register-file match.
/// Registers never written report cycle 0.
#[derive(Debug)]
struct Scoreboard {
    t: [u64; NUM_FLAT_REGS],
}

impl Scoreboard {
    const fn new() -> Self {
        Self {
            t: [0; NUM_FLAT_REGS],
        }
    }
}

/// The pipeline model; implements [`TraceSink`] so the emulator can
/// stream instructions straight into it.
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipeConfig,
    mem: MemSystem,
    bpred: Gshare,
    reg_ready: Scoreboard,
    int_fu: Vec<u64>,
    fp_fu: Vec<u64>,
    simd_fu: Vec<u64>,
    ring: Vec<(u64, [u8; 5])>,
    limits: [u8; 5],
    next_fetch: u64,
    fetch_used: usize,
    rob: VecDeque<u64>,
    iq: BinaryHeap<Reverse<u64>>,
    commit_cursor: u64,
    commit_used: usize,
    rename: [VecDeque<u64>; 3],
    rename_caps: [usize; 3],
    /// Direct-mapped completion times of in-flight stores, indexed by
    /// 32-byte line index (the last per-commit hash on the memory path).
    /// Slot 0 means "no store recorded", exactly like a hash miss did.
    store_lines: Box<[u64]>,
    region_cycles: [u64; 2],
    last_commit: u64,
    instrs: u64,
    counts: ClassCounts,
    branches: u64,
    mispredicts: u64,
    cleanup_at: u64,
    /// Cycle-accounting accumulator; `None` keeps the hot path free of
    /// profiling work.  Boxed so the (cold) counters stay off the
    /// pipeline's cache-resident core.
    prof: Option<Box<CpiAccum>>,
}

/// Claims the first cycle at or after `from` with a free `cls` slot in the
/// cycle-bucketed resource ring.  A free function over the ring fields so
/// [`Pipeline::fu_issue`] can hold a mutable borrow of an FU pool across
/// the call.
fn slot(ring: &mut [(u64, [u8; 5])], limits: &[u8; 5], cls: usize, from: u64) -> u64 {
    let lim = limits[cls];
    let mut c = from;
    loop {
        let e = &mut ring[(c as usize) & (RING - 1)];
        if e.0 != c {
            *e = (c, [0; 5]);
        }
        if e.1[cls] < lim {
            e.1[cls] += 1;
            return c;
        }
        c += 1;
    }
}

/// Cache-line keys (32-byte granules) touched by one memory access, as an
/// allocation-free iterator shared by store→load ordering and store
/// recording.
fn line_keys(acc: &MemAccess) -> impl Iterator<Item = u64> + '_ {
    (0..u64::from(acc.rows)).flat_map(move |r| {
        let row_addr = (acc.addr as i64 + acc.stride * r as i64) as u64;
        let first = row_addr / 32;
        let last = (row_addr + u64::from(acc.row_bytes).max(1) - 1) / 32;
        first..=last
    })
}

impl Pipeline {
    /// Creates a pipeline in its reset state.
    #[must_use]
    pub fn new(cfg: PipeConfig) -> Self {
        let mut p = Self {
            mem: MemSystem::new(cfg.mem),
            bpred: Gshare::new(cfg.bpred_entries),
            reg_ready: Scoreboard::new(),
            int_fu: Vec::new(),
            fp_fu: Vec::new(),
            simd_fu: Vec::new(),
            ring: vec![(u64::MAX, [0; 5]); RING],
            limits: [0; 5],
            next_fetch: 0,
            fetch_used: 0,
            rob: VecDeque::with_capacity(cfg.rob + 1),
            iq: BinaryHeap::new(),
            commit_cursor: 0,
            commit_used: 0,
            rename: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            rename_caps: [0; 3],
            store_lines: vec![0; STORE_LINE_SLOTS].into_boxed_slice(),
            region_cycles: [0; 2],
            last_commit: 0,
            instrs: 0,
            counts: ClassCounts::default(),
            branches: 0,
            mispredicts: 0,
            cleanup_at: 1 << 16,
            prof: None,
            cfg,
        };
        p.reset(cfg);
        p
    }

    /// Enables or disables cycle accounting.  Profiling only *observes*
    /// the timestamps the model computes — enabling it never changes
    /// simulated timing (asserted by the model's tests).
    pub fn set_profiling(&mut self, on: bool) {
        match (on, self.prof.is_some()) {
            (true, false) => self.prof = Some(Box::default()),
            (false, true) => self.prof = None,
            _ => {}
        }
    }

    /// Returns the pipeline to its reset state under a (possibly new)
    /// configuration, reusing the large buffers — the 16K-entry resource
    /// ring and the store-line table — so a pooled pipeline replaying many
    /// cells allocates nothing per cell.
    pub fn reset(&mut self, cfg: PipeConfig) {
        self.limits = [
            cfg.int_fus as u8,
            cfg.fp_fus as u8,
            cfg.mem_fus as u8,
            cfg.simd_issue as u8,
            1,
        ];
        self.rename_caps = [
            cfg.phys_int.saturating_sub(simdsim_isa::NUM_IREGS).max(1),
            cfg.phys_fp.saturating_sub(simdsim_isa::NUM_FREGS).max(1),
            cfg.simd_inflight(),
        ];
        self.mem = MemSystem::new(cfg.mem);
        self.bpred = Gshare::new(cfg.bpred_entries);
        self.reg_ready = Scoreboard::new();
        self.int_fu.clear();
        self.int_fu.resize(cfg.int_fus, 0);
        self.fp_fu.clear();
        self.fp_fu.resize(cfg.fp_fus, 0);
        self.simd_fu.clear();
        self.simd_fu.resize(cfg.simd_fus, 0);
        self.ring.fill((u64::MAX, [0; 5]));
        self.next_fetch = 0;
        self.fetch_used = 0;
        self.rob.clear();
        self.iq.clear();
        self.commit_cursor = 0;
        self.commit_used = 0;
        for fifo in &mut self.rename {
            fifo.clear();
        }
        self.store_lines.fill(0);
        self.region_cycles = [0; 2];
        self.last_commit = 0;
        self.instrs = 0;
        self.counts = ClassCounts::default();
        self.branches = 0;
        self.mispredicts = 0;
        self.cleanup_at = 1 << 16;
        if let Some(p) = self.prof.as_deref_mut() {
            p.reset();
        }
        self.cfg = cfg;
    }

    fn fu_issue(&mut self, pool: usize, cls: usize, ready: u64, occupancy: u64) -> u64 {
        // One match, mutable borrow up front; `slot` only touches the
        // (disjoint) ring fields.
        let pool_vec = match pool {
            0 => &mut self.int_fu,
            1 => &mut self.fp_fu,
            _ => &mut self.simd_fu,
        };
        let (idx, free) = pool_vec
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| **f)
            .map(|(i, f)| (i, *f))
            .expect("non-empty FU pool");
        let candidate = ready.max(free);
        let issue = slot(&mut self.ring, &self.limits, cls, candidate);
        pool_vec[idx] = issue + occupancy;
        issue
    }

    /// Front end of one instruction: fetch-group accounting, ROB head
    /// release, issue-queue drain and rename-budget stalls.  Returns the
    /// dispatch cycle.  Shared by the per-instruction and fused block
    /// paths so the two cannot diverge.
    #[inline]
    fn stage_front(&mut self, dec: &DecodedInstr) -> u64 {
        // ------------------------------------------------------------
        // Fetch
        // ------------------------------------------------------------
        if self.fetch_used >= self.cfg.way {
            self.next_fetch += 1;
            self.fetch_used = 0;
        }
        let mut fetch = self.next_fetch;
        let fetch_base = fetch;
        if self.rob.len() >= self.cfg.rob {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            fetch = fetch.max(oldest);
        }
        if fetch > self.next_fetch {
            self.next_fetch = fetch;
            self.fetch_used = 0;
        }
        self.fetch_used += 1;

        // ------------------------------------------------------------
        // Rename (physical register budgets) and issue-queue occupancy
        // ------------------------------------------------------------
        let mut dispatch = fetch + self.cfg.frontend_depth;
        // Entries leave the scheduler when they issue; dispatch stalls
        // while the queue is full.
        while let Some(Reverse(t)) = self.iq.peek().copied() {
            if t <= dispatch {
                self.iq.pop();
            } else if self.iq.len() >= self.cfg.iq {
                self.iq.pop();
                dispatch = dispatch.max(t + 1);
            } else {
                break;
            }
        }
        if dec.def_rename != RENAME_NONE {
            let c = dec.def_rename as usize;
            while self.rename[c].len() >= self.rename_caps[c] {
                let t = self.rename[c].pop_front().expect("rename fifo non-empty");
                dispatch = dispatch.max(t);
            }
        }
        if let Some(p) = self.prof.as_deref_mut() {
            p.begin_instr();
            // ROB-release raise plus issue-queue/rename-budget raise: both
            // are back-pressure on dispatch, charged as queue pressure.
            p.cur_front = (fetch - fetch_base) + (dispatch - (fetch + self.cfg.frontend_depth));
            p.cur_branch = p.redirect_until != 0 && fetch_base <= p.redirect_until;
        }
        dispatch
    }

    /// Issue-and-execute stage: claims a functional unit (and the memory
    /// system for loads/stores) from `ready` and returns the completion
    /// cycle.
    #[inline]
    fn stage_execute(&mut self, di: &DynInstr, dec: &DecodedInstr, ready: u64) -> u64 {
        match dec.fu {
            FuKind::None => ready,
            FuKind::IntAlu => {
                let issue = self.fu_issue(0, CLS_INT, ready, u64::from(dec.occ));
                self.prof_exec(issue - ready, u64::from(dec.lat), 0);
                issue + u64::from(dec.lat)
            }
            FuKind::IntMul => {
                let issue = self.fu_issue(0, CLS_INT, ready, u64::from(dec.occ));
                self.prof_exec(issue - ready, u64::from(dec.lat), 0);
                issue + u64::from(dec.lat)
            }
            FuKind::Fp => {
                let issue = self.fu_issue(1, CLS_FP, ready, u64::from(dec.occ));
                self.prof_exec(issue - ready, u64::from(dec.lat), 0);
                issue + u64::from(dec.lat)
            }
            FuKind::Simd => {
                let base = u64::from(dec.lat);
                let occ = if dec.is_full_vl {
                    u64::from(di.vl).div_ceil(self.cfg.lanes as u64).max(1)
                } else {
                    1
                };
                let issue = self.fu_issue(2, CLS_SIMD, ready, occ);
                self.prof_exec(issue - ready, occ - 1 + base, 0);
                issue + occ - 1 + base
            }
            FuKind::Mem => {
                let acc = di.mem.expect("memory instruction carries an access");
                let issue = slot(&mut self.ring, &self.limits, CLS_MEM, ready);
                let start = self.order_against_stores(issue, &acc);
                let done =
                    self.mem
                        .scalar_access(start, acc.addr, u64::from(acc.row_bytes), acc.store);
                self.record_store(&acc, done);
                if acc.store {
                    self.prof_exec(start - ready, 0, 0);
                    start + 1 // retire via store buffer
                } else {
                    self.prof_exec(start - ready, 0, done - start);
                    done
                }
            }
            FuKind::VecMem => {
                let acc = di.mem.expect("vector memory instruction carries an access");
                let issue = slot(&mut self.ring, &self.limits, CLS_VMEM, ready);
                let start = self.order_against_stores(issue, &acc);
                let done = self.mem.vector_access(start, &acc);
                self.record_store(&acc, done);
                if acc.store {
                    self.prof_exec(start - ready, 0, 0);
                    start + 1
                } else {
                    self.prof_exec(start - ready, 0, done - start);
                    done
                }
            }
        }
    }

    /// Records the in-flight instruction's issue wait, execution latency
    /// and load latency into the profiling scratch.  A no-op (one branch)
    /// when profiling is off.
    #[inline]
    fn prof_exec(&mut self, fu_wait: u64, exec_lat: u64, mem_wait: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.cur_fu_wait = fu_wait;
            p.cur_exec_lat = exec_lat;
            p.cur_mem_wait = mem_wait;
        }
    }

    /// Back end of one instruction: scheduler-slot release time, branch
    /// prediction, in-order commit, ROB/rename occupancy and statistics.
    #[inline]
    fn stage_retire(
        &mut self,
        di: &DynInstr,
        dec: &DecodedInstr,
        dispatch: u64,
        ready: u64,
        complete: u64,
    ) {
        // Scheduler entry is held from dispatch to issue; completion is a
        // safe upper bound for memory operations whose issue the memory
        // system decides.
        let iq_leave = match dec.fu {
            FuKind::None => dispatch,
            FuKind::Mem | FuKind::VecMem => ready.max(dispatch),
            _ => complete.saturating_sub(1).max(dispatch),
        };
        self.iq.push(Reverse(iq_leave.min(dispatch + 64)));

        // ------------------------------------------------------------
        // Control flow
        // ------------------------------------------------------------
        match di.instr {
            Instr::Branch { .. } => {
                self.branches += 1;
                let actual = di.taken.is_some();
                let predicted = self.bpred.predict(di.pc);
                self.bpred.update(di.pc, actual);
                if predicted != actual {
                    self.mispredicts += 1;
                    let restart = complete + self.cfg.redirect_penalty;
                    if restart > self.next_fetch {
                        self.next_fetch = restart;
                        self.fetch_used = 0;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.redirect_until = p.redirect_until.max(restart);
                        }
                    }
                } else {
                    // One branch prediction per cycle: every branch ends
                    // its fetch group (era-typical front end; this is what
                    // keeps wide fetch from scaling on branchy scalar
                    // code).
                    self.next_fetch += 1;
                    self.fetch_used = 0;
                }
            }
            Instr::Jump { .. } => {
                self.next_fetch += 1;
                self.fetch_used = 0;
            }
            _ => {}
        }

        // ------------------------------------------------------------
        // Commit (in order, `way` per cycle)
        // ------------------------------------------------------------
        let mut c = (complete + 1).max(self.commit_cursor);
        if c == self.commit_cursor && self.commit_used >= self.cfg.way {
            c += 1;
        }
        if c > self.commit_cursor {
            self.commit_cursor = c;
            self.commit_used = 0;
        }
        self.commit_used += 1;

        self.rob.push_back(c);
        if dec.def_rename != RENAME_NONE {
            self.rename[dec.def_rename as usize].push_back(c);
        }

        let region_idx = match di.region {
            Region::Scalar => 0,
            Region::Vector => 1,
        };
        let prev_commit = self.last_commit;
        self.region_cycles[region_idx] += c.saturating_sub(self.last_commit);
        self.last_commit = c;
        self.instrs += 1;
        self.counts.add(dec.class, 1);

        if self.prof.is_some() {
            let way = self.cfg.way as u64;
            let l1_lat = self.cfg.mem.l1.latency;
            let mem_lat = self.cfg.mem.mem_latency;
            let redirect_pen = self.cfg.redirect_penalty;
            let used = self.commit_used as u64;
            let p = self.prof.as_deref_mut().expect("profiling enabled");
            // Commit slots are ordered `(cycle, position)`; this commit
            // landed in slot `(c-1)·way + (used-1)`, strictly after the
            // previous one (the cursor never moves backwards and `used`
            // is capped at `way`).
            let slot_idx = (c - 1) * way + (used - 1);
            let gap = slot_idx - p.next_slot;
            if gap > 0 {
                // Charge the whole gap to the dominant component of the
                // instruction that ended it.  Every weight is the
                // *incremental* delay the component added beyond the
                // previous commit: commit is in order, so anything bounded
                // by an older instruction's completion (operand readiness,
                // window-occupancy releases) is already behind
                // `prev_commit` — measuring from dispatch instead would
                // double-count every upstream stall and drown the
                // per-instruction latencies that actually pace a full
                // window.  Ties break in evaluation order below — memory
                // first, width last — so attribution is deterministic.
                let over = dispatch.saturating_sub(prev_commit);
                let w_branch = if p.cur_branch { over + redirect_pen } else { 0 };
                let w_queue = if !p.cur_branch && p.cur_front > 0 {
                    over
                } else {
                    0
                };
                let w_dep = ready.saturating_sub(dispatch.max(prev_commit)) + p.cur_exec_lat;
                let mem_cause = if p.cur_mem_wait >= mem_lat {
                    StallCause::Memory
                } else if p.cur_mem_wait > l1_lat {
                    StallCause::L2
                } else {
                    StallCause::L1
                };
                let mut cause = StallCause::IssueWidth;
                let mut best = 0;
                for (w, cs) in [
                    (p.cur_mem_wait, mem_cause),
                    (w_branch, StallCause::BranchRecovery),
                    (w_dep, StallCause::DataDep),
                    (p.cur_fu_wait, StallCause::FuContention),
                    (w_queue, StallCause::RenameQueue),
                ] {
                    if w > best {
                        best = w;
                        cause = cs;
                    }
                }
                p.stall_slots[cause as usize * NUM_REGIONS + region_idx] += gap;
            }
            p.issue_slots[region_idx] += 1;
            p.class_slots[dec.class as usize] += 1;
            p.next_slot = slot_idx + 1;
            p.last_region = region_idx;
        }

        if self.instrs >= self.cleanup_at {
            // Same policy the old HashMap scoreboard had: drop store
            // entries already behind the commit cursor.  A zeroed slot is
            // indistinguishable from "never stored", which is exactly what
            // `retain` produced.
            let cursor = self.commit_cursor;
            for t in self.store_lines.iter_mut() {
                if *t < cursor {
                    *t = 0;
                }
            }
            self.cleanup_at = self.instrs + (1 << 16);
        }
    }

    /// Per-instruction path: operand readiness from the flat scoreboard,
    /// destination write-back after execute.
    fn push_instr(&mut self, di: &DynInstr, dec: &DecodedInstr) {
        let dispatch = self.stage_front(dec);
        let mut ready = dispatch;
        for k in 0..dec.du.uses().len() {
            ready = ready.max(self.reg_ready.t[dec.flat_uses[k] as usize]);
        }
        let complete = self.stage_execute(di, dec, ready);
        if !dec.du.defs().is_empty() {
            self.reg_ready.t[dec.flat_defs[0] as usize] = complete;
        }
        self.stage_retire(di, dec, dispatch, ready, complete);
    }

    /// Fused block path: scoreboards a whole superblock in one call.
    /// Operand readiness comes from the block's precomputed dependence
    /// edges — block-internal producers resolve against a local
    /// completion-time array, live-ins against the flat scoreboard — and
    /// scoreboard write-back is deferred to one write per live-out
    /// register.  Cycle-exact with the per-instruction path: internal
    /// edges substitute exactly for the scoreboard reads they shadow, and
    /// `live_out` holds the last writer of every register the block
    /// defines.
    fn push_block_fused(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], block: &DecodedBlock) {
        let mut complete = [0u64; MAX_BLOCK_LEN];
        for (rel, (di, dec)) in dis.iter().zip(decs).enumerate() {
            let dispatch = self.stage_front(dec);
            let mut ready = dispatch;
            let lo = block.edge_off[rel] as usize;
            let hi = block.edge_off[rel + 1] as usize;
            for &e in &block.edges[lo..hi] {
                let t = if e & EDGE_INTERNAL != 0 {
                    complete[(e & !EDGE_INTERNAL) as usize]
                } else {
                    self.reg_ready.t[e as usize]
                };
                ready = ready.max(t);
            }
            let c = self.stage_execute(di, dec, ready);
            complete[rel] = c;
            self.stage_retire(di, dec, dispatch, ready, c);
        }
        for &(flat, writer) in &block.live_out {
            self.reg_ready.t[flat as usize] = complete[writer as usize];
        }
    }

    fn order_against_stores(&self, issue: u64, acc: &MemAccess) -> u64 {
        let mut start = issue;
        for key in line_keys(acc) {
            start = start.max(self.store_lines[(key as usize) & (STORE_LINE_SLOTS - 1)]);
        }
        start
    }

    fn record_store(&mut self, acc: &MemAccess, done: u64) {
        if !acc.store {
            return;
        }
        for key in line_keys(acc) {
            let t = &mut self.store_lines[(key as usize) & (STORE_LINE_SLOTS - 1)];
            *t = (*t).max(done);
        }
    }

    /// Consumes the pipeline and returns the run statistics.
    #[must_use]
    pub fn finalize(self) -> PipeStats {
        self.stats()
    }

    /// The run statistics so far.  A pooled pipeline reads these before
    /// being [`reset`](Pipeline::reset) for the next cell.
    #[must_use]
    pub fn stats(&self) -> PipeStats {
        PipeStats {
            cycles: self.last_commit,
            instrs: self.instrs,
            counts: self.counts,
            scalar_region_cycles: self.region_cycles[0],
            vector_region_cycles: self.region_cycles[1],
            branches: self.branches,
            mispredicts: self.mispredicts,
            l1: self.mem.l1_stats(),
            l2: self.mem.l2_stats(),
            memsys: self.mem.stats(),
        }
    }

    /// The run's CPI stack, or `None` when profiling is off.
    ///
    /// The drained tail after the last commit (`cycles × way` minus the
    /// slots walked so far) is charged to [`StallCause::IssueWidth`] in
    /// the last committed region at read time, so the returned stack
    /// always satisfies `issue_total() + stall_total() == slots`.
    #[must_use]
    pub fn cpi_stack(&self) -> Option<CpiStack> {
        let p = self.prof.as_deref()?;
        let way = self.cfg.way as u64;
        let cycles = self.last_commit;
        let slots = cycles * way;
        let mut stall_slots = p.stall_slots;
        // `next_slot` never exceeds `last_commit × way`: the last commit
        // used at most `way` positions of cycle `last_commit`.
        stall_slots[StallCause::IssueWidth as usize * NUM_REGIONS + p.last_region] +=
            slots - p.next_slot;
        Some(CpiStack {
            cycles,
            way,
            slots,
            issue_slots: p.issue_slots,
            class_slots: p.class_slots,
            stall_slots,
        })
    }
}

impl TraceSink for Pipeline {
    fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
        self.push_instr(di, dec);
    }

    fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], block: &DecodedBlock) {
        if dis.len() == decs.len() {
            self.push_block_fused(dis, decs, block);
        } else {
            // Side exit (fault or instruction limit mid-block): the
            // block's live-out map describes instructions that never
            // committed, so replay the prefix per instruction.
            for (di, dec) in dis.iter().zip(decs) {
                self.push_instr(di, dec);
            }
        }
    }
}

thread_local! {

    /// Per-thread scratch machine reused across [`simulate`] calls, so a
    /// sweep worker replaying many cells resets one resident memory image
    /// instead of cloning a fresh multi-megabyte machine per cell.
    static SCRATCH: RefCell<Option<Machine>> = const { RefCell::new(None) };

    /// Per-thread pooled [`Pipeline`] reused across simulations: the
    /// 16K-entry resource ring and the store-line table dominate a
    /// pipeline's footprint, and [`Pipeline::reset`] recycles both.
    static PIPE_POOL: RefCell<Option<Pipeline>> = const { RefCell::new(None) };
}

/// Streams `machine`'s decoded trace through the per-thread pooled
/// pipeline configured by `cfg`.
fn run_pooled(
    machine: &mut Machine,
    dec: &Decoded,
    cfg: &PipeConfig,
    max_instrs: u64,
    profile: bool,
) -> Result<(RunStats, PipeStats, Option<CpiStack>), EmuError> {
    PIPE_POOL.with(|p| {
        let mut slot = p.borrow_mut();
        let pipe = match slot.as_mut() {
            Some(pipe) => {
                pipe.reset(*cfg);
                pipe
            }
            None => slot.insert(Pipeline::new(*cfg)),
        };
        pipe.set_profiling(profile);
        let rs = machine.run_decoded(dec, pipe, max_instrs)?;
        Ok((rs, pipe.stats(), pipe.cpi_stack()))
    })
}

/// Runs `program` on a copy of `machine`'s state (the input machine is
/// untouched), streaming the dynamic trace through a [`Pipeline`]
/// configured by `cfg`.
///
/// The working state lives in a per-thread scratch [`Machine`] that is
/// reset from `machine` via [`Machine::reset_from`], so repeated calls on
/// one thread reuse the same memory image allocation.
///
/// Returns the architectural statistics (from the emulator) and the
/// timing statistics (from the pipeline).
///
/// # Errors
///
/// Propagates emulation errors ([`EmuError`]).
pub fn simulate(
    program: &Program,
    machine: &Machine,
    cfg: &PipeConfig,
    max_instrs: u64,
) -> Result<(RunStats, PipeStats), EmuError> {
    simulate_decoded(&program.decode(), machine, cfg, max_instrs)
}

/// [`simulate`] for callers that already hold the program's predecoded
/// table (e.g. the sweep engine's per-worker decode memo), skipping the
/// per-call [`Program::decode`].
///
/// # Errors
///
/// Propagates emulation errors ([`EmuError`]).
pub fn simulate_decoded(
    dec: &Decoded,
    machine: &Machine,
    cfg: &PipeConfig,
    max_instrs: u64,
) -> Result<(RunStats, PipeStats), EmuError> {
    let (rs, t, _) = scratch_run(dec, machine, cfg, max_instrs, false)?;
    Ok((rs, t))
}

/// [`simulate_decoded`] with cycle accounting enabled: additionally
/// returns the run's [`CpiStack`].  Profiling observes the timestamps the
/// model already computes, so the `PipeStats` are identical to an
/// unprofiled run's (asserted by this crate's tests) at a small
/// throughput cost.
///
/// # Errors
///
/// Propagates emulation errors ([`EmuError`]).
pub fn simulate_decoded_profiled(
    dec: &Decoded,
    machine: &Machine,
    cfg: &PipeConfig,
    max_instrs: u64,
) -> Result<(RunStats, PipeStats, CpiStack), EmuError> {
    let (rs, t, stack) = scratch_run(dec, machine, cfg, max_instrs, true)?;
    Ok((rs, t, stack.expect("profiling was enabled")))
}

fn scratch_run(
    dec: &Decoded,
    machine: &Machine,
    cfg: &PipeConfig,
    max_instrs: u64,
    profile: bool,
) -> Result<(RunStats, PipeStats, Option<CpiStack>), EmuError> {
    SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        let m = match slot.as_mut() {
            Some(m) => {
                m.reset_from(machine);
                m
            }
            None => slot.insert(machine.clone()),
        };
        run_pooled(m, dec, cfg, max_instrs, profile)
    })
}

/// Runs `program` on `machine` **in place** (its registers and memory are
/// consumed as the run's working state), streaming the dynamic trace
/// through a [`Pipeline`] configured by `cfg`.  Callers that manage their
/// own machine reuse ([`Machine::reset_from`]) use this directly;
/// [`simulate`] wraps it with a per-thread scratch machine.
///
/// # Errors
///
/// Propagates emulation errors ([`EmuError`]).
pub fn simulate_in(
    machine: &mut Machine,
    program: &Program,
    cfg: &PipeConfig,
    max_instrs: u64,
) -> Result<(RunStats, PipeStats), EmuError> {
    let (rs, t, _) = run_pooled(machine, &program.decode(), cfg, max_instrs, false)?;
    Ok((rs, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_asm::Asm;
    use simdsim_isa::{Cond, Esz, Ext, VOp};

    fn run(cfg: &PipeConfig, build: impl FnOnce(&mut Asm)) -> PipeStats {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let prog = a.finish();
        let machine = Machine::new(cfg.ext, 1 << 20);
        let (_, stats) = simulate(&prog, &machine, cfg, 10_000_000).unwrap();
        stats
    }

    #[test]
    fn wider_machine_is_faster_on_parallel_code() {
        // Independent ALU ops: 8-way should beat 2-way clearly.
        let body = |a: &mut Asm| {
            let regs: Vec<_> = (0..16).map(|_| a.ireg()).collect();
            for r in &regs {
                a.li(*r, 1);
            }
            for _ in 0..200 {
                for r in &regs {
                    a.addi(*r, *r, 1);
                }
            }
        };
        let s2 = run(&PipeConfig::paper(2, Ext::Mmx64), body);
        let s8 = run(&PipeConfig::paper(8, Ext::Mmx64), body);
        assert!(
            s2.cycles > s8.cycles * 2,
            "2-way {} vs 8-way {}",
            s2.cycles,
            s8.cycles
        );
    }

    #[test]
    fn dependent_chain_limits_ipc() {
        let stats = run(&PipeConfig::paper(8, Ext::Mmx64), |a| {
            let r = a.ireg();
            a.li(r, 0);
            for _ in 0..1000 {
                a.addi(r, r, 1);
            }
        });
        assert!(stats.ipc() < 1.3, "serial chain IPC {}", stats.ipc());
    }

    #[test]
    fn loads_wait_for_memory() {
        let cfg = PipeConfig::paper(2, Ext::Mmx64);
        let stats = run(&cfg, |a| {
            let (p, t) = (a.ireg(), a.ireg());
            a.li(p, 4096);
            // 64 cold loads, each to a fresh line, dependent on the last.
            for _ in 0..64 {
                a.ld(t, p, 0);
                a.add(p, p, t); // fake dependency
                a.addi(p, p, 64);
            }
        });
        // Every second access misses to memory (~500 cycles), the rest hit
        // the 128-byte L2 lines.
        assert!(stats.cycles > 15_000, "cycles {}", stats.cycles);
        assert!(stats.l1.misses >= 64);
    }

    #[test]
    fn branch_mispredicts_counted() {
        let cfg = PipeConfig::paper(2, Ext::Mmx64);
        let stats = run(&cfg, |a| {
            // Data-dependent branch pattern from a pseudo-random register.
            let (x, i, t) = (a.ireg(), a.ireg(), a.ireg());
            a.li(x, 0x9e3779b9);
            a.li(i, 0);
            a.for_loop(i, 500, |a| {
                a.muli(x, x, 1103515245);
                a.addi(x, x, 12345);
                a.srli(t, x, 16);
                a.and(t, t, 1);
                a.if_(Cond::Eq, t, 0, |a| {
                    a.addi(x, x, 7);
                });
            });
        });
        assert!(stats.branches >= 1000);
        assert!(stats.mispredicts > 50, "mispredicts {}", stats.mispredicts);
        assert!(stats.mispredict_ratio() < 0.9);
    }

    #[test]
    fn vector_occupancy_scales_with_vl() {
        // Same number of matrix ops at VL=4 vs VL=16: the latter should
        // take roughly 4x the SIMD execution time.
        let cfg = PipeConfig::paper(2, Ext::Vmmx128);
        let mk = |vl: i32| {
            move |a: &mut Asm| {
                let (m1, m2) = (a.mreg(), a.mreg());
                let p = a.arg(0);
                a.setvl(vl);
                a.mload(m1, p, 16, 16);
                a.mload(m2, p, 16, 16);
                // long dependent chain of full-VL ops
                for _ in 0..300 {
                    a.mop(VOp::Add(Esz::H), m1, m1, m2);
                }
            }
        };
        let s4 = run(&cfg, mk(4));
        let s16 = run(&cfg, mk(16));
        let ratio = s16.cycles as f64 / s4.cycles as f64;
        assert!(ratio > 2.0, "occupancy ratio {ratio}");
    }

    #[test]
    fn store_load_ordering_respected() {
        let cfg = PipeConfig::paper(4, Ext::Mmx64);
        let stats = run(&cfg, |a| {
            let (p, t) = (a.ireg(), a.ireg());
            a.li(p, 8192);
            a.li(t, 42);
            for _ in 0..50 {
                a.sd(t, p, 0);
                a.ld(t, p, 0); // must wait for the store
                a.addi(t, t, 1);
            }
        });
        assert!(stats.instrs > 100);
    }

    #[test]
    fn fused_block_path_matches_per_instruction_fallback() {
        use simdsim_isa::DecodedBlock;

        /// Forwards every block to the per-instruction path, forcing the
        /// fallback the fused engine takes on side exits.
        struct PerInstr(Pipeline);
        impl TraceSink for PerInstr {
            fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
                self.0.push(di, dec);
            }
            fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], _b: &DecodedBlock) {
                for (di, dec) in dis.iter().zip(decs) {
                    self.0.push(di, dec);
                }
            }
        }

        // A branchy, memory-heavy, vector-tinged workload: exercises
        // internal and external dependence edges, RMW defs, stores and
        // multi-block control flow.
        let mut a = Asm::new();
        let (x, i, t, p) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
        a.li(x, 0x1234_5678);
        a.li(p, 4096);
        a.li(i, 0);
        a.for_loop(i, 300, |a| {
            a.muli(x, x, 1103515245);
            a.addi(x, x, 12345);
            a.sd(x, p, 0);
            a.ld(t, p, 0);
            a.add(x, x, t);
            a.srli(t, x, 13);
            a.if_(Cond::Eq, t, 0, |a| {
                a.addi(x, x, 7);
            });
            a.addi(p, p, 32);
        });
        a.halt();
        let prog = a.finish();
        let dec = prog.decode();
        let cfg = PipeConfig::paper(4, Ext::Mmx64);
        let machine = Machine::new(cfg.ext, 1 << 20);

        let fused = {
            let mut m = machine.clone();
            let mut pipe = Pipeline::new(cfg);
            m.run_decoded(&dec, &mut pipe, 1_000_000).unwrap();
            pipe.finalize()
        };
        let fallback = {
            let mut m = machine.clone();
            let mut sink = PerInstr(Pipeline::new(cfg));
            m.run_decoded(&dec, &mut sink, 1_000_000).unwrap();
            sink.0.finalize()
        };
        assert_eq!(
            fused, fallback,
            "fused block path must be cycle-exact with the per-instruction path"
        );
        assert!(fused.instrs > 1000);
        assert!(fused.branches > 0 && fused.l1.misses > 0);
    }

    /// Profiled run of `build` under `cfg`, via an explicit pipeline so
    /// the pooled thread-local state cannot leak between assertions.
    fn run_profiled(cfg: &PipeConfig, build: impl FnOnce(&mut Asm)) -> (PipeStats, CpiStack) {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let prog = a.finish();
        let dec = prog.decode();
        let mut m = Machine::new(cfg.ext, 1 << 20);
        let mut pipe = Pipeline::new(*cfg);
        pipe.set_profiling(true);
        m.run_decoded(&dec, &mut pipe, 10_000_000).unwrap();
        let stats = pipe.stats();
        let stack = pipe.cpi_stack().expect("profiling enabled");
        (stats, stack)
    }

    fn assert_accounts(stats: &PipeStats, stack: &CpiStack) {
        assert_eq!(stack.cycles, stats.cycles);
        assert_eq!(stack.slots, stack.cycles * stack.way);
        assert_eq!(
            stack.issue_total() + stack.stall_total(),
            stack.slots,
            "CPI stack must account for every commit slot"
        );
        assert_eq!(stack.issue_total(), stats.instrs);
        assert_eq!(stack.class_slots.iter().sum::<u64>(), stats.instrs);
    }

    #[test]
    fn cpi_stack_sums_to_total_slots() {
        // The branchy/memory/dependence mix from the fused-parity test,
        // across all three widths: every slot must be accounted for.
        for way in [2, 4, 8] {
            let cfg = PipeConfig::paper(way, Ext::Mmx64);
            let (stats, stack) = run_profiled(&cfg, |a| {
                let (x, i, t, p) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
                a.li(x, 0x1234_5678);
                a.li(p, 4096);
                a.li(i, 0);
                a.for_loop(i, 200, |a| {
                    a.muli(x, x, 1103515245);
                    a.sd(x, p, 0);
                    a.ld(t, p, 0);
                    a.add(x, x, t);
                    a.srli(t, x, 13);
                    a.if_(Cond::Eq, t, 0, |a| {
                        a.addi(x, x, 7);
                    });
                    a.addi(p, p, 32);
                });
            });
            assert_eq!(stack.way, way as u64);
            assert_accounts(&stats, &stack);
            assert!(stack.stall_total() > 0, "{way}-way run saw no stalls");
        }
    }

    #[test]
    fn profiling_does_not_change_timing() {
        let body = |a: &mut Asm| {
            let (x, i, p, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            a.li(x, 0x9e37_79b9);
            a.li(p, 8192);
            a.li(i, 0);
            a.for_loop(i, 300, |a| {
                a.muli(x, x, 1103515245);
                a.ld(t, p, 0);
                a.add(x, x, t);
                a.sd(x, p, 8);
                a.addi(p, p, 64);
            });
        };
        let cfg = PipeConfig::paper(4, Ext::Mmx64);
        let plain = run(&cfg, body);
        let (profiled, stack) = run_profiled(&cfg, body);
        assert_eq!(plain, profiled, "profiling must not perturb timing");
        assert_accounts(&profiled, &stack);
    }

    #[test]
    fn fused_block_profile_matches_per_instruction_fallback() {
        use simdsim_isa::DecodedBlock;

        struct PerInstr(Pipeline);
        impl TraceSink for PerInstr {
            fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
                self.0.push(di, dec);
            }
            fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], _b: &DecodedBlock) {
                for (di, dec) in dis.iter().zip(decs) {
                    self.0.push(di, dec);
                }
            }
        }

        let mut a = Asm::new();
        let (x, i, t, p) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
        a.li(x, 0x1234_5678);
        a.li(p, 4096);
        a.li(i, 0);
        a.for_loop(i, 300, |a| {
            a.muli(x, x, 1103515245);
            a.addi(x, x, 12345);
            a.sd(x, p, 0);
            a.ld(t, p, 0);
            a.add(x, x, t);
            a.srli(t, x, 13);
            a.if_(Cond::Eq, t, 0, |a| {
                a.addi(x, x, 7);
            });
            a.addi(p, p, 32);
        });
        a.halt();
        let prog = a.finish();
        let dec = prog.decode();
        let cfg = PipeConfig::paper(4, Ext::Mmx64);
        let machine = Machine::new(cfg.ext, 1 << 20);

        let fused = {
            let mut m = machine.clone();
            let mut pipe = Pipeline::new(cfg);
            pipe.set_profiling(true);
            m.run_decoded(&dec, &mut pipe, 1_000_000).unwrap();
            pipe.cpi_stack().unwrap()
        };
        let fallback = {
            let mut m = machine.clone();
            let mut sink = PerInstr(Pipeline::new(cfg));
            sink.0.set_profiling(true);
            m.run_decoded(&dec, &mut sink, 1_000_000).unwrap();
            sink.0.cpi_stack().unwrap()
        };
        assert_eq!(
            fused, fallback,
            "fused block path must attribute stalls exactly like the fallback"
        );
    }

    #[test]
    fn dependence_chain_attributed_to_data_dep() {
        let cfg = PipeConfig::paper(8, Ext::Mmx64);
        let (stats, stack) = run_profiled(&cfg, |a| {
            let r = a.ireg();
            a.li(r, 0);
            for _ in 0..2000 {
                a.addi(r, r, 1);
            }
        });
        assert_accounts(&stats, &stack);
        let dep = stack.stall(StallCause::DataDep, 0);
        assert!(
            dep * 2 > stack.stall_total(),
            "serial chain: data-dep stalls {} of {}",
            dep,
            stack.stall_total()
        );
    }

    #[test]
    fn cold_loads_attributed_to_memory_hierarchy() {
        let cfg = PipeConfig::paper(2, Ext::Mmx64);
        let (stats, stack) = run_profiled(&cfg, |a| {
            let (p, t) = (a.ireg(), a.ireg());
            a.li(p, 4096);
            for _ in 0..64 {
                a.ld(t, p, 0);
                a.add(p, p, t);
                a.addi(p, p, 64);
            }
        });
        assert_accounts(&stats, &stack);
        let mem = stack.stall(StallCause::Memory, 0)
            + stack.stall(StallCause::L2, 0)
            + stack.stall(StallCause::L1, 0);
        assert!(
            mem * 2 > stack.stall_total(),
            "cold-miss chain: memory stalls {} of {}",
            mem,
            stack.stall_total()
        );
        assert!(
            stack.stall(StallCause::Memory, 0) > 0,
            "main-memory misses must surface as Memory stalls"
        );
    }

    #[test]
    fn ipc_bounded_by_width() {
        let cfg = PipeConfig::paper(2, Ext::Mmx64);
        let stats = run(&cfg, |a| {
            let regs: Vec<_> = (0..8).map(|_| a.ireg()).collect();
            for r in &regs {
                a.li(*r, 1);
            }
            for _ in 0..500 {
                for r in &regs {
                    a.addi(*r, *r, 1);
                }
            }
        });
        assert!(stats.ipc() <= 2.05, "IPC {} exceeds width", stats.ipc());
        assert!(
            stats.ipc() > 1.2,
            "IPC {} too low for parallel code",
            stats.ipc()
        );
    }
}
