//! Processor configurations (the paper's Table III).

use serde::{Deserialize, Serialize};
use simdsim_isa::Ext;
use simdsim_mem::MemConfig;

/// Parameters of one modelled processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipeConfig {
    /// Fetch/decode/graduate width (2, 4 or 8).
    pub way: usize,
    /// The multimedia extension implemented.
    pub ext: Ext,
    /// Re-order buffer entries.
    pub rob: usize,
    /// Unified issue-queue (scheduler window) entries; dispatch stalls
    /// when full.  This is what keeps wide cores from scaling linearly on
    /// scalar code.
    pub iq: usize,
    /// Physical integer registers.
    pub phys_int: usize,
    /// Physical floating-point registers.
    pub phys_fp: usize,
    /// Physical SIMD/matrix registers (Table III: 40/64/96 for MMX,
    /// 20/36/64 for VMMX).
    pub phys_simd: usize,
    /// Integer ALUs.
    pub int_fus: usize,
    /// Floating-point units.
    pub fp_fus: usize,
    /// SIMD instructions issued per cycle.
    pub simd_issue: usize,
    /// SIMD functional units.
    pub simd_fus: usize,
    /// Parallel vector lanes per SIMD unit (1 on MMX, 4 on VMMX).
    pub lanes: usize,
    /// Scalar memory ports (equals the L1 port count).
    pub mem_fus: usize,
    /// Front-end depth in cycles (decode + rename + dispatch).
    pub frontend_depth: u64,
    /// Cycles between branch resolution and fetch restart on a mispredict.
    pub redirect_penalty: u64,
    /// Branch predictor entries.
    pub bpred_entries: usize,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
}

impl PipeConfig {
    /// The paper's Table III configuration for `way` ∈ {2,4,8} and the
    /// given extension (plus the Table IV memory hierarchy).
    ///
    /// # Panics
    ///
    /// Panics when `way` is not 2, 4 or 8.
    #[must_use]
    pub fn paper(way: usize, ext: Ext) -> Self {
        let idx = match way {
            2 => 0,
            4 => 1,
            8 => 2,
            _ => panic!("way must be 2, 4 or 8"),
        };
        let matrix = ext.is_matrix();
        let phys_simd = if matrix {
            [20, 36, 64][idx]
        } else {
            [40, 64, 96][idx]
        };
        let simd_issue = if matrix {
            [1, 2, 3][idx]
        } else {
            [2, 4, 8][idx]
        };
        let mem_fus = if matrix {
            [1, 1, 2][idx]
        } else {
            [1, 2, 4][idx]
        };
        Self {
            way,
            ext,
            // R10000-like active list, scaling sub-linearly with width
            // (wide machines are window-limited, as the paper's weak
            // superscalar scaling shows).
            rob: [32, 48, 72][idx],
            iq: [16, 24, 36][idx],
            phys_int: [48, 64, 96][idx],
            phys_fp: [48, 64, 96][idx],
            phys_simd,
            int_fus: [2, 4, 8][idx],
            fp_fus: [1, 2, 4][idx],
            simd_issue,
            simd_fus: simd_issue,
            lanes: if matrix { 4 } else { 1 },
            mem_fus,
            frontend_depth: 4,
            redirect_penalty: 5,
            bpred_entries: 4096,
            mem: MemConfig::paper(way, matrix),
        }
    }

    /// Number of logical registers in the SIMD/matrix file (32 for MMX,
    /// 16 for VMMX).
    #[must_use]
    pub fn logical_simd(&self) -> usize {
        if self.ext.is_matrix() {
            simdsim_isa::NUM_MREGS
        } else {
            simdsim_isa::NUM_VREGS
        }
    }

    /// Maximum in-flight SIMD-register-writing instructions before rename
    /// stalls.
    #[must_use]
    pub fn simd_inflight(&self) -> usize {
        self.phys_simd.saturating_sub(self.logical_simd()).max(1)
    }

    /// Short label for reports, e.g. `"4way-vmmx128"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}way-{}", self.way, self.ext)
    }

    /// Every parameter key accepted by [`PipeConfig::set`].  Width and
    /// extension are scenario axes, not overridable knobs, so they are
    /// deliberately absent.
    pub const PARAMS: &'static [&'static str] = &[
        "rob",
        "iq",
        "phys_int",
        "phys_fp",
        "phys_simd",
        "int_fus",
        "fp_fus",
        "simd_issue",
        "simd_fus",
        "lanes",
        "mem_fus",
        "frontend_depth",
        "redirect_penalty",
        "bpred_entries",
        "l1.size",
        "l1.assoc",
        "l1.line",
        "l1.latency",
        "l1.ports",
        "l1.port_width",
        "l1.banks",
        "l2.size",
        "l2.assoc",
        "l2.line",
        "l2.latency",
        "l2.ports",
        "l2.port_width",
        "l2.banks",
        "mem.latency",
        "mem.pipeline",
    ];

    /// Sets one parameter by name — the hook that lets declarative
    /// sweeps override arbitrary knobs without bespoke driver closures.
    /// See [`PipeConfig::PARAMS`] for the accepted keys.
    ///
    /// # Errors
    ///
    /// Returns a message naming the key when it is unknown or the value
    /// does not fit the field.
    pub fn set(&mut self, key: &str, value: u64) -> Result<(), String> {
        let as_usize = |v: u64| -> Result<usize, String> {
            usize::try_from(v).map_err(|_| format!("value {v} out of range for `{key}`"))
        };
        match key {
            "rob" => self.rob = as_usize(value)?,
            "iq" => self.iq = as_usize(value)?,
            "phys_int" => self.phys_int = as_usize(value)?,
            "phys_fp" => self.phys_fp = as_usize(value)?,
            "phys_simd" => self.phys_simd = as_usize(value)?,
            "int_fus" => self.int_fus = as_usize(value)?,
            "fp_fus" => self.fp_fus = as_usize(value)?,
            "simd_issue" => self.simd_issue = as_usize(value)?,
            "simd_fus" => self.simd_fus = as_usize(value)?,
            "lanes" => self.lanes = as_usize(value)?,
            "mem_fus" => self.mem_fus = as_usize(value)?,
            "frontend_depth" => self.frontend_depth = value,
            "redirect_penalty" => self.redirect_penalty = value,
            "bpred_entries" => self.bpred_entries = as_usize(value)?,
            "l1.size" => self.mem.l1.size = as_usize(value)?,
            "l1.assoc" => self.mem.l1.assoc = as_usize(value)?,
            "l1.line" => self.mem.l1.line = as_usize(value)?,
            "l1.latency" => self.mem.l1.latency = value,
            "l1.ports" => self.mem.l1.ports = as_usize(value)?,
            "l1.port_width" => self.mem.l1.port_width = as_usize(value)?,
            "l1.banks" => self.mem.l1.banks = as_usize(value)?,
            "l2.size" => self.mem.l2.size = as_usize(value)?,
            "l2.assoc" => self.mem.l2.assoc = as_usize(value)?,
            "l2.line" => self.mem.l2.line = as_usize(value)?,
            "l2.latency" => self.mem.l2.latency = value,
            "l2.ports" => self.mem.l2.ports = as_usize(value)?,
            "l2.port_width" => self.mem.l2.port_width = as_usize(value)?,
            "l2.banks" => self.mem.l2.banks = as_usize(value)?,
            "mem.latency" => self.mem.mem_latency = value,
            "mem.pipeline" => self.mem.mem_pipeline = value,
            _ => {
                return Err(format!(
                    "unknown config parameter `{key}` (see PipeConfig::PARAMS)"
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = PipeConfig::paper(4, Ext::Mmx128);
        assert_eq!(c.phys_simd, 64);
        assert_eq!(c.simd_issue, 4);
        assert_eq!(c.lanes, 1);
        assert_eq!(c.mem_fus, 2);

        let v = PipeConfig::paper(8, Ext::Vmmx128);
        assert_eq!(v.phys_simd, 64);
        assert_eq!(v.simd_issue, 3);
        assert_eq!(v.lanes, 4);
        assert_eq!(v.mem_fus, 2);
        assert_eq!(v.mem.l2.port_width, 64);
        assert_eq!(v.simd_inflight(), 64 - 16);
        assert_eq!(v.label(), "8way-vmmx128");
    }

    #[test]
    #[should_panic(expected = "way must be")]
    fn bad_way_panics() {
        let _ = PipeConfig::paper(3, Ext::Mmx64);
    }

    #[test]
    fn every_listed_param_is_settable() {
        let mut c = PipeConfig::paper(2, Ext::Vmmx128);
        for key in PipeConfig::PARAMS {
            c.set(key, 7).unwrap_or_else(|e| panic!("{key}: {e}"));
        }
        assert_eq!(c.rob, 7);
        assert_eq!(c.lanes, 7);
        assert_eq!(c.mem.l2.port_width, 7);
        assert_eq!(c.mem.mem_pipeline, 7);
    }

    #[test]
    fn unknown_param_is_an_error_naming_the_key() {
        let mut c = PipeConfig::paper(2, Ext::Mmx64);
        let err = c.set("warp_drive", 1).unwrap_err();
        assert!(err.contains("warp_drive"), "{err}");
        // The config is untouched on error.
        assert_eq!(c, PipeConfig::paper(2, Ext::Mmx64));
    }
}
