//! Gshare branch predictor.

/// A gshare predictor: global history XOR-indexed into a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two).
    #[must_use]
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Self {
            table: vec![1; n], // weakly not-taken
            history: 0,
            mask: (n - 1) as u64,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((u64::from(pc) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Updates the counter and global history with the actual outcome.
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_loop_branch() {
        let mut p = Gshare::new(1024);
        let pc = 0x40;
        // Train: always taken.
        for _ in 0..16 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        // A few not-taken flips it back eventually.
        for _ in 0..16 {
            p.update(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn distinguishes_pcs() {
        let mut p = Gshare::new(4096);
        for _ in 0..8 {
            p.update(0x10, true);
            p.update(0x20, false);
        }
        // With alternating history both still mostly learned.
        let _ = p.predict(0x10);
        let _ = p.predict(0x20);
    }
}
