//! Cycle accounting: where every commit slot of a run went.
//!
//! The model commits up to `way` instructions per cycle, so a run of
//! `cycles` cycles offers exactly `cycles × way` commit slots.  Each slot
//! either retired an instruction (an *issue* slot) or was lost to some
//! stall.  The profiler walks the committed instruction stream — slots are
//! strictly ordered by `(cycle, position-in-cycle)` — and charges every
//! gap between consecutive commits to the dominant timing component of
//! the instruction that ended the gap.  The result is a CPI stack in the
//! classic cycle-accounting sense: `issue + Σ stalls == cycles × way`,
//! by construction, for every run.

use serde::{Deserialize, Serialize};

/// Why a commit slot went unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Operand not ready: waiting on a producer (dependence chains and
    /// non-memory execution latency).
    DataDep,
    /// Functional-unit or issue-bandwidth contention: the operands were
    /// ready but no unit (or per-class issue slot) was free.
    FuContention,
    /// Nothing blocked the instruction; the machine simply could not
    /// commit more than `way` per cycle (also absorbs the drained tail
    /// after the last commit).
    IssueWidth,
    /// Fetch restarted after a branch mispredict; the front end was
    /// refilling.
    BranchRecovery,
    /// Load serviced by the L1 data cache.
    L1,
    /// Load serviced by the L2 (or the vector port, which bypasses L1).
    L2,
    /// Load serviced by main memory.
    Memory,
    /// Rename budget, issue-queue or re-order-buffer occupancy held
    /// dispatch back.
    RenameQueue,
}

/// Number of stall causes (the width of the per-region stall arrays).
pub const NUM_STALL_CAUSES: usize = 8;

/// Number of code regions (scalar, vector).
pub const NUM_REGIONS: usize = 2;

impl StallCause {
    /// Every cause, in the order `CpiStack::stall_slots` stores them.
    pub const ALL: [StallCause; NUM_STALL_CAUSES] = [
        StallCause::DataDep,
        StallCause::FuContention,
        StallCause::IssueWidth,
        StallCause::BranchRecovery,
        StallCause::L1,
        StallCause::L2,
        StallCause::Memory,
        StallCause::RenameQueue,
    ];

    /// Stable snake_case label used on the wire and in reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            StallCause::DataDep => "data_dep",
            StallCause::FuContention => "fu_contention",
            StallCause::IssueWidth => "issue_width",
            StallCause::BranchRecovery => "branch_recovery",
            StallCause::L1 => "l1",
            StallCause::L2 => "l2",
            StallCause::Memory => "memory",
            StallCause::RenameQueue => "rename_queue",
        }
    }
}

/// Region labels, indexed like the region dimension of
/// [`CpiStack::stall_slots`] (0 = scalar, 1 = vector).
pub const REGION_LABELS: [&str; NUM_REGIONS] = ["scalar", "vector"];

/// A finished run's CPI stack.
///
/// Invariant (asserted by the model's tests and the fleet smoke check):
/// `issue_slots.iter().sum() + stall_slots.iter().sum() == slots`, and
/// `slots == cycles × way` for a single-cell stack.  Merged stacks keep
/// the invariant because both sides hold it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpiStack {
    /// Execution cycles of the run (summed across cells after a merge).
    pub cycles: u64,
    /// Commit width the slots were counted at; 0 after merging stacks of
    /// differing widths.
    pub way: u64,
    /// Total commit slots accounted (`cycles × way` per cell).
    pub slots: u64,
    /// Slots that retired an instruction, by region (0 = scalar,
    /// 1 = vector).
    pub issue_slots: [u64; NUM_REGIONS],
    /// Retired slots by Figure-7 class, indexed by `Class` declaration
    /// order (smem, sarith, sctrl, vmem, varith).
    pub class_slots: [u64; 5],
    /// Stalled slots, indexed `cause × NUM_REGIONS + region` with `cause`
    /// in [`StallCause::ALL`] order.
    pub stall_slots: [u64; NUM_STALL_CAUSES * NUM_REGIONS],
}

impl CpiStack {
    /// Slots that retired an instruction, both regions.
    #[must_use]
    pub fn issue_total(&self) -> u64 {
        self.issue_slots.iter().sum()
    }

    /// Slots lost to stalls, all causes and regions.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stall_slots.iter().sum()
    }

    /// Stalled slots charged to `cause` in `region` (0 = scalar,
    /// 1 = vector).
    #[must_use]
    pub fn stall(&self, cause: StallCause, region: usize) -> u64 {
        self.stall_slots[cause as usize * NUM_REGIONS + region]
    }

    /// Cycles per committed instruction implied by the stack.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        let instrs = self.issue_total();
        if instrs == 0 {
            0.0
        } else {
            self.cycles as f64 / instrs as f64
        }
    }

    /// Folds `other` into this stack.  Slot counts add; `way` survives
    /// only when both sides agree (a merged stack over mixed widths
    /// reports `way == 0`, and its `slots` field stays authoritative).
    pub fn merge(&mut self, other: &CpiStack) {
        if self.slots == 0 {
            self.way = other.way;
        } else if self.way != other.way {
            self.way = 0;
        }
        self.cycles += other.cycles;
        self.slots += other.slots;
        for (a, b) in self.issue_slots.iter_mut().zip(&other.issue_slots) {
            *a += b;
        }
        for (a, b) in self.class_slots.iter_mut().zip(&other.class_slots) {
            *a += b;
        }
        for (a, b) in self.stall_slots.iter_mut().zip(&other.stall_slots) {
            *a += b;
        }
    }
}

/// In-flight accumulator the [`Pipeline`](crate::Pipeline) carries while
/// profiling is enabled.  The `cur_*` fields are the per-instruction
/// scratch the three pipeline stages fill in; `stage_retire` consumes
/// them when the instruction commits.
#[derive(Debug, Default)]
pub(crate) struct CpiAccum {
    /// First commit slot index not yet accounted for.
    pub next_slot: u64,
    /// Retired slots by region.
    pub issue_slots: [u64; NUM_REGIONS],
    /// Retired slots by Figure-7 class (declaration order).
    pub class_slots: [u64; 5],
    /// Stalled slots, `cause × NUM_REGIONS + region`.
    pub stall_slots: [u64; NUM_STALL_CAUSES * NUM_REGIONS],
    /// Region of the most recent commit; the post-run drain tail is
    /// charged here.
    pub last_region: usize,
    /// Fetch cycles at or before this point were set by a mispredict
    /// redirect.
    pub redirect_until: u64,
    /// Front-end raise (ROB release + issue-queue drain + rename budget)
    /// of the instruction in flight.
    pub cur_front: u64,
    /// The in-flight instruction was fetched at a redirect restart.
    pub cur_branch: bool,
    /// Cycles between operand readiness and unit issue.
    pub cur_fu_wait: u64,
    /// Non-memory execution latency (issue to completion).
    pub cur_exec_lat: u64,
    /// Load latency (memory-system start to data return).
    pub cur_mem_wait: u64,
}

impl CpiAccum {
    /// Clears the accumulator for a fresh run.
    pub fn reset(&mut self) {
        *self = CpiAccum::default();
    }

    /// Clears the per-instruction scratch at the top of `stage_front`.
    #[inline]
    pub fn begin_instr(&mut self) {
        self.cur_front = 0;
        self.cur_branch = false;
        self.cur_fu_wait = 0;
        self.cur_exec_lat = 0;
        self.cur_mem_wait = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_slot_accounting() {
        let mut a = CpiStack {
            cycles: 10,
            way: 2,
            slots: 20,
            issue_slots: [5, 3],
            class_slots: [2, 3, 1, 1, 1],
            ..CpiStack::default()
        };
        let mut b = CpiStack {
            cycles: 4,
            way: 4,
            slots: 16,
            issue_slots: [4, 0],
            ..CpiStack::default()
        };
        b.stall_slots[StallCause::Memory as usize * NUM_REGIONS] = 12;
        a.stall_slots[StallCause::DataDep as usize * NUM_REGIONS + 1] = 12;
        a.merge(&b);
        assert_eq!(a.slots, 36);
        assert_eq!(a.way, 0, "mixed widths collapse to 0");
        assert_eq!(a.issue_total() + a.stall_total(), 36);
        assert_eq!(a.stall(StallCause::Memory, 0), 12);
        assert_eq!(a.stall(StallCause::DataDep, 1), 12);
    }

    #[test]
    fn merge_into_empty_adopts_width() {
        let mut empty = CpiStack::default();
        let one = CpiStack {
            cycles: 3,
            way: 4,
            slots: 12,
            issue_slots: [6, 6],
            ..CpiStack::default()
        };
        empty.merge(&one);
        assert_eq!(empty.way, 4);
        assert_eq!(empty, one);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in StallCause::ALL {
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
        }
        assert_eq!(seen.len(), NUM_STALL_CAUSES);
    }
}
