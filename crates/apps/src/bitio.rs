//! Bit-level entropy coding: a JPEG-flavoured variable-length code with
//! magnitude classes, plus the bit-writer/bit-reader plumbing — in golden
//! Rust and as assembler emitters with identical semantics.
//!
//! Why it matters for the study: bit-serial entropy coding is the
//! canonical *non-vectorisable* part of media codecs. The bit buffer
//! forms a serial dependence chain, so this code neither vectorises nor
//! speeds up on wider superscalars — it is what Amdahl's law leaves
//! behind once the kernels are vectorised (Figure 6's white bars).
//!
//! ## Code format (per 8×8 block, scan order, DC-predicted)
//!
//! * DC: 4-bit magnitude class `c`, then `c` bits of the diff (JPEG
//!   one's-complement convention for negatives);
//! * AC: 6-bit zero-run (`0..=62`), 4-bit class `c ≥ 1`, `c` value bits;
//! * end of block: the reserved 6-bit run value `63`.

use simdsim_asm::Asm;
use simdsim_isa::{Cond, IReg};

/// Reserved run value marking end-of-block.
pub const EOB_RUN: u8 = 63;

// ======================================================================
// Golden implementation
// ======================================================================

/// Golden MSB-first bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    /// Output bytes.
    pub bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `v` (MSB first), `n ≤ 32`.
    pub fn put(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 32 && (n == 64 || v < (1 << n)));
        self.acc = (self.acc << n) | v;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push(((self.acc >> self.nbits) & 0xff) as u8);
        }
    }

    /// Flushes remaining bits, padding with zeros to a byte boundary.
    pub fn flush(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            let v = (self.acc << pad) & 0xff;
            self.bytes.push(v as u8);
            self.nbits = 0;
            self.acc = 0;
        }
    }
}

/// Golden MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Current byte position.
    pub pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data` starting at byte `pos`.
    #[must_use]
    pub fn new(data: &'a [u8], pos: usize) -> Self {
        Self {
            data,
            pos,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads `n ≤ 32` bits (MSB first).
    pub fn get(&mut self, n: u32) -> u64 {
        while self.nbits < n {
            self.acc = (self.acc << 8) | u64::from(self.data[self.pos]);
            self.pos += 1;
            self.nbits += 8;
        }
        self.nbits -= n;
        (self.acc >> self.nbits) & ((1 << n) - 1)
    }

    /// Discards buffered sub-byte bits (block streams are byte-aligned
    /// only at plane boundaries; this is used at stream switch points).
    pub fn align(&mut self) {
        self.acc = 0;
        self.nbits = 0;
    }
}

/// Magnitude class of `v`: the number of bits in `|v|` (0 for 0).
#[must_use]
pub fn magnitude_class(v: i32) -> u32 {
    let mut t = v.unsigned_abs();
    let mut c = 0;
    while t > 0 {
        t >>= 1;
        c += 1;
    }
    c
}

/// JPEG one's-complement mapping of a value into its class bits.
#[must_use]
pub fn value_bits(v: i32, class: u32) -> u64 {
    if v >= 0 {
        v as u64
    } else {
        ((v - 1) as u32 as u64) & ((1u64 << class) - 1)
    }
}

/// Inverse of [`value_bits`].
#[must_use]
pub fn value_from_bits(bits: u64, class: u32) -> i32 {
    if class == 0 {
        return 0;
    }
    let b = bits as i64;
    if b < (1 << (class - 1)) {
        (b - (1 << class) + 1) as i32
    } else {
        b as i32
    }
}

/// Encodes one scan-order block; returns the new DC predictor.
pub fn golden_vlc_encode(qscan: &[i16; 64], prev_dc: i16, bw: &mut BitWriter) -> i16 {
    let dc_diff = i32::from(qscan[0]) - i32::from(prev_dc);
    let c = magnitude_class(dc_diff);
    bw.put(u64::from(c), 4);
    bw.put(value_bits(dc_diff, c), c);
    let mut run = 0u64;
    for &q in &qscan[1..] {
        if q == 0 {
            run += 1;
        } else {
            let v = i32::from(q);
            let c = magnitude_class(v);
            bw.put(run, 6);
            bw.put(u64::from(c), 4);
            bw.put(value_bits(v, c), c);
            run = 0;
        }
    }
    bw.put(u64::from(EOB_RUN), 6);
    qscan[0]
}

/// Decodes one block; returns the scan-order coefficients and the new DC
/// predictor.
pub fn golden_vlc_decode(br: &mut BitReader<'_>, prev_dc: i16) -> ([i16; 64], i16) {
    let mut q = [0i16; 64];
    let c = br.get(4) as u32;
    let dc_diff = value_from_bits(br.get(c), c);
    let dc = prev_dc.wrapping_add(dc_diff as i16);
    q[0] = dc;
    let mut i = 1usize;
    loop {
        let run = br.get(6);
        if run == u64::from(EOB_RUN) {
            break;
        }
        i += run as usize;
        let c = br.get(4) as u32;
        q[i] = value_from_bits(br.get(c), c) as i16;
        i += 1;
    }
    (q, dc)
}

// ======================================================================
// Assembler emitters
// ======================================================================

/// Bit-writer state registers threaded through emitted code.
#[derive(Debug, Clone, Copy)]
pub struct BwRegs {
    /// Accumulator register.
    pub acc: IReg,
    /// Bit count register.
    pub nbits: IReg,
    /// Output byte cursor (advanced).
    pub outp: IReg,
}

/// Initialises an emitted bit writer.
pub fn emit_bw_init(a: &mut Asm, bw: &BwRegs) {
    a.li(bw.acc, 0);
    a.li(bw.nbits, 0);
}

/// Emits `put(value_reg, nbits_reg)`; both registers are preserved.
pub fn emit_putbits(a: &mut Asm, bw: &BwRegs, value: IReg, nbits: IReg) {
    let t = a.ireg();
    // acc = (acc << n) | v ; nbits += n
    a.alu(simdsim_isa::AluOp::Sll, bw.acc, bw.acc, nbits);
    a.or(bw.acc, bw.acc, value);
    a.add(bw.nbits, bw.nbits, nbits);
    // while nbits >= 8 emit a byte
    a.while_(Cond::Ge, bw.nbits, 8, |a| {
        a.subi(bw.nbits, bw.nbits, 8);
        a.alu(simdsim_isa::AluOp::Srl, t, bw.acc, bw.nbits);
        a.and(t, t, 255);
        a.sb(t, bw.outp, 0);
        a.addi(bw.outp, bw.outp, 1);
    });
    a.release_ireg(t);
}

/// Emits `put` with a constant bit count.
pub fn emit_putbits_const(a: &mut Asm, bw: &BwRegs, value: IReg, nbits: i64) {
    let n = a.ireg();
    a.li(n, nbits);
    emit_putbits(a, bw, value, n);
    a.release_ireg(n);
}

/// Emits the final flush (zero padding to a byte boundary).
pub fn emit_bw_flush(a: &mut Asm, bw: &BwRegs) {
    let t = a.ireg();
    a.if_(Cond::Gt, bw.nbits, 0, |a| {
        a.li(t, 8);
        a.sub(t, t, bw.nbits);
        a.alu(simdsim_isa::AluOp::Sll, t, bw.acc, t);
        a.and(t, t, 255);
        a.sb(t, bw.outp, 0);
        a.addi(bw.outp, bw.outp, 1);
        a.li(bw.nbits, 0);
        a.li(bw.acc, 0);
    });
    a.release_ireg(t);
}

/// Bit-reader state registers.
#[derive(Debug, Clone, Copy)]
pub struct BrRegs {
    /// Accumulator register.
    pub acc: IReg,
    /// Buffered bit count.
    pub nbits: IReg,
    /// Input byte cursor (advanced).
    pub inp: IReg,
}

/// Initialises an emitted bit reader.
pub fn emit_br_init(a: &mut Asm, br: &BrRegs) {
    a.li(br.acc, 0);
    a.li(br.nbits, 0);
}

/// Emits `dst = get(nbits_reg)`; `nbits` preserved, `dst` must differ
/// from the state registers.
pub fn emit_getbits(a: &mut Asm, br: &BrRegs, dst: IReg, nbits: IReg) {
    let t = a.ireg();
    a.while_(Cond::Lt, br.nbits, simdsim_isa::Operand2::Reg(nbits), |a| {
        a.slli(br.acc, br.acc, 8);
        a.lbu(t, br.inp, 0);
        a.or(br.acc, br.acc, t);
        a.addi(br.inp, br.inp, 1);
        a.addi(br.nbits, br.nbits, 8);
    });
    a.sub(br.nbits, br.nbits, nbits);
    a.alu(simdsim_isa::AluOp::Srl, dst, br.acc, br.nbits);
    a.li(t, 1);
    a.alu(simdsim_isa::AluOp::Sll, t, t, nbits);
    a.subi(t, t, 1);
    a.and(dst, dst, t);
    a.release_ireg(t);
}

/// Emits `dst = get(n)` with a constant count.
pub fn emit_getbits_const(a: &mut Asm, br: &BrRegs, dst: IReg, nbits: i64) {
    let n = a.ireg();
    a.li(n, nbits);
    emit_getbits(a, br, dst, n);
    a.release_ireg(n);
}

/// Emits the magnitude-class computation: `class = bitlen(|v|)`.
/// `v` is preserved; `class` and `absv` are outputs.
pub fn emit_magnitude_class(a: &mut Asm, v: IReg, class: IReg, absv: IReg) {
    a.mv(absv, v);
    a.if_(Cond::Lt, absv, 0, |a| {
        a.li(class, 0);
        a.sub(absv, class, absv);
    });
    a.li(class, 0);
    let t = a.ireg();
    a.mv(t, absv);
    a.while_(Cond::Gt, t, 0, |a| {
        a.srai(t, t, 1);
        a.addi(class, class, 1);
    });
    a.release_ireg(t);
}

/// Emits the one's-complement value mapping into `bits`
/// (`bits = v >= 0 ? v : (v-1) & ((1<<class)-1)`).
pub fn emit_value_bits(a: &mut Asm, v: IReg, class: IReg, bits: IReg) {
    let t = a.ireg();
    a.mv(bits, v);
    a.if_(Cond::Lt, v, 0, |a| {
        a.subi(bits, v, 1);
    });
    a.li(t, 1);
    a.alu(simdsim_isa::AluOp::Sll, t, t, class);
    a.subi(t, t, 1);
    a.and(bits, bits, t);
    a.release_ireg(t);
}

/// Emits the inverse mapping: `v = bits < 1<<(class-1) ? bits - (1<<class) + 1 : bits`
/// (class 0 → 0).
pub fn emit_value_from_bits(a: &mut Asm, bits: IReg, class: IReg, v: IReg) {
    let t = a.ireg();
    a.mv(v, bits);
    a.if_(Cond::Gt, class, 0, |a| {
        a.subi(t, class, 1);
        a.li(v, 1);
        a.alu(simdsim_isa::AluOp::Sll, v, v, t);
        // t = threshold = 1 << (class-1), currently in v; compare bits.
        a.mv(t, v);
        a.mv(v, bits);
        a.if_(Cond::Lt, bits, simdsim_isa::Operand2::Reg(t), |a| {
            a.slli(t, t, 1); // 1 << class
            a.sub(v, bits, t);
            a.addi(v, v, 1);
        });
    });
    a.if_(Cond::Eq, class, 0, |a| a.li(v, 0));
    a.release_ireg(t);
}

/// Emits the VLC encoder over a scan-order block (mirror of
/// [`golden_vlc_encode`]). The bit-writer state and `prev_dc` are updated.
pub fn emit_vlc_encode(a: &mut Asm, qscanp: IReg, bw: &BwRegs, prev_dc: IReg) {
    let (i, q, run, sp, class, bits) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(sp, qscanp);
    // DC.
    a.lh(q, sp, 0);
    let diff = a.ireg();
    a.sub(diff, q, prev_dc);
    a.mv(prev_dc, q);
    emit_magnitude_class(a, diff, class, bits);
    emit_putbits_const(a, bw, class, 4);
    {
        let vb = a.ireg();
        emit_value_bits(a, diff, class, vb);
        emit_putbits(a, bw, vb, class);
        a.release_ireg(vb);
    }
    a.release_ireg(diff);
    a.addi(sp, sp, 2);
    // AC.
    a.li(run, 0);
    a.li(i, 1);
    a.for_loop(i, 64, |a| {
        a.lh(q, sp, 0);
        a.if_else(
            Cond::Eq,
            q,
            0,
            |a| {
                a.addi(run, run, 1);
            },
            |a| {
                emit_putbits_const(a, bw, run, 6);
                emit_magnitude_class(a, q, class, bits);
                emit_putbits_const(a, bw, class, 4);
                let vb = a.ireg();
                emit_value_bits(a, q, class, vb);
                emit_putbits(a, bw, vb, class);
                a.li(run, 0);
                a.release_ireg(vb);
            },
        );
        a.addi(sp, sp, 2);
    });
    a.li(q, i64::from(EOB_RUN));
    emit_putbits_const(a, bw, q, 6);
    for r in [i, q, run, sp, class, bits] {
        a.release_ireg(r);
    }
}

/// Emits the VLC decoder for one block into the (cleared) scan buffer.
pub fn emit_vlc_decode(a: &mut Asm, br: &BrRegs, qscanp: IReg, prev_dc: IReg) {
    let (i, b, v, sp, class) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    // Clear.
    a.mv(sp, qscanp);
    a.li(v, 0);
    a.li(i, 0);
    a.for_loop(i, 64, |a| {
        a.sh(v, sp, 0);
        a.addi(sp, sp, 2);
    });
    // DC.
    emit_getbits_const(a, br, class, 4);
    emit_getbits(a, br, b, class);
    emit_value_from_bits(a, b, class, v);
    a.add(prev_dc, prev_dc, v);
    a.slli(prev_dc, prev_dc, 48);
    a.srai(prev_dc, prev_dc, 48);
    a.sh(prev_dc, qscanp, 0);
    // AC.
    a.li(i, 1);
    let done = a.label();
    let head = a.label();
    a.bind(head);
    emit_getbits_const(a, br, b, 6);
    a.branch(Cond::Eq, b, i64::from(EOB_RUN) as i32, done);
    a.add(i, i, b);
    emit_getbits_const(a, br, class, 4);
    emit_getbits(a, br, b, class);
    emit_value_from_bits(a, b, class, v);
    a.slli(b, i, 1);
    a.add(b, qscanp, b);
    a.sh(v, b, 0);
    a.addi(i, i, 1);
    a.jump(head);
    a.bind(done);
    for r in [i, b, v, sp, class] {
        a.release_ireg(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_emu::{Machine, NullSink};
    use simdsim_isa::Ext;

    #[test]
    fn golden_bitio_roundtrip() {
        let mut bw = BitWriter::new();
        bw.put(0b101, 3);
        bw.put(0xABCD, 16);
        bw.put(1, 1);
        bw.flush();
        let mut br = BitReader::new(&bw.bytes, 0);
        assert_eq!(br.get(3), 0b101);
        assert_eq!(br.get(16), 0xABCD);
        assert_eq!(br.get(1), 1);
    }

    #[test]
    fn magnitude_roundtrip() {
        for v in [-2048i32, -255, -128, -1, 0, 1, 2, 127, 255, 1024, 2047] {
            let c = magnitude_class(v);
            assert_eq!(value_from_bits(value_bits(v, c), c), v, "v={v}");
        }
        assert_eq!(magnitude_class(0), 0);
        assert_eq!(magnitude_class(1), 1);
        assert_eq!(magnitude_class(-3), 2);
        assert_eq!(magnitude_class(255), 8);
    }

    #[test]
    fn golden_vlc_roundtrip() {
        let mut q = [0i16; 64];
        q[0] = -57;
        q[1] = 3;
        q[20] = -1;
        q[63] = 12;
        let mut bw = BitWriter::new();
        let dc = golden_vlc_encode(&q, 5, &mut bw);
        bw.flush();
        assert_eq!(dc, -57);
        let mut br = BitReader::new(&bw.bytes, 0);
        let (q2, dc2) = golden_vlc_decode(&mut br, 5);
        assert_eq!(q, q2);
        assert_eq!(dc2, -57);
    }

    #[test]
    fn emitted_vlc_encoder_matches_golden() {
        let mut q = [0i16; 64];
        q[0] = 100;
        q[2] = -30;
        q[35] = 7;
        q[62] = -500;

        let mut asm = simdsim_asm::Asm::new();
        let (qscanp, outp, cell) = (asm.arg(0), asm.arg(1), asm.arg(2));
        let bw = BwRegs {
            acc: asm.ireg(),
            nbits: asm.ireg(),
            outp,
        };
        let prev_dc = asm.ireg();
        asm.li(prev_dc, -9);
        emit_bw_init(&mut asm, &bw);
        emit_vlc_encode(&mut asm, qscanp, &bw, prev_dc);
        emit_bw_flush(&mut asm, &bw);
        asm.sd(outp, cell, 0);
        asm.sd(prev_dc, cell, 8);
        asm.halt();
        let prog = asm.finish();

        let mut m = Machine::new(Ext::Mmx64, 1 << 16);
        m.write_i16s(256, &q).unwrap();
        m.set_ireg(0, 256);
        m.set_ireg(1, 1024);
        m.set_ireg(2, 8192);
        m.run(&prog, &mut NullSink, 1_000_000).unwrap();

        let mut bwg = BitWriter::new();
        let dcg = golden_vlc_encode(&q, -9, &mut bwg);
        bwg.flush();
        let end = m.read_i32s(8192, 1).unwrap()[0] as usize;
        assert_eq!(m.read_bytes(1024, end - 1024).unwrap(), &bwg.bytes[..]);
        assert_eq!(m.read_i32s(8200, 1).unwrap()[0], i32::from(dcg));
    }

    #[test]
    fn emitted_vlc_decoder_matches_golden() {
        let mut q = [0i16; 64];
        q[0] = -1;
        q[7] = 15;
        q[8] = -15;
        q[63] = 2;
        let mut bw = BitWriter::new();
        golden_vlc_encode(&q, 100, &mut bw);
        bw.flush();

        let mut asm = simdsim_asm::Asm::new();
        let (inp, qscanp) = (asm.arg(0), asm.arg(1));
        let br = BrRegs {
            acc: asm.ireg(),
            nbits: asm.ireg(),
            inp,
        };
        let prev_dc = asm.ireg();
        asm.li(prev_dc, 100);
        emit_br_init(&mut asm, &br);
        emit_vlc_decode(&mut asm, &br, qscanp, prev_dc);
        asm.halt();
        let prog = asm.finish();

        let mut m = Machine::new(Ext::Mmx64, 1 << 16);
        m.write_bytes(512, &bw.bytes).unwrap();
        m.set_ireg(0, 512);
        m.set_ireg(1, 2048);
        m.run(&prog, &mut NullSink, 1_000_000).unwrap();
        assert_eq!(m.read_i16s(2048, 64).unwrap(), q.to_vec());
    }
}
