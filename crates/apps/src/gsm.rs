//! The GSM-06.10-style speech encoder (`gsmenc`) and decoder (`gsmdec`).
//!
//! Frames of 160 16-bit samples, four 40-sample sub-frames each:
//!
//! * **encoder** — preemphasis, autocorrelation + short-term ("LPC")
//!   analysis and residual filtering [all scalar], then per sub-frame the
//!   long-term-predictor lag search [vector `ltppar`], gain computation,
//!   and RPE residual quantization [scalar];
//! * **decoder** — RPE reconstruction [scalar], long-term filtering
//!   [vector `ltpfilt`], short-term synthesis and deemphasis [scalar].
//!
//! As in the paper, less than ~10% of these applications vectorises, so
//! SIMD scaling barely moves them (Figure 5's gsm panels).

use crate::common::emit_load_param;
use crate::{App, AppSpec};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Cond, IReg};
use simdsim_kernels::gsm::{
    emit_ltpfilt, emit_ltppar, golden_ltppar, LtpFiltArgs, LtpParArgs, LAG_MAX, SUBFRAME,
};
use simdsim_kernels::{BuiltKernel, Variant};

/// Samples per frame.
pub const FRAME: usize = 160;
/// Frames in the workload.
pub const NFRAMES: usize = 6;
/// Preemphasis coefficient (Q15).
pub const PREEMPH: i64 = 28180;
/// Number of short-term predictor taps (GSM 06.10 uses 8 reflection
/// coefficients).
pub const TAPS: usize = 8;
/// RPE weighting-filter taps (Q13, centre tap 8192).
pub const WEIGHT: [i64; 5] = [2054, 5741, 8192, 5741, 2054];

fn sat16(v: i64) -> i16 {
    v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16
}

/// Synthetic speech-like input: a few sliding sines plus noise.
#[must_use]
pub fn test_signal() -> Vec<i16> {
    let mut rng = simdsim_kernels::data::Rng64::new(401);
    (0..NFRAMES * FRAME)
        .map(|k| {
            let t = k as f64;
            let v = 6000.0 * (t * 0.081).sin()
                + 2500.0 * (t * 0.023).sin()
                + 1200.0 * (t * 0.307).cos();
            let noise = (rng.next_u64() % 401) as f64 - 200.0;
            (v + noise) as i16
        })
        .collect()
}

// ======================================================================
// Golden encoder / decoder
// ======================================================================

/// Golden encoder output.
#[derive(Debug, Clone)]
pub struct GoldenGsm {
    /// Encoded parameter stream.
    pub stream: Vec<u8>,
    /// Decoded samples (what `gsmdec` must produce).
    pub decoded: Vec<i16>,
}

/// Runs the golden encoder over [`test_signal`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn golden_gsmenc() -> GoldenGsm {
    let x = test_signal();
    let mut stream = Vec::new();
    // History of scaled residuals with a 120-zero prefix.
    let mut ds_buf = vec![0i16; LAG_MAX + NFRAMES * FRAME];

    for f in 0..NFRAMES {
        let xf = &x[f * FRAME..(f + 1) * FRAME];
        // 1. preemphasis
        let mut s = [0i16; FRAME];
        let mut prev = 0i64;
        for k in 0..FRAME {
            let t = (PREEMPH * prev) >> 15;
            s[k] = sat16(i64::from(xf[k]) - t);
            prev = i64::from(xf[k]);
        }
        // 2. autocorrelation (TAPS+1 lags)
        let mut ac = [0i64; TAPS + 1];
        for (j, slot) in ac.iter_mut().enumerate() {
            for k in j..FRAME {
                *slot += i64::from(s[k]) * i64::from(s[k - j]);
            }
        }
        // 3. short-term coefficients
        let mut arq = [0i64; TAPS + 1];
        for j in 1..=TAPS {
            let a = ((ac[j] << 10) / (ac[0] + 1)).clamp(-800, 800);
            let lar_q = a >> 4;
            stream.push(lar_q as u8);
            arq[j] = lar_q << 4;
        }
        // 4. short-term residual
        let mut d = [0i16; FRAME];
        for k in 0..FRAME {
            let mut pred = 0i64;
            for j in 1..=TAPS {
                if k >= j {
                    pred += arq[j] * i64::from(s[k - j]);
                }
            }
            d[k] = sat16(i64::from(s[k]) - (pred >> 10));
        }
        // 5. sub-frames
        for n in 0..4 {
            let pos = LAG_MAX + f * FRAME + n * SUBFRAME;
            for k in 0..SUBFRAME {
                ds_buf[pos + k] = d[n * SUBFRAME + k] >> 3;
            }
            let (lag, lmax) = golden_ltppar(&ds_buf[pos..], &ds_buf[pos - LAG_MAX..]);
            let mut energy = 0i64;
            for k in 0..SUBFRAME {
                let h = i64::from(ds_buf[pos + k - lag as usize]);
                energy += h * h;
            }
            let gain = ((lmax << 14) / (energy + 1)).clamp(0, 26000);
            stream.push(lag as u8);
            stream.extend_from_slice(&(gain as i16).to_le_bytes());
            // Full LTP residual.
            let mut e = [0i16; SUBFRAME];
            for k in 0..SUBFRAME {
                let h = i64::from(ds_buf[pos + k - lag as usize]);
                e[k] = sat16(i64::from(ds_buf[pos + k]) - ((gain * h) >> 16));
            }
            // RPE weighting filter (Q13, 5 taps, zero boundary).
            let mut xw = [0i16; SUBFRAME];
            for (k, xwk) in xw.iter_mut().enumerate() {
                let mut acc = 0i64;
                for (i, w) in WEIGHT.iter().enumerate() {
                    let idx = k as i64 + i as i64 - 2;
                    if (0..SUBFRAME as i64).contains(&idx) {
                        acc += w * i64::from(e[idx as usize]);
                    }
                }
                *xwk = sat16(acc >> 13);
            }
            // Grid selection: the 3-decimated grid with most energy.
            let mut grid = 0usize;
            let mut best_e = -1i64;
            for g in 0..3 {
                let mut eg = 0i64;
                for k in 0..13 {
                    let v = i64::from(xw[g + 3 * k]);
                    eg += v * v;
                }
                if eg > best_e {
                    best_e = eg;
                    grid = g;
                }
            }
            stream.push(grid as u8);
            // APCM: block-adaptive quantization to 13 small samples.
            let mut xmax = 0i64;
            for k in 0..13 {
                xmax = xmax.max(i64::from(xw[grid + 3 * k]).abs());
            }
            let xmax_q = (xmax >> 6).clamp(0, 255);
            stream.push(xmax_q as u8);
            let xm = xmax_q << 6;
            for k in 0..13 {
                let q = ((i64::from(xw[grid + 3 * k]) * 8) / (xm + 64)).clamp(-7, 7);
                stream.push(q as u8);
            }
        }
    }
    let decoded = golden_gsmdec(&stream);
    GoldenGsm { stream, decoded }
}

/// Runs the golden decoder over a parameter stream.
#[must_use]
pub fn golden_gsmdec(stream: &[u8]) -> Vec<i16> {
    let mut pos = 0usize;
    let mut out = vec![0i16; NFRAMES * FRAME];
    let mut dp_buf = vec![0i16; LAG_MAX + NFRAMES * FRAME];
    for f in 0..NFRAMES {
        let mut arq = [0i64; TAPS + 1];
        for slot in arq.iter_mut().skip(1) {
            let lar = stream[pos] as i8;
            pos += 1;
            *slot = i64::from(lar) << 4;
        }
        let mut dprime = [0i16; FRAME];
        for n in 0..4 {
            let lag = stream[pos] as usize;
            pos += 1;
            let gain = i16::from_le_bytes([stream[pos], stream[pos + 1]]);
            pos += 2;
            let grid = stream[pos] as usize;
            pos += 1;
            let xm = i64::from(stream[pos]) << 6;
            pos += 1;
            // APCM + RPE reconstruction.
            let mut e = [0i16; SUBFRAME];
            for k in 0..13 {
                let q = stream[pos] as i8;
                pos += 1;
                e[grid + 3 * k] = sat16((i64::from(q) * (xm + 64)) / 8);
            }
            // Long-term filter (the ltpfilt kernel semantics).
            let p = LAG_MAX + f * FRAME + n * SUBFRAME;
            for k in 0..SUBFRAME {
                let h = i32::from(dp_buf[p + k - lag]);
                let contrib = (i32::from(gain) * h) >> 16;
                let v = i32::from(e[k]) + contrib;
                dp_buf[p + k] = v.clamp(-32768, 32767) as i16;
            }
            for k in 0..SUBFRAME {
                dprime[n * SUBFRAME + k] = dp_buf[p + k];
            }
        }
        // Short-term synthesis + deemphasis.
        let mut sprime = [0i16; FRAME];
        for k in 0..FRAME {
            let mut pred = 0i64;
            for j in 1..=TAPS {
                if k >= j {
                    pred += arq[j] * i64::from(sprime[k - j]);
                }
            }
            sprime[k] = sat16((i64::from(dprime[k]) << 3) + (pred >> 10));
        }
        let mut prev = 0i64;
        for k in 0..FRAME {
            let v = sat16(i64::from(sprime[k]) + ((PREEMPH * prev) >> 15));
            out[f * FRAME + k] = v;
            prev = i64::from(v);
        }
    }
    out
}

// ======================================================================
// Shared emit helpers
// ======================================================================

/// Clamps `r` into `[-32768, 32767]`.
fn emit_sat16(a: &mut Asm, r: IReg) {
    a.if_(Cond::Gt, r, 32767, |a| a.li(r, 32767));
    a.if_(Cond::Lt, r, -32768, |a| a.li(r, -32768));
}

mod slot {
    pub const SIGNAL: usize = 0;
    pub const STREAM: usize = 1;
    pub const DS_BUF: usize = 2;
    pub const S_BUF: usize = 3;
    pub const D_BUF: usize = 4;
    pub const ARQ: usize = 5;
    pub const LEN_CELL: usize = 6;
    pub const OUT: usize = 7;
    pub const E_BUF: usize = 8;
    pub const XW_BUF: usize = 9;
    pub const COUNT: usize = 10;
}

struct Buffers {
    machine: Machine,
    slots: [u64; slot::COUNT],
}

fn make_buffers(v: Variant) -> Buffers {
    let mut layout = Layout::new(1 << 20);
    let mut slots = [0u64; slot::COUNT];
    for (i, bytes) in [
        (slot::SIGNAL, 2 * NFRAMES * FRAME),
        (slot::STREAM, 1 << 14),
        (slot::DS_BUF, 2 * (LAG_MAX + NFRAMES * FRAME)),
        (slot::S_BUF, 2 * FRAME),
        (slot::D_BUF, 2 * FRAME),
        (slot::ARQ, 8 * (TAPS + 1)),
        (slot::LEN_CELL, 8),
        (slot::OUT, 2 * NFRAMES * FRAME),
        (slot::E_BUF, 2 * SUBFRAME),
        (slot::XW_BUF, 2 * SUBFRAME),
    ] {
        slots[i] = layout.alloc_array(bytes as u64, 8);
    }
    let params_addr = layout.alloc_array((slot::COUNT * 8) as u64, 8);
    let mut machine = Machine::new(v.machine_ext(), 1 << 20);
    for (i, addr) in slots.iter().enumerate() {
        machine
            .write_bytes(params_addr + (8 * i) as u64, &(*addr as i64).to_le_bytes())
            .unwrap();
    }
    machine.set_ireg(0, params_addr as i64);
    Buffers { machine, slots }
}

// ======================================================================
// The applications
// ======================================================================

/// The GSM speech encoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct GsmEnc;

impl App for GsmEnc {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "gsmenc",
            description: "GSM 06.10 speech encoder",
        }
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self, v: Variant) -> BuiltKernel {
        let signal = test_signal();
        let golden = golden_gsmenc();
        let mut bufs = make_buffers(v);
        bufs.machine
            .write_i16s(bufs.slots[slot::SIGNAL], &signal)
            .unwrap();

        let mut a = Asm::new();
        let params = a.arg(0);
        let outp = a.arg(1);
        let frame = a.arg(2);
        let xf = a.arg(3); // current frame input pointer
        let ds_pos = a.arg(4); // current sub-frame position in ds_buf (byte pointer)
        emit_load_param(&mut a, params, slot::STREAM, outp);
        emit_load_param(&mut a, params, slot::SIGNAL, xf);
        {
            let t = a.ireg();
            emit_load_param(&mut a, params, slot::DS_BUF, t);
            a.addi(ds_pos, t, 2 * LAG_MAX as i32);
            a.release_ireg(t);
        }
        let (sbuf, dbuf, arqp) = (a.ireg(), a.ireg(), a.ireg());
        emit_load_param(&mut a, params, slot::S_BUF, sbuf);
        emit_load_param(&mut a, params, slot::D_BUF, dbuf);
        emit_load_param(&mut a, params, slot::ARQ, arqp);

        a.li(frame, 0);
        a.for_loop(frame, NFRAMES as i32, |a| {
            // --- 1. preemphasis ---
            let (k, prev, t, u) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            a.li(prev, 0);
            a.li(k, 0);
            a.for_loop(k, FRAME as i32, |a| {
                a.muli(t, prev, PREEMPH as i32);
                a.srai(t, t, 15);
                a.slli(u, k, 1);
                a.add(u, xf, u);
                a.lh(prev, u, 0);
                a.sub(t, prev, t);
                emit_sat16(a, t);
                a.slli(u, k, 1);
                a.add(u, sbuf, u);
                a.sh(t, u, 0);
                // prev already holds x[k]
            });
            // --- 2. autocorrelation ---
            // ac[j] kept in registers.
            let acs: Vec<IReg> = (0..=TAPS).map(|_| a.ireg()).collect();
            for (j, acj) in acs.iter().enumerate() {
                a.li(*acj, 0);
                a.li(k, j as i64);
                a.for_loop(k, FRAME as i32, |a| {
                    a.slli(t, k, 1);
                    a.add(t, sbuf, t);
                    a.lh(u, t, 0);
                    a.lh(t, t, -(2 * j as i32));
                    a.mul(t, t, u);
                    a.add(*acj, *acj, t);
                });
            }
            // --- 3. coefficients: arq[j] = ((ac[j]<<10)/(ac[0]+1)).clamp(±800) >> 4 << 4
            let den = a.ireg();
            a.addi(den, acs[0], 1);
            for (j, &acj) in acs.iter().enumerate().skip(1) {
                a.slli(t, acj, 10);
                a.alu(simdsim_isa::AluOp::Div, t, t, den);
                a.if_(Cond::Gt, t, 800, |a| a.li(t, 800));
                a.if_(Cond::Lt, t, -800, |a| a.li(t, -800));
                a.srai(t, t, 4);
                a.sb(t, outp, 0);
                a.addi(outp, outp, 1);
                a.slli(t, t, 4);
                a.sd(t, arqp, (8 * j) as i32);
            }
            a.release_ireg(den);
            for acj in &acs {
                a.release_ireg(*acj);
            }
            // --- 4. short-term residual ---
            a.li(k, 0);
            a.for_loop(k, FRAME as i32, |a| {
                let pred = a.ireg();
                a.li(pred, 0);
                for j in 1..=TAPS {
                    a.if_(Cond::Ge, k, j as i32, |a| {
                        a.slli(t, k, 1);
                        a.add(t, sbuf, t);
                        a.lh(t, t, -(2 * j as i32));
                        a.ld(u, arqp, (8 * j) as i32);
                        a.mul(t, t, u);
                        a.add(pred, pred, t);
                    });
                }
                a.srai(pred, pred, 10);
                a.slli(t, k, 1);
                a.add(t, sbuf, t);
                a.lh(u, t, 0);
                a.sub(u, u, pred);
                emit_sat16(a, u);
                a.slli(t, k, 1);
                a.add(t, dbuf, t);
                a.sh(u, t, 0);
                a.release_ireg(pred);
            });
            // --- 5. sub-frames ---
            let sub = a.ireg();
            a.li(sub, 0);
            a.for_loop(sub, 4, |a| {
                // scale d into ds_buf at ds_pos
                let (dptr, lag, lmax) = (a.ireg(), a.ireg(), a.ireg());
                a.slli(t, sub, 1 + 5); // sub*64... careful: SUBFRAME*2 = 80 bytes
                let _ = t;
                a.muli(t, sub, (2 * SUBFRAME) as i32);
                a.add(dptr, dbuf, t);
                a.li(k, 0);
                a.for_loop(k, SUBFRAME as i32, |a| {
                    a.slli(t, k, 1);
                    a.add(t, dptr, t);
                    a.lh(u, t, 0);
                    a.srai(u, u, 3);
                    a.slli(t, k, 1);
                    a.add(t, ds_pos, t);
                    a.sh(u, t, 0);
                });
                // LTP lag search (vector kernel).
                let hist = a.ireg();
                a.subi(hist, ds_pos, 2 * LAG_MAX as i32);
                let pargs = LtpParArgs {
                    d: ds_pos,
                    hist,
                    out_lag: lag,
                    out_max: lmax,
                };
                emit_ltppar(a, v, &pargs);
                // gain = clamp((lmax << 14) / (energy+1), 0, 26000)
                let (energy, gain) = (a.ireg(), a.ireg());
                a.li(energy, 0);
                a.slli(t, lag, 1);
                a.sub(t, ds_pos, t); // &ds[pos - lag]
                a.li(k, 0);
                a.for_loop(k, SUBFRAME as i32, |a| {
                    a.slli(u, k, 1);
                    a.add(u, t, u);
                    a.lh(u, u, 0);
                    a.mul(u, u, u);
                    a.add(energy, energy, u);
                });
                a.slli(gain, lmax, 14);
                a.addi(energy, energy, 1);
                a.alu(simdsim_isa::AluOp::Div, gain, gain, energy);
                a.if_(Cond::Lt, gain, 0, |a| a.li(gain, 0));
                a.if_(Cond::Gt, gain, 26000, |a| a.li(gain, 26000));
                a.sb(lag, outp, 0);
                a.sh(gain, outp, 1);
                a.addi(outp, outp, 3);
                a.release_ireg(dptr);
                a.release_ireg(hist);
                a.release_ireg(lmax);
                // Full LTP residual into E_BUF.
                let (ebase, xwbase) = (a.ireg(), a.ireg());
                emit_load_param(a, params, slot::E_BUF, ebase);
                emit_load_param(a, params, slot::XW_BUF, xwbase);
                a.li(k, 0);
                a.for_loop(k, SUBFRAME as i32, |a| {
                    let h = a.ireg();
                    a.slli(t, k, 1);
                    a.add(h, ds_pos, t);
                    a.lh(u, h, 0);
                    a.slli(t, lag, 1);
                    a.sub(h, h, t);
                    a.lh(h, h, 0);
                    a.mul(h, h, gain);
                    a.srai(h, h, 16);
                    a.sub(u, u, h);
                    emit_sat16(a, u);
                    a.slli(t, k, 1);
                    a.add(h, ebase, t);
                    a.sh(u, h, 0);
                    a.release_ireg(h);
                });
                // RPE weighting filter (5 taps, Q13, zero boundary).
                a.li(k, 0);
                a.for_loop(k, SUBFRAME as i32, |a| {
                    let (acc, idx) = (a.ireg(), a.ireg());
                    a.li(acc, 0);
                    for (i, w) in WEIGHT.iter().enumerate() {
                        a.addi(idx, k, i as i32 - 2);
                        a.if_(Cond::Ge, idx, 0, |a| {
                            a.if_(Cond::Lt, idx, SUBFRAME as i32, |a| {
                                a.slli(t, idx, 1);
                                a.add(t, ebase, t);
                                a.lh(t, t, 0);
                                a.muli(t, t, *w as i32);
                                a.add(acc, acc, t);
                            });
                        });
                    }
                    a.srai(acc, acc, 13);
                    emit_sat16(a, acc);
                    a.slli(t, k, 1);
                    a.add(t, xwbase, t);
                    a.sh(acc, t, 0);
                    a.release_ireg(acc);
                    a.release_ireg(idx);
                });
                // Grid selection.
                let (grid, best_e) = (a.ireg(), a.ireg());
                a.li(grid, 0);
                a.li(best_e, -1);
                for g in 0..3i64 {
                    let eg = a.ireg();
                    a.li(eg, 0);
                    a.li(k, 0);
                    a.for_loop(k, 13, |a| {
                        a.muli(t, k, 6);
                        a.add(t, xwbase, t);
                        a.lh(t, t, 2 * g as i32);
                        a.mul(t, t, t);
                        a.add(eg, eg, t);
                    });
                    a.if_(Cond::Gt, eg, best_e, |a| {
                        a.mv(best_e, eg);
                        a.li(grid, g);
                    });
                    a.release_ireg(eg);
                }
                // APCM: xmax, quantize 13 samples.
                let (xmax, gbase) = (a.ireg(), a.ireg());
                a.slli(gbase, grid, 1);
                a.add(gbase, xwbase, gbase);
                a.li(xmax, 0);
                a.li(k, 0);
                a.for_loop(k, 13, |a| {
                    a.muli(t, k, 6);
                    a.add(t, gbase, t);
                    a.lh(u, t, 0);
                    a.if_(Cond::Lt, u, 0, |a| {
                        a.li(t, 0);
                        a.sub(u, t, u);
                    });
                    a.if_(Cond::Gt, u, xmax, |a| a.mv(xmax, u));
                });
                a.srai(xmax, xmax, 6);
                a.if_(Cond::Gt, xmax, 255, |a| a.li(xmax, 255));
                a.sb(grid, outp, 0);
                a.sb(xmax, outp, 1);
                a.addi(outp, outp, 2);
                // xm + 64 as the quantizer divisor.
                a.slli(xmax, xmax, 6);
                a.addi(xmax, xmax, 64);
                a.li(k, 0);
                a.for_loop(k, 13, |a| {
                    a.muli(t, k, 6);
                    a.add(t, gbase, t);
                    a.lh(u, t, 0);
                    a.slli(u, u, 3);
                    a.alu(simdsim_isa::AluOp::Div, u, u, xmax);
                    a.if_(Cond::Gt, u, 7, |a| a.li(u, 7));
                    a.if_(Cond::Lt, u, -7, |a| a.li(u, -7));
                    a.sb(u, outp, 0);
                    a.addi(outp, outp, 1);
                });
                a.addi(ds_pos, ds_pos, (2 * SUBFRAME) as i32);
                for r in [lag, energy, gain, ebase, xwbase, grid, best_e, xmax, gbase] {
                    a.release_ireg(r);
                }
            });
            a.release_ireg(sub);
            a.addi(xf, xf, (2 * FRAME) as i32);
            for r in [k, prev, t, u] {
                a.release_ireg(r);
            }
        });
        // stream length
        {
            let (t, cell) = (a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::STREAM, t);
            a.sub(t, outp, t);
            emit_load_param(&mut a, params, slot::LEN_CELL, cell);
            a.sd(t, cell, 0);
            a.release_ireg(t);
            a.release_ireg(cell);
        }
        a.halt();
        let program = a.finish();

        let stream_addr = bufs.slots[slot::STREAM];
        let len_addr = bufs.slots[slot::LEN_CELL];
        let golden_stream = golden.stream;
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            let len = u64::from_le_bytes(
                m.read_bytes(len_addr, 8)
                    .map_err(|e| e.to_string())?
                    .try_into()
                    .unwrap(),
            ) as usize;
            if len != golden_stream.len() {
                return Err(format!(
                    "gsmenc stream length {len} != golden {}",
                    golden_stream.len()
                ));
            }
            let got = m.read_bytes(stream_addr, len).map_err(|e| e.to_string())?;
            if let Some(i) = got.iter().zip(&golden_stream).position(|(a, b)| a != b) {
                return Err(format!(
                    "gsmenc stream mismatch at byte {i}: got {} want {}",
                    got[i], golden_stream[i]
                ));
            }
            Ok(())
        })
    }
}

/// The GSM speech decoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct GsmDec;

impl App for GsmDec {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "gsmdec",
            description: "GSM 06.10 speech decoder",
        }
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self, v: Variant) -> BuiltKernel {
        let golden = golden_gsmenc();
        let mut bufs = make_buffers(v);
        bufs.machine
            .write_bytes(bufs.slots[slot::STREAM], &golden.stream)
            .unwrap();

        let mut a = Asm::new();
        let params = a.arg(0);
        let inp = a.arg(1);
        let frame = a.arg(2);
        let dp_pos = a.arg(3); // current position in the d' history buffer
        let outs = a.arg(4); // output sample pointer
        emit_load_param(&mut a, params, slot::STREAM, inp);
        emit_load_param(&mut a, params, slot::OUT, outs);
        {
            let t = a.ireg();
            emit_load_param(&mut a, params, slot::DS_BUF, t);
            a.addi(dp_pos, t, 2 * LAG_MAX as i32);
            a.release_ireg(t);
        }
        let (sbuf, arqp, ebuf) = (a.ireg(), a.ireg(), a.ireg());
        emit_load_param(&mut a, params, slot::S_BUF, sbuf);
        emit_load_param(&mut a, params, slot::ARQ, arqp);
        emit_load_param(&mut a, params, slot::E_BUF, ebuf);

        a.li(frame, 0);
        a.for_loop(frame, NFRAMES as i32, |a| {
            let (k, t, u) = (a.ireg(), a.ireg(), a.ireg());
            // --- coefficients ---
            for j in 1..=TAPS {
                a.load(simdsim_isa::MemSz::B, true, t, inp, 0);
                a.addi(inp, inp, 1);
                a.slli(t, t, 4);
                a.sd(t, arqp, (8 * j) as i32);
            }
            // --- sub-frames: RPE + long-term filter ---
            let frame_dp = a.ireg();
            a.mv(frame_dp, dp_pos);
            let sub = a.ireg();
            a.li(sub, 0);
            a.for_loop(sub, 4, |a| {
                let (lag, gain, grid, xm) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
                a.lbu(lag, inp, 0);
                a.lh(gain, inp, 1);
                a.lbu(grid, inp, 3);
                a.lbu(xm, inp, 4);
                a.addi(inp, inp, 5);
                a.slli(xm, xm, 6);
                a.addi(xm, xm, 64);
                // e' buffer: zeros, then APCM-dequantized samples on the grid.
                a.li(k, 0);
                a.li(t, 0);
                a.for_loop(k, SUBFRAME as i32, |a| {
                    a.slli(u, k, 1);
                    a.add(u, ebuf, u);
                    a.sh(t, u, 0);
                });
                a.slli(grid, grid, 1);
                a.add(grid, ebuf, grid);
                a.li(k, 0);
                a.for_loop(k, 13, |a| {
                    a.load(simdsim_isa::MemSz::B, true, t, inp, 0);
                    a.addi(inp, inp, 1);
                    a.mul(t, t, xm);
                    a.alu(simdsim_isa::AluOp::Div, t, t, 8);
                    emit_sat16(a, t);
                    a.muli(u, k, 6);
                    a.add(u, grid, u);
                    a.sh(t, u, 0);
                });
                // Long-term filter (vector kernel): out = e' + (gain·hist)>>16.
                let h = a.ireg();
                a.slli(h, lag, 1);
                let hist = a.ireg();
                a.sub(hist, dp_pos, h);
                let fargs = LtpFiltArgs {
                    x: ebuf,
                    h: hist,
                    out: dp_pos,
                    gain,
                };
                emit_ltpfilt(a, v, &fargs, SUBFRAME);
                a.addi(dp_pos, dp_pos, (2 * SUBFRAME) as i32);
                for r in [lag, gain, grid, xm, h, hist] {
                    a.release_ireg(r);
                }
            });
            a.release_ireg(sub);
            // --- short-term synthesis (reads d' from the history buffer) ---
            a.li(k, 0);
            a.for_loop(k, FRAME as i32, |a| {
                let pred = a.ireg();
                a.li(pred, 0);
                for j in 1..=TAPS {
                    a.if_(Cond::Ge, k, j as i32, |a| {
                        a.slli(t, k, 1);
                        a.add(t, sbuf, t);
                        a.lh(t, t, -(2 * j as i32));
                        a.ld(u, arqp, (8 * j) as i32);
                        a.mul(t, t, u);
                        a.add(pred, pred, t);
                    });
                }
                a.srai(pred, pred, 10);
                a.slli(t, k, 1);
                a.add(u, frame_dp, t);
                a.lh(u, u, 0);
                a.slli(u, u, 3);
                a.add(u, u, pred);
                emit_sat16(a, u);
                a.add(t, sbuf, t);
                a.sh(u, t, 0);
                a.release_ireg(pred);
            });
            a.release_ireg(frame_dp);
            // --- deemphasis ---
            let prev = a.ireg();
            a.li(prev, 0);
            a.li(k, 0);
            a.for_loop(k, FRAME as i32, |a| {
                a.muli(t, prev, PREEMPH as i32);
                a.srai(t, t, 15);
                a.slli(u, k, 1);
                a.add(u, sbuf, u);
                a.lh(u, u, 0);
                a.add(t, t, u);
                emit_sat16(a, t);
                a.mv(prev, t);
                a.slli(u, k, 1);
                a.add(u, outs, u);
                a.sh(t, u, 0);
            });
            a.release_ireg(prev);
            a.addi(outs, outs, (2 * FRAME) as i32);
            for r in [k, t, u] {
                a.release_ireg(r);
            }
        });
        a.halt();
        let program = a.finish();

        let out_addr = bufs.slots[slot::OUT];
        let expected = golden.decoded;
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            let got = m
                .read_i16s(out_addr, expected.len())
                .map_err(|e| e.to_string())?;
            if let Some(i) = got.iter().zip(&expected).position(|(a, b)| a != b) {
                return Err(format!(
                    "gsmdec sample mismatch at {i}: got {} want {}",
                    got[i], expected[i]
                ));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_gsm_pipeline_is_plausible() {
        let g = golden_gsmenc();
        assert_eq!(g.stream.len(), NFRAMES * (TAPS + 4 * (1 + 2 + 1 + 1 + 13)));
        assert_eq!(g.decoded.len(), NFRAMES * FRAME);
        // Decoded signal correlates with the input.
        let x = test_signal();
        let energy_in: i64 = x.iter().map(|v| i64::from(*v) * i64::from(*v)).sum();
        let energy_out: i64 = g
            .decoded
            .iter()
            .map(|v| i64::from(*v) * i64::from(*v))
            .sum();
        assert!(energy_out > energy_in / 64, "{energy_out} vs {energy_in}");
    }

    #[test]
    fn gsmenc_all_variants_match_golden() {
        for v in Variant::ALL {
            GsmEnc
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn gsmdec_all_variants_match_golden() {
        for v in Variant::ALL {
            GsmDec
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn gsm_vector_fraction_is_small() {
        // The paper: gsm apps vectorise <10%.
        let s = GsmEnc.build(Variant::Mmx64).run_checked().unwrap();
        let frac = s.vector_region_instrs as f64 / s.dyn_instrs as f64;
        assert!(frac < 0.40, "vector fraction {frac}");
    }
}
