//! Complete multimedia applications as traced programs.
//!
//! Six applications mirror the paper's benchmark set (Table II): a JPEG
//! encoder and decoder, an MPEG-2-style video encoder and decoder, and a
//! GSM-06.10-style speech encoder and decoder.  Each application is a
//! single `simdsim` program mixing
//!
//! * **scalar phases** — entropy coding, bitstream parsing, quantization,
//!   blocking, padding, LPC analysis … (real traced code, not synthetic
//!   padding), and
//! * **vectorised kernels** from [`simdsim_kernels`] in the ISA variant
//!   under study.
//!
//! The codecs are simplified but complete and self-consistent: each
//! decoder consumes the bitstream its encoder produces, and every build
//! checks the program's output bit-for-bit against a golden Rust
//! implementation of the same codec.
//!
//! | app | vector kernels | scalar phases |
//! |---|---|---|
//! | `jpegenc`  | rgb, fdct | chroma subsampling, blocking, quantization, RLE/DC-prediction entropy coding |
//! | `jpegdec`  | idct, h2v2, ycc | entropy decoding, dequantization, border padding |
//! | `mpeg2enc` | motion1, motion2, fdct, idct*, addblock* | mode decision, residual blocking, quantization, entropy coding (reconstruction loop) |
//! | `mpeg2dec` | idct, comp, addblock | parsing, dequantization, prediction copy |
//! | `gsmenc`   | ltppar | preemphasis, autocorrelation, LPC, short-term filtering, RPE quantization |
//! | `gsmdec`   | ltpfilt | RPE reconstruction, short-term synthesis, deemphasis |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod common;
pub mod gsm;
pub mod jpeg;
pub mod mpeg2;

pub use simdsim_kernels::{BuiltKernel, Variant};

/// Workload revision, part of `simdsim-sweep`'s content-addressed cache
/// key.  Bump whenever application code or input bitstreams change in a
/// way that affects timing, so cached results from older builds are never
/// reused.
pub const REVISION: u32 = 1;

/// Static description of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name (`jpegenc`, ...).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// A complete application workload: like a kernel, it builds a program +
/// machine + golden checker, but the program is a full codec run.
pub trait App: Send + Sync {
    /// The application description.
    fn spec(&self) -> AppSpec;
    /// Builds the workload for `variant`.
    fn build(&self, variant: Variant) -> BuiltKernel;
}

/// All six applications in the paper's order.
#[must_use]
pub fn registry() -> Vec<Box<dyn App>> {
    vec![
        Box::new(jpeg::JpegEnc),
        Box::new(jpeg::JpegDec),
        Box::new(mpeg2::Mpeg2Enc),
        Box::new(mpeg2::Mpeg2Dec),
        Box::new(gsm::GsmEnc),
        Box::new(gsm::GsmDec),
    ]
}

/// Looks an application up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn App>> {
    registry().into_iter().find(|a| a.spec().name == name)
}
