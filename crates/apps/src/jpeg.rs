//! The JPEG-style still-image encoder (`jpegenc`) and decoder
//! (`jpegdec`).
//!
//! Pipeline (encoder): RGB→YCC colour conversion [vector `rgb`], 2×2
//! chroma subsampling [scalar], then per 8×8 block: level-shifted
//! extraction [scalar], forward DCT [vector `fdct`], quantization +
//! zigzag + RLE/DC-prediction entropy coding [scalar].
//!
//! Pipeline (decoder): entropy decoding + dequantization [scalar],
//! inverse DCT [vector `idct`], block insertion [scalar], chroma border
//! padding [scalar], 2× up-sampling [vector `h2v2`], YCC→RGB [vector
//! `ycc`].

use crate::bitio::{
    emit_br_init, emit_bw_flush, emit_bw_init, emit_vlc_decode, emit_vlc_encode, golden_vlc_decode,
    golden_vlc_encode, BitReader, BitWriter, BrRegs, BwRegs,
};
use crate::common::{
    emit_dequant_descan, emit_extract_block, emit_insert_block, emit_load_param, emit_quant_scan,
    golden_dequant_descan, golden_extract_block, golden_insert_block, golden_quant_scan,
    golden_subsample, qsteps, ZIGZAG,
};
use crate::{App, AppSpec};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Cond, IReg, MReg};
use simdsim_kernels::color::{emit_rgb, emit_ycc, golden_rgb_px, golden_ycc_px, ColorArgs};
use simdsim_kernels::dct::{
    dct_coltab, emit_dct, emit_vmmx128_body, emit_vmmx128_coltab_load, emit_vmmx64_body,
    fdct_matrix, golden_transform, idct_matrix, DctArgs,
};
use simdsim_kernels::resample::{emit_h2v2, golden_h2v2, h2v2_coltab, pad_plane, H2v2Args};
use simdsim_kernels::{BuiltKernel, Variant};

/// Image width (pixels).
pub const W: usize = 128;
/// Image height (pixels).
pub const H: usize = 128;
const WC: usize = W / 2;
const HC: usize = H / 2;

/// Emits one 8×8 DCT in the right variant, reusing hoisted coefficient
/// matrices on VMMX128.
pub(crate) fn emit_dct_variant(
    a: &mut Asm,
    v: Variant,
    coef: &[i16; 64],
    args: &DctArgs,
    cols: Option<&Vec<MReg>>,
) {
    match v {
        Variant::Vmmx128 => {
            let cols = cols.expect("hoisted coefficient matrices");
            a.vector_region(|a| emit_vmmx128_body(a, cols, args));
        }
        Variant::Vmmx64 => a.vector_region(|a| emit_vmmx64_body(a, args)),
        _ => emit_dct(a, v, coef, args),
    }
}

/// Emits the 2×2-average subsampling loop (`w`,`h`: source dims).
fn emit_subsample(a: &mut Asm, srcp: IReg, dstp: IReg, w: usize, h: usize) {
    let (sp, dp, x, y, t, u) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(sp, srcp);
    a.mv(dp, dstp);
    a.li(y, 0);
    a.for_loop(y, (h / 2) as i32, |a| {
        a.li(x, 0);
        a.for_loop(x, (w / 2) as i32, |a| {
            a.slli(t, x, 1);
            a.add(t, sp, t);
            a.lbu(u, t, 0);
            let s = a.ireg();
            a.lbu(s, t, 1);
            a.add(u, u, s);
            a.lbu(s, t, w as i32);
            a.add(u, u, s);
            a.lbu(s, t, w as i32 + 1);
            a.add(u, u, s);
            a.addi(u, u, 2);
            a.srli(u, u, 2);
            a.add(t, dp, x);
            a.sb(u, t, 0);
            a.release_ireg(s);
        });
        a.addi(sp, sp, 2 * w as i32);
        a.addi(dp, dp, (w / 2) as i32);
    });
    for r in [sp, dp, x, y, t, u] {
        a.release_ireg(r);
    }
}

/// Emits the edge-replication padding loop (source `w×h` → padded
/// `(w+2)×(h+2)`, matching [`pad_plane`]).
fn emit_pad(a: &mut Asm, srcp: IReg, dstp: IReg, w: usize, h: usize) {
    let (x, y, sx, sy, t, u) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.li(y, 0);
    a.for_loop(y, (h + 2) as i32, |a| {
        // sy = clamp(y, 1, h) - 1
        a.mv(sy, y);
        a.if_(Cond::Lt, sy, 1, |a| a.li(sy, 1));
        a.if_(Cond::Gt, sy, h as i32, |a| a.li(sy, h as i64));
        a.subi(sy, sy, 1);
        a.li(x, 0);
        a.for_loop(x, (w + 2) as i32, |a| {
            a.mv(sx, x);
            a.if_(Cond::Lt, sx, 1, |a| a.li(sx, 1));
            a.if_(Cond::Gt, sx, w as i32, |a| a.li(sx, w as i64));
            a.subi(sx, sx, 1);
            a.muli(t, sy, w as i32);
            a.add(t, t, sx);
            a.add(t, srcp, t);
            a.lbu(u, t, 0);
            a.muli(t, y, (w + 2) as i32);
            a.add(t, t, x);
            a.add(t, dstp, t);
            a.sb(u, t, 0);
        });
    });
    for r in [x, y, sx, sy, t, u] {
        a.release_ireg(r);
    }
}

/// Parameter-block slot indices shared by encoder and decoder.
mod slot {
    pub const R: usize = 0;
    pub const G: usize = 1;
    pub const B: usize = 2;
    pub const Y: usize = 3;
    pub const CB: usize = 4;
    pub const CR: usize = 5;
    pub const CBS: usize = 6;
    pub const CRS: usize = 7;
    pub const BLOCK: usize = 8;
    pub const COEF: usize = 9;
    pub const QSCAN: usize = 10;
    pub const QSTEP_L: usize = 11;
    pub const QSTEP_C: usize = 12;
    pub const ZIGZAG: usize = 13;
    pub const SCRATCH: usize = 14;
    pub const DCT_COLTAB: usize = 15;
    pub const COLOR_COLTAB: usize = 16;
    pub const STREAM: usize = 17;
    pub const LEN_CELL: usize = 18;
    pub const CBS_PAD: usize = 19;
    pub const CRS_PAD: usize = 20;
    pub const H2V2_COLTAB: usize = 21;
    pub const COUNT: usize = 22;
}

struct JpegBuffers {
    machine: Machine,
    params_addr: u64,
    slots: [u64; slot::COUNT],
}

/// Allocates and fills the memory image common to encoder and decoder.
fn make_buffers(v: Variant, forward_dct: bool) -> JpegBuffers {
    let mut layout = Layout::new(1 << 22);
    let mut slots = [0u64; slot::COUNT];
    for (i, bytes) in [
        (slot::R, W * H),
        (slot::G, W * H),
        (slot::B, W * H),
        (slot::Y, W * H),
        (slot::CB, W * H),
        (slot::CR, W * H),
        (slot::CBS, WC * HC),
        (slot::CRS, WC * HC),
        (slot::BLOCK, 128),
        (slot::COEF, 128),
        (slot::QSCAN, 128),
        (slot::QSTEP_L, 128),
        (slot::QSTEP_C, 128),
        (slot::ZIGZAG, 64),
        (slot::SCRATCH, 512),
        (slot::DCT_COLTAB, 8 * 8 * 16),
        (slot::COLOR_COLTAB, 16 * 16),
        (slot::STREAM, 1 << 16),
        (slot::LEN_CELL, 8),
        (slot::CBS_PAD, (WC + 2) * (HC + 2)),
        (slot::CRS_PAD, (WC + 2) * (HC + 2)),
        (slot::H2V2_COLTAB, 16 * 16),
    ] {
        slots[i] = layout.alloc_array(bytes as u64, 8);
    }
    let params_addr = layout.alloc_array((slot::COUNT * 8) as u64, 8);

    let mut machine = Machine::new(v.machine_ext(), 1 << 22);
    for (i, addr) in slots.iter().enumerate() {
        machine
            .write_bytes(params_addr + (8 * i) as u64, &(*addr as i64).to_le_bytes())
            .unwrap();
    }
    machine
        .write_i16s(slots[slot::QSTEP_L], &qsteps(8))
        .unwrap();
    machine
        .write_i16s(slots[slot::QSTEP_C], &qsteps(12))
        .unwrap();
    machine.write_bytes(slots[slot::ZIGZAG], &ZIGZAG).unwrap();
    let dct_coef = if forward_dct {
        fdct_matrix()
    } else {
        idct_matrix()
    };
    machine
        .write_bytes(slots[slot::DCT_COLTAB], &dct_coltab(&dct_coef, v.width()))
        .unwrap();
    machine
        .write_bytes(slots[slot::H2V2_COLTAB], &h2v2_coltab(v.width()))
        .unwrap();
    let color_tab = if forward_dct {
        simdsim_kernels::color::rgb_coltab(v.width())
    } else {
        simdsim_kernels::color::ycc_coltab(v.width())
    };
    machine
        .write_bytes(slots[slot::COLOR_COLTAB], &color_tab)
        .unwrap();
    machine.set_ireg(0, params_addr as i64);
    JpegBuffers {
        machine,
        params_addr,
        slots,
    }
}

// ======================================================================
// Golden pipelines
// ======================================================================

/// Runs the full golden encoder; returns the bitstream.
#[must_use]
pub fn golden_jpegenc(r: &[u8], g: &[u8], b: &[u8]) -> Vec<u8> {
    let n = W * H;
    let (mut y, mut cb, mut cr) = (vec![0u8; n], vec![0u8; n], vec![0u8; n]);
    for i in 0..n {
        let (yy, cbb, crr) = golden_rgb_px(r[i], g[i], b[i]);
        y[i] = yy;
        cb[i] = cbb;
        cr[i] = crr;
    }
    let cbs = golden_subsample(&cb, W, H);
    let crs = golden_subsample(&cr, W, H);
    let (ql, qc) = (qsteps(8), qsteps(12));
    let fm = fdct_matrix();
    let mut bw = BitWriter::new();
    for (plane, w, h, qs) in [
        (&y[..], W, H, &ql),
        (&cbs[..], WC, HC, &qc),
        (&crs[..], WC, HC, &qc),
    ] {
        let mut prev_dc = 0i16;
        for by in 0..h / 8 {
            for bx in 0..w / 8 {
                let block = golden_extract_block(plane, w, bx, by);
                let coef = golden_transform(&block, &fm);
                let q = golden_quant_scan(&coef, qs);
                prev_dc = golden_vlc_encode(&q, prev_dc, &mut bw);
            }
        }
    }
    bw.flush();
    bw.bytes
}

/// Runs the full golden decoder; returns the RGB planes.
#[must_use]
pub fn golden_jpegdec(stream: &[u8]) -> [Vec<u8>; 3] {
    let (ql, qc) = (qsteps(8), qsteps(12));
    let im = idct_matrix();
    let mut br = BitReader::new(stream, 0);
    let mut planes: Vec<Vec<u8>> = Vec::new();
    for (w, h, qs) in [(W, H, &ql), (WC, HC, &qc), (WC, HC, &qc)] {
        let mut plane = vec![0u8; w * h];
        let mut prev_dc = 0i16;
        for by in 0..h / 8 {
            for bx in 0..w / 8 {
                let (q, dc) = golden_vlc_decode(&mut br, prev_dc);
                prev_dc = dc;
                let coef = golden_dequant_descan(&q, qs);
                let block = golden_transform(&coef, &im);
                golden_insert_block(&mut plane, w, bx, by, &block);
            }
        }
        planes.push(plane);
    }
    let y = planes.remove(0);
    let cbs = planes.remove(0);
    let crs = planes.remove(0);
    // Upsample chroma.
    let mut cb = vec![0u8; W * H];
    let mut cr = vec![0u8; W * H];
    golden_h2v2(&pad_plane(&cbs, WC, HC), WC, HC, &mut cb);
    golden_h2v2(&pad_plane(&crs, WC, HC), WC, HC, &mut cr);
    let n = W * H;
    let (mut r, mut g, mut b) = (vec![0u8; n], vec![0u8; n], vec![0u8; n]);
    for i in 0..n {
        let (rr, gg, bb) = golden_ycc_px(y[i], cb[i], cr[i]);
        r[i] = rr;
        g[i] = gg;
        b[i] = bb;
    }
    [r, g, b]
}

// ======================================================================
// The applications
// ======================================================================

/// Block-coding pointer registers shared by the encode/decode plane loops.
struct CodecRegs {
    block: IReg,
    coef: IReg,
    qscan: IReg,
    zigzag: IReg,
    scratch: IReg,
    coltab: IReg,
}

fn load_codec_regs(a: &mut Asm, params: IReg) -> CodecRegs {
    let regs = CodecRegs {
        block: a.ireg(),
        coef: a.ireg(),
        qscan: a.ireg(),
        zigzag: a.ireg(),
        scratch: a.ireg(),
        coltab: a.ireg(),
    };
    emit_load_param(a, params, slot::BLOCK, regs.block);
    emit_load_param(a, params, slot::COEF, regs.coef);
    emit_load_param(a, params, slot::QSCAN, regs.qscan);
    emit_load_param(a, params, slot::ZIGZAG, regs.zigzag);
    emit_load_param(a, params, slot::SCRATCH, regs.scratch);
    emit_load_param(a, params, slot::DCT_COLTAB, regs.coltab);
    regs
}

/// The JPEG encoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct JpegEnc;

impl App for JpegEnc {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "jpegenc",
            description: "JPEG still image encoder",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        let rng_plane = |seed| simdsim_kernels::data::smooth_plane(W, H, seed);
        let (r, g, b) = (rng_plane(201), rng_plane(203), rng_plane(205));
        let mut bufs = make_buffers(v, true);
        bufs.machine.write_bytes(bufs.slots[slot::R], &r).unwrap();
        bufs.machine.write_bytes(bufs.slots[slot::G], &g).unwrap();
        bufs.machine.write_bytes(bufs.slots[slot::B], &b).unwrap();

        let golden_stream = golden_jpegenc(&r, &g, &b);
        let fm = fdct_matrix();

        let mut a = Asm::new();
        let params = a.arg(0);
        let outp = a.arg(1);
        emit_load_param(&mut a, params, slot::STREAM, outp);

        // Phase 1: colour conversion (vector kernel).
        {
            let cargs = ColorArgs {
                src: [a.arg(2), a.arg(3), a.arg(4)],
                dst: [a.arg(5), a.arg(6), a.arg(7)],
                npx: {
                    let n = a.ireg();
                    a.li(n, (W * H) as i64);
                    n
                },
                coltab: {
                    let c = a.ireg();
                    emit_load_param(&mut a, params, slot::COLOR_COLTAB, c);
                    c
                },
            };
            emit_load_param(&mut a, params, slot::R, cargs.src[0]);
            emit_load_param(&mut a, params, slot::G, cargs.src[1]);
            emit_load_param(&mut a, params, slot::B, cargs.src[2]);
            emit_load_param(&mut a, params, slot::Y, cargs.dst[0]);
            emit_load_param(&mut a, params, slot::CB, cargs.dst[1]);
            emit_load_param(&mut a, params, slot::CR, cargs.dst[2]);
            emit_rgb(&mut a, v, &cargs);
            a.release_ireg(cargs.npx);
            a.release_ireg(cargs.coltab);
        }

        // Phase 2: chroma subsampling (scalar).
        {
            let (sp, dp) = (a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::CB, sp);
            emit_load_param(&mut a, params, slot::CBS, dp);
            emit_subsample(&mut a, sp, dp, W, H);
            emit_load_param(&mut a, params, slot::CR, sp);
            emit_load_param(&mut a, params, slot::CRS, dp);
            emit_subsample(&mut a, sp, dp, W, H);
            a.release_ireg(sp);
            a.release_ireg(dp);
        }

        // Phase 3: per-block transform coding.
        let regs = load_codec_regs(&mut a, params);
        let cols = if v == Variant::Vmmx128 {
            Some(a.vector_region(|a| emit_vmmx128_coltab_load(a, regs.coltab)))
        } else {
            None
        };
        // Free cold pointers; the block loop reloads them ad hoc (the
        // integer file is under real pressure here, like compiled code).
        for r in [regs.zigzag, regs.scratch, regs.coltab] {
            a.release_ireg(r);
        }
        let bw = BwRegs {
            acc: a.ireg(),
            nbits: a.ireg(),
            outp,
        };
        emit_bw_init(&mut a, &bw);
        for (plane_slot, w, h, q_slot) in [
            (slot::Y, W, H, slot::QSTEP_L),
            (slot::CBS, WC, HC, slot::QSTEP_C),
            (slot::CRS, WC, HC, slot::QSTEP_C),
        ] {
            let (planep, qstepp, stride, prev_dc, srcp, by, bx, t) = (
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
            );
            emit_load_param(&mut a, params, plane_slot, planep);
            emit_load_param(&mut a, params, q_slot, qstepp);
            a.li(stride, w as i64);
            a.li(prev_dc, 0);
            a.li(by, 0);
            a.for_loop(by, (h / 8) as i32, |a| {
                a.li(bx, 0);
                a.for_loop(bx, (w / 8) as i32, |a| {
                    a.muli(t, by, (8 * w) as i32);
                    a.add(srcp, planep, t);
                    a.slli(t, bx, 3);
                    a.add(srcp, srcp, t);
                    emit_extract_block(a, srcp, stride, regs.block);
                    {
                        let scratch = a.ireg();
                        let coltab = a.ireg();
                        emit_load_param(a, params, slot::SCRATCH, scratch);
                        emit_load_param(a, params, slot::DCT_COLTAB, coltab);
                        let dargs = DctArgs {
                            inp: regs.block,
                            outp: regs.coef,
                            scratch,
                            coltab,
                        };
                        emit_dct_variant(a, v, &fm, &dargs, cols.as_ref());
                        a.release_ireg(scratch);
                        a.release_ireg(coltab);
                    }
                    {
                        let zigzag = a.ireg();
                        emit_load_param(a, params, slot::ZIGZAG, zigzag);
                        emit_quant_scan(a, regs.coef, qstepp, zigzag, regs.qscan);
                        a.release_ireg(zigzag);
                    }
                    emit_vlc_encode(a, regs.qscan, &bw, prev_dc);
                });
            });
            for reg in [planep, qstepp, stride, prev_dc, srcp, by, bx, t] {
                a.release_ireg(reg);
            }
        }
        // Flush the bit stream and store its length.
        emit_bw_flush(&mut a, &bw);
        {
            let (t, cell) = (a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::STREAM, t);
            a.sub(t, outp, t);
            emit_load_param(&mut a, params, slot::LEN_CELL, cell);
            a.sd(t, cell, 0);
            a.release_ireg(t);
            a.release_ireg(cell);
        }
        a.halt();
        let program = a.finish();

        let stream_addr = bufs.slots[slot::STREAM];
        let len_addr = bufs.slots[slot::LEN_CELL];
        let _ = bufs.params_addr;
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            let len = u64::from_le_bytes(
                m.read_bytes(len_addr, 8)
                    .map_err(|e| e.to_string())?
                    .try_into()
                    .unwrap(),
            ) as usize;
            if len != golden_stream.len() {
                return Err(format!(
                    "jpegenc stream length {len} != golden {}",
                    golden_stream.len()
                ));
            }
            let got = m.read_bytes(stream_addr, len).map_err(|e| e.to_string())?;
            if let Some(i) = got.iter().zip(&golden_stream).position(|(a, b)| a != b) {
                return Err(format!(
                    "jpegenc stream mismatch at byte {i}: got {} want {}",
                    got[i], golden_stream[i]
                ));
            }
            Ok(())
        })
    }
}

/// The JPEG decoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct JpegDec;

impl App for JpegDec {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "jpegdec",
            description: "JPEG still image decoder",
        }
    }

    fn build(&self, v: Variant) -> BuiltKernel {
        // Input: the bitstream the encoder produces for the test image.
        let plane = |seed| simdsim_kernels::data::smooth_plane(W, H, seed);
        let (r, g, b) = (plane(201), plane(203), plane(205));
        let stream = golden_jpegenc(&r, &g, &b);
        let expected = golden_jpegdec(&stream);

        let mut bufs = make_buffers(v, false);
        bufs.machine
            .write_bytes(bufs.slots[slot::STREAM], &stream)
            .unwrap();

        let im = idct_matrix();
        let mut a = Asm::new();
        let params = a.arg(0);
        let inp = a.arg(1);
        emit_load_param(&mut a, params, slot::STREAM, inp);

        // Phase 1: entropy decode + dequant + IDCT + insert, per plane.
        let regs = load_codec_regs(&mut a, params);
        let cols = if v == Variant::Vmmx128 {
            Some(a.vector_region(|a| emit_vmmx128_coltab_load(a, regs.coltab)))
        } else {
            None
        };
        let br = BrRegs {
            acc: a.ireg(),
            nbits: a.ireg(),
            inp,
        };
        emit_br_init(&mut a, &br);
        for (plane_slot, w, h, q_slot) in [
            (slot::Y, W, H, slot::QSTEP_L),
            (slot::CBS, WC, HC, slot::QSTEP_C),
            (slot::CRS, WC, HC, slot::QSTEP_C),
        ] {
            let (planep, qstepp, stride, prev_dc, dstp, by, bx, t) = (
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
            );
            emit_load_param(&mut a, params, plane_slot, planep);
            emit_load_param(&mut a, params, q_slot, qstepp);
            a.li(stride, w as i64);
            a.li(prev_dc, 0);
            a.li(by, 0);
            a.for_loop(by, (h / 8) as i32, |a| {
                a.li(bx, 0);
                a.for_loop(bx, (w / 8) as i32, |a| {
                    emit_vlc_decode(a, &br, regs.qscan, prev_dc);
                    emit_dequant_descan(a, regs.qscan, qstepp, regs.zigzag, regs.coef);
                    let dargs = DctArgs {
                        inp: regs.coef,
                        outp: regs.block,
                        scratch: regs.scratch,
                        coltab: regs.coltab,
                    };
                    emit_dct_variant(a, v, &im, &dargs, cols.as_ref());
                    a.muli(t, by, (8 * w) as i32);
                    a.add(dstp, planep, t);
                    a.slli(t, bx, 3);
                    a.add(dstp, dstp, t);
                    emit_insert_block(a, dstp, stride, regs.block);
                });
            });
            for reg in [planep, qstepp, stride, prev_dc, dstp, by, bx, t] {
                a.release_ireg(reg);
            }
        }
        if let Some(cols) = &cols {
            for m in cols {
                a.release_mreg(*m);
            }
        }
        for r in [
            regs.block,
            regs.coef,
            regs.qscan,
            regs.zigzag,
            regs.scratch,
            regs.coltab,
            br.acc,
            br.nbits,
        ] {
            a.release_ireg(r);
        }

        // Phase 2: chroma padding (scalar) + upsampling (vector).
        for (src_slot, pad_slot, dst_slot) in [
            (slot::CBS, slot::CBS_PAD, slot::CB),
            (slot::CRS, slot::CRS_PAD, slot::CR),
        ] {
            let (sp, dp) = (a.ireg(), a.ireg());
            emit_load_param(&mut a, params, src_slot, sp);
            emit_load_param(&mut a, params, pad_slot, dp);
            emit_pad(&mut a, sp, dp, WC, HC);
            let hargs = H2v2Args {
                input: dp,
                out: sp, // reuse registers: sp now holds the output plane
                w: {
                    let w = a.ireg();
                    a.li(w, WC as i64);
                    w
                },
                h: {
                    let h = a.ireg();
                    a.li(h, HC as i64);
                    h
                },
                coltab: {
                    let c = a.ireg();
                    emit_load_param(&mut a, params, slot::H2V2_COLTAB, c);
                    c
                },
            };
            emit_load_param(&mut a, params, dst_slot, sp);
            emit_h2v2(&mut a, v, &hargs);
            a.release_ireg(hargs.w);
            a.release_ireg(hargs.h);
            a.release_ireg(hargs.coltab);
            a.release_ireg(sp);
            a.release_ireg(dp);
        }

        // Phase 3: colour conversion (vector).
        {
            let cargs = ColorArgs {
                src: [a.arg(2), a.arg(3), a.arg(4)],
                dst: [a.arg(5), a.arg(6), a.arg(7)],
                npx: {
                    let n = a.ireg();
                    a.li(n, (W * H) as i64);
                    n
                },
                coltab: {
                    let c = a.ireg();
                    emit_load_param(&mut a, params, slot::COLOR_COLTAB, c);
                    c
                },
            };
            emit_load_param(&mut a, params, slot::Y, cargs.src[0]);
            emit_load_param(&mut a, params, slot::CB, cargs.src[1]);
            emit_load_param(&mut a, params, slot::CR, cargs.src[2]);
            emit_load_param(&mut a, params, slot::R, cargs.dst[0]);
            emit_load_param(&mut a, params, slot::G, cargs.dst[1]);
            emit_load_param(&mut a, params, slot::B, cargs.dst[2]);
            emit_ycc(&mut a, v, &cargs);
            a.release_ireg(cargs.npx);
            a.release_ireg(cargs.coltab);
        }
        a.halt();
        let program = a.finish();

        let out_slots = [
            bufs.slots[slot::R],
            bufs.slots[slot::G],
            bufs.slots[slot::B],
        ];
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            for (p, (addr, exp)) in out_slots.iter().zip(expected.iter()).enumerate() {
                let got = m.read_bytes(*addr, W * H).map_err(|e| e.to_string())?;
                if let Some(i) = got.iter().zip(exp.iter()).position(|(a, b)| a != b) {
                    return Err(format!(
                        "jpegdec plane {p} mismatch at px {i}: got {} want {}",
                        got[i], exp[i]
                    ));
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_enc_dec_roundtrip_is_plausible() {
        let p = |seed| simdsim_kernels::data::smooth_plane(W, H, seed);
        let (r, g, b) = (p(1), p(2), p(3));
        let stream = golden_jpegenc(&r, &g, &b);
        assert!(stream.len() > 500, "stream too small: {}", stream.len());
        assert!(stream.len() < W * H * 3, "no compression");
        let [r2, g2, b2] = golden_jpegdec(&stream);
        // Lossy but recognisable: mean abs error below ~12.
        let mae = |a: &[u8], b: &[u8]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| u64::from(x.abs_diff(*y)))
                .sum::<u64>()
                / a.len() as u64
        };
        assert!(mae(&r, &r2) < 12, "R error {}", mae(&r, &r2));
        assert!(mae(&g, &g2) < 12);
        assert!(mae(&b, &b2) < 12);
    }

    #[test]
    fn jpegenc_all_variants_match_golden() {
        for v in Variant::ALL {
            JpegEnc
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn jpegdec_all_variants_match_golden() {
        for v in Variant::ALL {
            JpegDec
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn vector_share_shrinks_with_better_extension() {
        let s64 = JpegDec.build(Variant::Mmx64).run_checked().unwrap();
        let s128 = JpegDec.build(Variant::Vmmx128).run_checked().unwrap();
        let frac = |s: &simdsim_emu::RunStats| s.vector_region_instrs as f64 / s.dyn_instrs as f64;
        assert!(
            frac(&s128) < frac(&s64),
            "{} vs {}",
            frac(&s128),
            frac(&s64)
        );
    }
}
