//! The MPEG-2-style video encoder (`mpeg2enc`) and decoder (`mpeg2dec`).
//!
//! A two-frame GOP (one intra frame, one predicted frame) over a 64×48
//! luma plane with 32×24 chroma:
//!
//! * **encoder** — full-search ±2-pel motion estimation over the
//!   reconstructed reference [vector `motion1`], SQD quality metric
//!   [vector `motion2`], residual transform coding [vector `fdct`], a
//!   closed reconstruction loop [vector `idct`, `addblock`, `comp`], and
//!   scalar mode decision / quantization / entropy coding;
//! * **decoder** — parsing and dequantization [scalar], inverse DCT
//!   [vector `idct`], motion-compensated prediction (averaging mode uses
//!   [vector `comp`]), residual addition [vector `addblock`].
//!
//! The decoder's output planes are bit-identical to the encoder's
//! reconstruction — the usual closed-loop codec invariant, checked
//! against the golden Rust implementation.

use crate::bitio::{
    emit_br_init, emit_bw_flush, emit_bw_init, emit_vlc_decode, emit_vlc_encode, golden_vlc_encode,
    BitWriter, BrRegs, BwRegs,
};
use crate::common::{
    emit_dequant_descan, emit_extract_block, emit_insert_block, emit_load_param, emit_quant_scan,
    golden_dequant_descan, golden_extract_block, golden_insert_block, golden_quant_scan, qsteps,
    ZIGZAG,
};
use crate::{App, AppSpec};
use simdsim_asm::Asm;
use simdsim_emu::{Layout, Machine};
use simdsim_isa::{Cond, IReg};
use simdsim_kernels::dct::{dct_coltab, fdct_matrix, golden_transform, idct_matrix, DctArgs};
use simdsim_kernels::motion::{
    emit_comp, emit_motion1, emit_motion2, golden_addblock, golden_comp, golden_sad, golden_ssd,
    CompArgs, SadArgs,
};
use simdsim_kernels::{BuiltKernel, Variant};

/// Luma width.
pub const W: usize = 96;
/// Luma height.
pub const H: usize = 64;
const WC: usize = W / 2;
const HC: usize = H / 2;
/// Motion search range (± pels).
pub const RANGE: i32 = 2;

mod slot {
    pub const CUR0: usize = 0;
    pub const CUR1: usize = 1;
    pub const RECON0: usize = 2;
    pub const RECON1: usize = 3;
    pub const CB0: usize = 4;
    pub const CR0: usize = 5;
    pub const CB1: usize = 6;
    pub const CR1: usize = 7;
    pub const RCB0: usize = 8;
    pub const RCR0: usize = 9;
    pub const RCB1: usize = 10;
    pub const RCR1: usize = 11;
    pub const BLOCK: usize = 12;
    pub const COEF: usize = 13;
    pub const QSCAN: usize = 14;
    pub const QSTEP: usize = 15;
    pub const ZIGZAG: usize = 16;
    pub const SCRATCH: usize = 17;
    pub const FDCT_COLTAB: usize = 18;
    pub const IDCT_COLTAB: usize = 19;
    pub const STREAM: usize = 20;
    pub const LEN_CELL: usize = 21;
    pub const COUNT: usize = 22;
}

struct Buffers {
    machine: Machine,
    slots: [u64; slot::COUNT],
}

fn make_buffers(v: Variant) -> Buffers {
    let mut layout = Layout::new(1 << 22);
    let mut slots = [0u64; slot::COUNT];
    for (i, bytes) in [
        (slot::CUR0, W * H),
        (slot::CUR1, W * H),
        (slot::RECON0, W * H),
        (slot::RECON1, W * H),
        (slot::CB0, WC * HC),
        (slot::CR0, WC * HC),
        (slot::CB1, WC * HC),
        (slot::CR1, WC * HC),
        (slot::RCB0, WC * HC),
        (slot::RCR0, WC * HC),
        (slot::RCB1, WC * HC),
        (slot::RCR1, WC * HC),
        (slot::BLOCK, 128),
        (slot::COEF, 128),
        (slot::QSCAN, 128),
        (slot::QSTEP, 128),
        (slot::ZIGZAG, 64),
        (slot::SCRATCH, 512),
        (slot::FDCT_COLTAB, 1024),
        (slot::IDCT_COLTAB, 1024),
        (slot::STREAM, 1 << 16),
        (slot::LEN_CELL, 8),
    ] {
        slots[i] = layout.alloc_array(bytes as u64, 8);
    }
    let params_addr = layout.alloc_array((slot::COUNT * 8) as u64, 8);
    let mut machine = Machine::new(v.machine_ext(), 1 << 22);
    for (i, addr) in slots.iter().enumerate() {
        machine
            .write_bytes(params_addr + (8 * i) as u64, &(*addr as i64).to_le_bytes())
            .unwrap();
    }
    machine.write_i16s(slots[slot::QSTEP], &qsteps(10)).unwrap();
    machine.write_bytes(slots[slot::ZIGZAG], &ZIGZAG).unwrap();
    machine
        .write_bytes(
            slots[slot::FDCT_COLTAB],
            &dct_coltab(&fdct_matrix(), v.width()),
        )
        .unwrap();
    machine
        .write_bytes(
            slots[slot::IDCT_COLTAB],
            &dct_coltab(&idct_matrix(), v.width()),
        )
        .unwrap();
    machine.set_ireg(0, params_addr as i64);
    Buffers { machine, slots }
}

/// Synthetic two-frame sequence: frame 1 is frame 0 shifted by (2,1) with
/// a little noise, so motion search has real work to do.
fn test_sequence() -> (Vec<u8>, Vec<u8>, [Vec<u8>; 4]) {
    let f0 = simdsim_kernels::data::smooth_plane(W, H, 301);
    let mut rng = simdsim_kernels::data::Rng64::new(303);
    let mut f1 = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let sx = x.saturating_sub(2).min(W - 1);
            let sy = y.saturating_sub(1).min(H - 1);
            let noise = (rng.next_u64() % 7) as i32 - 3;
            f1[y * W + x] = (i32::from(f0[sy * W + sx]) + noise).clamp(0, 255) as u8;
        }
    }
    let chroma = [
        simdsim_kernels::data::smooth_plane(WC, HC, 305),
        simdsim_kernels::data::smooth_plane(WC, HC, 307),
        simdsim_kernels::data::smooth_plane(WC, HC, 309),
        simdsim_kernels::data::smooth_plane(WC, HC, 311),
    ];
    (f0, f1, chroma)
}

// ======================================================================
// Golden encoder (defines the bitstream and the reconstruction)
// ======================================================================

/// Golden encoder output: bitstream plus all reconstructed planes (which
/// the decoder must reproduce exactly).
#[derive(Debug, Clone)]
pub struct GoldenVideo {
    /// The encoded stream.
    pub stream: Vec<u8>,
    /// Reconstructed intra luma frame.
    pub recon0: Vec<u8>,
    /// Reconstructed predicted luma frame.
    pub recon1: Vec<u8>,
    /// Reconstructed chroma planes (cb0, cr0, cb1, cr1).
    pub chroma: [Vec<u8>; 4],
}

fn golden_intra_plane(
    plane: &[u8],
    w: usize,
    h: usize,
    qstep: &[i16; 64],
    fm: &[i16; 64],
    im: &[i16; 64],
    bw: &mut BitWriter,
) -> Vec<u8> {
    let mut recon = vec![0u8; w * h];
    let mut prev_dc = 0i16;
    for by in 0..h / 8 {
        for bx in 0..w / 8 {
            let block = golden_extract_block(plane, w, bx, by);
            let coef = golden_transform(&block, fm);
            let q = golden_quant_scan(&coef, qstep);
            prev_dc = golden_vlc_encode(&q, prev_dc, bw);
            let deq = golden_dequant_descan(&q, qstep);
            let rec = golden_transform(&deq, im);
            golden_insert_block(&mut recon, w, bx, by, &rec);
        }
    }
    recon
}

/// Runs the golden encoder on the test sequence.
#[must_use]
pub fn golden_mpeg2enc() -> GoldenVideo {
    let (f0, f1, chroma_src) = test_sequence();
    let qstep = qsteps(10);
    let fm = fdct_matrix();
    let im = idct_matrix();
    let mut bw = BitWriter::new();

    // Intra luma frame + its chroma.
    let recon0 = golden_intra_plane(&f0, W, H, &qstep, &fm, &im, &mut bw);
    let rcb0 = golden_intra_plane(&chroma_src[0], WC, HC, &qstep, &fm, &im, &mut bw);
    let rcr0 = golden_intra_plane(&chroma_src[1], WC, HC, &qstep, &fm, &im, &mut bw);

    // Predicted luma frame.
    let mut recon1 = vec![0u8; W * H];
    let mut prev_dc = 0i16;
    for mby in 0..H / 16 {
        for mbx in 0..W / 16 {
            let (px, py) = (mbx * 16, mby * 16);
            // Full search, row-major over (dy, dx), strict improvement.
            let mut best = (px, py);
            let mut best_sad = i64::MAX;
            for dy in -RANGE..=RANGE {
                for dx in -RANGE..=RANGE {
                    let cx = (px as i32 + dx).clamp(0, (W - 16) as i32) as usize;
                    let cy = (py as i32 + dy).clamp(0, (H - 16) as i32) as usize;
                    let sad = golden_sad(&f1[py * W + px..], &recon0[cy * W + cx..], W, 16);
                    if sad < best_sad {
                        best_sad = sad;
                        best = (cx, cy);
                    }
                }
            }
            let (cx, cy) = best;
            let sqd = golden_ssd(&f1[py * W + px..], &recon0[cy * W + cx..], W, 16);
            let mode = u8::from((cx + cy) % 2 == 1 && cx + 17 <= W);
            bw.put(u64::from(mode), 2);
            bw.put(cx as u64, 8);
            bw.put(cy as u64, 8);
            bw.put((sqd >> 8) as u64 & 0xff, 8);
            // Prediction into recon1.
            if mode == 1 {
                for xh in [0usize, 8] {
                    let mut tmp = vec![0u8; W * 16];
                    golden_comp(
                        &recon0[cy * W + cx + xh..],
                        &recon0[cy * W + cx + xh + 1..],
                        &mut tmp,
                        W,
                        16,
                    );
                    for r in 0..16 {
                        for c in 0..8 {
                            recon1[(py + r) * W + px + xh + c] = tmp[r * W + c];
                        }
                    }
                }
            } else {
                for r in 0..16 {
                    for c in 0..16 {
                        recon1[(py + r) * W + px + c] = recon0[(cy + r) * W + cx + c];
                    }
                }
            }
            // Residual sub-blocks.
            for r2 in 0..2 {
                for c2 in 0..2 {
                    let (sx, sy) = (px + 8 * c2, py + 8 * r2);
                    let mut res = [0i16; 64];
                    for r in 0..8 {
                        for c in 0..8 {
                            res[r * 8 + c] = i16::from(f1[(sy + r) * W + sx + c])
                                - i16::from(recon1[(sy + r) * W + sx + c]);
                        }
                    }
                    let coef = golden_transform(&res, &fm);
                    let q = golden_quant_scan(&coef, &qstep);
                    prev_dc = golden_vlc_encode(&q, prev_dc, &mut bw);
                    let deq = golden_dequant_descan(&q, &qstep);
                    let rec = golden_transform(&deq, &im);
                    // addblock over a strided window
                    let mut window = [0u8; 64];
                    for r in 0..8 {
                        for c in 0..8 {
                            window[r * 8 + c] = recon1[(sy + r) * W + sx + c];
                        }
                    }
                    golden_addblock(&mut window, 8, &rec);
                    for r in 0..8 {
                        for c in 0..8 {
                            recon1[(sy + r) * W + sx + c] = window[r * 8 + c];
                        }
                    }
                }
            }
        }
    }
    // Second frame's chroma, intra-coded.
    let rcb1 = golden_intra_plane(&chroma_src[2], WC, HC, &qstep, &fm, &im, &mut bw);
    let rcr1 = golden_intra_plane(&chroma_src[3], WC, HC, &qstep, &fm, &im, &mut bw);
    bw.flush();

    GoldenVideo {
        stream: bw.bytes,
        recon0,
        recon1,
        chroma: [rcb0, rcr0, rcb1, rcr1],
    }
}

// ======================================================================
// Emitter helpers
// ======================================================================

/// `block[i16] = cur[...] − pred[...]` over an 8×8 block.
fn emit_extract_diff(a: &mut Asm, curp: IReg, predp: IReg, stride: IReg, blockp: IReg) {
    let (cp, pp, bp, t, u, r) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(cp, curp);
    a.mv(pp, predp);
    a.mv(bp, blockp);
    a.li(r, 0);
    a.for_loop(r, 8, |a| {
        for c in 0..8 {
            a.lbu(t, cp, c);
            a.lbu(u, pp, c);
            a.sub(t, t, u);
            a.sh(t, bp, 2 * c);
        }
        a.add(cp, cp, stride);
        a.add(pp, pp, stride);
        a.addi(bp, bp, 16);
    });
    for reg in [cp, pp, bp, t, u, r] {
        a.release_ireg(reg);
    }
}

/// 16×16 byte-block copy using 64-bit scalar loads/stores.
fn emit_copy_block16(a: &mut Asm, srcp: IReg, dstp: IReg, stride: IReg) {
    let (sp, dp, t, r) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(sp, srcp);
    a.mv(dp, dstp);
    a.li(r, 0);
    a.for_loop(r, 16, |a| {
        a.ld(t, sp, 0);
        a.sd(t, dp, 0);
        a.ld(t, sp, 8);
        a.sd(t, dp, 8);
        a.add(sp, sp, stride);
        a.add(dp, dp, stride);
    });
    for reg in [sp, dp, t, r] {
        a.release_ireg(reg);
    }
}

/// Loads a parameter slot into a fresh scratch register.
fn p_reg(a: &mut Asm, params: IReg, slot_idx: usize) -> IReg {
    let r = a.ireg();
    emit_load_param(a, params, slot_idx, r);
    r
}

/// Runs a DCT between the BLOCK and COEF scratch buffers, loading the
/// pointers ad hoc (register pressure in the MB loops is high, exactly as
/// the paper notes for register-starved SIMD code).
fn dct_step(a: &mut Asm, v: Variant, params: IReg, coef_mat: &[i16; 64], inverse: bool) {
    let (inp_slot, out_slot, tab_slot) = if inverse {
        (slot::COEF, slot::BLOCK, slot::IDCT_COLTAB)
    } else {
        (slot::BLOCK, slot::COEF, slot::FDCT_COLTAB)
    };
    let inp = p_reg(a, params, inp_slot);
    let outp = p_reg(a, params, out_slot);
    let scratch = p_reg(a, params, slot::SCRATCH);
    let coltab = p_reg(a, params, tab_slot);
    let args = DctArgs {
        inp,
        outp,
        scratch,
        coltab,
    };
    simdsim_kernels::dct::emit_dct(a, v, coef_mat, &args);
    for r in [inp, outp, scratch, coltab] {
        a.release_ireg(r);
    }
}

/// Quantizes COEF into QSCAN (ad-hoc pointer loads).
fn quant_step(a: &mut Asm, params: IReg) {
    let coefp = p_reg(a, params, slot::COEF);
    let qstepp = p_reg(a, params, slot::QSTEP);
    let zigzagp = p_reg(a, params, slot::ZIGZAG);
    let qscanp = p_reg(a, params, slot::QSCAN);
    emit_quant_scan(a, coefp, qstepp, zigzagp, qscanp);
    for r in [coefp, qstepp, zigzagp, qscanp] {
        a.release_ireg(r);
    }
}

/// Dequantizes QSCAN back into COEF.
fn dequant_step(a: &mut Asm, params: IReg) {
    let coefp = p_reg(a, params, slot::COEF);
    let qstepp = p_reg(a, params, slot::QSTEP);
    let zigzagp = p_reg(a, params, slot::ZIGZAG);
    let qscanp = p_reg(a, params, slot::QSCAN);
    emit_dequant_descan(a, qscanp, qstepp, zigzagp, coefp);
    for r in [coefp, qstepp, zigzagp, qscanp] {
        a.release_ireg(r);
    }
}

/// VLC-encodes QSCAN into the bit stream.
fn vlc_encode_step(a: &mut Asm, params: IReg, bw: &BwRegs, prev_dc: IReg) {
    let qscanp = p_reg(a, params, slot::QSCAN);
    emit_vlc_encode(a, qscanp, bw, prev_dc);
    a.release_ireg(qscanp);
}

/// VLC-decodes one block from the bit stream into QSCAN.
fn vlc_decode_step(a: &mut Asm, params: IReg, br: &BrRegs, prev_dc: IReg) {
    let qscanp = p_reg(a, params, slot::QSCAN);
    emit_vlc_decode(a, br, qscanp, prev_dc);
    a.release_ireg(qscanp);
}

/// Emits an intra-coded plane (encode + reconstruction), mirroring
/// [`golden_intra_plane`].
#[allow(clippy::too_many_arguments)]
fn emit_intra_plane(
    a: &mut Asm,
    v: Variant,
    params: IReg,
    plane_slot: usize,
    recon_slot: usize,
    w: usize,
    h: usize,
    fm: &[i16; 64],
    im: &[i16; 64],
    bw: &BwRegs,
) {
    let (planep, reconp, stride, prev_dc, ptr, by, bx, t) = (
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
    );
    emit_load_param(a, params, plane_slot, planep);
    emit_load_param(a, params, recon_slot, reconp);
    a.li(stride, w as i64);
    a.li(prev_dc, 0);
    a.li(by, 0);
    a.for_loop(by, (h / 8) as i32, |a| {
        a.li(bx, 0);
        a.for_loop(bx, (w / 8) as i32, |a| {
            a.muli(t, by, (8 * w) as i32);
            a.add(ptr, planep, t);
            a.slli(t, bx, 3);
            a.add(ptr, ptr, t);
            {
                let blockp = p_reg(a, params, slot::BLOCK);
                emit_extract_block(a, ptr, stride, blockp);
                a.release_ireg(blockp);
            }
            dct_step(a, v, params, fm, false);
            quant_step(a, params);
            vlc_encode_step(a, params, bw, prev_dc);
            // Reconstruction.
            dequant_step(a, params);
            dct_step(a, v, params, im, true);
            a.muli(t, by, (8 * w) as i32);
            a.add(ptr, reconp, t);
            a.slli(t, bx, 3);
            a.add(ptr, ptr, t);
            {
                let blockp = p_reg(a, params, slot::BLOCK);
                emit_insert_block(a, ptr, stride, blockp);
                a.release_ireg(blockp);
            }
        });
    });
    for reg in [planep, reconp, stride, prev_dc, ptr, by, bx, t] {
        a.release_ireg(reg);
    }
}

/// Decodes an intra-coded plane, mirroring the reconstruction half of
/// [`golden_intra_plane`].
#[allow(clippy::too_many_arguments)]
fn emit_intra_decode_plane(
    a: &mut Asm,
    v: Variant,
    params: IReg,
    recon_slot: usize,
    w: usize,
    h: usize,
    im: &[i16; 64],
    br: &BrRegs,
) {
    let (reconp, stride, prev_dc, ptr, by, bx, t) = (
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
        a.ireg(),
    );
    emit_load_param(a, params, recon_slot, reconp);
    a.li(stride, w as i64);
    a.li(prev_dc, 0);
    a.li(by, 0);
    a.for_loop(by, (h / 8) as i32, |a| {
        a.li(bx, 0);
        a.for_loop(bx, (w / 8) as i32, |a| {
            vlc_decode_step(a, params, br, prev_dc);
            dequant_step(a, params);
            dct_step(a, v, params, im, true);
            a.muli(t, by, (8 * w) as i32);
            a.add(ptr, reconp, t);
            a.slli(t, bx, 3);
            a.add(ptr, ptr, t);
            {
                let blockp = p_reg(a, params, slot::BLOCK);
                emit_insert_block(a, ptr, stride, blockp);
                a.release_ireg(blockp);
            }
        });
    });
    for reg in [reconp, stride, prev_dc, ptr, by, bx, t] {
        a.release_ireg(reg);
    }
}

/// Emits the motion-compensated prediction of one macroblock into
/// `dstp` (stride `stride`): the `comp` averaging kernel in mode 1, a
/// plain 16×16 copy otherwise.  `cx`/`cy` are the absolute reference
/// coordinates.
#[allow(clippy::too_many_arguments)] // emitter helper: the args are the register operands
fn emit_prediction(
    a: &mut Asm,
    v: Variant,
    recon0: IReg,
    dstp: IReg,
    stride: IReg,
    mode: IReg,
    cx: IReg,
    cy: IReg,
) {
    a.if_else(
        Cond::Eq,
        mode,
        1,
        |a| {
            for xh in [0i32, 8] {
                let (s1, s2, dp, h16) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
                a.muli(s1, cy, W as i32);
                a.add(s1, s1, cx);
                a.add(s1, recon0, s1);
                a.addi(s1, s1, xh);
                a.addi(s2, s1, 1);
                a.addi(dp, dstp, xh);
                a.li(h16, 16);
                let cargs = CompArgs {
                    src1: s1,
                    src2: s2,
                    dst: dp,
                    lx: stride,
                    h: h16,
                };
                emit_comp(a, v, &cargs);
                for r in [s1, s2, dp, h16] {
                    a.release_ireg(r);
                }
            }
        },
        |a| {
            let s1 = a.ireg();
            a.muli(s1, cy, W as i32);
            a.add(s1, s1, cx);
            a.add(s1, recon0, s1);
            emit_copy_block16(a, s1, dstp, stride);
            a.release_ireg(s1);
        },
    );
}

// ======================================================================
// The applications
// ======================================================================

/// The MPEG-2-style encoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mpeg2Enc;

impl App for Mpeg2Enc {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "mpeg2enc",
            description: "MPEG2 video encoder",
        }
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self, v: Variant) -> BuiltKernel {
        let (f0, f1, chroma) = test_sequence();
        let golden = golden_mpeg2enc();
        let fm = fdct_matrix();
        let im = idct_matrix();

        let mut bufs = make_buffers(v);
        bufs.machine
            .write_bytes(bufs.slots[slot::CUR0], &f0)
            .unwrap();
        bufs.machine
            .write_bytes(bufs.slots[slot::CUR1], &f1)
            .unwrap();
        for (i, s) in [slot::CB0, slot::CR0, slot::CB1, slot::CR1]
            .iter()
            .enumerate()
        {
            bufs.machine
                .write_bytes(bufs.slots[*s], &chroma[i])
                .unwrap();
        }

        let mut a = Asm::new();
        let params = a.arg(0);
        let outp = a.arg(1);
        emit_load_param(&mut a, params, slot::STREAM, outp);
        let bw = BwRegs {
            acc: a.arg(2),
            nbits: a.arg(3),
            outp,
        };
        emit_bw_init(&mut a, &bw);

        // Intra frame + its chroma.
        emit_intra_plane(
            &mut a,
            v,
            params,
            slot::CUR0,
            slot::RECON0,
            W,
            H,
            &fm,
            &im,
            &bw,
        );
        emit_intra_plane(
            &mut a,
            v,
            params,
            slot::CB0,
            slot::RCB0,
            WC,
            HC,
            &fm,
            &im,
            &bw,
        );
        emit_intra_plane(
            &mut a,
            v,
            params,
            slot::CR0,
            slot::RCR0,
            WC,
            HC,
            &fm,
            &im,
            &bw,
        );

        // Predicted frame, pass A: motion estimation. Best vectors and the
        // SQD metric land in a small MV table in the scratch area.
        {
            let (cur1, recon0, stride, mvp) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::CUR1, cur1);
            emit_load_param(&mut a, params, slot::RECON0, recon0);
            emit_load_param(&mut a, params, slot::SCRATCH, mvp);
            a.addi(mvp, mvp, 256);
            a.li(stride, W as i64);
            let (mby, mbx, bestx, besty, best_sad) =
                (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
            let (cx, cy, t, u, p1, p2, sad) = (
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
                a.ireg(),
            );
            a.li(mby, 0);
            a.for_loop(mby, (H / 16) as i32, |a| {
                a.li(mbx, 0);
                a.for_loop(mbx, (W / 16) as i32, |a| {
                    a.li(best_sad, i64::MAX);
                    for dy in -RANGE..=RANGE {
                        for dx in -RANGE..=RANGE {
                            // cx = clamp(16*mbx+dx, 0, W-16); cy likewise.
                            a.slli(cx, mbx, 4);
                            a.addi(cx, cx, dx);
                            a.if_(Cond::Lt, cx, 0, |a| a.li(cx, 0));
                            a.if_(Cond::Gt, cx, (W - 16) as i32, |a| a.li(cx, (W - 16) as i64));
                            a.slli(cy, mby, 4);
                            a.addi(cy, cy, dy);
                            a.if_(Cond::Lt, cy, 0, |a| a.li(cy, 0));
                            a.if_(Cond::Gt, cy, (H - 16) as i32, |a| a.li(cy, (H - 16) as i64));
                            a.slli(t, mby, 4);
                            a.muli(t, t, W as i32);
                            a.add(p1, cur1, t);
                            a.slli(t, mbx, 4);
                            a.add(p1, p1, t);
                            a.muli(t, cy, W as i32);
                            a.add(p2, recon0, t);
                            a.add(p2, p2, cx);
                            a.li(u, 16);
                            let sargs = SadArgs {
                                p1,
                                p2,
                                lx: stride,
                                h: u,
                                out: sad,
                            };
                            emit_motion1(a, v, &sargs);
                            a.if_(Cond::Lt, sad, best_sad, |a| {
                                a.mv(best_sad, sad);
                                a.mv(bestx, cx);
                                a.mv(besty, cy);
                            });
                        }
                    }
                    // Quality metric at the chosen vector.
                    a.slli(t, mby, 4);
                    a.muli(t, t, W as i32);
                    a.add(p1, cur1, t);
                    a.slli(t, mbx, 4);
                    a.add(p1, p1, t);
                    a.muli(t, besty, W as i32);
                    a.add(p2, recon0, t);
                    a.add(p2, p2, bestx);
                    a.li(u, 16);
                    let sargs = SadArgs {
                        p1,
                        p2,
                        lx: stride,
                        h: u,
                        out: sad,
                    };
                    emit_motion2(a, v, &sargs);
                    // mode = (bestx+besty) odd && bestx+17 <= W
                    a.add(t, bestx, besty);
                    a.and(t, t, 1);
                    a.if_(Cond::Gt, bestx, (W - 17) as i32, |a| a.li(t, 0));
                    // MV table entry: mode, cx, cy, sqd>>8.
                    a.sb(t, mvp, 0);
                    a.sb(bestx, mvp, 1);
                    a.sb(besty, mvp, 2);
                    a.srli(u, sad, 8);
                    a.sb(u, mvp, 3);
                    a.addi(mvp, mvp, 4);
                });
            });
            for reg in [
                cur1, recon0, stride, mvp, mby, mbx, bestx, besty, best_sad, cx, cy, t, u, p1, p2,
                sad,
            ] {
                a.release_ireg(reg);
            }
        }

        // Pass B: prediction, residual coding and reconstruction.
        {
            let (recon0, recon1, stride, mvp, mb, prev_dc) =
                (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
            let (t, p1, p2) = (a.ireg(), a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::RECON0, recon0);
            emit_load_param(&mut a, params, slot::RECON1, recon1);
            emit_load_param(&mut a, params, slot::SCRATCH, mvp);
            a.addi(mvp, mvp, 256);
            a.li(stride, W as i64);
            a.li(prev_dc, 0);
            a.li(mb, 0);
            a.for_loop(mb, ((W / 16) * (H / 16)) as i32, |a| {
                // Header: MV entry into the bit stream, prediction.
                {
                    let (mode, cx, cy) = (a.ireg(), a.ireg(), a.ireg());
                    a.lbu(mode, mvp, 0);
                    a.lbu(cx, mvp, 1);
                    a.lbu(cy, mvp, 2);
                    a.lbu(t, mvp, 3);
                    crate::bitio::emit_putbits_const(a, &bw, mode, 2);
                    crate::bitio::emit_putbits_const(a, &bw, cx, 8);
                    crate::bitio::emit_putbits_const(a, &bw, cy, 8);
                    crate::bitio::emit_putbits_const(a, &bw, t, 8);
                    a.addi(mvp, mvp, 4);
                    // p1 = recon1 + MB offset (dst), derived from mb.
                    let mbw = (W / 16) as i32;
                    a.alu(simdsim_isa::AluOp::Div, t, mb, mbw);
                    a.muli(t, t, 16 * W as i32);
                    a.add(p1, recon1, t);
                    a.alu(simdsim_isa::AluOp::Rem, t, mb, mbw);
                    a.slli(t, t, 4);
                    a.add(p1, p1, t);
                    emit_prediction(a, v, recon0, p1, stride, mode, cx, cy);
                    a.release_ireg(mode);
                    a.release_ireg(cx);
                    a.release_ireg(cy);
                }
                // Residual sub-blocks.
                for r2 in 0..2i32 {
                    for c2 in 0..2i32 {
                        let off = r2 * 8 * W as i32 + c2 * 8;
                        a.addi(p2, p1, off); // pred/recon position
                                             // current position = cur1 + same offset as p1/p2
                        let cur1 = p_reg(a, params, slot::CUR1);
                        let recon1b = p_reg(a, params, slot::RECON1);
                        a.sub(t, p2, recon1b);
                        a.add(t, t, cur1);
                        a.release_ireg(cur1);
                        a.release_ireg(recon1b);
                        {
                            let blockp = p_reg(a, params, slot::BLOCK);
                            emit_extract_diff(a, t, p2, stride, blockp);
                            a.release_ireg(blockp);
                        }
                        dct_step(a, v, params, &fm, false);
                        quant_step(a, params);
                        vlc_encode_step(a, params, &bw, prev_dc);
                        dequant_step(a, params);
                        dct_step(a, v, params, &im, true);
                        {
                            let blockp = p_reg(a, params, slot::BLOCK);
                            let bargs = simdsim_kernels::motion::AddBlockArgs {
                                dst: p2,
                                lx: stride,
                                blk: blockp,
                            };
                            simdsim_kernels::motion::emit_addblock(a, v, &bargs);
                            a.release_ireg(blockp);
                        }
                    }
                }
            });
            for reg in [recon0, recon1, stride, mvp, mb, prev_dc, t, p1, p2] {
                a.release_ireg(reg);
            }
        }

        // Second frame's chroma.
        emit_intra_plane(
            &mut a,
            v,
            params,
            slot::CB1,
            slot::RCB1,
            WC,
            HC,
            &fm,
            &im,
            &bw,
        );
        emit_intra_plane(
            &mut a,
            v,
            params,
            slot::CR1,
            slot::RCR1,
            WC,
            HC,
            &fm,
            &im,
            &bw,
        );

        // Flush and store stream length.
        emit_bw_flush(&mut a, &bw);
        {
            let (t, cell) = (a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::STREAM, t);
            a.sub(t, outp, t);
            emit_load_param(&mut a, params, slot::LEN_CELL, cell);
            a.sd(t, cell, 0);
            a.release_ireg(t);
            a.release_ireg(cell);
        }
        a.halt();
        let program = a.finish();

        let stream_addr = bufs.slots[slot::STREAM];
        let len_addr = bufs.slots[slot::LEN_CELL];
        let recon_addrs = [
            (bufs.slots[slot::RECON1], golden.recon1.clone(), "recon1"),
            (bufs.slots[slot::RECON0], golden.recon0.clone(), "recon0"),
        ];
        let stream_golden = golden.stream.clone();
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            let len = u64::from_le_bytes(
                m.read_bytes(len_addr, 8)
                    .map_err(|e| e.to_string())?
                    .try_into()
                    .unwrap(),
            ) as usize;
            if len != stream_golden.len() {
                return Err(format!(
                    "mpeg2enc stream length {len} != golden {}",
                    stream_golden.len()
                ));
            }
            let got = m.read_bytes(stream_addr, len).map_err(|e| e.to_string())?;
            if let Some(i) = got.iter().zip(&stream_golden).position(|(a, b)| a != b) {
                return Err(format!(
                    "mpeg2enc stream mismatch at byte {i}: got {} want {}",
                    got[i], stream_golden[i]
                ));
            }
            for (addr, exp, name) in &recon_addrs {
                let got = m.read_bytes(*addr, exp.len()).map_err(|e| e.to_string())?;
                if let Some(i) = got.iter().zip(exp.iter()).position(|(a, b)| a != b) {
                    return Err(format!("mpeg2enc {name} mismatch at {i}"));
                }
            }
            Ok(())
        })
    }
}

/// The MPEG-2-style decoder application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mpeg2Dec;

impl App for Mpeg2Dec {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "mpeg2dec",
            description: "MPEG2 video decoder",
        }
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self, v: Variant) -> BuiltKernel {
        let golden = golden_mpeg2enc();
        let im = idct_matrix();

        let mut bufs = make_buffers(v);
        bufs.machine
            .write_bytes(bufs.slots[slot::STREAM], &golden.stream)
            .unwrap();

        let mut a = Asm::new();
        let params = a.arg(0);
        let inp = a.arg(1);
        emit_load_param(&mut a, params, slot::STREAM, inp);
        let br = BrRegs {
            acc: a.arg(2),
            nbits: a.arg(3),
            inp,
        };
        emit_br_init(&mut a, &br);

        // Intra frame + chroma.
        emit_intra_decode_plane(&mut a, v, params, slot::RECON0, W, H, &im, &br);
        emit_intra_decode_plane(&mut a, v, params, slot::RCB0, WC, HC, &im, &br);
        emit_intra_decode_plane(&mut a, v, params, slot::RCR0, WC, HC, &im, &br);

        // Predicted frame.
        {
            let (recon0, recon1, stride, mb, prev_dc) =
                (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
            let (t, p1, p2) = (a.ireg(), a.ireg(), a.ireg());
            emit_load_param(&mut a, params, slot::RECON0, recon0);
            emit_load_param(&mut a, params, slot::RECON1, recon1);
            a.li(stride, W as i64);
            a.li(prev_dc, 0);
            a.li(mb, 0);
            a.for_loop(mb, ((W / 16) * (H / 16)) as i32, |a| {
                // Parse MB header, predict.
                {
                    let (mode, cx, cy) = (a.ireg(), a.ireg(), a.ireg());
                    crate::bitio::emit_getbits_const(a, &br, mode, 2);
                    crate::bitio::emit_getbits_const(a, &br, cx, 8);
                    crate::bitio::emit_getbits_const(a, &br, cy, 8);
                    crate::bitio::emit_getbits_const(a, &br, t, 8); // quality byte
                    let mbw = (W / 16) as i32;
                    a.alu(simdsim_isa::AluOp::Div, t, mb, mbw);
                    a.muli(t, t, 16 * W as i32);
                    a.add(p1, recon1, t);
                    a.alu(simdsim_isa::AluOp::Rem, t, mb, mbw);
                    a.slli(t, t, 4);
                    a.add(p1, p1, t);
                    emit_prediction(a, v, recon0, p1, stride, mode, cx, cy);
                    a.release_ireg(mode);
                    a.release_ireg(cx);
                    a.release_ireg(cy);
                }
                // Residuals.
                for r2 in 0..2i32 {
                    for c2 in 0..2i32 {
                        let off = r2 * 8 * W as i32 + c2 * 8;
                        a.addi(p2, p1, off);
                        vlc_decode_step(a, params, &br, prev_dc);
                        dequant_step(a, params);
                        dct_step(a, v, params, &im, true);
                        {
                            let blockp = p_reg(a, params, slot::BLOCK);
                            let bargs = simdsim_kernels::motion::AddBlockArgs {
                                dst: p2,
                                lx: stride,
                                blk: blockp,
                            };
                            simdsim_kernels::motion::emit_addblock(a, v, &bargs);
                            a.release_ireg(blockp);
                        }
                    }
                }
            });
            for reg in [recon0, recon1, stride, mb, prev_dc, t, p1, p2] {
                a.release_ireg(reg);
            }
        }

        // Second frame's chroma.
        emit_intra_decode_plane(&mut a, v, params, slot::RCB1, WC, HC, &im, &br);
        emit_intra_decode_plane(&mut a, v, params, slot::RCR1, WC, HC, &im, &br);
        a.halt();
        let program = a.finish();

        let checks = [
            (bufs.slots[slot::RECON0], golden.recon0.clone(), "recon0"),
            (bufs.slots[slot::RECON1], golden.recon1.clone(), "recon1"),
            (bufs.slots[slot::RCB0], golden.chroma[0].clone(), "cb0"),
            (bufs.slots[slot::RCR0], golden.chroma[1].clone(), "cr0"),
            (bufs.slots[slot::RCB1], golden.chroma[2].clone(), "cb1"),
            (bufs.slots[slot::RCR1], golden.chroma[3].clone(), "cr1"),
        ];
        BuiltKernel::new(program, bufs.machine, move |m: &Machine| {
            for (addr, exp, name) in &checks {
                let got = m.read_bytes(*addr, exp.len()).map_err(|e| e.to_string())?;
                if let Some(i) = got.iter().zip(exp.iter()).position(|(a, b)| a != b) {
                    return Err(format!(
                        "mpeg2dec {name} mismatch at {i}: got {} want {}",
                        got[i], exp[i]
                    ));
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_stream_structure() {
        let g = golden_mpeg2enc();
        assert!(g.stream.len() > 1000);
        assert_eq!(g.recon0.len(), W * H);
        assert_eq!(g.recon1.len(), W * H);
        // Reconstruction should be close to the source frames (lossy).
        let (f0, f1, _) = test_sequence();
        let mae = |a: &[u8], b: &[u8]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| u64::from(x.abs_diff(*y)))
                .sum::<u64>()
                / a.len() as u64
        };
        assert!(
            mae(&f0, &g.recon0) < 14,
            "I-frame error {}",
            mae(&f0, &g.recon0)
        );
        assert!(
            mae(&f1, &g.recon1) < 14,
            "P-frame error {}",
            mae(&f1, &g.recon1)
        );
    }

    #[test]
    fn mpeg2enc_all_variants_match_golden() {
        for v in Variant::ALL {
            Mpeg2Enc
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn mpeg2dec_all_variants_match_golden() {
        for v in Variant::ALL {
            Mpeg2Dec
                .build(v)
                .run_checked()
                .unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }
}
