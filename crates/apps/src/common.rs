//! Block-transform coding machinery shared by the JPEG and MPEG-2
//! applications: zigzag scan, quantization, RLE entropy coding, block
//! extraction/insertion — each as a golden Rust function *and* an
//! assembler emitter with bit-identical arithmetic.

use simdsim_asm::Asm;
use simdsim_isa::{Cond, IReg, MemSz};

/// The standard 8×8 zigzag scan: `ZIGZAG[i]` is the block position of
/// scan index `i`.
pub const ZIGZAG: [u8; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// End-of-block marker byte in the RLE entropy stream.
pub const EOB: u8 = 0xFF;

/// Quantizer steps in scan order: coarser for higher frequencies.
/// `base` sets the overall rate (8 for luma, 12 for chroma, 10 for video).
#[must_use]
pub fn qsteps(base: i16) -> [i16; 64] {
    let mut q = [0i16; 64];
    for (i, slot) in q.iter_mut().enumerate() {
        let pos = ZIGZAG[i] as usize;
        let (r, c) = (pos / 8, pos % 8);
        *slot = base + 2 * (r + c) as i16;
    }
    q
}

// ======================================================================
// Golden reference functions
// ======================================================================

/// Extracts the 8×8 block at `(bx, by)` from a `w`-wide byte plane with
/// the JPEG level shift (−128).
#[must_use]
pub fn golden_extract_block(plane: &[u8], w: usize, bx: usize, by: usize) -> [i16; 64] {
    let mut out = [0i16; 64];
    for r in 0..8 {
        for c in 0..8 {
            out[r * 8 + c] = i16::from(plane[(by * 8 + r) * w + bx * 8 + c]) - 128;
        }
    }
    out
}

/// Inserts an 8×8 `i16` block into a byte plane with the inverse level
/// shift (+128) and clamping.
pub fn golden_insert_block(plane: &mut [u8], w: usize, bx: usize, by: usize, block: &[i16; 64]) {
    for r in 0..8 {
        for c in 0..8 {
            let v = i32::from(block[r * 8 + c]) + 128;
            plane[(by * 8 + r) * w + bx * 8 + c] = v.clamp(0, 255) as u8;
        }
    }
}

/// Quantizes a coefficient block into scan order:
/// `q[i] = coef[ZIGZAG[i]] / qstep[i]` (truncating division).
#[must_use]
pub fn golden_quant_scan(coef: &[i16; 64], qstep: &[i16; 64]) -> [i16; 64] {
    let mut q = [0i16; 64];
    for i in 0..64 {
        q[i] = (i32::from(coef[ZIGZAG[i] as usize]) / i32::from(qstep[i])) as i16;
    }
    q
}

/// Dequantizes a scan-order block back to natural order:
/// `coef[ZIGZAG[i]] = q[i] * qstep[i]`.
#[must_use]
pub fn golden_dequant_descan(qscan: &[i16; 64], qstep: &[i16; 64]) -> [i16; 64] {
    let mut coef = [0i16; 64];
    for i in 0..64 {
        coef[ZIGZAG[i] as usize] = qscan[i].wrapping_mul(qstep[i]);
    }
    coef
}

/// RLE-encodes a scan-order quantized block with DC prediction.
/// Returns the updated DC predictor.
pub fn golden_rle_encode(qscan: &[i16; 64], prev_dc: i16, out: &mut Vec<u8>) -> i16 {
    let dc_diff = qscan[0].wrapping_sub(prev_dc);
    out.extend_from_slice(&dc_diff.to_le_bytes());
    let mut run = 0u8;
    for &q in &qscan[1..] {
        if q == 0 {
            run += 1;
        } else {
            out.push(run);
            out.extend_from_slice(&q.to_le_bytes());
            run = 0;
        }
    }
    out.push(EOB);
    qscan[0]
}

/// RLE-decodes one block from `data[*pos..]` into scan order.
/// Returns the updated DC predictor.
pub fn golden_rle_decode(data: &[u8], pos: &mut usize, prev_dc: i16) -> ([i16; 64], i16) {
    let mut q = [0i16; 64];
    let dc_diff = i16::from_le_bytes([data[*pos], data[*pos + 1]]);
    *pos += 2;
    let dc = prev_dc.wrapping_add(dc_diff);
    q[0] = dc;
    let mut i = 1usize;
    loop {
        let b = data[*pos];
        *pos += 1;
        if b == EOB {
            break;
        }
        i += b as usize;
        q[i] = i16::from_le_bytes([data[*pos], data[*pos + 1]]);
        *pos += 2;
        i += 1;
    }
    (q, dc)
}

/// 2×2-average chroma subsampling (`w`,`h` of the source, even).
#[must_use]
pub fn golden_subsample(plane: &[u8], w: usize, h: usize) -> Vec<u8> {
    let (w2, h2) = (w / 2, h / 2);
    let mut out = vec![0u8; w2 * h2];
    for y in 0..h2 {
        for x in 0..w2 {
            let s = u32::from(plane[2 * y * w + 2 * x])
                + u32::from(plane[2 * y * w + 2 * x + 1])
                + u32::from(plane[(2 * y + 1) * w + 2 * x])
                + u32::from(plane[(2 * y + 1) * w + 2 * x + 1])
                + 2;
            out[y * w2 + x] = (s >> 2) as u8;
        }
    }
    out
}

// ======================================================================
// Assembler emitters (scalar phases)
// ======================================================================

/// Loads 64-bit parameter slot `idx` from the parameter block.
pub fn emit_load_param(a: &mut Asm, params: IReg, idx: usize, dst: IReg) {
    a.ld(dst, params, (8 * idx) as i32);
}

/// Emits the block extraction loop: `blockp[i16] = plane[...] − 128`.
/// `srcp` must point at the block's top-left pixel; `stride` is the plane
/// width.  Both pointer registers are preserved.
pub fn emit_extract_block(a: &mut Asm, srcp: IReg, stride: IReg, blockp: IReg) {
    let (rp, bp, t, r) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(rp, srcp);
    a.mv(bp, blockp);
    a.li(r, 0);
    a.for_loop(r, 8, |a| {
        for c in 0..8 {
            a.lbu(t, rp, c);
            a.subi(t, t, 128);
            a.sh(t, bp, 2 * c);
        }
        a.add(rp, rp, stride);
        a.addi(bp, bp, 16);
    });
    for reg in [rp, bp, t, r] {
        a.release_ireg(reg);
    }
}

/// Emits the block insertion loop: `plane[...] = clamp(block + 128)`.
pub fn emit_insert_block(a: &mut Asm, dstp: IReg, stride: IReg, blockp: IReg) {
    let (rp, bp, t, r) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(rp, dstp);
    a.mv(bp, blockp);
    a.li(r, 0);
    a.for_loop(r, 8, |a| {
        for c in 0..8 {
            a.lh(t, bp, 2 * c);
            a.addi(t, t, 128);
            a.if_(Cond::Lt, t, 0, |a| a.li(t, 0));
            a.if_(Cond::Gt, t, 255, |a| a.li(t, 255));
            a.sb(t, rp, c);
        }
        a.add(rp, rp, stride);
        a.addi(bp, bp, 16);
    });
    for reg in [rp, bp, t, r] {
        a.release_ireg(reg);
    }
}

/// Emits the quantization loop (natural-order coefficients → scan-order
/// quantized values). All pointers preserved.
pub fn emit_quant_scan(a: &mut Asm, coefp: IReg, qstepp: IReg, zigzagp: IReg, qscanp: IReg) {
    let (i, t, v, qs, qp, sp) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(qp, qstepp);
    a.mv(sp, qscanp);
    a.li(i, 0);
    a.for_loop(i, 64, |a| {
        a.add(t, zigzagp, i);
        a.lbu(t, t, 0);
        a.slli(t, t, 1);
        a.add(t, coefp, t);
        a.lh(v, t, 0);
        a.lh(qs, qp, 0);
        a.alu(simdsim_isa::AluOp::Div, v, v, qs);
        a.sh(v, sp, 0);
        a.addi(qp, qp, 2);
        a.addi(sp, sp, 2);
    });
    for reg in [i, t, v, qs, qp, sp] {
        a.release_ireg(reg);
    }
}

/// Emits the dequantization loop (scan order → natural order).
/// The destination block is fully overwritten.
pub fn emit_dequant_descan(a: &mut Asm, qscanp: IReg, qstepp: IReg, zigzagp: IReg, coefp: IReg) {
    let (i, t, v, qs, qp, sp) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(qp, qstepp);
    a.mv(sp, qscanp);
    a.li(i, 0);
    a.for_loop(i, 64, |a| {
        a.lh(v, sp, 0);
        a.lh(qs, qp, 0);
        a.mul(v, v, qs);
        a.add(t, zigzagp, i);
        a.lbu(t, t, 0);
        a.slli(t, t, 1);
        a.add(t, coefp, t);
        a.sh(v, t, 0);
        a.addi(qp, qp, 2);
        a.addi(sp, sp, 2);
    });
    for reg in [i, t, v, qs, qp, sp] {
        a.release_ireg(reg);
    }
}

/// Emits the RLE encoder over a scan-order block. `outp` (the stream
/// cursor) is advanced; `prev_dc` is updated.
pub fn emit_rle_encode(a: &mut Asm, qscanp: IReg, outp: IReg, prev_dc: IReg) {
    let (i, q, run, sp) = (a.ireg(), a.ireg(), a.ireg(), a.ireg());
    a.mv(sp, qscanp);
    // DC with prediction.
    a.lh(q, sp, 0);
    let t = a.ireg();
    a.sub(t, q, prev_dc);
    a.store(MemSz::H, t, outp, 0);
    a.addi(outp, outp, 2);
    a.mv(prev_dc, q);
    a.addi(sp, sp, 2);
    // AC run-length loop.
    a.li(run, 0);
    a.li(i, 1);
    a.for_loop(i, 64, |a| {
        a.lh(q, sp, 0);
        a.if_else(
            Cond::Eq,
            q,
            0,
            |a| {
                a.addi(run, run, 1);
            },
            |a| {
                a.sb(run, outp, 0);
                a.store(MemSz::H, q, outp, 1);
                a.addi(outp, outp, 3);
                a.li(run, 0);
            },
        );
        a.addi(sp, sp, 2);
    });
    a.li(t, i64::from(EOB));
    a.sb(t, outp, 0);
    a.addi(outp, outp, 1);
    for reg in [i, q, run, sp, t] {
        a.release_ireg(reg);
    }
}

/// Emits the RLE decoder: parses one block from `inp` (advanced) into the
/// scan-order buffer (cleared first); `prev_dc` is updated.
pub fn emit_rle_decode(a: &mut Asm, inp: IReg, qscanp: IReg, prev_dc: IReg) {
    let (i, b, v, sp, t) = (a.ireg(), a.ireg(), a.ireg(), a.ireg(), a.ireg());
    // Clear the scan buffer.
    a.mv(sp, qscanp);
    a.li(v, 0);
    a.li(i, 0);
    a.for_loop(i, 64, |a| {
        a.sh(v, sp, 0);
        a.addi(sp, sp, 2);
    });
    // DC.
    a.lh(v, inp, 0);
    a.addi(inp, inp, 2);
    a.add(prev_dc, prev_dc, v);
    // Keep the predictor in 16-bit range like the golden `wrapping_add`.
    a.slli(prev_dc, prev_dc, 48);
    a.srai(prev_dc, prev_dc, 48);
    a.sh(prev_dc, qscanp, 0);
    // AC loop.
    a.li(i, 1);
    let done = a.label();
    let head = a.label();
    a.bind(head);
    a.lbu(b, inp, 0);
    a.addi(inp, inp, 1);
    a.branch(Cond::Eq, b, i64::from(EOB) as i32, done);
    a.add(i, i, b);
    a.lh(v, inp, 0);
    a.addi(inp, inp, 2);
    a.slli(t, i, 1);
    a.add(t, qscanp, t);
    a.sh(v, t, 0);
    a.addi(i, i, 1);
    a.jump(head);
    a.bind(done);
    for reg in [i, b, v, sp, t] {
        a.release_ireg(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_emu::{Machine, NullSink};
    use simdsim_isa::Ext;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for z in ZIGZAG {
            assert!(!seen[z as usize]);
            seen[z as usize] = true;
        }
    }

    #[test]
    fn golden_rle_roundtrip() {
        let mut q = [0i16; 64];
        q[0] = 37;
        q[5] = -3;
        q[63] = 7;
        let mut out = Vec::new();
        let dc = golden_rle_encode(&q, 10, &mut out);
        assert_eq!(dc, 37);
        let mut pos = 0;
        let (q2, dc2) = golden_rle_decode(&out, &mut pos, 10);
        assert_eq!(q, q2);
        assert_eq!(dc2, 37);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn golden_quant_dequant_scale() {
        let qstep = qsteps(8);
        let mut coef = [0i16; 64];
        coef[0] = 800;
        coef[9] = -333;
        let q = golden_quant_scan(&coef, &qstep);
        let back = golden_dequant_descan(&q, &qstep);
        assert!((i32::from(back[0]) - 800).abs() < i32::from(qstep[0]));
        assert!((i32::from(back[9]) + 333).abs() < 2 * i32::from(qstep[4]));
    }

    #[test]
    fn emitted_rle_matches_golden() {
        // Encode a block with the emitter and compare the bytes.
        let mut q = [0i16; 64];
        q[0] = -5;
        q[1] = 2;
        q[17] = 300;
        q[63] = -1;

        let mut asm = Asm::new();
        let (qscanp, outp, dc_cell) = (asm.arg(0), asm.arg(1), asm.arg(2));
        let prev_dc = asm.ireg();
        asm.li(prev_dc, 10);
        emit_rle_encode(&mut asm, qscanp, outp, prev_dc);
        asm.sd(outp, dc_cell, 8); // final stream cursor
        asm.sd(prev_dc, dc_cell, 0);
        asm.halt();
        let prog = asm.finish();

        let mut m = Machine::new(Ext::Mmx64, 1 << 16);
        m.write_i16s(256, &q).unwrap();
        m.set_ireg(0, 256);
        m.set_ireg(1, 1024);
        m.set_ireg(2, 4096);
        m.run(&prog, &mut NullSink, 100_000).unwrap();

        let mut golden = Vec::new();
        let dc = golden_rle_encode(&q, 10, &mut golden);
        let end = m.read_i32s(4104, 1).unwrap()[0] as usize;
        let got = m.read_bytes(1024, end - 1024).unwrap();
        assert_eq!(got, &golden[..]);
        assert_eq!(m.ireg(0), 256); // preserved
        let got_dc = m.read_i32s(4096, 1).unwrap()[0];
        assert_eq!(got_dc, i32::from(dc));
    }

    #[test]
    fn emitted_rle_decode_matches_golden() {
        let mut q = [0i16; 64];
        q[0] = 100;
        q[3] = -4;
        q[40] = 9;
        let mut stream = Vec::new();
        golden_rle_encode(&q, 0, &mut stream);

        let mut asm = Asm::new();
        let (inp, qscanp) = (asm.arg(0), asm.arg(1));
        let prev_dc = asm.ireg();
        asm.li(prev_dc, 0);
        emit_rle_decode(&mut asm, inp, qscanp, prev_dc);
        asm.halt();
        let prog = asm.finish();

        let mut m = Machine::new(Ext::Mmx64, 1 << 16);
        m.write_bytes(512, &stream).unwrap();
        m.set_ireg(0, 512);
        m.set_ireg(1, 2048);
        m.run(&prog, &mut NullSink, 100_000).unwrap();
        assert_eq!(m.read_i16s(2048, 64).unwrap(), q.to_vec());
    }

    #[test]
    fn emitted_quant_matches_golden() {
        let qstep = qsteps(8);
        let mut rng = simdsim_kernels::data::Rng64::new(3);
        let coef: Vec<i16> = rng.i16s_in(64, -2000, 2000);
        let coef_arr: [i16; 64] = coef.clone().try_into().unwrap();

        let mut asm = Asm::new();
        let (coefp, qstepp, zigzagp, qscanp) = (asm.arg(0), asm.arg(1), asm.arg(2), asm.arg(3));
        emit_quant_scan(&mut asm, coefp, qstepp, zigzagp, qscanp);
        emit_dequant_descan(&mut asm, qscanp, qstepp, zigzagp, coefp);
        asm.halt();
        let prog = asm.finish();

        let mut m = Machine::new(Ext::Mmx64, 1 << 16);
        m.write_i16s(256, &coef).unwrap();
        m.write_i16s(512, &qstep).unwrap();
        m.write_bytes(1024, &ZIGZAG).unwrap();
        m.write_i16s(2048, &[0; 64]).unwrap();
        m.set_ireg(0, 256);
        m.set_ireg(1, 512);
        m.set_ireg(2, 1024);
        m.set_ireg(3, 2048);
        m.run(&prog, &mut NullSink, 100_000).unwrap();

        let q = golden_quant_scan(&coef_arr, &qstep);
        assert_eq!(m.read_i16s(2048, 64).unwrap(), q.to_vec());
        let deq = golden_dequant_descan(&q, &qstep);
        assert_eq!(m.read_i16s(256, 64).unwrap(), deq.to_vec());
    }
}
