//! Property-based tests of the entropy-coding layers shared by the JPEG
//! and MPEG-2 applications.

use proptest::prelude::*;
use simdsim_apps::bitio::{
    golden_vlc_decode, golden_vlc_encode, magnitude_class, value_bits, value_from_bits, BitReader,
    BitWriter,
};
use simdsim_apps::common::{
    golden_dequant_descan, golden_quant_scan, golden_rle_decode, golden_rle_encode, qsteps,
};

fn sparse_block() -> impl Strategy<Value = [i16; 64]> {
    prop::collection::vec((0usize..64, -2040i16..2040), 0..12).prop_map(|entries| {
        let mut b = [0i16; 64];
        for (pos, val) in entries {
            b[pos] = val;
        }
        b
    })
}

proptest! {
    /// VLC encode/decode round-trips any sparse block and DC predictor.
    #[test]
    fn vlc_roundtrip(block in sparse_block(), prev_dc in -2000i16..2000) {
        let mut bw = BitWriter::new();
        let dc = golden_vlc_encode(&block, prev_dc, &mut bw);
        bw.flush();
        prop_assert_eq!(dc, block[0]);
        let mut br = BitReader::new(&bw.bytes, 0);
        let (decoded, dc2) = golden_vlc_decode(&mut br, prev_dc);
        prop_assert_eq!(decoded, block);
        prop_assert_eq!(dc2, block[0]);
    }

    /// Several blocks back-to-back share the bit stream without aliasing.
    #[test]
    fn vlc_stream_of_blocks(blocks in prop::collection::vec(sparse_block(), 1..6)) {
        let mut bw = BitWriter::new();
        let mut dc = 0i16;
        for b in &blocks {
            dc = golden_vlc_encode(b, dc, &mut bw);
        }
        bw.flush();
        let mut br = BitReader::new(&bw.bytes, 0);
        let mut dc = 0i16;
        for b in &blocks {
            let (decoded, ndc) = golden_vlc_decode(&mut br, dc);
            prop_assert_eq!(&decoded, b);
            dc = ndc;
        }
    }

    /// The byte-RLE code (simple profile) round-trips too.
    #[test]
    fn rle_roundtrip(block in sparse_block(), prev_dc in -2000i16..2000) {
        let mut out = Vec::new();
        let dc = golden_rle_encode(&block, prev_dc, &mut out);
        let mut pos = 0;
        let (decoded, dc2) = golden_rle_decode(&out, &mut pos, prev_dc);
        prop_assert_eq!(decoded, block);
        prop_assert_eq!(dc, dc2);
        prop_assert_eq!(pos, out.len());
    }

    /// Magnitude coding is a bijection on its class.
    #[test]
    fn magnitude_bijection(v in -30000i32..30000) {
        let c = magnitude_class(v);
        prop_assert!(c <= 15);
        prop_assert_eq!(value_from_bits(value_bits(v, c), c), v);
        // Class is minimal: v doesn't fit class-1 bits.
        if c > 0 {
            prop_assert!(v.unsigned_abs() >= (1 << (c - 1)));
        }
    }

    /// Quantize→dequantize error is bounded by the step size.
    #[test]
    fn quant_error_bounded(coef_v in prop::collection::vec(-4000i16..4000, 64), base in 4i16..16) {
        let coef: [i16; 64] = coef_v.try_into().unwrap();
        let qstep = qsteps(base);
        let q = golden_quant_scan(&coef, &qstep);
        let back = golden_dequant_descan(&q, &qstep);
        for i in 0..64 {
            let step = i32::from(qstep[simdsim_apps::common::ZIGZAG.iter().position(|z| usize::from(*z) == i).unwrap()]);
            let err = (i32::from(back[i]) - i32::from(coef[i])).abs();
            prop_assert!(err < step, "pos {i}: err {err} step {step}");
        }
    }
}
