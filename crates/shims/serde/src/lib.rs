//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API the workspace uses: the `Serialize` /
//! `Deserialize` traits (over an owned [`Value`] tree rather than serde's
//! visitor machinery), derive macros re-exported from the sibling
//! `serde_derive` shim, and impls for the primitive / container types that
//! appear in the workspace's derived types. The companion `serde_json` shim
//! renders a [`Value`] to JSON text and parses it back.
//!
//! The representation follows serde's conventions (newtype structs are
//! transparent, enums are externally tagged), so the emitted JSON looks like
//! what the real serde_json would produce and round-trips across builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned, parsed serialization tree — the meeting point between
/// [`Serialize`] and [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as serde_json does).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative integers land here).
    Int(i64),
    /// An unsigned integer (non-negative integers land here).
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Error for an unrecognised enum variant tag.
    #[must_use]
    pub fn unknown_variant(got: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{got}` for {ty}"))
    }

    /// Error for a value of the wrong shape.
    #[must_use]
    pub fn invalid(expected: &str, ty: &str) -> Self {
        Error(format!("invalid value: expected {expected} for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialization tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes field `key` of an object value (derive-generated code).
///
/// A missing key is an error for every field type; `Option` fields are
/// `None` only on an explicit `null` (the serializer always writes one,
/// so self-produced JSON round-trips).
///
/// # Errors
///
/// Returns an error when `v` is not an object, the key is absent, or the
/// field fails to parse.
pub fn from_field<T: Deserialize>(v: &Value, key: &str, ty: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => {
            let field = v
                .get(key)
                .ok_or_else(|| Error(format!("missing field `{key}` of {ty}")))?;
            T::from_value(field).map_err(|e| Error(format!("field `{key}` of {ty}: {e}")))
        }
        _ => Err(Error::invalid("object", ty)),
    }
}

/// Deserializes field `key` of an object value, falling back to
/// `T::default()` when the key is absent (derive-generated code for
/// `#[serde(default)]` fields — the tolerant-reader seam that lets newer
/// builds read JSON written before a field existed).
///
/// # Errors
///
/// Returns an error when `v` is not an object or a *present* field fails
/// to parse; absence is not an error.
pub fn from_field_default<T: Deserialize + Default>(
    v: &Value,
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match v {
        Value::Object(_) => match v.get(key) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error(format!("field `{key}` of {ty}: {e}")))
            }
            None => Ok(T::default()),
        },
        _ => Err(Error::invalid("object", ty)),
    }
}

/// Deserializes element `idx` of an array value (derive-generated code).
///
/// # Errors
///
/// Returns an error when `v` is not an array or the element fails to parse.
pub fn from_index<T: Deserialize>(v: &Value, idx: usize, ty: &str) -> Result<T, Error> {
    match v {
        Value::Array(items) => T::from_value(
            items
                .get(idx)
                .ok_or_else(|| Error(format!("missing element {idx} of {ty}")))?,
        )
        .map_err(|e| Error(format!("element {idx} of {ty}: {e}"))),
        _ => Err(Error::invalid("array", ty)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(unused_comparisons)]
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let err = || Error::invalid("integer in range", stringify!($t));
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // serde_json serializes non-finite floats as null.
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::invalid("number", stringify!($t))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::invalid("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::invalid("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::invalid("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::invalid("fixed-size array", "array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| Error::invalid("tuple", "tuple"))?,
                        )?,
                    )+)),
                    _ => Err(Error::invalid("array", "tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
