//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate implements just enough of `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the types in this workspace: non-generic
//! structs (named, tuple, unit) and enums whose variants are unit, tuple
//! or struct-like. The generated impls target the shim `serde` crate's
//! value-tree model (`serde::Value`) using serde's externally-tagged enum
//! representation, so JSON produced by one build round-trips in another.
//!
//! No `syn`/`quote`: the input item is parsed directly from
//! `proc_macro::TokenStream` and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a struct body or an enum variant's payload.
enum Fields {
    Unit,
    /// Tuple fields; the count is all the codegen needs.
    Tuple(usize),
    /// Named fields, in declaration order, with whether the field carries
    /// `#[serde(default)]` (absent keys fall back to `Default::default()`).
    Named(Vec<(String, bool)>),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` (shim) for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (shim) for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    match parse_input(input) {
        Ok(item) => {
            let src = if serialize {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            };
            src.parse().expect("serde_derive shim emitted invalid Rust")
        }
        Err(msg) => format!("::std::compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&toks, i)?),
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, kind })
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

fn parse_struct_body(toks: &[TokenTree], i: usize) -> Result<Fields, String> {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        None => Ok(Fields::Unit),
        other => Err(format!("unexpected struct body {other:?}")),
    }
}

/// Splits a token sequence at top-level commas, treating `<`/`>` as nesting
/// (generic arguments are not grouped by the tokenizer).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// `true` when an attribute body (the bracket group after `#`) spells
/// `serde(default)` — the only serde field attribute the shim honours.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        let mut has_default = false;
        loop {
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = chunk.get(i) {
                        if g.delimiter() == Delimiter::Bracket {
                            has_default |= is_serde_default(g);
                            i += 1;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push((id.to_string(), has_default)),
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn ser_named_object(fields: &[(String, bool)], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|(f, _)| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => ser_named_object(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let inner = ser_named_object(fs, "");
                        let binds: Vec<String> = fs.iter().map(|(f, _)| f.clone()).collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn de_named_ctor(ty: &str, path: &str, fields: &[(String, bool)], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|(f, has_default)| {
            let getter = if *has_default {
                "from_field_default"
            } else {
                "from_field"
            };
            format!("{f}: ::serde::{getter}({src}, {f:?}, {ty:?})?")
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn de_tuple_ctor(ty: &str, path: &str, n: usize, src: &str) -> String {
    if n == 1 {
        format!("{path}(::serde::Deserialize::from_value({src})?)")
    } else {
        let inits: Vec<String> = (0..n)
            .map(|i| format!("::serde::from_index({src}, {i}, {ty:?})?"))
            .collect();
        format!("{path}({})", inits.join(", "))
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Struct(Fields::Tuple(n)) => format!(
            "::std::result::Result::Ok({})",
            de_tuple_ctor(name, name, *n, "__v")
        ),
        Kind::Struct(Fields::Named(fields)) => format!(
            "::std::result::Result::Ok({})",
            de_named_ctor(name, name, fields, "__v")
        ),
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for (v, fields) in variants {
                let path = format!("{name}::{v}");
                match fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!("{v:?} => ::std::result::Result::Ok({path}),"))
                    }
                    Fields::Tuple(n) => obj_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({}),",
                        de_tuple_ctor(name, &path, *n, "__inner")
                    )),
                    Fields::Named(fs) => obj_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({}),",
                        de_named_ctor(name, &path, fs, "__inner")
                    )),
                }
            }
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {str_arms} \
                   __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                   let (__tag, __inner) = &__pairs[0]; \
                   match __tag.as_str() {{ {obj_arms} \
                     __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::invalid(\"externally tagged enum\", {name:?})), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
