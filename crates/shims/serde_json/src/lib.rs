//! Offline stand-in for the real `serde_json` crate.
//!
//! Renders the shim `serde`'s [`Value`] tree as JSON text and parses JSON
//! text back into it, covering the `to_string` / `to_string_pretty` /
//! `from_str` entry points this workspace uses. The grammar is standard
//! JSON; non-finite floats serialize as `null` (as real serde_json does).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value model in this shim; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model in this shim; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse(text)?;
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            // `{:?}` is the shortest representation that round-trips f64.
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting accepted by the parser (as real serde_json),
/// so pathological input returns `Err` instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new("JSON input exceeds maximum nesting depth"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in JSON array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}` in JSON object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII identifiers; reject them.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape in JSON string")),
                    }
                }
                None => return Err(Error::new("unterminated JSON string")),
                _ => unreachable!("scan loop stops only at quote/backslash/EOF"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("dct \"8x8\"".into())),
            (
                "rows".into(),
                Value::Array(vec![
                    Value::UInt(3),
                    Value::Int(-7),
                    Value::Float(1.25),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_precision_roundtrips() {
        let v = Value::Float(0.1 + 0.2);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(50_000);
        let err = from_str::<Value>(&bomb).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
        // The cap still admits reasonable nesting.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn missing_field_is_an_error() {
        let v: Result<(u32, u32), Error> = from_str("[1]");
        assert!(v.is_err());
        let missing = serde::from_field::<f64>(
            &Value::Object(vec![("other".into(), Value::UInt(1))]),
            "speedup",
            "Row",
        );
        assert!(missing.unwrap_err().to_string().contains("missing field"));
    }
}
