//! Offline stand-in for the real `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! the workspace's `benches/*.rs` compiling (and runnable) with the
//! criterion API subset they use: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are intentionally simple — mean wall-clock time over
//! `sample_size` timed iterations after one warm-up, printed per benchmark.
//! Use `[[bench]] harness = false` targets exactly as with real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 10, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // One untimed warm-up pass.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    };
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                format!("  ({:.3e} {unit})", n as f64 / secs)
            } else {
                String::new()
            }
        })
        .unwrap_or_default();
    eprintln!("  {label}: {per_iter:?}/iter over {} iters{rate}", b.iters);
}

/// Times closures inside one benchmark invocation.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs and times one iteration of the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Benchmark identifier: a function name and a parameter label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Work performed by one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into one group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
