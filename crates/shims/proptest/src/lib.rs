//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`proptest!`] test macro, `prop_assert*` assertions,
//! [`prop_oneof!`], [`Strategy`] with `prop_map`, [`any`], integer-range
//! strategies, tuple strategies, `collection::vec` and `sample::select`.
//!
//! Unlike the real proptest there are no persisted failure seeds: each
//! test runs a fixed number of cases driven by a deterministic xorshift
//! generator, so failures reproduce across runs and machines.  Failing
//! cases are greedily shrunk ([`Strategy::shrink`]) before being
//! reported: integers move toward the range start, vectors drop
//! elements, tuples shrink one component at a time — enough to minimize
//! a failing fuzz case to a small input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic random-number generation for strategies.
pub mod test_runner {
    /// A small, fast, deterministic PRNG (xorshift64*).
    pub struct Rng(u64);

    impl Rng {
        /// Creates a generator from a non-zero seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Rng(if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            })
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut Rng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, most
        /// aggressive first.  The [`proptest!`](crate::proptest) runner
        /// greedily adopts any candidate that still fails, so returning
        /// an empty list (the default) just disables shrinking for this
        /// strategy.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Maps the produced value through `f` (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut Rng) -> S::Value {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            (**self).shrink(value)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut Rng) -> S::Value {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            (**self).shrink(value)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Union<T> {
        /// Creates a union over a non-empty list of alternatives.
        ///
        /// # Panics
        ///
        /// Panics when `alternatives` is empty.
        #[must_use]
        pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! of zero strategies");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                    assert!(span > 0, "empty range strategy");
                    let off = rng.next_u128() % span;
                    ((self.start as $wide).wrapping_add(off as $wide)) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    // Toward the range start: the start itself, then the
                    // halfway point (repeated adoption converges).
                    let mut out = Vec::new();
                    if *value != self.start {
                        out.push(self.start);
                        let dist = (*value as $wide).wrapping_sub(self.start as $wide);
                        let half = (self.start as $wide).wrapping_add(dist / 2) as $t;
                        if half != self.start && half != *value {
                            out.push(half);
                        }
                    }
                    out
                }
            }
        )*};
    }

    range_strategy!(
        u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
        i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128
    );

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others held fixed.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$n.shrink(&value.$n) {
                            let mut v = value.clone();
                            v.$n = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    /// A type whose full value space can be sampled.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut Rng) -> Self;

        /// Simplification candidates for a failing value (see
        /// [`Strategy::shrink`]).
        fn shrink(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    /// Strategy returned by [`any`](crate::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink(value)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u128() as $t
                }
                fn shrink(value: &$t) -> Vec<$t> {
                    // Toward zero: zero itself, then halfway.
                    let mut out = Vec::new();
                    if *value != 0 {
                        out.push(0);
                        let half = *value / 2;
                        if half != 0 {
                            out.push(half);
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Length bounds for [`vec`]: a half-open range or an exact size.
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for a `Vec` with random length and random elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let bounds = &self.size.0;
            assert!(
                bounds.start < bounds.end,
                "empty vec size range {}..{}",
                bounds.start,
                bounds.end
            );
            let span = (bounds.end - bounds.start) as u64;
            let len = bounds.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.0.start;
            let mut out = Vec::new();
            // Shorter vectors first (the big lever for "minimize to a
            // small program"), then element-wise simplification.
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half < value.len() && half > min {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                for i in 0..value.len().min(8) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            for (i, elem) in value.iter().enumerate().take(8) {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a non-empty list of values.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of zero options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

/// An unconstrained strategy over `T`'s whole value space.
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

/// Number of cases each [`proptest!`] test runs.
pub const CASES: u32 = 64;

/// Runs one probe of a property body on `v`, reporting whether it
/// panicked.  Support function for [`proptest!`] — the generic signature
/// gives the body closure its parameter types, which a bare closure
/// binding could not infer.
#[doc(hidden)]
pub fn __run_probe<V, F: FnOnce(V)>(v: V, f: F) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(v))).is_err()
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running [`CASES`] deterministic cases.
///
/// A failing case is greedily shrunk through [`Strategy::shrink`]
/// (adopting any simplification that still fails, until none does), the
/// minimized input is printed, and the body re-runs on it so the test
/// fails with the original assertion message.  Argument values must be
/// `Clone + Debug` for this machinery.
///
/// [`Strategy::shrink`]: crate::strategy::Strategy::shrink
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Vary the seed per test so sibling tests explore
                // different corners of the input space.
                let mut __rng = $crate::test_runner::Rng::new(
                    0x9E37_79B9_7F4A_7C15 ^ (stringify!($name).len() as u64) << 32
                        ^ stringify!($name).as_bytes()[0] as u64,
                );
                // One combined strategy so shrinking can vary each
                // argument while holding the rest at failing values.
                let __strat = ($($strat,)+);
                for __case in 0..$crate::CASES {
                    let __vals = $crate::strategy::Strategy::sample(&__strat, &mut __rng);
                    if !$crate::__run_probe(
                        ::std::clone::Clone::clone(&__vals),
                        |($($arg,)+)| {
                            $body
                        },
                    ) {
                        continue;
                    }
                    // Shrink quietly: every probe panics by construction.
                    let __hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                    let mut __vals = __vals;
                    while let Some(__c) = $crate::strategy::Strategy::shrink(&__strat, &__vals)
                        .into_iter()
                        .find(|__c| {
                            $crate::__run_probe(::std::clone::Clone::clone(__c), |($($arg,)+)| {
                                $body
                            })
                        })
                    {
                        __vals = __c;
                    }
                    ::std::panic::set_hook(__hook);
                    ::std::eprintln!(
                        "proptest {}: minimized failing input (case {}): {:?}",
                        stringify!($name),
                        __case,
                        &__vals
                    );
                    // Re-run on the minimized input outside catch_unwind
                    // so the test fails with the real assertion message.
                    let ($($arg,)+) = __vals;
                    $body
                    ::std::panic!("proptest case failed under catch_unwind but passed on rerun");
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

/// The names tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_shrink_moves_toward_start() {
        let cands = Strategy::shrink(&(3u8..100), &90);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|c| *c < 90 && *c >= 3));
        assert!(Strategy::shrink(&(3u8..100), &3).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len_and_reduces() {
        let strat = prop::collection::vec(0u32..10, 2..8);
        let cands = Strategy::shrink(&strat, &vec![5, 6, 7, 8]);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.len() >= 2));
        assert!(cands.iter().any(|c| c.len() < 4));
        // Element-wise shrink keeps the length but simplifies a value.
        assert!(cands.iter().any(|c| c.len() == 4 && c[0] < 5));
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let strat = (0u32..10, 0u32..10);
        let cands = Strategy::shrink(&strat, &(4, 6));
        assert!(cands.iter().any(|&(a, b)| a < 4 && b == 6));
        assert!(cands.iter().any(|&(a, b)| a == 4 && b < 6));
        assert!(!cands.iter().any(|&(a, b)| a < 4 && b < 6));
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_still_fails_after_shrinking() {
        proptest! {
            fn always_fails(x in 0u32..100, v in prop::collection::vec(0u8..9, 0..6)) {
                // Force a failure on every input so the shrink loop runs
                // to the fixpoint (0, []) before the rerun panics.
                prop_assert!(x > u32::from(v.iter().copied().max().unwrap_or(0)) + 1000);
            }
        }
        always_fails();
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in -5i16..5, z in 0usize..1) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert_eq!(z, 0);
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in prop::collection::vec((0usize..4, any::<bool>()), 1..9),
            tag in prop_oneof![Just("a"), Just("b")],
            doubled in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|(i, _)| *i < 4));
            prop_assert!(tag == "a" || tag == "b");
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}
