//! `simdsim-obs` — dependency-free structured observability.
//!
//! The serving stack can explain *what* it did (`/metrics` counters) but
//! not *where the time went*.  This crate supplies the three missing
//! primitives, shared by the coordinator, the workers, and the CLI:
//!
//! * [`trace`] — 128-bit trace ids rendered as 32 hex chars, carried in
//!   the `X-Simdsim-Trace-Id` header so one id links a client's submit to
//!   the job's execution and every worker unit it sharded into;
//! * [`Event`] + [`FlightRecorder`] — a structured span/event model and a
//!   bounded, lock-cheap ring of the most recent events (overflow drops
//!   the oldest), exportable as JSONL and served on `/v1/debug/events`;
//! * [`Histogram`] — a log-bucketed latency histogram over relaxed
//!   atomics, rendered in Prometheus histogram exposition format
//!   (`_bucket{le=...}` / `_sum` / `_count`).
//!
//! Everything here is `std`-only on purpose: the recorder sits on the
//! request hot path and inside worker unit loops, and the whole workspace
//! builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod ring;
pub mod trace;

pub use event::{now_ms, Event};
pub use hist::{quantile_from_buckets, Histogram, BOUNDS_MS};
pub use ring::{EventFilter, FlightRecorder};
pub use trace::TraceId;

/// The HTTP header that carries a trace id end to end (canonical form;
/// header names match case-insensitively on the wire).
pub const TRACE_HEADER: &str = "X-Simdsim-Trace-Id";
