//! The span/event model.
//!
//! An [`Event`] is one record in the flight recorder: something that
//! happened (`kind`), when (`ts_ms`), optionally how long it took
//! (`dur_ms` — which is what makes it a *span*), and which trace / job /
//! worker / unit it belongs to.  The optional identity fields are exactly
//! the axes `/v1/debug/events` filters on.

/// Milliseconds since the Unix epoch, for event timestamps.
#[must_use]
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// One flight-recorder record: an instantaneous event, or a span when
/// `dur_ms` is set.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Recorder-assigned monotonically increasing sequence number.
    pub seq: u64,
    /// Milliseconds since the Unix epoch (stamped at record time when 0).
    pub ts_ms: u64,
    /// Dotted event kind, e.g. `http.request`, `job.finish`, `lease.report`.
    pub kind: String,
    /// The trace this event belongs to (32 hex chars), if any.
    pub trace: Option<String>,
    /// The job id this event belongs to, if any.
    pub job: Option<u64>,
    /// The fleet worker id this event belongs to, if any.
    pub worker: Option<u64>,
    /// The leased unit id this event belongs to, if any.
    pub unit: Option<u64>,
    /// Span duration in milliseconds; `None` for instantaneous events.
    pub dur_ms: Option<f64>,
    /// Free-form human detail, e.g. `GET /v1/sweeps -> 202`.
    pub detail: String,
}

impl Event {
    /// A new event of the given kind; identity fields attach via the
    /// `with_*` builders.
    #[must_use]
    pub fn new(kind: impl Into<String>) -> Self {
        Event {
            seq: 0,
            ts_ms: 0,
            kind: kind.into(),
            trace: None,
            job: None,
            worker: None,
            unit: None,
            dur_ms: None,
            detail: String::new(),
        }
    }

    /// Attaches a trace id (no-op on `None`, so header plumbing stays terse).
    #[must_use]
    pub fn with_trace(mut self, trace: Option<impl Into<String>>) -> Self {
        self.trace = trace.map(Into::into);
        self
    }

    /// Attaches a job id.
    #[must_use]
    pub fn with_job(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }

    /// Attaches a fleet worker id.
    #[must_use]
    pub fn with_worker(mut self, worker: u64) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Attaches a leased unit id.
    #[must_use]
    pub fn with_unit(mut self, unit: u64) -> Self {
        self.unit = Some(unit);
        self
    }

    /// Turns the event into a span of the given duration.
    #[must_use]
    pub fn with_dur_ms(mut self, dur_ms: f64) -> Self {
        self.dur_ms = Some(dur_ms);
        self
    }

    /// Attaches free-form detail text.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Renders the event as one JSON object (one JSONL line, no trailing
    /// newline).  Absent optional fields are omitted, not `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        push_field(&mut out, "seq", &self.seq.to_string());
        push_field(&mut out, "ts_ms", &self.ts_ms.to_string());
        push_str_field(&mut out, "kind", &self.kind);
        if let Some(trace) = &self.trace {
            push_str_field(&mut out, "trace", trace);
        }
        if let Some(job) = self.job {
            push_field(&mut out, "job", &job.to_string());
        }
        if let Some(worker) = self.worker {
            push_field(&mut out, "worker", &worker.to_string());
        }
        if let Some(unit) = self.unit {
            push_field(&mut out, "unit", &unit.to_string());
        }
        if let Some(dur) = self.dur_ms {
            push_field(&mut out, "dur_ms", &format!("{dur:.3}"));
        }
        if !self.detail.is_empty() {
            push_str_field(&mut out, "detail", &self.detail);
        }
        out.push('}');
        out
    }
}

fn push_field(out: &mut String, key: &str, raw: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(raw);
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_json_into(out, value);
    out.push('"');
}

/// Appends `value` to `out` with JSON string escaping.
fn escape_json_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_omits_absent_fields_and_escapes_detail() {
        let ev = Event::new("http.request")
            .with_trace(Some("ab".repeat(16)))
            .with_job(7)
            .with_dur_ms(1.5)
            .with_detail("GET \"/v1/sweeps\"\n-> 202");
        let json = ev.to_json();
        assert!(json.starts_with("{\"seq\":0,\"ts_ms\":0,\"kind\":\"http.request\""));
        assert!(json.contains("\"job\":7"));
        assert!(json.contains("\"dur_ms\":1.500"));
        assert!(json.contains("\\\"/v1/sweeps\\\"\\n-> 202"));
        assert!(!json.contains("worker"), "absent fields must be omitted");
        assert!(!json.contains("unit"));
    }
}
