//! Log-bucketed latency histograms over relaxed atomics.
//!
//! Buckets double from 0.25 ms to ~4 s plus an overflow bucket — wide
//! enough to cover a sub-millisecond `/healthz` and a multi-second
//! fleet-sharded sweep in the same family.  Observation is three relaxed
//! atomic adds (bucket, sum, count); rendering follows the Prometheus
//! histogram exposition format, where `_bucket{le="x"}` series are
//! **cumulative** and `le` bounds are inclusive.

use std::sync::atomic::{AtomicU64, Ordering};

/// The upper bounds (`le`, inclusive) of the finite buckets, in
/// milliseconds.  The final `+Inf` bucket is implicit.
pub const BOUNDS_MS: [f64; 15] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

const BUCKETS: usize = BOUNDS_MS.len() + 1;

/// A fixed-bucket latency histogram; cheap to observe from any thread.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of observations in microseconds (integer, so it can be atomic).
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// The finite bucket index an observation of `ms` falls into, or
/// `BOUNDS_MS.len()` for the overflow (`+Inf`) bucket.
#[must_use]
pub fn bucket_index(ms: f64) -> usize {
    BOUNDS_MS
        .iter()
        .position(|&bound| ms <= bound)
        .unwrap_or(BOUNDS_MS.len())
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `ms` milliseconds.
    pub fn observe(&self, ms: f64) {
        let ms = if ms.is_finite() && ms > 0.0 { ms } else { 0.0 };
        self.buckets[bucket_index(ms)].fetch_add(1, Ordering::Relaxed);
        let us = (ms * 1000.0).round();
        self.sum_us.fetch_add(us as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in milliseconds.
    #[must_use]
    pub fn sum_ms(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The cumulative per-bucket counts, `+Inf` last (so the final entry
    /// equals [`Histogram::count`]).
    #[must_use]
    pub fn cumulative(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        let mut acc = 0u64;
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            acc += bucket.load(Ordering::Relaxed);
            *slot = acc;
        }
        out
    }

    /// Appends this histogram's `_bucket`/`_sum`/`_count` series to a
    /// Prometheus exposition body.  `labels` is the series' own label
    /// pairs (e.g. `endpoint="submit"`), empty for none; the caller emits
    /// the family's `# HELP`/`# TYPE` header once.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let le = |bound: &str| {
            if labels.is_empty() {
                format!("le=\"{bound}\"")
            } else {
                format!("{labels},le=\"{bound}\"")
            }
        };
        let cumulative = self.cumulative();
        for (bound, cum) in BOUNDS_MS.iter().zip(&cumulative) {
            let _ = writeln!(out, "{name}_bucket{{{}}} {cum}", le(&trim_float(*bound)));
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{}}} {}",
            le("+Inf"),
            cumulative[BUCKETS - 1]
        );
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{suffix} {:.3}", self.sum_ms());
        let _ = writeln!(out, "{name}_count{suffix} {}", self.count());
    }
}

/// Renders a bucket bound the way Prometheus clients expect: no trailing
/// zeros, no trailing dot (`0.25`, `1`, `4096`).
fn trim_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        s
    }
}

/// Estimates the `q`-quantile (0..=1) from cumulative histogram buckets —
/// the same linear interpolation Prometheus's `histogram_quantile` uses.
/// `cumulative` must have one more entry than `bounds` (the `+Inf`
/// bucket, last).
///
/// Total functions only: every degenerate input maps to a defined,
/// finite value rather than a NaN or a panic — scrapers feed this
/// whatever a server exposed.
///
/// * Empty `bounds`, mismatched lengths, or an all-zero `cumulative`
///   yield `0.0`.
/// * A `q` outside `[0, 1]` clamps; a NaN `q` reads as `0.0`.
/// * Ranks landing in the overflow bucket (including *every*
///   observation overflowing) clamp to the highest finite bound.
#[must_use]
pub fn quantile_from_buckets(bounds: &[f64], cumulative: &[u64], q: f64) -> f64 {
    let total = cumulative.last().copied().unwrap_or(0);
    if total == 0 || bounds.is_empty() || cumulative.len() != bounds.len() + 1 {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = q * total as f64;
    let idx = cumulative
        .iter()
        .position(|&c| c as f64 >= rank)
        .unwrap_or(cumulative.len() - 1);
    if idx >= bounds.len() {
        return bounds[bounds.len() - 1];
    }
    let upper = bounds[idx];
    let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
    let below = if idx == 0 { 0 } else { cumulative[idx - 1] };
    // `position` guarantees below < rank <= cumulative[idx] on monotone
    // input; saturate so a malformed (non-monotone) scrape still cannot
    // underflow.
    let in_bucket = cumulative[idx].saturating_sub(below);
    if in_bucket == 0 {
        return upper;
    }
    lower + (upper - lower) * ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_inclusive_and_doubling() {
        // Exactly on a bound lands in that bucket (`le` is inclusive)...
        assert_eq!(bucket_index(0.25), 0);
        assert_eq!(bucket_index(0.5), 1);
        assert_eq!(bucket_index(4096.0), BOUNDS_MS.len() - 1);
        // ...just past it spills into the next.
        assert_eq!(bucket_index(0.2500001), 1);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(4096.1), BOUNDS_MS.len());
        for pair in BOUNDS_MS.windows(2) {
            assert_eq!(pair[1], pair[0] * 2.0, "bounds must double");
        }
    }

    #[test]
    fn cumulative_counts_and_sum() {
        let h = Histogram::new();
        h.observe(0.1); // bucket 0
        h.observe(0.3); // bucket 1
        h.observe(3.0); // le=4
        h.observe(1e9); // overflow
        let cum = h.cumulative();
        assert_eq!(cum[0], 1);
        assert_eq!(cum[1], 2);
        assert_eq!(bucket_index(3.0), 4);
        assert_eq!(cum[4], 3);
        assert_eq!(cum[BOUNDS_MS.len()], 4, "+Inf bucket counts everything");
        assert_eq!(h.count(), 4);
        assert!((h.sum_ms() - (0.1 + 0.3 + 3.0 + 1e9)).abs() < 1.0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let h = Histogram::new();
        h.observe(0.2);
        h.observe(100.0);
        let mut out = String::new();
        h.render_prometheus(&mut out, "simdsim_test_ms", "endpoint=\"submit\"");
        assert!(out.contains("simdsim_test_ms_bucket{endpoint=\"submit\",le=\"0.25\"} 1\n"));
        assert!(out.contains("simdsim_test_ms_bucket{endpoint=\"submit\",le=\"128\"} 2\n"));
        assert!(out.contains("simdsim_test_ms_bucket{endpoint=\"submit\",le=\"+Inf\"} 2\n"));
        assert!(out.contains("simdsim_test_ms_count{endpoint=\"submit\"} 2\n"));
        assert!(out.contains("simdsim_test_ms_sum{endpoint=\"submit\"} 100.200\n"));
        // Unlabelled series carry only the `le` pair and a bare suffix.
        let mut bare = String::new();
        h.render_prometheus(&mut bare, "m", "");
        assert!(bare.contains("m_bucket{le=\"+Inf\"} 2\n"));
        assert!(bare.contains("m_count 2\n"));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = Histogram::new();
        for i in 0..1000 {
            h.observe(f64::from(i) * 0.37);
        }
        let cum = h.cumulative();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cum[BOUNDS_MS.len()], 1000);
    }

    #[test]
    fn quantile_estimation_brackets_the_truth() {
        let h = Histogram::new();
        for i in 1..=100 {
            h.observe(f64::from(i)); // 1..=100 ms, uniform
        }
        let cum = h.cumulative();
        let p50 = quantile_from_buckets(&BOUNDS_MS, &cum, 0.50);
        let p99 = quantile_from_buckets(&BOUNDS_MS, &cum, 0.99);
        // True p50 = 50ms, p99 = 99ms; log buckets bound the error by the
        // enclosing bucket, so assert bracket membership, not equality.
        assert!((32.0..=64.0).contains(&p50), "p50 estimate {p50}");
        assert!((64.0..=128.0).contains(&p99), "p99 estimate {p99}");
        // An empty histogram yields 0, not NaN.
        assert_eq!(quantile_from_buckets(&BOUNDS_MS, &[0; 16], 0.99), 0.0);
    }

    #[test]
    fn quantile_degenerate_inputs_are_defined() {
        // No buckets at all, and shape mismatches, read as "no data".
        assert_eq!(quantile_from_buckets(&[], &[], 0.5), 0.0);
        assert_eq!(quantile_from_buckets(&[], &[7], 0.5), 0.0);
        assert_eq!(quantile_from_buckets(&BOUNDS_MS, &[1, 2, 3], 0.5), 0.0);
        // Every observation in the overflow bucket clamps to the highest
        // finite bound instead of inventing a value past it.
        let mut overflow = [0u64; BOUNDS_MS.len() + 1];
        overflow[BOUNDS_MS.len()] = 9;
        assert_eq!(quantile_from_buckets(&BOUNDS_MS, &overflow, 0.01), 4096.0);
        assert_eq!(quantile_from_buckets(&BOUNDS_MS, &overflow, 0.99), 4096.0);
        // Out-of-range and non-finite q values are sanitized, not
        // propagated.
        let mut cum = [0u64; BOUNDS_MS.len() + 1];
        for (i, c) in cum.iter_mut().enumerate() {
            *c = i as u64 + 1;
        }
        for q in [-3.0, 2.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let v = quantile_from_buckets(&BOUNDS_MS, &cum, q);
            assert!(v.is_finite(), "q={q} produced {v}");
            assert!((0.0..=4096.0).contains(&v), "q={q} produced {v}");
        }
        assert!(!quantile_from_buckets(&BOUNDS_MS, &cum, f64::NAN).is_nan());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a valid cumulative array (monotone, `+Inf` last) from
        /// arbitrary per-bucket counts.
        fn cumulative_from(counts: &[u64]) -> Vec<u64> {
            counts
                .iter()
                .scan(0u64, |acc, &c| {
                    *acc += c;
                    Some(*acc)
                })
                .collect()
        }

        proptest! {
            #[test]
            fn quantile_is_total_finite_and_bounded(
                counts in prop::collection::vec(0u64..1_000, BOUNDS_MS.len() + 1),
                q_mille in 0u32..1_001,
            ) {
                let cum = cumulative_from(&counts);
                let q = f64::from(q_mille) / 1000.0;
                let v = quantile_from_buckets(&BOUNDS_MS, &cum, q);
                prop_assert!(v.is_finite(), "q={q} counts={counts:?} -> {v}");
                prop_assert!(
                    (0.0..=BOUNDS_MS[BOUNDS_MS.len() - 1]).contains(&v),
                    "q={q} counts={counts:?} -> {v} out of range"
                );
            }

            #[test]
            fn quantile_is_monotone_in_q(
                counts in prop::collection::vec(0u64..1_000, BOUNDS_MS.len() + 1),
                a in 0u32..1_001,
                b in 0u32..1_001,
            ) {
                let cum = cumulative_from(&counts);
                let (lo, hi) = (a.min(b), a.max(b));
                let v_lo = quantile_from_buckets(&BOUNDS_MS, &cum, f64::from(lo) / 1000.0);
                let v_hi = quantile_from_buckets(&BOUNDS_MS, &cum, f64::from(hi) / 1000.0);
                prop_assert!(
                    v_lo <= v_hi,
                    "q={lo}/1000 -> {v_lo} but q={hi}/1000 -> {v_hi}"
                );
            }

            #[test]
            fn quantile_survives_hostile_q(
                counts in prop::collection::vec(0u64..1_000, BOUNDS_MS.len() + 1),
                q in prop_oneof![
                    Just(f64::NAN),
                    Just(f64::INFINITY),
                    Just(f64::NEG_INFINITY),
                    (-4_000i32..4_000).prop_map(|m| f64::from(m) / 1000.0),
                ],
            ) {
                let v = quantile_from_buckets(&BOUNDS_MS, &cumulative_from(&counts), q);
                prop_assert!(v.is_finite(), "q={q} counts={counts:?} -> {v}");
            }

            #[test]
            fn quantile_never_panics_on_malformed_shapes(
                bounds_len in 0usize..6,
                cum in prop::collection::vec(0u64..50, 0..8),
                q_mille in 0u32..1_001,
            ) {
                // Deliberately mismatched bounds/cumulative lengths and
                // non-monotone counts: the function must stay total.
                let bounds: Vec<f64> = BOUNDS_MS[..bounds_len].to_vec();
                let v = quantile_from_buckets(&bounds, &cum, f64::from(q_mille) / 1000.0);
                prop_assert!(v.is_finite());
            }
        }
    }
}
